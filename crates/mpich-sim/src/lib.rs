//! # mpich-sim
//!
//! A simulated MPI implementation in the style of the **MPICH family** (MPICH,
//! MVAPICH, Intel MPI, HPE Cray MPI).
//!
//! The externally visible traits the paper cares about (§3):
//!
//! * **Handles are 32-bit integers** encoding a two-level table lookup: a few bits say
//!   whether the handle names a communicator, group, request, op or datatype (plus a
//!   "predefined" bit), and the remaining bits are split into a first-level index into
//!   a directory and a second-level index into the block the directory entry points to
//!   — the same shape as a two-level page table.
//! * **Global constants are compile-time integers**: `MPI_COMM_WORLD` has the same bit
//!   pattern in the upper and lower halves and in every session. (This apparent
//!   convenience is what let the original MANA prototype hard-wire Cray MPI
//!   assumptions; the virtual-id layer must not rely on it.)
//! * **Feature-complete** for the subset of MPI-3 modelled in this workspace.
//!
//! The crate exposes two factory configurations, [`MpichFactory::mpich`] and
//! [`MpichFactory::cray`], because the paper's evaluation treats MPICH as the local
//! stand-in for HPE Cray MPI on Perlmutter (§6, "HPE Cray MPI and MPICH share much of
//! their code").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod factory;

pub use codec::MpichCodec;
pub use factory::{MpichFactory, MpichVariant};

/// The engine type used by this implementation (one per rank).
pub type MpichRank = mpi_engine::Engine<MpichCodec>;
