//! The MPICH-family handle encoding: 32-bit integers with a two-level table layout.

use mpi_engine::HandleCodec;
use mpi_model::constants::PredefinedObject;
use mpi_model::types::{HandleKind, PhysHandle};

/// Number of second-level index bits (entries per second-level block).
const L2_BITS: u32 = 9;
/// Mask for the second-level index.
const L2_MASK: u32 = (1 << L2_BITS) - 1;
/// Number of first-level (directory) index bits.
const L1_BITS: u32 = 15;
/// Mask for the first-level index.
const L1_MASK: u32 = (1 << L1_BITS) - 1;
/// Bit position of the 3-bit kind field.
const KIND_SHIFT: u32 = L1_BITS + L2_BITS; // 24
/// Bit position of the "predefined / built-in object" flag.
const BUILTIN_SHIFT: u32 = KIND_SHIFT + 3; // 27
/// Marker in the top nibble indicating "this is a valid MPICH handle".
const VALID_SHIFT: u32 = 28;
const VALID_TAG: u32 = 0x4;

/// 32-bit, two-level-table handle codec (MPICH / MVAPICH / Intel MPI / Cray MPI style).
///
/// Layout of the 32-bit handle (high to low):
///
/// ```text
/// [31:28] validity tag (0x4)      — real MPICH uses reserved patterns similarly
/// [27]    predefined/built-in bit
/// [26:24] object kind (comm/group/request/op/datatype)
/// [23:9]  first-level (directory) index
/// [8:0]   second-level (block) index
/// ```
///
/// The engine's slab index is split across the two table levels exactly as a two-level
/// page-table walk would: `index = l1 * 512 + l2`. Handles are **not** salted with the
/// session number: an MPICH handle for the "same" object looks identical before a
/// checkpoint and after a restart, which is precisely the property that made MANA's
/// original integer virtual ids appear to work while actually being Cray-MPI-specific.
#[derive(Debug, Default, Clone)]
pub struct MpichCodec {
    _private: (),
}

impl MpichCodec {
    /// Create the codec.
    pub fn new() -> Self {
        MpichCodec { _private: () }
    }

    /// Split a slab index into (first-level, second-level) table indices.
    pub fn split_index(index: u32) -> (u32, u32) {
        (index >> L2_BITS, index & L2_MASK)
    }
}

impl HandleCodec for MpichCodec {
    fn name(&self) -> &'static str {
        "mpich-two-level-table"
    }

    fn encode(
        &mut self,
        kind: HandleKind,
        index: u32,
        _session: u64,
        predefined: Option<PredefinedObject>,
    ) -> PhysHandle {
        let (l1, l2) = Self::split_index(index);
        debug_assert!(
            l1 <= L1_MASK,
            "object index exceeds two-level table capacity"
        );
        let builtin = u32::from(predefined.is_some());
        let word = (VALID_TAG << VALID_SHIFT)
            | (builtin << BUILTIN_SHIFT)
            | (kind.tag() << KIND_SHIFT)
            | ((l1 & L1_MASK) << L2_BITS)
            | (l2 & L2_MASK);
        PhysHandle(word as u64)
    }

    fn decode(&self, handle: PhysHandle) -> Option<(HandleKind, u32)> {
        if handle.is_null() {
            return None;
        }
        // A genuine MPICH handle fits in 32 bits and carries the validity tag.
        if handle.0 > u32::MAX as u64 {
            return None;
        }
        let word = handle.0 as u32;
        if word >> VALID_SHIFT != VALID_TAG {
            return None;
        }
        let kind = HandleKind::from_tag((word >> KIND_SHIFT) & 0x7)?;
        let l1 = (word >> L2_BITS) & L1_MASK;
        let l2 = word & L2_MASK;
        Some((kind, (l1 << L2_BITS) | l2))
    }

    fn null(&self, kind: HandleKind) -> PhysHandle {
        // MPICH null handles are small distinct integers without the validity tag
        // (e.g. MPI_COMM_NULL == 0x04000000 in real MPICH; here a compact analogue).
        PhysHandle(0x0C00_0000u64 | kind.tag() as u64)
    }

    fn handle_bits(&self) -> u32 {
        32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        let mut codec = MpichCodec::new();
        for kind in HandleKind::ALL {
            for &index in &[1u32, 2, 511, 512, 513, 100_000] {
                let handle = codec.encode(kind, index, 0, None);
                assert!(handle.bits() <= u32::MAX as u64, "MPICH handles are 32-bit");
                assert_eq!(codec.decode(handle), Some((kind, index)));
            }
        }
    }

    #[test]
    fn predefined_bit_does_not_change_index() {
        let mut codec = MpichCodec::new();
        let plain = codec.encode(HandleKind::Comm, 1, 0, None);
        let builtin = codec.encode(HandleKind::Comm, 1, 0, Some(PredefinedObject::CommWorld));
        assert_ne!(plain, builtin, "builtin bit is visible in the handle");
        assert_eq!(codec.decode(plain), codec.decode(builtin));
    }

    #[test]
    fn handles_are_session_stable() {
        let mut codec = MpichCodec::new();
        let a = codec.encode(HandleKind::Datatype, 7, 1, None);
        let b = codec.encode(HandleKind::Datatype, 7, 99, None);
        assert_eq!(a, b, "MPICH-style handles ignore the session");
    }

    #[test]
    fn null_handles_are_distinct_and_undecodable() {
        let codec = MpichCodec::new();
        let mut nulls: Vec<u64> = HandleKind::ALL
            .iter()
            .map(|&k| codec.null(k).bits())
            .collect();
        nulls.sort_unstable();
        nulls.dedup();
        assert_eq!(nulls.len(), HandleKind::ALL.len());
        for &kind in &HandleKind::ALL {
            assert_eq!(codec.decode(codec.null(kind)), None);
        }
    }

    #[test]
    fn garbage_is_rejected() {
        let codec = MpichCodec::new();
        assert_eq!(codec.decode(PhysHandle(0)), None);
        assert_eq!(codec.decode(PhysHandle(u64::MAX)), None);
        assert_eq!(
            codec.decode(PhysHandle(0x1234)),
            None,
            "missing validity tag"
        );
    }

    #[test]
    fn two_level_split() {
        assert_eq!(MpichCodec::split_index(0), (0, 0));
        assert_eq!(MpichCodec::split_index(511), (0, 511));
        assert_eq!(MpichCodec::split_index(512), (1, 0));
        assert_eq!(MpichCodec::split_index(1025), (2, 1));
    }

    #[test]
    fn handle_width_is_32() {
        assert_eq!(MpichCodec::new().handle_bits(), 32);
    }
}
