//! Job launcher for the MPICH-family simulated implementation.

use crate::codec::MpichCodec;
use mpi_engine::{Engine, EngineConfig};
use mpi_model::api::{MpiApi, MpiImplementationFactory};
use mpi_model::constants::ConstantResolution;
use mpi_model::error::MpiResult;
use mpi_model::op::UserFunctionRegistry;
use mpi_model::subset::SubsetFeature;
use net_sim::{Fabric, FabricConfig};
use parking_lot::RwLock;
use std::sync::Arc;

/// Which member of the MPICH family to impersonate. The behaviours are identical (they
/// share their handle encoding and constant policy); the name matters to the benchmark
/// harness, which reports "Cray MPI" rows for Perlmutter experiments (Figure 4) and
/// "MPICH" rows for the local-cluster experiments (Figures 2 and 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpichVariant {
    /// Plain MPICH (the paper's local "standard of comparison").
    Mpich,
    /// HPE Cray MPI (the production implementation on Perlmutter).
    CrayMpi,
}

impl MpichVariant {
    /// The implementation name reported through `MpiApi::implementation_name`.
    pub fn name(self) -> &'static str {
        match self {
            MpichVariant::Mpich => "mpich",
            MpichVariant::CrayMpi => "craympi",
        }
    }
}

/// Factory launching MPICH-family jobs.
#[derive(Debug, Clone)]
pub struct MpichFactory {
    variant: MpichVariant,
}

impl MpichFactory {
    /// A plain-MPICH factory.
    pub fn mpich() -> Self {
        MpichFactory {
            variant: MpichVariant::Mpich,
        }
    }

    /// An HPE Cray MPI factory (identical behaviour, different name).
    pub fn cray() -> Self {
        MpichFactory {
            variant: MpichVariant::CrayMpi,
        }
    }

    /// The full feature set of the MPICH family as modelled here.
    pub fn features() -> Vec<SubsetFeature> {
        vec![
            SubsetFeature::Send,
            SubsetFeature::Recv,
            SubsetFeature::Iprobe,
            SubsetFeature::Test,
            SubsetFeature::CommGroup,
            SubsetFeature::GroupTranslateRanks,
            SubsetFeature::TypeGetEnvelope,
            SubsetFeature::TypeGetContents,
            SubsetFeature::Alltoall,
            SubsetFeature::NonBlockingPointToPoint,
            SubsetFeature::Barrier,
            SubsetFeature::Bcast,
            SubsetFeature::Reduce,
            SubsetFeature::Gather,
            SubsetFeature::CommDup,
            SubsetFeature::CommSplit,
            SubsetFeature::CommCreate,
            SubsetFeature::DerivedDatatypes,
            SubsetFeature::UserOps,
            SubsetFeature::CollectiveRegistration,
        ]
    }
}

impl MpiImplementationFactory for MpichFactory {
    fn name(&self) -> &'static str {
        self.variant.name()
    }

    fn launch(
        &self,
        world_size: usize,
        registry: Arc<RwLock<UserFunctionRegistry>>,
        session: u64,
    ) -> MpiResult<Vec<Box<dyn MpiApi>>> {
        let fabric = Fabric::new(FabricConfig::new(
            world_size,
            session.wrapping_mul(0x9e37_79b9),
        ));
        let mut ranks: Vec<Box<dyn MpiApi>> = Vec::with_capacity(world_size);
        for rank in 0..world_size {
            let engine = Engine::new(
                EngineConfig {
                    name: self.variant.name(),
                    resolution: ConstantResolution::CompileTimeInteger,
                    features: Self::features(),
                    lazy_constants: false,
                },
                MpichCodec::new(),
                fabric.endpoint(rank as i32)?,
                Arc::clone(&registry),
                session,
            );
            ranks.push(Box::new(engine));
        }
        Ok(ranks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_model::constants::PredefinedObject;
    use mpi_model::subset::ComplianceReport;

    fn registry() -> Arc<RwLock<UserFunctionRegistry>> {
        Arc::new(RwLock::new(UserFunctionRegistry::new()))
    }

    #[test]
    fn launch_produces_one_api_per_rank() {
        let factory = MpichFactory::mpich();
        let ranks = factory.launch(4, registry(), 1).unwrap();
        assert_eq!(ranks.len(), 4);
        for (i, api) in ranks.iter().enumerate() {
            assert_eq!(api.world_rank() as usize, i);
            assert_eq!(api.world_size(), 4);
            assert_eq!(api.implementation_name(), "mpich");
            assert_eq!(
                api.constant_resolution(),
                ConstantResolution::CompileTimeInteger
            );
        }
    }

    #[test]
    fn satisfies_mana_required_subset() {
        let factory = MpichFactory::cray();
        let ranks = factory.launch(1, registry(), 1).unwrap();
        let report = ComplianceReport::audit("craympi", &ranks[0].provided_features());
        assert!(report.mana_compatible());
    }

    #[test]
    fn constants_are_stable_across_sessions() {
        let factory = MpichFactory::mpich();
        let mut a = factory.launch(1, registry(), 1).unwrap();
        let mut b = factory.launch(1, registry(), 2).unwrap();
        let wa = a[0].resolve_constant(PredefinedObject::CommWorld).unwrap();
        let wb = b[0].resolve_constant(PredefinedObject::CommWorld).unwrap();
        assert_eq!(
            wa, wb,
            "MPICH-family constants are compile-time integers, identical across sessions"
        );
        assert!(wa.bits() <= u32::MAX as u64, "handles fit in an int");
    }

    #[test]
    fn cray_variant_reports_its_name() {
        let factory = MpichFactory::cray();
        let ranks = factory.launch(1, registry(), 1).unwrap();
        assert_eq!(ranks[0].implementation_name(), "craympi");
        assert_eq!(factory.name(), "craympi");
    }

    #[test]
    fn basic_traffic_flows() {
        let factory = MpichFactory::mpich();
        let ranks = factory.launch(2, registry(), 3).unwrap();
        let handles: Vec<_> = ranks
            .into_iter()
            .enumerate()
            .map(|(rank, mut api)| {
                std::thread::spawn(move || {
                    let world = api.resolve_constant(PredefinedObject::CommWorld).unwrap();
                    let byte = api
                        .resolve_constant(PredefinedObject::Datatype(
                            mpi_model::datatype::PrimitiveType::Byte,
                        ))
                        .unwrap();
                    if rank == 0 {
                        api.send(&[5, 6], byte, 1, 0, world).unwrap();
                        mpi_model::payload::PayloadBuf::new()
                    } else {
                        let (data, _) = api.recv(byte, 16, 0, 0, world).unwrap();
                        data
                    }
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(results[1], vec![5, 6]);
    }
}
