//! The application-side half of an elastic restart.
//!
//! The restart engine can rewrite MANA's own state (virtual-id tables, drain
//! counters, replay logs) through the [`RankMap`], but it cannot know
//! how the *application's* domain state is partitioned. The [`Repartition`] trait is
//! the hook an application implements so its state follows the map: each new rank
//! ingests the state slices of the old ranks mapped onto it.

use crate::rankmap::RankMap;
use mpi_model::error::MpiResult;
use mpi_model::types::Rank;
use split_proc::address_space::UpperHalfSpace;

/// Redistributes application domain state across a resized world.
///
/// Called once per new rank during an elastic restart, after MANA's state has been
/// adopted (for ranks with a primary) or freshly initialized (for fresh ranks on
/// growth), and before the new world runs its first step. `old` holds every old
/// rank's upper half in rank order — the implementation typically reads only the
/// regions of `map.hosted_by(new_rank)` and rewrites its state region in `upper`.
pub trait Repartition: Send + Sync {
    /// Rebuild `new_rank`'s application state in `upper` from the old world's upper
    /// halves, following `map`.
    fn repartition(
        &self,
        old: &[UpperHalfSpace],
        map: &RankMap,
        new_rank: Rank,
        upper: &mut UpperHalfSpace,
    ) -> MpiResult<()>;

    /// Whether this application *consumes* derived communicators and groups across a
    /// resize: it rebuilds whatever sub-communicators it needs from the new world
    /// itself, so the restart engine should drop — rather than reject — derived
    /// objects whose membership cannot survive the rank map.
    ///
    /// Defaults to `false`: a derived communicator that cannot survive the resize is
    /// then a clean [`MpiError::ElasticResize`](mpi_model::error::MpiError) error.
    fn consumes_derived_comms(&self) -> bool {
        false
    }
}

/// A repartition that moves nothing: correct only for the identity map (the
/// degenerate `M == N` resize) or for applications whose per-rank state is
/// host-independent. Useful in tests and as the explicit "no application state"
/// choice.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoRepartition;

impl Repartition for NoRepartition {
    fn repartition(
        &self,
        _old: &[UpperHalfSpace],
        _map: &RankMap,
        _new_rank: Rank,
        _upper: &mut UpperHalfSpace,
    ) -> MpiResult<()> {
        Ok(())
    }
}
