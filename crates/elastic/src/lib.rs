//! # elastic
//!
//! Elastic restart for the MANA reproduction: restore a checkpoint generation taken
//! by an `N`-rank world onto `M` fresh ranks — shrinking (`M < N`, e.g. after
//! unhealed node loss), growing (`M > N`), or the bit-identical degenerate identity
//! case (`M == N`).
//!
//! The subsystem has three layers:
//!
//! * [`RankMap`] ([`rankmap`]) — the explicit old-rank→new-rank assignment
//!   ([`RemapPolicy::Block`], [`RemapPolicy::RoundRobin`], or custom), with the
//!   hosted/primary/membership-remap queries both other layers share.
//! * The restore engine ([`restore`]) — [`resize_job`] / [`resize_job_from_storage`]
//!   dismantle every image of a generation, rewrite virtual-id memberships, replay
//!   logs, collective ledgers and drain counters through the map, synthesize state
//!   for fresh ranks, and reassemble each new rank via MANA's standard
//!   record-replay restart.
//! * [`Repartition`] ([`repartition`]) — the application hook that redistributes
//!   domain state: each new rank ingests the state slices of the old ranks mapped
//!   onto it. [`NoRepartition`] is the explicit no-op.
//!
//! Derived communicators survive a real resize only when they are
//! *world-equivalent* (a dup of world, a `comm_create` over the full membership);
//! proper-subset communicators are either consumed (dropped everywhere, when the
//! application's [`Repartition::consumes_derived_comms`] promises to rebuild them)
//! or rejected with a typed [`MpiError::ElasticResize`](mpi_model::error::MpiError)
//! error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rankmap;
pub mod repartition;
pub mod restore;

pub use rankmap::{RankMap, RemapPolicy};
pub use repartition::{NoRepartition, Repartition};
pub use restore::{resize_job, resize_job_from_storage};
