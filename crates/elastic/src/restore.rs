//! The elastic restart engine: restore an `N`-rank checkpoint generation onto `M`
//! fresh lower halves.
//!
//! The identity restart path ([`mana::restart::restart_rank`]) requires the new world
//! to match the checkpointed one exactly. This module relaxes that: it dismantles
//! every image of a generation ([`mana::dismantle_image`]), performs *surgery* on the
//! recovered state through a [`RankMap`] — rewriting communicator memberships, drain
//! counters and object-creation replay logs into the new world's coordinates — and
//! hands the adjusted state to [`mana::assemble_rank`], whose standard record-replay
//! then rebuilds every surviving MPI object in the resized lower halves.
//!
//! What survives a real resize (`M != N`):
//!
//! * **The world communicator** and every *world-equivalent* derived object (a
//!   `dup` of world, a `comm_create` over the full membership, the world's group):
//!   their membership is rewritten to `0..M` and their creation replayed in the new
//!   world.
//! * **Datatypes and user ops**: rank-count independent, replayed unchanged.
//! * **Proper-subset communicators and groups** (splits, partial `comm_create`s)
//!   cannot be remapped mechanically — whether the old partition even makes sense at
//!   the new size is an application question. If the application's
//!   [`Repartition::consumes_derived_comms`] says it rebuilds its own
//!   sub-communicators, they are *dropped on every rank* (keeping collective replay
//!   aligned); otherwise the resize fails with a typed
//!   [`MpiError::ElasticResize`] error.
//!
//! A resize also refuses checkpoints that straddle a collective, carry drained
//! in-flight messages, or hold live request objects: those images encode cross-rank
//! state in old-world coordinates that no rank map can translate. Checkpoints taken
//! at step boundaries (as the proxy apps and the job runtime do) are always eligible.
//! The identity map (`M == N`) skips surgery entirely and behaves bit-identically to
//! the legacy restart path.

use crate::rankmap::{RankMap, RemapPolicy};
use crate::repartition::Repartition;
use mana::config::ManaConfig;
use mana::record::{CollectiveKind, CollectiveLog, CreationRecipe, ReplayEvent, ReplayLog};
use mana::restart::{assemble_rank, dismantle_image, RestoredUpper};
use mana::runtime::{DrainCounters, ManaRank, Translator};
use mana::virtid::{blank_descriptor, VirtualId};
use mpi_model::api::MpiApi;
use mpi_model::constants::PredefinedObject;
use mpi_model::error::{MpiError, MpiResult};
use mpi_model::op::UserFunctionRegistry;
use mpi_model::types::{HandleKind, PhysHandle, Rank};
use parking_lot::RwLock;
use split_proc::address_space::UpperHalfSpace;
use split_proc::image::CheckpointImage;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Restore the checkpoint images of an `N`-rank generation onto `M` fresh lower
/// halves, following `map`.
///
/// `lowers` must come from a single fresh launch of the new `M`-rank world; `images`
/// are the per-rank images of one complete generation of the old `N`-rank world. The
/// application's `repartition` hook is invoked once per new rank — after MANA's state
/// has been adopted or synthesized, before replay — so domain state follows the map.
///
/// Collective across the job: the creation replay makes collective calls, so every
/// new rank is assembled on its own thread. Returns the rebuilt ranks in rank order.
pub fn resize_job(
    lowers: Vec<Box<dyn MpiApi>>,
    images: Vec<CheckpointImage>,
    map: &RankMap,
    repartition: &dyn Repartition,
    config: ManaConfig,
    registry: Arc<RwLock<UserFunctionRegistry>>,
) -> MpiResult<Vec<ManaRank>> {
    let old_world = map.old_world();
    let new_world = map.new_world();
    let lowers = validate_lowers(lowers, new_world)?;
    let (generation, states) = dismantle_generation(images, old_world)?;
    let identity = map.is_identity();

    let mut states = if identity {
        // The degenerate M == N case: no surgery; behave exactly like the legacy
        // restart path (which also clears any straddled-collective registration —
        // the restored application re-runs the interrupted step from its start).
        let mut states = states;
        for state in &mut states {
            state.collectives.clear_pending();
        }
        states
    } else {
        rewrite_generation(states, map, repartition.consumes_derived_comms())?
    };

    // Snapshot what the per-new-rank assembly needs from the *whole* old world
    // before the old states are moved: every old upper half (for the repartition
    // hook) and every old counter vector (for the merge).
    let old_uppers: Vec<UpperHalfSpace> = states.iter().map(|s| s.upper.clone()).collect();
    let old_counters: Vec<DrainCounters> = states.iter().map(|s| s.counters.clone()).collect();
    let plan = if map.has_fresh_ranks() {
        Some(fresh_plan(states.first().ok_or_else(|| {
            MpiError::ElasticResize("cannot resize an empty generation".into())
        })?)?)
    } else {
        None
    };

    let mut slots: Vec<Option<RestoredUpper>> = states.drain(..).map(Some).collect();
    let mut new_states: Vec<RestoredUpper> = Vec::with_capacity(new_world);
    for j in 0..new_world {
        let new_rank = j as Rank;
        match map.primary_of(new_rank) {
            Some(primary) => {
                let mut state = slots
                    .get_mut(primary as usize)
                    .and_then(Option::take)
                    .ok_or_else(|| {
                        MpiError::Internal(format!(
                            "rank map assigned old rank {primary} as primary twice"
                        ))
                    })?;
                if !identity {
                    fix_self_comm(&mut state, new_rank)?;
                    state.counters = merged_counters(&old_counters, map, new_rank)?;
                }
                new_states.push(state);
            }
            None => {
                let plan = plan.as_ref().ok_or_else(|| {
                    MpiError::Internal("fresh rank encountered without a synthesis plan".into())
                })?;
                new_states.push(synthesize_fresh(plan, new_world, config)?);
            }
        }
    }

    for (j, state) in new_states.iter_mut().enumerate() {
        repartition.repartition(&old_uppers, map, j as Rank, &mut state.upper)?;
    }

    let handles: Vec<_> = lowers
        .into_iter()
        .zip(new_states)
        .map(|(lower, state)| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                assemble_rank(lower, state, config, registry, generation + 1)
            })
        })
        .collect();
    let mut ranks = Vec::with_capacity(handles.len());
    for handle in handles {
        ranks.push(handle.join().map_err(|_| {
            MpiError::Checkpoint("a rank panicked during elastic restart".into())
        })??);
    }
    ranks.sort_by_key(|r| r.world_rank());
    Ok(ranks)
}

/// Resize a whole job out of a [`ckpt_store::CheckpointStorage`]: find the newest
/// complete, valid generation at *any* world size, build a rank map from its size
/// onto `lowers.len()` ranks with `policy`, and [`resize_job`] onto it.
///
/// Mirrors [`mana::restart_job_from_storage`]'s hygiene: generations still pending
/// (an asynchronous flush the dead incarnation never committed) are aborted and
/// forgotten first. Returns the rebuilt ranks plus the generation restored from.
pub fn resize_job_from_storage(
    lowers: Vec<Box<dyn MpiApi>>,
    storage: &ckpt_store::CheckpointStorage,
    policy: RemapPolicy,
    repartition: &dyn Repartition,
    config: ManaConfig,
    registry: Arc<RwLock<UserFunctionRegistry>>,
) -> MpiResult<(Vec<ManaRank>, u64)> {
    for generation in storage.pending_generations() {
        storage.abort_generation(generation);
        storage.forget_generation(generation);
    }
    let (generation, images) = storage.latest_valid_images_any_size()?;
    let map = if images.len() == lowers.len() {
        RankMap::identity(lowers.len())?
    } else {
        RankMap::with_policy(policy, images.len(), lowers.len())?
    };
    let ranks = resize_job(lowers, images, &map, repartition, config, registry)?;
    Ok((ranks, generation))
}

/// Order the new world's lower halves by rank and check they really form a
/// contiguous `M`-rank world.
fn validate_lowers(
    mut lowers: Vec<Box<dyn MpiApi>>,
    new_world: usize,
) -> MpiResult<Vec<Box<dyn MpiApi>>> {
    if lowers.len() != new_world {
        return Err(MpiError::ElasticResize(format!(
            "rank map targets a {new_world}-rank world but {} lower halves were offered",
            lowers.len()
        )));
    }
    lowers.sort_by_key(|l| l.world_rank());
    for (i, lower) in lowers.iter().enumerate() {
        if lower.world_rank() != i as Rank || lower.world_size() != new_world {
            return Err(MpiError::ElasticResize(format!(
                "offered lower halves do not form a contiguous {new_world}-rank world \
                 (slot {i} holds rank {} of {})",
                lower.world_rank(),
                lower.world_size()
            )));
        }
    }
    Ok(lowers)
}

/// Dismantle one complete generation: check the images cover ranks `0..N` of a single
/// generation checkpointed at world size `N`, and take each apart.
fn dismantle_generation(
    mut images: Vec<CheckpointImage>,
    old_world: usize,
) -> MpiResult<(u64, Vec<RestoredUpper>)> {
    if images.len() != old_world {
        return Err(MpiError::ElasticResize(format!(
            "rank map describes a {old_world}-rank checkpointed world but {} images \
             were offered",
            images.len()
        )));
    }
    images.sort_by_key(|image| image.metadata.rank);
    let generation = images
        .first()
        .map(|image| image.metadata.generation)
        .ok_or_else(|| MpiError::ElasticResize("cannot resize an empty generation".into()))?;
    let mut states = Vec::with_capacity(images.len());
    for (i, image) in images.into_iter().enumerate() {
        if image.metadata.rank != i as Rank
            || image.metadata.world_size != old_world
            || image.metadata.generation != generation
        {
            return Err(MpiError::ElasticResize(format!(
                "images do not form one complete generation: slot {i} holds rank {} \
                 of a {}-rank world, generation {} (expected generation {generation})",
                image.metadata.rank, image.metadata.world_size, image.metadata.generation
            )));
        }
        let (_, state) = dismantle_image(image)?;
        states.push(state);
    }
    Ok((generation, states))
}

/// Validate and rewrite every old rank's state into new-world coordinates (the
/// non-identity path). `consume` is the application's
/// [`Repartition::consumes_derived_comms`] answer.
fn rewrite_generation(
    mut states: Vec<RestoredUpper>,
    map: &RankMap,
    consume: bool,
) -> MpiResult<Vec<RestoredUpper>> {
    for (rank, state) in states.iter_mut().enumerate() {
        let rank = rank as Rank;
        if let Some(pending) = state.collectives.pending() {
            return Err(MpiError::ElasticResize(format!(
                "rank {rank} was checkpointed inside a straddled {:?} collective \
                 (seq {} on {}); a resize needs a checkpoint taken between collectives \
                 — restart at the original size, checkpoint at a step boundary, then \
                 resize",
                pending.kind, pending.seq, pending.comm
            )));
        }
        if !state.buffered.is_empty() {
            return Err(MpiError::ElasticResize(format!(
                "rank {rank} carries {} drained in-flight messages addressed in \
                 old-world ranks; a resize needs a checkpoint taken with point-to-point \
                 traffic quiesced (a step boundary)",
                state.buffered.len()
            )));
        }
        if let Some(request) = state
            .translator
            .iter_in_creation_order()
            .iter()
            .find(|d| d.kind == HandleKind::Request)
        {
            return Err(MpiError::ElasticResize(format!(
                "rank {rank} holds a live request object {}; a resize needs all \
                 nonblocking operations completed before the checkpoint",
                request.vid
            )));
        }
        rewrite_rank(state, rank, map, consume)?;
    }
    Ok(states)
}

/// Rewrite one old rank's translator, replay log and collective ledger into
/// new-world coordinates.
fn rewrite_rank(
    state: &mut RestoredUpper,
    old_rank: Rank,
    map: &RankMap,
    consume: bool,
) -> MpiResult<()> {
    let full_old: Vec<Rank> = (0..map.old_world() as Rank).collect();
    let full_new: Vec<Rank> = (0..map.new_world() as Rank).collect();

    // World-equivalent lineage: the world communicator itself plus everything
    // derived from it without narrowing the membership. Seeded from the predefined
    // world descriptor, grown by walking the replay log in creation order (which
    // also covers parents freed before the checkpoint — their events remain).
    let mut world_like: HashSet<VirtualId> = HashSet::new();
    if let Some(world) = state
        .translator
        .find_predefined(PredefinedObject::CommWorld)
    {
        world_like.insert(world);
    }
    let mut consumed: HashSet<VirtualId> = HashSet::new();
    let mut rewritten = ReplayLog::new();
    for event in state.replay_log.events().to_vec() {
        // `Some(recipe)` keeps the event (possibly rewritten); the bool marks the
        // product itself world-equivalent. `None` means the recipe narrows the
        // membership and cannot be replayed in the new world.
        let disposition: Option<(CreationRecipe, bool)> = match &event.recipe {
            CreationRecipe::Predefined(object) => {
                Some((event.recipe.clone(), *object == PredefinedObject::CommWorld))
            }
            CreationRecipe::CommDup { parent } => world_like
                .contains(parent)
                .then(|| (event.recipe.clone(), true)),
            CreationRecipe::CommSplit { .. } => None,
            CreationRecipe::CommCreate {
                parent,
                members_world,
            } => (world_like.contains(parent) && members_world == &full_old).then(|| {
                (
                    CreationRecipe::CommCreate {
                        parent: *parent,
                        members_world: full_new.clone(),
                    },
                    true,
                )
            }),
            CreationRecipe::GroupFromComm { comm } => world_like
                .contains(comm)
                .then(|| (event.recipe.clone(), true)),
            CreationRecipe::GroupIncl { parent, ranks } => {
                (world_like.contains(parent) && ranks == &full_old).then(|| {
                    (
                        CreationRecipe::GroupIncl {
                            parent: *parent,
                            ranks: full_new.clone(),
                        },
                        true,
                    )
                })
            }
            CreationRecipe::DerivedDatatype { .. } | CreationRecipe::UserOp { .. } => {
                Some((event.recipe.clone(), false))
            }
        };
        match disposition {
            Some((recipe, world_equivalent)) => {
                if world_equivalent {
                    if let Some(vid) = event.vid {
                        world_like.insert(vid);
                    }
                }
                rewritten.push(ReplayEvent {
                    recipe,
                    vid: event.vid,
                    freed: event.freed,
                });
            }
            None => {
                // Already-freed objects (and `MPI_UNDEFINED` split arms, which made
                // no object) exist only so collective replay stays aligned; every
                // rank drops them at the same log position, so alignment holds and
                // they vanish silently. A *live* narrowed object is consumed only if
                // the application promised to rebuild its own sub-communicators.
                if let Some(vid) = event.vid {
                    if !event.freed && !consume {
                        return Err(MpiError::ElasticResize(format!(
                            "rank {old_rank} holds live derived object {vid}, created \
                             by {:?}, whose membership is a proper subset of the old \
                             world and cannot be remapped onto {} ranks; implement \
                             Repartition::consumes_derived_comms to drop and rebuild \
                             such communicators, or restart at the original size",
                            event.recipe,
                            map.new_world()
                        )));
                    }
                    consumed.insert(vid);
                }
            }
        }
    }
    state.replay_log = rewritten;

    // Descriptor surgery: world-equivalent memberships become the full new world;
    // consumed objects disappear (their collective sequence numbers with them).
    let descriptors: Vec<(VirtualId, HandleKind, Option<PredefinedObject>)> = state
        .translator
        .iter_in_creation_order()
        .iter()
        .map(|d| (d.vid, d.kind, d.predefined))
        .collect();
    for (vid, kind, predefined) in descriptors {
        match predefined {
            Some(PredefinedObject::CommWorld) => {
                set_members(state, vid, full_new.clone())?;
            }
            // `MPI_COMM_SELF` membership is the *new* rank's identity, patched in
            // once the state is assigned to a new rank (`fix_self_comm`).
            Some(_) => {}
            None => {
                if !matches!(kind, HandleKind::Comm | HandleKind::Group) {
                    continue;
                }
                if world_like.contains(&vid) {
                    set_members(state, vid, full_new.clone())?;
                } else if consumed.contains(&vid) {
                    let _ = state.translator.remove(vid);
                    state.collectives.forget_comm(vid);
                } else {
                    return Err(MpiError::Internal(format!(
                        "descriptor {vid} on rank {old_rank} has no surviving or \
                         consumed creation event"
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Point a surviving communicator/group descriptor at its new-world membership,
/// recomputing the ggid if one had been published.
fn set_members(state: &mut RestoredUpper, vid: VirtualId, members: Vec<Rank>) -> MpiResult<()> {
    let descriptor = state.translator.get_mut(vid)?;
    let had_ggid = descriptor.ggid.is_some();
    descriptor.members_world = Some(members);
    descriptor.ggid = None;
    if had_ggid {
        descriptor.ggid_or_compute();
    }
    Ok(())
}

/// Patch the adopted `MPI_COMM_SELF` descriptor to the new rank's identity.
fn fix_self_comm(state: &mut RestoredUpper, new_rank: Rank) -> MpiResult<()> {
    if let Some(vid) = state.translator.find_predefined(PredefinedObject::CommSelf) {
        set_members(state, vid, vec![new_rank])?;
    }
    Ok(())
}

/// Fold the hosted old ranks' drain counters through the map: the new rank has sent
/// to (received from) new rank `q` everything its old ranks sent to (received from)
/// any old rank now hosted by `q`.
fn merged_counters(
    old: &[DrainCounters],
    map: &RankMap,
    new_rank: Rank,
) -> MpiResult<DrainCounters> {
    let mut out = DrainCounters::new(map.new_world());
    for host in map.hosted_by(new_rank) {
        let counters = old.get(host as usize).ok_or_else(|| {
            MpiError::Internal(format!("no counters recorded for old rank {host}"))
        })?;
        for (dest, &count) in counters.sent_to.iter().enumerate() {
            let q = map.new_rank_of(dest as Rank)? as usize;
            if let Some(slot) = out.sent_to.get_mut(q) {
                *slot += count;
            }
        }
        for (source, &count) in counters.received_from.iter().enumerate() {
            let q = map.new_rank_of(source as Rank)? as usize;
            if let Some(slot) = out.received_from.get_mut(q) {
                *slot += count;
            }
        }
    }
    Ok(out)
}

/// The parent of a synthesized collective creation on a fresh rank.
enum FreshParent {
    /// The world communicator.
    World,
    /// The product of an earlier synthesized event (index into the plan).
    Product(usize),
}

/// One collective creation a fresh rank must participate in.
struct FreshEvent {
    parent: FreshParent,
    /// `Some(members)` replays `MPI_Comm_create`; `None` replays `MPI_Comm_dup`.
    create_members: Option<Vec<Rank>>,
    freed: bool,
    /// Collective sequence number published on the product by the old world.
    epoch: u64,
}

/// What a fresh rank (one no old rank maps onto) must synthesize so it stays aligned
/// with the adopting ranks: the surviving collective creations in order, plus the
/// world communicator's collective epoch.
struct FreshPlan {
    world_epoch: u64,
    events: Vec<FreshEvent>,
}

/// Extract the synthesis plan from one already-rewritten old rank's state. Every
/// surviving collective recipe is world-equivalent, so its membership (and epoch)
/// is identical on all ranks — any template rank yields the same plan.
fn fresh_plan(template: &RestoredUpper) -> MpiResult<FreshPlan> {
    let world_vid = template
        .translator
        .find_predefined(PredefinedObject::CommWorld);
    let world_epoch = world_vid
        .map(|vid| template.collectives.completed_on(vid))
        .unwrap_or(0);
    let mut index_of: HashMap<VirtualId, usize> = HashMap::new();
    let mut events = Vec::new();
    for event in template.replay_log.events() {
        if !event.recipe.is_collective() {
            continue;
        }
        let (parent_vid, create_members) = match &event.recipe {
            CreationRecipe::CommDup { parent } => (*parent, None),
            CreationRecipe::CommCreate {
                parent,
                members_world,
            } => (*parent, Some(members_world.clone())),
            // Splits never survive a resize; the rewrite already dropped them.
            _ => continue,
        };
        let parent = if Some(parent_vid) == world_vid {
            FreshParent::World
        } else if let Some(&index) = index_of.get(&parent_vid) {
            FreshParent::Product(index)
        } else {
            return Err(MpiError::Internal(format!(
                "surviving collective recipe has unresolvable parent {parent_vid}"
            )));
        };
        let epoch = match event.vid {
            Some(vid) if !event.freed => template.collectives.completed_on(vid),
            _ => 0,
        };
        if let Some(vid) = event.vid {
            index_of.insert(vid, events.len());
        }
        events.push(FreshEvent {
            parent,
            create_members,
            freed: event.freed,
            epoch,
        });
    }
    Ok(FreshPlan {
        world_epoch,
        events,
    })
}

/// Build a fresh rank's state from scratch: a translator holding the new world
/// communicator, a replay log of the surviving collective creations (so the fresh
/// rank participates in the adopting ranks' replay), and a collective ledger
/// replaying the old world's published sequence numbers — without which the next
/// checkpoint's epoch-agreement check would reject the resized world.
fn synthesize_fresh(
    plan: &FreshPlan,
    new_world: usize,
    config: ManaConfig,
) -> MpiResult<RestoredUpper> {
    let full_new: Vec<Rank> = (0..new_world as Rank).collect();
    let policy = config.ggid_policy;
    let mut translator = Translator::new(config.virtid_mode);
    let world_vid = translator.insert_with(
        HandleKind::Comm,
        Some(PredefinedObject::CommWorld),
        policy,
        |vid, seq| {
            let mut descriptor = blank_descriptor(HandleKind::Comm, PhysHandle::NULL);
            descriptor.vid = vid;
            descriptor.creation_seq = seq;
            descriptor.predefined = Some(PredefinedObject::CommWorld);
            descriptor.members_world = Some(full_new.clone());
            descriptor
        },
    );
    let mut collectives = CollectiveLog::new();
    replay_epoch(&mut collectives, world_vid, plan.world_epoch)?;
    let mut replay_log = ReplayLog::new();
    let mut products: Vec<VirtualId> = Vec::new();
    for event in &plan.events {
        let parent = match event.parent {
            FreshParent::World => world_vid,
            FreshParent::Product(index) => products.get(index).copied().ok_or_else(|| {
                MpiError::Internal("fresh-rank synthesis plan references a later product".into())
            })?,
        };
        let vid = translator.insert_with(HandleKind::Comm, None, policy, |vid, seq| {
            let mut descriptor = blank_descriptor(HandleKind::Comm, PhysHandle::NULL);
            descriptor.vid = vid;
            descriptor.creation_seq = seq;
            descriptor.members_world = Some(full_new.clone());
            descriptor
        });
        products.push(vid);
        if event.freed {
            // The event must still be replayed (collective alignment) under a vid no
            // live descriptor answers to; table indexes are never reused, so
            // insert-then-remove mints exactly that.
            let _ = translator.remove(vid);
        } else {
            replay_epoch(&mut collectives, vid, event.epoch)?;
        }
        let recipe = match &event.create_members {
            Some(members) => CreationRecipe::CommCreate {
                parent,
                members_world: members.clone(),
            },
            None => CreationRecipe::CommDup { parent },
        };
        replay_log.push(ReplayEvent {
            recipe,
            vid: Some(vid),
            freed: event.freed,
        });
    }
    Ok(RestoredUpper {
        translator,
        replay_log,
        collectives,
        buffered: Vec::new(),
        counters: DrainCounters::new(new_world),
        upper: UpperHalfSpace::new(),
    })
}

/// Replay `epoch` completed collectives on `comm` into a fresh ledger, so its
/// published sequence number matches the adopting ranks'.
fn replay_epoch(log: &mut CollectiveLog, comm: VirtualId, epoch: u64) -> MpiResult<()> {
    for _ in 0..epoch {
        let seq = log.begin(comm, CollectiveKind::Barrier)?;
        log.complete(comm, seq)?;
    }
    Ok(())
}
