//! The explicit old-rank→new-rank assignment an elastic restart is built around.
//!
//! A [`RankMap`] says, for every rank of the checkpointed world, which rank of the
//! new world adopts it. The restart engine rewrites virtual-id memberships and drain
//! counters through the map instead of assuming identity; the application's
//! [`Repartition`](crate::Repartition) implementation re-buckets domain state through
//! the same map, so both layers agree on where every shard of the old world lands.

use mpi_model::error::{MpiError, MpiResult};
use mpi_model::types::Rank;
use serde::{Deserialize, Serialize};

/// Built-in assignment policies for resizing an `N`-rank world onto `M` ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RemapPolicy {
    /// Contiguous blocks: old rank `i` lands on new rank `i * M / N`. Keeps
    /// neighbouring old ranks co-hosted, which preserves halo locality.
    Block,
    /// Round-robin: old rank `i` lands on new rank `i % M`. Spreads old ranks evenly
    /// when load per old rank is uniform.
    RoundRobin,
}

/// An explicit assignment of every old (checkpointed) rank to a new rank.
///
/// ```text
///   old world (N=8):   0   1   2   3   4   5   6   7
///                       \ /     \ /     \ /     \ /
///   Block, M=4:          0       1       2       3
/// ```
///
/// New ranks that no old rank maps onto (possible when growing, `M > N`) start with
/// no adopted state: they hold empty shards until the application's repartition
/// hook assigns them work.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankMap {
    old_world: usize,
    new_world: usize,
    /// `assignment[i]` is the new rank that adopts old rank `i`.
    assignment: Vec<Rank>,
}

impl RankMap {
    /// Build a map with the given policy.
    pub fn with_policy(policy: RemapPolicy, old_world: usize, new_world: usize) -> MpiResult<Self> {
        match policy {
            RemapPolicy::Block => RankMap::block(old_world, new_world),
            RemapPolicy::RoundRobin => RankMap::round_robin(old_world, new_world),
        }
    }

    /// Contiguous-block assignment: old rank `i` → new rank `i * M / N`.
    pub fn block(old_world: usize, new_world: usize) -> MpiResult<Self> {
        RankMap::validate_sizes(old_world, new_world)?;
        let assignment = (0..old_world)
            .map(|i| (i * new_world / old_world) as Rank)
            .collect();
        Ok(RankMap {
            old_world,
            new_world,
            assignment,
        })
    }

    /// Round-robin assignment: old rank `i` → new rank `i % M`.
    pub fn round_robin(old_world: usize, new_world: usize) -> MpiResult<Self> {
        RankMap::validate_sizes(old_world, new_world)?;
        let assignment = (0..old_world).map(|i| (i % new_world) as Rank).collect();
        Ok(RankMap {
            old_world,
            new_world,
            assignment,
        })
    }

    /// The identity map (`M == N`, every rank adopts itself): the degenerate case an
    /// elastic restart must handle bit-identically to the legacy restart path.
    pub fn identity(world: usize) -> MpiResult<Self> {
        RankMap::validate_sizes(world, world)?;
        Ok(RankMap {
            old_world: world,
            new_world: world,
            assignment: (0..world as Rank).collect(),
        })
    }

    /// A custom assignment: `assignment[i]` is the new rank adopting old rank `i`.
    /// Every entry must name a rank of the new world.
    pub fn custom(new_world: usize, assignment: Vec<Rank>) -> MpiResult<Self> {
        RankMap::validate_sizes(assignment.len(), new_world)?;
        if let Some(&bad) = assignment
            .iter()
            .find(|&&r| r < 0 || r as usize >= new_world)
        {
            return Err(MpiError::ElasticResize(format!(
                "rank map sends an old rank to {bad}, outside the new world of {new_world}"
            )));
        }
        Ok(RankMap {
            old_world: assignment.len(),
            new_world,
            assignment,
        })
    }

    fn validate_sizes(old_world: usize, new_world: usize) -> MpiResult<()> {
        if old_world == 0 || new_world == 0 {
            return Err(MpiError::ElasticResize(format!(
                "cannot map a {old_world}-rank world onto {new_world} ranks: both \
                 worlds must be non-empty"
            )));
        }
        Ok(())
    }

    /// Ranks in the checkpointed world.
    pub fn old_world(&self) -> usize {
        self.old_world
    }

    /// Ranks in the new world.
    pub fn new_world(&self) -> usize {
        self.new_world
    }

    /// Whether this map is the identity (same sizes, every rank adopting itself).
    pub fn is_identity(&self) -> bool {
        self.old_world == self.new_world
            && self
                .assignment
                .iter()
                .enumerate()
                .all(|(i, &r)| r == i as Rank)
    }

    /// The new rank that adopts `old` rank's state.
    pub fn new_rank_of(&self, old: Rank) -> MpiResult<Rank> {
        self.assignment.get(old as usize).copied().ok_or_else(|| {
            MpiError::ElasticResize(format!(
                "old rank {old} is outside the checkpointed world of {}",
                self.old_world
            ))
        })
    }

    /// The old ranks adopted by new rank `new`, in ascending old-rank order. Empty
    /// for a fresh rank (one no old rank maps onto).
    pub fn hosted_by(&self, new: Rank) -> Vec<Rank> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &target)| target == new)
            .map(|(old, _)| old as Rank)
            .collect()
    }

    /// Whether any new rank hosts no old rank at all (possible only when growing):
    /// such *fresh* ranks synthesize their MANA state instead of adopting one.
    pub fn has_fresh_ranks(&self) -> bool {
        (0..self.new_world as Rank).any(|new| !self.assignment.contains(&new))
    }

    /// The *primary* old rank of new rank `new`: the lowest old rank it adopts. The
    /// restart engine restores the primary's MANA state (translator, replay log,
    /// collective ledger) onto the new rank; co-hosted non-primary ranks contribute
    /// their drain counters and — through the repartition hook — their domain state.
    pub fn primary_of(&self, new: Rank) -> Option<Rank> {
        self.assignment
            .iter()
            .enumerate()
            .find(|(_, &target)| target == new)
            .map(|(old, _)| old as Rank)
    }

    /// Remap a membership list of old world ranks into new world ranks, in old
    /// order, with duplicates collapsed (two co-hosted old members become one new
    /// member).
    pub fn remap_members(&self, members: &[Rank]) -> MpiResult<Vec<Rank>> {
        let mut out: Vec<Rank> = Vec::with_capacity(members.len());
        for &old in members {
            let new = self.new_rank_of(old)?;
            if !out.contains(&new) {
                out.push(new);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_shrink_keeps_neighbours_together() {
        let map = RankMap::block(8, 4).unwrap();
        assert_eq!(map.hosted_by(0), vec![0, 1]);
        assert_eq!(map.hosted_by(3), vec![6, 7]);
        assert_eq!(map.primary_of(3), Some(6));
        assert!(!map.is_identity());
    }

    #[test]
    fn block_grow_spreads_and_leaves_fresh_ranks() {
        let map = RankMap::block(8, 12).unwrap();
        // Every old rank lands somewhere; some new ranks host nothing.
        for old in 0..8 {
            assert!(map.new_rank_of(old).unwrap() < 12);
        }
        let fresh: Vec<Rank> = (0..12).filter(|&r| map.hosted_by(r).is_empty()).collect();
        assert!(!fresh.is_empty(), "growth must leave fresh ranks");
        for rank in fresh {
            assert_eq!(map.primary_of(rank), None);
        }
    }

    #[test]
    fn round_robin_and_total_collapse() {
        let map = RankMap::round_robin(6, 4).unwrap();
        assert_eq!(map.hosted_by(0), vec![0, 4]);
        assert_eq!(map.hosted_by(3), vec![3]);
        // M=1: everything collapses onto rank 0.
        let collapse = RankMap::block(5, 1).unwrap();
        assert_eq!(collapse.hosted_by(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(collapse.remap_members(&[0, 2, 4]).unwrap(), vec![0]);
    }

    #[test]
    fn identity_is_detected() {
        assert!(RankMap::identity(4).unwrap().is_identity());
        assert!(RankMap::block(4, 4).unwrap().is_identity());
        assert!(!RankMap::custom(4, vec![0, 1, 3, 2]).unwrap().is_identity());
    }

    #[test]
    fn custom_maps_are_validated() {
        assert!(RankMap::custom(2, vec![0, 1, 2]).is_err());
        assert!(RankMap::custom(2, vec![0, -1]).is_err());
        assert!(RankMap::custom(2, vec![]).is_err());
        assert!(RankMap::block(0, 4).is_err());
        assert!(RankMap::block(4, 0).is_err());
        let map = RankMap::custom(2, vec![1, 1, 0]).unwrap();
        assert_eq!(map.hosted_by(1), vec![0, 1]);
        assert_eq!(map.remap_members(&[0, 1, 2]).unwrap(), vec![1, 0]);
        assert!(map.new_rank_of(9).is_err());
    }
}
