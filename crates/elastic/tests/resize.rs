//! Engine-level elastic-restart tests: remap edge cases exercised directly against
//! `resize_job` / `resize_job_from_storage`, without the proxy applications.

use ckpt_store::CheckpointStorage;
use elastic::{resize_job, resize_job_from_storage, NoRepartition, RankMap, RemapPolicy};
use mana::ckpt::regions;
use mana::record::{CollectiveKind, CollectiveLog};
use mana::virtid::VirtualId;
use mana::{Comm, ManaConfig, ManaRank, Op, Session};
use mpi_model::api::{MpiApi, MpiImplementationFactory};
use mpi_model::error::{MpiError, MpiResult};
use mpi_model::op::UserFunctionRegistry;
use mpi_model::types::{HandleKind, Rank};
use mpich_sim::MpichFactory;
use parking_lot::RwLock;
use std::sync::Arc;

type Registry = Arc<RwLock<UserFunctionRegistry>>;

fn registry() -> Registry {
    Arc::new(RwLock::new(UserFunctionRegistry::new()))
}

fn launch(world: usize, registry: &Registry, session: u64) -> Vec<Box<dyn MpiApi>> {
    MpichFactory::mpich()
        .launch(world, registry.clone(), session)
        .unwrap()
}

/// Run `body` concurrently on a fresh `world`-rank job and return the per-rank
/// results in rank order.
fn run_job<R, F>(world: usize, registry: &Registry, session: u64, body: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(&mut Session) -> MpiResult<R> + Send + Sync + 'static,
{
    let body = Arc::new(body);
    let handles: Vec<_> = launch(world, registry, session)
        .into_iter()
        .map(|lower| {
            let registry = registry.clone();
            let body = Arc::clone(&body);
            std::thread::spawn(move || {
                let rank = ManaRank::new(lower, ManaConfig::new_design(), registry).unwrap();
                let mut session = Session::new(rank);
                body(&mut session).unwrap()
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// Drive already-restored ranks concurrently.
fn drive_ranks<R, F>(ranks: Vec<ManaRank>, body: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(&mut Session) -> MpiResult<R> + Send + Sync + 'static,
{
    let body = Arc::new(body);
    let handles: Vec<_> = ranks
        .into_iter()
        .map(|rank| {
            let body = Arc::clone(&body);
            std::thread::spawn(move || {
                let mut session = Session::new(rank);
                body(&mut session).unwrap()
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// Checkpoint a 4-rank world that duplicated the world communicator, exchanged a
/// ring of point-to-point messages, and ran collectives on the dup.
fn checkpoint_with_world_dup(registry: &Registry, storage: &CheckpointStorage) {
    run_job(4, registry, 1, {
        let storage = storage.clone();
        move |session| {
            let me = session.world_rank();
            let world = session.world()?;
            let dup = session.comm_dup(world)?;
            session.upper_mut().store_json("test.dup", &dup)?;
            let total = session.allreduce(&[1u64], Op::sum(), dup)?;
            assert_eq!(total, vec![4]);
            session.send(&[me as u64], (me + 1).rem_euclid(4), 7, world)?;
            let (got, _) = session.recv::<u64>(1, (me - 1).rem_euclid(4), 7, world)?;
            assert_eq!(got, vec![(me - 1).rem_euclid(4) as u64]);
            session.checkpoint_into(&storage)?;
            Ok(())
        }
    });
}

#[test]
fn world_dup_survives_a_shrink_with_remapped_membership() {
    let registry = registry();
    let storage = CheckpointStorage::unmetered();
    checkpoint_with_world_dup(&registry, &storage);

    let lowers = launch(2, &registry, 2);
    let (ranks, generation) = resize_job_from_storage(
        lowers,
        &storage,
        RemapPolicy::Block,
        &NoRepartition,
        ManaConfig::new_design(),
        registry.clone(),
    )
    .unwrap();
    assert_eq!(generation, 0);
    assert_eq!(ranks.len(), 2);

    let after = CheckpointStorage::unmetered();
    let sizes = drive_ranks(ranks, {
        let after = after.clone();
        move |session| {
            // The stored dup handle is still valid and now spans the 2-rank world.
            let dup: Comm = session.upper().load_json("test.dup")?;
            let size = session.comm_size(dup)?;
            let total = session.allreduce(&[1u64], Op::sum(), dup)?;
            assert_eq!(total, vec![2]);
            let world = session.world()?;
            let wtotal = session.allreduce(&[10u64], Op::sum(), world)?;
            assert_eq!(wtotal, vec![20]);
            // A checkpoint of the resized world must pass the collective
            // epoch-agreement check (merged ledgers) and the drain protocol
            // (merged counters).
            session.checkpoint_into(&after)?;
            Ok(size)
        }
    });
    assert_eq!(sizes, vec![2, 2]);
    let (_, images) = after.latest_valid_images_any_size().unwrap();
    assert_eq!(images.len(), 2);
}

#[test]
fn total_collapse_onto_one_rank() {
    let registry = registry();
    let storage = CheckpointStorage::unmetered();
    checkpoint_with_world_dup(&registry, &storage);

    let lowers = launch(1, &registry, 3);
    let (ranks, _) = resize_job_from_storage(
        lowers,
        &storage,
        RemapPolicy::RoundRobin,
        &NoRepartition,
        ManaConfig::new_design(),
        registry.clone(),
    )
    .unwrap();
    assert_eq!(ranks.len(), 1);
    let after = CheckpointStorage::unmetered();
    drive_ranks(ranks, {
        let after = after.clone();
        move |session| {
            assert_eq!(session.world_size(), 1);
            let world = session.world()?;
            assert_eq!(session.allreduce(&[5u64], Op::sum(), world)?, vec![5]);
            let dup: Comm = session.upper().load_json("test.dup")?;
            assert_eq!(session.comm_size(dup)?, 1);
            session.checkpoint_into(&after)?;
            Ok(())
        }
    });
    let (_, images) = after.latest_valid_images_any_size().unwrap();
    assert_eq!(images.len(), 1);
}

/// A repartition that moves no state but promises to rebuild sub-communicators.
struct ConsumesComms;

impl elastic::Repartition for ConsumesComms {
    fn repartition(
        &self,
        _old: &[split_proc::address_space::UpperHalfSpace],
        _map: &RankMap,
        _new_rank: Rank,
        _upper: &mut split_proc::address_space::UpperHalfSpace,
    ) -> MpiResult<()> {
        Ok(())
    }

    fn consumes_derived_comms(&self) -> bool {
        true
    }
}

fn checkpoint_with_parity_split(registry: &Registry, storage: &CheckpointStorage) {
    run_job(4, registry, 1, {
        let storage = storage.clone();
        move |session| {
            let me = session.world_rank();
            let world = session.world()?;
            let row = session.comm_split(world, Some(me % 2), me)?;
            session.upper_mut().store_json("test.row", &row)?;
            let total = session.allreduce(&[1u64], Op::sum(), row)?;
            assert_eq!(total, vec![2]);
            session.checkpoint_into(&storage)?;
            Ok(())
        }
    });
}

#[test]
fn subset_communicator_rejects_resize_unless_consumed() {
    let registry = registry();
    let storage = CheckpointStorage::unmetered();
    checkpoint_with_parity_split(&registry, &storage);

    // Without the application's promise to rebuild, the live split is a clean error.
    let err = resize_job_from_storage(
        launch(2, &registry, 2),
        &storage,
        RemapPolicy::Block,
        &NoRepartition,
        ManaConfig::new_design(),
        registry.clone(),
    )
    .unwrap_err();
    match err {
        MpiError::ElasticResize(reason) => {
            assert!(reason.contains("consumes_derived_comms"), "{reason}")
        }
        other => panic!("expected ElasticResize, got {other:?}"),
    }

    // With the promise, the split is dropped everywhere and the resize completes;
    // the stored handle is dead, the world is fully usable.
    let (ranks, _) = resize_job_from_storage(
        launch(2, &registry, 3),
        &storage,
        RemapPolicy::Block,
        &ConsumesComms,
        ManaConfig::new_design(),
        registry.clone(),
    )
    .unwrap();
    drive_ranks(ranks, move |session| {
        let row: Comm = session.upper().load_json("test.row")?;
        assert!(
            session.comm_size(row).is_err(),
            "consumed split must be gone"
        );
        let world = session.world()?;
        assert_eq!(session.allreduce(&[1u64], Op::sum(), world)?, vec![2]);
        Ok(())
    });
}

#[test]
fn growth_adds_fresh_ranks_that_participate_in_the_world() {
    let registry = registry();
    let storage = CheckpointStorage::unmetered();
    run_job(2, &registry, 1, {
        let storage = storage.clone();
        move |session| {
            let world = session.world()?;
            let dup = session.comm_dup(world)?;
            session.allreduce(&[1u64], Op::sum(), dup)?;
            session.checkpoint_into(&storage)?;
            Ok(())
        }
    });

    let (ranks, _) = resize_job_from_storage(
        launch(3, &registry, 2),
        &storage,
        RemapPolicy::Block,
        &NoRepartition,
        ManaConfig::new_design(),
        registry.clone(),
    )
    .unwrap();
    assert_eq!(ranks.len(), 3);
    assert!(
        ranks.iter().any(|r| r.descriptor_count() > 0),
        "adopting ranks carry descriptors"
    );
    let after = CheckpointStorage::unmetered();
    drive_ranks(ranks, {
        let after = after.clone();
        move |session| {
            let world = session.world()?;
            // All three ranks — including the fresh one — close the collective.
            assert_eq!(session.allreduce(&[1u64], Op::sum(), world)?, vec![3]);
            // And the next checkpoint agrees on the collective epoch everywhere.
            session.checkpoint_into(&after)?;
            Ok(())
        }
    });
    let (_, images) = after.latest_valid_images_any_size().unwrap();
    assert_eq!(images.len(), 3);
}

#[test]
fn identity_resize_is_bit_identical_to_the_legacy_restart() {
    let registry = registry();
    let storage = CheckpointStorage::unmetered();
    checkpoint_with_world_dup(&registry, &storage);

    let (legacy, generation_a) = mana::restart_job_from_storage(
        launch(4, &registry, 2),
        &storage,
        ManaConfig::new_design(),
        registry.clone(),
    )
    .unwrap();
    // Sizes match, so the storage entry point takes the identity map.
    let (elastic_ranks, generation_b) = resize_job_from_storage(
        launch(4, &registry, 3),
        &storage,
        RemapPolicy::Block,
        &NoRepartition,
        ManaConfig::new_design(),
        registry.clone(),
    )
    .unwrap();
    assert_eq!(generation_a, generation_b);

    // Checkpoint both restored worlds and compare the images region by region:
    // the elastic identity path must leave no trace of itself.
    let store_a = CheckpointStorage::unmetered();
    let store_b = CheckpointStorage::unmetered();
    let ckpt = |store: CheckpointStorage| {
        move |session: &mut Session| {
            session.checkpoint_into(&store)?;
            Ok(())
        }
    };
    drive_ranks(legacy, ckpt(store_a.clone()));
    drive_ranks(elastic_ranks, ckpt(store_b.clone()));

    let (gen_a, images_a) = store_a.latest_valid_images_any_size().unwrap();
    let (gen_b, images_b) = store_b.latest_valid_images_any_size().unwrap();
    assert_eq!(gen_a, gen_b);
    for (a, b) in images_a.iter().zip(images_b.iter()) {
        assert_eq!(a.metadata.rank, b.metadata.rank);
        assert_eq!(a.metadata.world_size, b.metadata.world_size);
        assert_eq!(a.metadata.generation, b.metadata.generation);
        let mut names_a = a.upper_half.region_names();
        let mut names_b = b.upper_half.region_names();
        names_a.sort_unstable();
        names_b.sort_unstable();
        assert_eq!(names_a, names_b);
        for name in names_a {
            assert_eq!(
                a.upper_half.region(name).unwrap(),
                b.upper_half.region(name).unwrap(),
                "region {name} of rank {} differs between legacy restart and \
                 identity resize",
                a.metadata.rank
            );
        }
    }
}

#[test]
fn straddled_collective_checkpoint_is_rejected_under_resize() {
    let registry = registry();
    let storage = CheckpointStorage::unmetered();
    run_job(2, &registry, 1, {
        let storage = storage.clone();
        move |session| {
            let world = session.world()?;
            session.allreduce(&[1u64], Op::sum(), world)?;
            session.checkpoint_into(&storage)?;
            Ok(())
        }
    });
    let (_, mut images) = storage.latest_valid_images_any_size().unwrap();

    // Forge a straddled checkpoint: rewrite rank 0's collective ledger so it
    // carries a registered-but-never-completed collective.
    let mut log = CollectiveLog::new();
    let vid = VirtualId::new(HandleKind::Comm, true, 0);
    log.begin(vid, CollectiveKind::Allreduce).unwrap();
    images[0]
        .upper_half
        .store_json(regions::COLLECTIVES, &log)
        .unwrap();

    let map = RankMap::block(2, 1).unwrap();
    let err = resize_job(
        launch(1, &registry, 2),
        images,
        &map,
        &NoRepartition,
        ManaConfig::new_design(),
        registry.clone(),
    )
    .unwrap_err();
    match err {
        MpiError::ElasticResize(reason) => assert!(reason.contains("straddled"), "{reason}"),
        other => panic!("expected ElasticResize, got {other:?}"),
    }
}

#[test]
fn identity_restart_path_reports_a_typed_world_size_mismatch() {
    let registry = registry();
    let storage = CheckpointStorage::unmetered();
    run_job(2, &registry, 1, {
        let storage = storage.clone();
        move |session| {
            session.checkpoint_into(&storage)?;
            Ok(())
        }
    });
    let (_, mut images) = storage.latest_valid_images_any_size().unwrap();
    let mut lowers = launch(4, &registry, 2);
    let err = mana::restart_rank(
        lowers.remove(0),
        images.remove(0),
        ManaConfig::new_design(),
        registry.clone(),
    )
    .unwrap_err();
    match err {
        MpiError::WorldSizeMismatch {
            checkpointed,
            offered,
            generation,
        } => {
            assert_eq!((checkpointed, offered, generation), (2, 4, 0));
            let text = err.to_string();
            assert!(text.contains("elastic"), "{text}");
        }
        other => panic!("expected WorldSizeMismatch, got {other:?}"),
    }
}
