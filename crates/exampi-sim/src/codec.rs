//! The ExaMPI handle encoding: enum discriminants for primitive datatypes (with
//! aliasing), lazily-salted shared-pointer values for everything else.

use mpi_engine::HandleCodec;
use mpi_model::constants::PredefinedObject;
use mpi_model::datatype::PrimitiveType;
use mpi_model::types::{HandleKind, PhysHandle};
use std::collections::HashMap;

/// Marker in the top byte identifying an ExaMPI datatype-enum handle.
const ENUM_TAG: u64 = 0xEA00_0000_0000_0000;

/// ExaMPI-style handle codec.
///
/// * Predefined datatypes encode as `ENUM_TAG | discriminant`, where aliased primitives
///   (`MPI_CHAR` / `MPI_INT8_T`) share one discriminant — so two distinct
///   [`PredefinedObject`]s may legitimately resolve to the *same* physical handle, and
///   any layer above (MANA's descriptors) must tolerate that.
/// * All other objects get shared-pointer-like addresses salted with the session, known
///   only after they are first created (ExaMPI's lazy constants).
#[derive(Debug, Default)]
pub struct ExaMpiCodec {
    reverse: HashMap<u64, (HandleKind, u32)>,
}

impl ExaMpiCodec {
    /// Create the codec.
    pub fn new() -> Self {
        ExaMpiCodec {
            reverse: HashMap::new(),
        }
    }

    /// The enum discriminant ExaMPI assigns to a primitive datatype. Aliased types
    /// share a discriminant (the paper's `MPI_INT8_T` / `MPI_CHAR` example).
    pub fn primitive_discriminant(p: PrimitiveType) -> u64 {
        match p {
            // Char and Int8 share a representation.
            PrimitiveType::Char | PrimitiveType::Int8 => 1,
            PrimitiveType::Byte => 2,
            PrimitiveType::Int => 3,
            PrimitiveType::Unsigned => 4,
            PrimitiveType::Long => 5,
            PrimitiveType::UnsignedLong => 6,
            PrimitiveType::Float => 7,
            PrimitiveType::Double => 8,
            PrimitiveType::Bool => 9,
            PrimitiveType::DoubleInt => 10,
        }
    }

    fn shared_pointer(kind: HandleKind, index: u32, session: u64) -> u64 {
        0x6100_0000_0000
            | (session.wrapping_mul(0x2545_f491_4f6c_dd1d) & 0x00ff_0000_0000)
            | ((kind.tag() as u64 + 1) << 28)
            | ((index as u64) << 4)
    }
}

impl HandleCodec for ExaMpiCodec {
    fn name(&self) -> &'static str {
        "exampi-enum-and-shared-pointer"
    }

    fn encode(
        &mut self,
        kind: HandleKind,
        index: u32,
        session: u64,
        predefined: Option<PredefinedObject>,
    ) -> PhysHandle {
        let bits = match predefined {
            Some(PredefinedObject::Datatype(p)) if kind == HandleKind::Datatype => {
                let discriminant = ENUM_TAG | Self::primitive_discriminant(p);
                // Aliased primitives: keep the first index the discriminant was bound
                // to, so both MPI_CHAR and MPI_INT8_T resolve to one underlying object.
                if let Some(&existing) = self.reverse.get(&discriminant).as_ref() {
                    let _ = existing;
                    return PhysHandle(discriminant);
                }
                discriminant
            }
            _ => Self::shared_pointer(kind, index, session),
        };
        self.reverse.insert(bits, (kind, index));
        PhysHandle(bits)
    }

    fn decode(&self, handle: PhysHandle) -> Option<(HandleKind, u32)> {
        if handle.is_null() {
            return None;
        }
        self.reverse.get(&handle.0).copied()
    }

    fn null(&self, kind: HandleKind) -> PhysHandle {
        PhysHandle(0xEAEA_0000_0000_0000 | kind.tag() as u64)
    }

    fn handle_bits(&self) -> u32 {
        64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_and_int8_alias() {
        let mut codec = ExaMpiCodec::new();
        let char_h = codec.encode(
            HandleKind::Datatype,
            1,
            9,
            Some(PredefinedObject::Datatype(PrimitiveType::Char)),
        );
        let int8_h = codec.encode(
            HandleKind::Datatype,
            2,
            9,
            Some(PredefinedObject::Datatype(PrimitiveType::Int8)),
        );
        assert_eq!(char_h, int8_h, "MPI_CHAR and MPI_INT8_T share a pointer");
        // Both decode to the first-bound object.
        assert_eq!(codec.decode(char_h), Some((HandleKind::Datatype, 1)));
    }

    #[test]
    fn non_aliased_primitives_are_distinct() {
        let mut codec = ExaMpiCodec::new();
        let int_h = codec.encode(
            HandleKind::Datatype,
            3,
            9,
            Some(PredefinedObject::Datatype(PrimitiveType::Int)),
        );
        let dbl_h = codec.encode(
            HandleKind::Datatype,
            4,
            9,
            Some(PredefinedObject::Datatype(PrimitiveType::Double)),
        );
        assert_ne!(int_h, dbl_h);
        assert_eq!(codec.decode(dbl_h), Some((HandleKind::Datatype, 4)));
    }

    #[test]
    fn derived_and_non_datatype_objects_are_session_salted() {
        let mut a = ExaMpiCodec::new();
        let mut b = ExaMpiCodec::new();
        let ha = a.encode(HandleKind::Comm, 1, 1, Some(PredefinedObject::CommWorld));
        let hb = b.encode(HandleKind::Comm, 1, 2, Some(PredefinedObject::CommWorld));
        assert_ne!(
            ha, hb,
            "non-datatype constants are lazily materialized pointers"
        );
        // Derived datatypes (no predefined marker) are pointers too.
        let d1 = a.encode(HandleKind::Datatype, 20, 1, None);
        assert!(d1.bits() & ENUM_TAG != ENUM_TAG);
        assert_eq!(a.decode(d1), Some((HandleKind::Datatype, 20)));
    }

    #[test]
    fn roundtrip_all_kinds() {
        let mut codec = ExaMpiCodec::new();
        for kind in HandleKind::ALL {
            for index in [1u32, 7, 300] {
                let h = codec.encode(kind, index, 3, None);
                assert_eq!(codec.decode(h), Some((kind, index)));
            }
        }
    }

    #[test]
    fn nulls_and_garbage() {
        let codec = ExaMpiCodec::new();
        for kind in HandleKind::ALL {
            assert_eq!(codec.decode(codec.null(kind)), None);
        }
        assert_eq!(codec.decode(PhysHandle(0)), None);
        assert_eq!(codec.decode(PhysHandle(0x1234_5678)), None);
    }
}
