//! Job launcher for the simulated ExaMPI implementation.

use crate::codec::ExaMpiCodec;
use mpi_engine::{Engine, EngineConfig};
use mpi_model::api::{MpiApi, MpiImplementationFactory};
use mpi_model::constants::ConstantResolution;
use mpi_model::error::MpiResult;
use mpi_model::op::UserFunctionRegistry;
use mpi_model::subset::SubsetFeature;
use net_sim::{Fabric, FabricConfig};
use parking_lot::RwLock;
use std::sync::Arc;

/// Factory launching simulated ExaMPI jobs.
#[derive(Debug, Clone, Default)]
pub struct ExaMpiFactory;

impl ExaMpiFactory {
    /// Create the factory.
    pub fn new() -> Self {
        ExaMpiFactory
    }

    /// The (deliberately partial) feature set of the simulated ExaMPI: the MANA
    /// required subset (§5) plus what the ExaMPI-compatible applications (the CoMD and
    /// LULESH proxies) need. `MPI_Comm_dup`, `MPI_Comm_create` and user-defined
    /// reduction operations are *not* provided.
    pub fn features() -> Vec<SubsetFeature> {
        vec![
            SubsetFeature::Send,
            SubsetFeature::Recv,
            SubsetFeature::Iprobe,
            SubsetFeature::Test,
            SubsetFeature::CommGroup,
            SubsetFeature::GroupTranslateRanks,
            SubsetFeature::TypeGetEnvelope,
            SubsetFeature::TypeGetContents,
            SubsetFeature::Alltoall,
            SubsetFeature::NonBlockingPointToPoint,
            SubsetFeature::Barrier,
            SubsetFeature::Bcast,
            SubsetFeature::Reduce,
            SubsetFeature::Gather,
            SubsetFeature::CommSplit,
            SubsetFeature::DerivedDatatypes,
            SubsetFeature::CollectiveRegistration,
        ]
    }
}

impl MpiImplementationFactory for ExaMpiFactory {
    fn name(&self) -> &'static str {
        "exampi"
    }

    fn launch(
        &self,
        world_size: usize,
        registry: Arc<RwLock<UserFunctionRegistry>>,
        session: u64,
    ) -> MpiResult<Vec<Box<dyn MpiApi>>> {
        let fabric = Fabric::new(FabricConfig::new(
            world_size,
            session.wrapping_mul(0xd6e8_feb8_6659_fd93),
        ));
        let mut ranks: Vec<Box<dyn MpiApi>> = Vec::with_capacity(world_size);
        for rank in 0..world_size {
            let engine = Engine::new(
                EngineConfig {
                    name: "exampi",
                    resolution: ConstantResolution::LazySharedPointer,
                    features: Self::features(),
                    lazy_constants: true,
                },
                ExaMpiCodec::new(),
                fabric.endpoint(rank as i32)?,
                Arc::clone(&registry),
                session,
            );
            ranks.push(Box::new(engine));
        }
        Ok(ranks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_model::constants::PredefinedObject;
    use mpi_model::datatype::PrimitiveType;
    use mpi_model::error::MpiError;
    use mpi_model::op::PredefinedOp;
    use mpi_model::subset::ComplianceReport;

    fn registry() -> Arc<RwLock<UserFunctionRegistry>> {
        Arc::new(RwLock::new(UserFunctionRegistry::new()))
    }

    #[test]
    fn satisfies_required_subset_but_not_full_mpi() {
        let factory = ExaMpiFactory::new();
        let ranks = factory.launch(1, registry(), 1).unwrap();
        let features = ranks[0].provided_features();
        let report = ComplianceReport::audit("exampi", &features);
        assert!(report.mana_compatible(), "ExaMPI provides the MANA subset");
        assert!(!features.contains(&SubsetFeature::CommDup));
        assert!(!features.contains(&SubsetFeature::UserOps));
    }

    #[test]
    fn unsupported_operations_error_cleanly() {
        let factory = ExaMpiFactory::new();
        let mut ranks = factory.launch(1, registry(), 1).unwrap();
        let api = &mut ranks[0];
        let world = api.resolve_constant(PredefinedObject::CommWorld).unwrap();
        assert!(matches!(
            api.comm_dup(world),
            Err(MpiError::Unsupported { .. })
        ));
        assert!(matches!(
            api.op_create(1, true),
            Err(MpiError::Unsupported { .. })
        ));
    }

    #[test]
    fn constants_are_lazy_and_session_dependent() {
        let factory = ExaMpiFactory::new();
        let mut a = factory.launch(1, registry(), 1).unwrap();
        let mut b = factory.launch(1, registry(), 2).unwrap();
        assert_eq!(
            a[0].constant_resolution(),
            ConstantResolution::LazySharedPointer
        );
        let wa = a[0].resolve_constant(PredefinedObject::CommWorld).unwrap();
        let wb = b[0].resolve_constant(PredefinedObject::CommWorld).unwrap();
        assert_ne!(wa, wb, "lazy shared-pointer constants differ per session");
    }

    #[test]
    fn char_and_int8_share_a_handle() {
        let factory = ExaMpiFactory::new();
        let mut ranks = factory.launch(1, registry(), 1).unwrap();
        let api = &mut ranks[0];
        let c = api
            .resolve_constant(PredefinedObject::Datatype(PrimitiveType::Char))
            .unwrap();
        let i8_h = api
            .resolve_constant(PredefinedObject::Datatype(PrimitiveType::Int8))
            .unwrap();
        assert_eq!(c, i8_h);
        assert_eq!(api.type_size(c).unwrap(), 1);
    }

    #[test]
    fn allreduce_works_with_lazy_constants() {
        let factory = ExaMpiFactory::new();
        let ranks = factory.launch(2, registry(), 4).unwrap();
        let handles: Vec<_> = ranks
            .into_iter()
            .enumerate()
            .map(|(rank, mut api)| {
                std::thread::spawn(move || {
                    let world = api.resolve_constant(PredefinedObject::CommWorld).unwrap();
                    let dbl = api
                        .resolve_constant(PredefinedObject::Datatype(PrimitiveType::Double))
                        .unwrap();
                    let sum = api
                        .resolve_constant(PredefinedObject::Op(PredefinedOp::Sum))
                        .unwrap();
                    let mine = (rank as f64 + 1.0).to_le_bytes();
                    let out = api.allreduce(&mine, dbl, sum, world).unwrap();
                    f64::from_le_bytes(out[..8].try_into().unwrap())
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 3.0);
        }
    }
}
