//! # exampi-sim
//!
//! A simulated MPI implementation in the style of **ExaMPI**, the experimental
//! C++-based implementation the paper uses to demonstrate that MANA's new virtual-id
//! design copes with implementations that (a) cover only a subset of MPI and (b) make
//! unusual representation choices.
//!
//! The externally visible traits the paper cares about (§3, §4.3, §5):
//!
//! * **Primitive datatypes are enum-class discriminants**, not table indices or heap
//!   pointers; some primitives *alias* each other (the paper's example: `MPI_INT8_T`
//!   and `MPI_CHAR` share a pointer). Handles for every other object kind are
//!   pointer-like values.
//! * **Global constants are lazily materialized** ("smart, shared pointers with
//!   reinterpret casts"): the physical value of a constant is not known until first
//!   use, so MANA cannot capture constants at init time and must translate them on a
//!   lazy basis.
//! * **Only a subset of MPI is provided** — the MANA-required subset of §5 plus the
//!   operations the compatible applications (CoMD, LULESH proxies) need. Everything
//!   else reports `MPI_ERR_UNSUPPORTED_OPERATION`, which is how the workspace's tests
//!   verify that MANA itself stays within the documented subset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod factory;

pub use codec::ExaMpiCodec;
pub use factory::ExaMpiFactory;

/// The engine type used by this implementation (one per rank).
pub type ExaMpiRank = mpi_engine::Engine<ExaMpiCodec>;
