//! Engine-level tests for the incremental, content-addressed checkpoint store:
//! round-trips, dedup, dirty-region reuse, compression, integrity fallback, and GC.

use ckpt_store::{CheckpointStorage, StoragePolicy};
use split_proc::address_space::UpperHalfSpace;
use split_proc::image::{CheckpointImage, ImageMetadata};
use split_proc::store::StoreConfig;

fn metadata(rank: i32, generation: u64) -> ImageMetadata {
    ImageMetadata {
        rank,
        world_size: 2,
        generation,
        implementation: "mpich".into(),
    }
}

/// An upper half of `regions` regions × `region_bytes` bytes of incompressible
/// (position-dependent) content, unique per rank.
fn synthetic_upper(rank: i32, regions: usize, region_bytes: usize) -> UpperHalfSpace {
    let mut upper = UpperHalfSpace::new();
    for r in 0..regions {
        let data: Vec<u8> = (0..region_bytes)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(2654435761)
                    .wrapping_add(r as u64 * 97)
                    .wrapping_add(rank as u64 * 131);
                (x >> 3) as u8
            })
            .collect();
        upper.map_region(format!("app.region{r:03}"), data);
    }
    upper
}

fn image_of(rank: i32, generation: u64, upper: &UpperHalfSpace) -> CheckpointImage {
    CheckpointImage::new(metadata(rank, generation), upper.clone())
}

#[test]
fn full_image_policy_roundtrips() {
    let storage = CheckpointStorage::unmetered();
    let upper = synthetic_upper(0, 4, 10_000);
    let report = storage.write_image(StoragePolicy::FullImage, &image_of(0, 0, &upper));
    assert_eq!(report.policy, StoragePolicy::FullImage);
    assert!(report.written_bytes >= report.logical_bytes);
    assert_eq!(report.chunks_new, 0);

    let back = storage.read(0, 0).unwrap();
    assert_eq!(back.upper_half, upper);
    assert!(storage.contains(0, 0));
    assert!(!storage.contains(1, 0));
    assert!(storage.read(0, 1).is_err());
}

#[test]
fn incremental_roundtrips_and_dedups_across_ranks() {
    let storage = CheckpointStorage::unmetered();
    // Both ranks share most content (rank folded in weakly): force identical regions.
    let upper = synthetic_upper(0, 8, 64 * 1024);
    let report0 = storage.write_image(StoragePolicy::Incremental, &image_of(0, 0, &upper));
    let report1 = storage.write_image(StoragePolicy::Incremental, &image_of(1, 0, &upper));

    assert!(report0.chunks_new > 0);
    // Rank 1's image is byte-identical: every chunk dedups against rank 0's.
    assert_eq!(report1.chunks_new, 0);
    assert_eq!(report1.chunks_reused, report0.chunks_new);
    assert!(report1.written_bytes < report0.written_bytes / 10);

    for rank in 0..2 {
        let back = storage.read(0, rank).unwrap();
        assert_eq!(back.upper_half, upper);
        assert_eq!(back.metadata.rank, rank);
    }
}

/// Acceptance criterion: an incremental checkpoint of a ≥4 MiB upper half with ≤1%
/// dirty regions encodes ≥10× fewer bytes than the full-image baseline.
#[test]
fn one_percent_dirty_writes_ten_times_fewer_bytes() {
    let storage = CheckpointStorage::unmetered();
    // 128 × 64 KiB = 8 MiB; one dirty region = 0.78% of the regions and bytes.
    let mut upper = synthetic_upper(0, 128, 64 * 1024);
    assert!(upper.total_bytes() >= 4 << 20);

    let baseline = storage.write_image(StoragePolicy::FullImage, &image_of(0, 0, &upper));

    let gen0 = storage.write_image(StoragePolicy::Incremental, &image_of(0, 1, &upper));
    upper.mark_clean();
    upper.advance_epoch();

    // Touch exactly one region.
    upper.region_mut("app.region064").unwrap()[12345] ^= 0xFF;
    assert_eq!(upper.dirty_count(), 1);

    let image2 = image_of(0, 2, &upper);
    let gen1 = storage.write_image(StoragePolicy::Incremental, &image2);
    upper.mark_clean();
    upper.advance_epoch();

    assert_eq!(
        gen1.regions_reused, 127,
        "clean regions reuse their chunk lists"
    );
    assert!(
        gen1.written_bytes * 10 <= baseline.written_bytes,
        "incremental wrote {} bytes, full baseline {} — less than 10× reduction",
        gen1.written_bytes,
        baseline.written_bytes
    );
    assert!(
        gen1.written_bytes * 10 <= gen0.written_bytes,
        "second generation must also be ≥10× below the first full encode"
    );
    assert!(gen1.reduction_factor() >= 10.0);

    // And the reassembled image is exactly what was checkpointed.
    let back = storage.read(2, 0).unwrap();
    assert_eq!(back.upper_half, image2.upper_half);
}

#[test]
fn compression_shrinks_compressible_chunks_and_roundtrips() {
    let storage = CheckpointStorage::unmetered();
    let mut upper = UpperHalfSpace::new();
    upper.map_region("app.zeros", vec![0u8; 1 << 20]);
    upper.map_region("app.mixed", {
        let mut data = vec![7u8; 600_000];
        for (i, byte) in data.iter_mut().enumerate().skip(300_000) {
            *byte = (i.wrapping_mul(31) % 251) as u8;
        }
        data
    });

    let compressed = storage.write_image(
        StoragePolicy::IncrementalCompressed,
        &image_of(0, 0, &upper),
    );
    // The 16 identical zero chunks dedup down to a single stored chunk, which RLE
    // then collapses; only the incompressible half of "app.mixed" is stored raw.
    assert!(compressed.compression_saved_bytes > 60_000);
    assert!(
        compressed.chunks_reused >= 15,
        "identical zero chunks must dedup"
    );
    assert!(
        compressed.written_bytes < compressed.logical_bytes / 4,
        "zero-dominated state should RLE-compress well \
         (wrote {} of {} logical bytes)",
        compressed.written_bytes,
        compressed.logical_bytes
    );
    assert_eq!(storage.read(0, 0).unwrap().upper_half, upper);
}

#[test]
fn corrupt_chunk_is_detected_and_older_generation_survives() {
    let storage = CheckpointStorage::unmetered();
    let mut upper = synthetic_upper(0, 16, 32 * 1024);

    storage.write_image(StoragePolicy::Incremental, &image_of(0, 0, &upper));
    upper.mark_clean();
    upper.advance_epoch();

    upper.region_mut("app.region007").unwrap()[100] = 0xAB;
    storage.write_image(StoragePolicy::Incremental, &image_of(0, 1, &upper));

    // Corrupt a chunk private to generation 1.
    storage.corrupt_fresh_chunk(1, 0).unwrap();

    let err = storage.read(1, 0).unwrap_err();
    assert!(
        format!("{err:?}").contains("digest"),
        "unexpected error {err:?}"
    );
    assert!(
        storage.read(0, 0).is_ok(),
        "generation 0 must still validate"
    );
    assert_eq!(storage.latest_valid_generation(1).unwrap(), 0);
}

#[test]
fn corrupt_manifest_is_detected_for_both_policies() {
    let storage = CheckpointStorage::unmetered();
    let upper = synthetic_upper(3, 4, 8192);
    storage.write_image(StoragePolicy::Incremental, &image_of(3, 0, &upper));
    storage.corrupt_manifest(0, 3).unwrap();
    assert!(storage.read(0, 3).is_err());

    let storage = CheckpointStorage::unmetered();
    storage.write_image(StoragePolicy::FullImage, &image_of(3, 0, &upper));
    storage.corrupt_manifest(0, 3).unwrap();
    assert!(storage.read(0, 3).is_err());
}

#[test]
fn latest_valid_generation_requires_every_rank() {
    let storage = CheckpointStorage::unmetered();
    for generation in 0..2u64 {
        for rank in 0..2 {
            let upper = synthetic_upper(rank, 4, 4096);
            storage.write_image(
                StoragePolicy::Incremental,
                &CheckpointImage::new(
                    ImageMetadata {
                        rank,
                        world_size: 2,
                        generation,
                        implementation: "mpich".into(),
                    },
                    upper,
                ),
            );
        }
    }
    assert_eq!(storage.latest_valid_generation(2).unwrap(), 1);
    // One rank of generation 1 corrupt → the whole job falls back to generation 0.
    storage.corrupt_manifest(1, 1).unwrap();
    assert_eq!(storage.latest_valid_generation(2).unwrap(), 0);
    // Both generations of rank 1 corrupt → no valid generation at all.
    storage.corrupt_manifest(0, 1).unwrap();
    assert!(storage.latest_valid_generation(2).is_err());
    // A single-rank job that only needs rank 0 still has generation 1.
    assert_eq!(storage.latest_valid_generation(1).unwrap(), 1);
}

#[test]
fn pruning_releases_unshared_chunks_only() {
    let storage = CheckpointStorage::unmetered();
    let mut upper = synthetic_upper(0, 8, 16 * 1024);

    storage.write_image(StoragePolicy::Incremental, &image_of(0, 0, &upper));
    upper.mark_clean();
    upper.advance_epoch();

    upper.region_mut("app.region001").unwrap()[0] ^= 1;
    storage.write_image(StoragePolicy::Incremental, &image_of(0, 1, &upper));

    let before = storage.stats();
    let report = storage.prune_before(1);
    let after = storage.stats();

    // Only generation 0's private chunk (the old region001 content) is freed; the
    // seven shared regions' chunks survive because generation 1 references them.
    assert_eq!(report.pruned, vec![0]);
    assert!(report.retained.is_empty());
    assert!(report.freed_bytes > 0);
    assert!(after.chunk_bytes < before.chunk_bytes);
    assert_eq!(after.manifest_count, 1);
    assert!(
        storage.read(1, 0).is_ok(),
        "surviving generation stays readable"
    );
    assert!(storage.read(0, 0).is_err());
}

#[test]
fn rewriting_a_generation_releases_the_replaced_manifests_chunks() {
    let storage = CheckpointStorage::unmetered();
    let upper_a = synthetic_upper(0, 4, 32 * 1024);
    let upper_b = synthetic_upper(7, 4, 32 * 1024); // disjoint content

    // What upper_b alone costs in chunk bytes (reference store).
    let reference = CheckpointStorage::unmetered();
    reference.write_image(StoragePolicy::Incremental, &image_of(0, 0, &upper_b));
    let upper_b_chunk_bytes = reference.stats().chunk_bytes;

    storage.write_image(StoragePolicy::Incremental, &image_of(0, 0, &upper_a));
    // Rewrite the same (generation, rank) slot — the re-checkpoint-after-fallback
    // case. The replaced manifest must give its chunk references back.
    storage.write_image(StoragePolicy::Incremental, &image_of(0, 0, &upper_b));
    assert_eq!(storage.read(0, 0).unwrap().upper_half, upper_b);

    // Generation 0 is the newest committed generation, so even a prune past it keeps
    // it restartable — but the *replaced* manifest's chunks (upper_a's content, now
    // unreferenced) must be reclaimed by the sweep.
    let report = storage.prune_before(u64::MAX);
    assert_eq!(report.retained, vec![0]);
    assert!(report.pruned.is_empty());
    assert!(
        report.freed_bytes > 0,
        "upper_a's orphaned chunks are freed"
    );
    let stats = storage.stats();
    assert_eq!(stats.manifest_count, 1, "the newest generation survives");
    assert_eq!(
        stats.chunk_bytes, upper_b_chunk_bytes,
        "exactly the live manifest's chunks remain — nothing leaked, nothing torn"
    );
    assert_eq!(storage.read(0, 0).unwrap().upper_half, upper_b);

    // Rewriting a chunked slot with a flat image also releases the manifest.
    let storage = CheckpointStorage::unmetered();
    storage.write_image(StoragePolicy::Incremental, &image_of(0, 0, &upper_a));
    storage.write_image(StoragePolicy::FullImage, &image_of(0, 0, &upper_b));
    assert_eq!(storage.read(0, 0).unwrap().upper_half, upper_b);
    storage.prune_before(u64::MAX);
    let stats = storage.stats();
    assert_eq!(
        stats.chunk_count, 0,
        "the replaced manifest's chunks are freed"
    );
    assert_eq!(stats.full_image_count, 1, "the newest generation survives");
}

#[test]
fn epoch_mismatch_disables_region_reuse_but_not_dedup() {
    let storage = CheckpointStorage::unmetered();
    let mut upper = synthetic_upper(0, 8, 16 * 1024);

    let gen0 = storage.write_image(StoragePolicy::Incremental, &image_of(0, 0, &upper));
    upper.mark_clean();
    upper.advance_epoch();

    // Simulate a checkpoint into a *different* store in between: the clean set now
    // describes changes relative to that other checkpoint, not ours.
    upper.mark_clean();
    upper.advance_epoch();

    let gen1 = storage.write_image(StoragePolicy::Incremental, &image_of(0, 1, &upper));
    assert_eq!(
        gen1.regions_reused, 0,
        "clean-region reuse must be refused on an epoch mismatch"
    );
    // Content addressing still recognizes every chunk.
    assert_eq!(gen1.chunks_new, 0);
    assert_eq!(gen1.chunks_reused, gen0.chunks_new);
    assert!(storage.read(1, 0).is_ok());
}

#[test]
fn metered_incremental_writes_model_less_time_than_full() {
    let storage = CheckpointStorage::with_model(StoreConfig::nfs_discovery());
    let mut upper = synthetic_upper(0, 64, 64 * 1024); // 4 MiB

    let full = storage.write_image(StoragePolicy::FullImage, &image_of(0, 0, &upper));
    let gen0 = storage.write_image(StoragePolicy::Incremental, &image_of(0, 1, &upper));
    upper.mark_clean();
    upper.advance_epoch();
    upper.region_mut("app.region000").unwrap()[0] ^= 1;
    let gen1 = storage.write_image(StoragePolicy::Incremental, &image_of(0, 2, &upper));

    assert!(full.write_time_s > 0.0 && gen0.write_time_s > 0.0);
    assert!(
        gen1.write_time_s < full.write_time_s / 2.0,
        "incremental write ({:.3}s) should be far below the full image ({:.3}s)",
        gen1.write_time_s,
        full.write_time_s
    );
    assert!(gen1.effective_bandwidth_mb_s().unwrap() > 0.0);
    assert_eq!(gen1.to_write_report().bytes, gen1.written_bytes);

    // An unmetered write has no bandwidth — `None`, not a fabricated zero — and the
    // legacy-report view propagates the same honesty.
    let unmetered = CheckpointStorage::unmetered();
    let report = unmetered.write_image(StoragePolicy::Incremental, &image_of(0, 0, &upper));
    assert_eq!(report.effective_bandwidth_mb_s(), None);
    assert_eq!(report.to_write_report().effective_bandwidth_mb_s, None);
}

/// Hammer the prune/write race the sharded engine must survive: writers keep
/// committing incremental generations with clean (reusable) regions while a pruner
/// concurrently drops old generations. Every generation a write reported success
/// for — and that the pruner has not dropped — must read back end to end; a reuse
/// that raced a prune must have fallen back to re-chunking, never committed a
/// manifest with dangling chunk references.
#[test]
fn concurrent_prune_never_strands_a_committed_generation() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let storage = CheckpointStorage::unmetered().with_chunk_size(512);
    let newest = Arc::new(AtomicU64::new(0));
    const GENERATIONS: u64 = 60;

    let writer = {
        let storage = storage.clone();
        let newest = Arc::clone(&newest);
        std::thread::spawn(move || {
            let mut upper = synthetic_upper(0, 8, 4_096);
            storage.write_image(StoragePolicy::Incremental, &image_of(0, 0, &upper));
            upper.mark_clean();
            upper.advance_epoch();
            newest.store(0, Ordering::SeqCst);
            for generation in 1..GENERATIONS {
                // Touch one region; the other seven stay clean and take the
                // re-reference path that races the pruner.
                let touched = format!("app.region{:03}", generation % 8);
                upper.region_mut(&touched).unwrap()[0] = generation as u8;
                storage.write_image(StoragePolicy::Incremental, &image_of(0, generation, &upper));
                upper.mark_clean();
                upper.advance_epoch();
                newest.store(generation, Ordering::SeqCst);
            }
        })
    };
    let pruner = {
        let storage = storage.clone();
        let newest = Arc::clone(&newest);
        std::thread::spawn(move || {
            let mut round = 0u64;
            while newest.load(Ordering::SeqCst) < GENERATIONS - 1 {
                // Alternate a normal GC sweep with an aggressive one that drops
                // even the newest committed generation — the in-flight writer may
                // have just snapshotted that manifest for clean-region reuse, which
                // is exactly the window where its chunks vanish under the writer.
                let cut = newest.load(Ordering::SeqCst) + (round % 2);
                storage.prune_before(cut);
                round += 1;
                std::thread::yield_now();
            }
        })
    };
    writer.join().unwrap();
    pruner.join().unwrap();

    // Everything still catalogued must validate end to end.
    let survivors = storage.generations();
    assert!(survivors.contains(&(GENERATIONS - 1)));
    for generation in survivors {
        storage
            .read(generation, 0)
            .unwrap_or_else(|e| panic!("generation {generation} is torn: {e:?}"));
    }
}

#[test]
fn prune_never_drops_the_newest_committed_or_a_pending_generation() {
    let storage = CheckpointStorage::unmetered();
    let mut upper = synthetic_upper(0, 8, 8_192);
    for generation in 0..3u64 {
        storage.write_image(StoragePolicy::Incremental, &image_of(0, generation, &upper));
        upper.mark_clean();
        upper.advance_epoch();
        upper.region_mut("app.region000").unwrap()[0] = generation as u8;
    }

    // A cutoff past everything (e.g. computed from a generation counter that ran
    // ahead of the commits) must still leave the newest committed generation.
    let report = storage.prune_before(u64::MAX);
    assert_eq!(report.pruned, vec![0, 1]);
    assert_eq!(report.retained, vec![2]);
    assert_eq!(storage.generations(), vec![2]);
    assert!(storage.read(2, 0).is_ok(), "the restart point survives");
    assert_eq!(storage.latest_valid_generation(1).unwrap(), 2);

    // A pending generation (flush in flight) is equally untouchable, and does not
    // lose its protection to the newest-committed rule.
    storage.begin_generation(3, 1);
    storage.write_image(StoragePolicy::Incremental, &image_of(0, 3, &upper));
    let report = storage.prune_before(u64::MAX);
    assert!(report.pruned.is_empty());
    assert_eq!(report.retained, vec![2, 3]);
    assert!(storage.read(2, 0).is_ok());

    // Once the pending generation commits, the old newest becomes prunable.
    assert!(storage.note_rank_flushed(3, 0));
    let report = storage.prune_before(u64::MAX);
    assert_eq!(report.pruned, vec![2]);
    assert_eq!(report.retained, vec![3]);
    assert_eq!(storage.latest_valid_generation(1).unwrap(), 3);
}

#[test]
fn pending_generation_is_invisible_until_every_rank_flushes() {
    let storage = CheckpointStorage::unmetered();
    let upper = synthetic_upper(0, 4, 8_192);
    storage.write_image(StoragePolicy::Incremental, &image_of(0, 0, &upper));
    storage.write_image(StoragePolicy::Incremental, &image_of(1, 0, &upper));

    storage.begin_generation(1, 2);
    storage.begin_generation(1, 2); // idempotent
    storage.write_image(StoragePolicy::Incremental, &image_of(0, 1, &upper));
    assert!(storage.is_pending(1));
    assert_eq!(storage.pending_generations(), vec![1]);
    assert_eq!(
        storage.generations(),
        vec![0],
        "half-flushed generation hidden"
    );
    let err = storage.read(1, 0).unwrap_err();
    assert!(
        format!("{err:?}").contains("pending"),
        "unexpected error {err:?}"
    );
    assert_eq!(
        storage.latest_valid_generation(2).unwrap(),
        0,
        "restart fallback must never select a half-flushed generation"
    );

    assert!(!storage.note_rank_flushed(1, 0));
    storage.write_image(StoragePolicy::Incremental, &image_of(1, 1, &upper));
    assert!(storage.note_rank_flushed(1, 1), "last rank commits");
    assert!(!storage.is_pending(1));
    assert_eq!(storage.generations(), vec![0, 1]);
    assert_eq!(storage.latest_valid_generation(2).unwrap(), 1);
    // A generation never announced as pending reports no commit transition.
    assert!(!storage.note_rank_flushed(0, 0));

    // The force-commit escape hatch: makes a pending generation visible without
    // waiting for the flush accounting — but never resurrects an aborted round.
    storage.begin_generation(2, 2);
    storage.write_image(StoragePolicy::Incremental, &image_of(0, 2, &upper));
    assert!(storage.is_pending(2));
    storage.commit_generation(2);
    assert!(!storage.is_pending(2));
    assert_eq!(storage.generations(), vec![0, 1, 2]);
    storage.begin_generation(3, 2);
    storage.abort_generation(3);
    storage.commit_generation(3);
    assert!(storage.is_pending(3), "an aborted round stays invisible");
}

#[test]
fn aborting_a_pending_generation_releases_its_slots() {
    let storage = CheckpointStorage::unmetered();
    let upper_old = synthetic_upper(0, 4, 16_384);
    let upper_new = synthetic_upper(9, 4, 16_384); // disjoint content
    storage.write_image(StoragePolicy::Incremental, &image_of(0, 0, &upper_old));

    storage.begin_generation(1, 2);
    storage.write_image(StoragePolicy::Incremental, &image_of(0, 1, &upper_new));
    let released = storage.abort_generation(1);
    assert_eq!(released, 1, "one rank's slot had landed");
    // The tombstone keeps the dead round invisible — it is still "pending" as far
    // as readers and the pruner are concerned, never half-visible.
    assert!(storage.is_pending(1));
    assert_eq!(storage.generations(), vec![0]);
    let report = storage.prune_before(u64::MAX);
    assert!(
        report.freed_bytes > 0,
        "the aborted flush's chunks are reclaimed"
    );
    assert!(storage.read(0, 0).is_ok());

    // A straggler flush of the aborted round — still in flight when the abort ran —
    // is released the moment it reports in, and never commits the dead round.
    storage.write_image(StoragePolicy::Incremental, &image_of(1, 1, &upper_new));
    assert!(!storage.note_rank_flushed(1, 1));
    assert_eq!(storage.generations(), vec![0]);
    assert!(
        storage.read(1, 1).is_err(),
        "straggler slot released on arrival"
    );

    // A restarted incarnation reuses the generation number: `begin_generation`
    // resets the tombstone to a fresh round with fresh flush accounting — the dead
    // round's stale `flushed` set must not count toward the new round's commit.
    storage.begin_generation(1, 2);
    storage.write_image(StoragePolicy::Incremental, &image_of(0, 1, &upper_new));
    assert!(
        !storage.note_rank_flushed(1, 0),
        "fresh round: one of two landed"
    );
    storage.write_image(StoragePolicy::Incremental, &image_of(1, 1, &upper_new));
    assert!(
        storage.note_rank_flushed(1, 1),
        "fresh round commits on its own ranks"
    );
    assert_eq!(storage.generations(), vec![0, 1]);
    assert_eq!(storage.latest_valid_generation(2).unwrap(), 1);
}

/// Satellite stress test: one thread pruning aggressively while two "ranks" take
/// periodic checkpoints, alternating synchronous writes and asynchronous flushes
/// through a [`ckpt_store::FlusherPool`]. A restartable generation must survive at
/// every instant, and the stats stay consistent (no torn survivor, no leak past the
/// final sweep).
#[test]
fn concurrent_prune_with_sync_and_async_checkpoints_keeps_a_restart_point() {
    use ckpt_store::FlusherPool;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Barrier};

    const WORLD: usize = 2;
    const GENERATIONS: u64 = 40;

    let storage = CheckpointStorage::unmetered().with_chunk_size(512);
    let pool = Arc::new(FlusherPool::with_workers(storage.clone(), 2));
    let done = Arc::new(AtomicBool::new(false));
    let round_barrier = Arc::new(Barrier::new(WORLD));

    let writers: Vec<_> = (0..WORLD as i32)
        .map(|rank| {
            let storage = storage.clone();
            let pool = Arc::clone(&pool);
            let round_barrier = Arc::clone(&round_barrier);
            std::thread::spawn(move || {
                let mut upper = synthetic_upper(rank, 6, 2_048);
                for generation in 0..GENERATIONS {
                    upper.region_mut("app.region000").unwrap()[0] = generation as u8;
                    let image = CheckpointImage::new(
                        ImageMetadata {
                            rank,
                            world_size: WORLD,
                            generation,
                            implementation: "mpich".into(),
                        },
                        upper.clone(),
                    );
                    // Ranks agree on the mode per generation: even = sync write,
                    // odd = async flush through the pool. Both announce the
                    // generation pending first, exactly as the orchestrator's
                    // coordinated paths do — a half-written generation must never
                    // look committed to the racing pruner.
                    round_barrier.wait();
                    storage.begin_generation(generation, WORLD);
                    if generation % 2 == 0 {
                        storage.write_image(StoragePolicy::Incremental, &image);
                        storage.note_rank_flushed(generation, rank);
                    } else {
                        pool.submit(StoragePolicy::Incremental, image).wait();
                    }
                    upper.mark_clean();
                    upper.advance_epoch();
                }
            })
        })
        .collect();

    let pruner = {
        let storage = storage.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut sweeps = 0u64;
            let mut committed_once = false;
            while !done.load(Ordering::SeqCst) {
                // As aggressive as it gets: prune *everything*. The guard must keep
                // the newest committed generation and anything mid-flush.
                storage.prune_before(u64::MAX);
                // The assertion latches: from the first observed commit onwards, a
                // restartable generation must exist at *every* instant, pruner
                // racing or not — an empty committed set after that point is
                // exactly the failure this test exists to catch, not a reason to
                // skip the check.
                committed_once = committed_once || !storage.generations().is_empty();
                if committed_once {
                    storage
                        .latest_valid_images(WORLD)
                        .expect("a restartable generation must always survive");
                }
                let stats = storage.stats();
                assert!(stats.total_bytes() >= stats.chunk_bytes);
                sweeps += 1;
                std::thread::yield_now();
            }
            assert!(sweeps > 0);
        })
    };

    for writer in writers {
        writer.join().unwrap();
    }
    pool.wait_idle();
    done.store(true, Ordering::SeqCst);
    pruner.join().unwrap();

    // Quiescent wrap-up: nothing pending, the newest generation is complete for the
    // whole world, and every surviving generation validates end to end.
    assert!(storage.pending_generations().is_empty());
    let (generation, images) = storage.latest_valid_images(WORLD).unwrap();
    assert_eq!(generation, GENERATIONS - 1);
    assert_eq!(images.len(), WORLD);
    for generation in storage.generations() {
        for rank in 0..WORLD {
            storage
                .read(generation, rank as i32)
                .unwrap_or_else(|e| panic!("generation {generation} rank {rank} torn: {e:?}"));
        }
    }
    // After a final sweep only the newest committed generation (and its chunks)
    // remains: refcount accounting survived the concurrency.
    let report = storage.prune_before(u64::MAX);
    assert_eq!(report.retained, vec![GENERATIONS - 1]);
    let stats = storage.stats();
    assert_eq!(stats.manifest_count, WORLD);
    assert!(stats.chunk_count > 0);
}

#[test]
fn per_shard_occupancy_sums_to_the_aggregate() {
    let storage = CheckpointStorage::unmetered().with_chunk_size(4096);
    for rank in 0..2 {
        storage.write_image(
            StoragePolicy::Incremental,
            &image_of(rank, 0, &synthetic_upper(rank, 3, 40_000)),
        );
    }
    let stats = storage.stats();
    assert_eq!(stats.shards.len(), storage.shard_count());
    assert_eq!(
        stats.shards.iter().map(|s| s.chunk_count).sum::<usize>(),
        stats.chunk_count
    );
    assert_eq!(
        stats.shards.iter().map(|s| s.stored_bytes).sum::<usize>(),
        stats.chunk_bytes
    );
    assert_eq!(
        stats.shards.iter().map(|s| s.refcount_total).sum::<u64>(),
        stats.refcount_total
    );
    // No cold tier: everything is hot, and every chunk is referenced at least once.
    assert_eq!(stats.hot_bytes, stats.chunk_bytes);
    assert_eq!(stats.cold_chunk_count, 0);
    assert!(stats.refcount_total >= stats.chunk_count as u64);
    assert!(
        stats.shards.iter().filter(|s| s.chunk_count > 0).count() > 1,
        "the digest space must actually spread across shards"
    );
}

#[test]
fn prune_reports_logical_and_physical_frees_separately() {
    let storage = CheckpointStorage::unmetered().with_chunk_size(4096);
    let upper = synthetic_upper(0, 2, 20_000);

    // Two generations with identical content: generation 0's chunks are all shared
    // with generation 1.
    let mut gen0 = upper.clone();
    gen0.mark_all_dirty();
    storage.write_image(StoragePolicy::Incremental, &image_of(0, 0, &gen0));
    let mut gen1 = upper.clone();
    gen1.mark_all_dirty();
    storage.write_image(StoragePolicy::Incremental, &image_of(0, 1, &gen1));

    let report = storage.prune_before(1);
    assert_eq!(report.pruned, vec![0]);
    assert_eq!(
        report.freed_bytes, 0,
        "fully shared chunks must free no physical bytes"
    );
    assert_eq!(
        report.logical_freed_bytes, 40_000,
        "the logical release is the pruned slots' payload size"
    );

    // Replace generation 1 with unique content, then prune it away under a newer
    // one: now the physical free is real.
    let unique = synthetic_upper(7, 2, 20_000);
    storage.write_image(StoragePolicy::Incremental, &image_of(0, 2, &unique));
    let swept = storage.prune_before(2);
    assert_eq!(swept.pruned, vec![1]);
    assert!(
        swept.freed_bytes > 0,
        "unshared chunks must free physical bytes"
    );
    assert_eq!(swept.logical_freed_bytes, 40_000);
}

#[test]
fn tenant_views_share_chunks_but_not_catalogs() {
    let storage = CheckpointStorage::unmetered().with_chunk_size(4096);
    let first = storage.tenant_view();
    let second = storage.tenant_view();
    let upper = synthetic_upper(0, 2, 30_000);

    let a = first.write_image(StoragePolicy::Incremental, &image_of(0, 0, &upper));
    let b = second.write_image(StoragePolicy::Incremental, &image_of(0, 0, &upper));
    assert!(a.chunks_new > 0);
    assert_eq!(b.chunks_new, 0, "the second view dedups against the first");
    assert_eq!(b.chunks_reused, a.chunks_new + a.chunks_reused);

    // Catalogs are namespaced: each view sees only its own generation...
    assert_eq!(first.generations(), vec![0]);
    assert_eq!(second.generations(), vec![0]);
    assert!(
        storage.generations().is_empty(),
        "the base catalog stays empty"
    );
    // ...and the shared chunk space holds each chunk once.
    assert_eq!(first.stats().chunk_count, a.chunks_new);

    // One view pruning everything leaves the other's reads intact.
    first.prune_before(u64::MAX);
    let restored = second.read(0, 0).unwrap();
    assert_eq!(restored.upper_half, upper);
}
