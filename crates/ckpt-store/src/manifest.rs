//! The CRC-validated checkpoint manifest: how to reassemble one rank's image for one
//! generation from content-addressed chunks.
//!
//! Binary layout (version 1, the pre-codec format):
//!
//! ```text
//! magic (8 bytes, "CKPTMANI")
//! version (u32 LE)
//! metadata length (u32 LE) | metadata JSON (split_proc ImageMetadata)
//! upper epoch (u64 LE) | policy tag (u8) | chunk size (u32 LE)
//! region count (u32 LE)
//! per region:
//!   name length (u32 LE) | name UTF-8 | region length (u64 LE) | reused flag (u8)
//!   chunk count (u32 LE)
//!   per chunk: digest (u64 LE) | raw length (u32 LE) | stored length (u32 LE) | flags (u8)
//! crc32 of everything above (u32 LE)
//! ```
//!
//! Version 2 inserts one `digest tag (u8)` immediately after the chunk size, naming
//! the digest function chunks were content-addressed with, and widens the per-chunk
//! flags byte from a compressed boolean to a [`StoredForm`] tag (0 = raw, 1 = RLE,
//! 2 = LZ — the first two coincide with version 1's boolean).
//!
//! **Version negotiation:** [`Manifest::encode`] emits the *oldest* version able to
//! represent the content — a manifest whose digest is FNV-1a and whose chunks are all
//! raw/RLE encodes byte-identically to what pre-codec builds wrote, so a store
//! running [`crate::codec::StorageConfig::legacy`] produces images old readers still
//! accept, and images written before the codec switch decode unchanged here.

use crate::chunk::ChunkRef;
use crate::codec::{Digest, StoredForm};
use crate::StoragePolicy;
use mpi_model::error::{MpiError, MpiResult};
use split_proc::image::ImageMetadata;
use split_proc::integrity::{crc32, Cursor};

const MAGIC: &[u8; 8] = b"CKPTMANI";
/// The pre-codec format: FNV-1a digests, boolean compressed flag.
const VERSION_LEGACY: u32 = 1;
/// Adds the digest tag and the stored-form byte.
const VERSION_CURRENT: u32 = 2;

/// One region's reassembly recipe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionManifest {
    /// Region name within the upper half.
    pub name: String,
    /// Uncompressed region length in bytes.
    pub len: u64,
    /// Chunks, in order; empty for an empty region.
    pub chunks: Vec<ChunkRef>,
    /// Whether this region's chunk list was reused verbatim from the previous
    /// generation (the dirty-region fast path). Informational.
    pub reused: bool,
}

/// A complete per-`(generation, rank)` manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The image metadata (rank, world size, generation, implementation).
    pub metadata: ImageMetadata,
    /// Checkpoint epoch of the upper half when the image was built.
    pub upper_epoch: u64,
    /// Policy this manifest was written under.
    pub policy: StoragePolicy,
    /// Digest function the chunks were content-addressed with. Version-1 manifests
    /// decode with [`Digest::Fnv1a64`] (the only digest that existed then).
    pub digest: Digest,
    /// Chunk size used when the image was split.
    pub chunk_size: u32,
    /// Regions in name order.
    pub regions: Vec<RegionManifest>,
}

impl Manifest {
    /// The epoch the upper half entered after this checkpoint completed. An
    /// incremental write may only reuse this manifest's clean regions when the live
    /// upper half is still in exactly this epoch.
    pub fn base_epoch(&self) -> u64 {
        self.upper_epoch + 1
    }

    /// Look up a region's recipe by name.
    pub fn region(&self, name: &str) -> Option<&RegionManifest> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// Sum of uncompressed region lengths.
    pub fn logical_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.len).sum()
    }

    /// Every chunk reference in the manifest, in region order.
    pub fn chunk_refs(&self) -> impl Iterator<Item = &ChunkRef> {
        self.regions.iter().flat_map(|r| r.chunks.iter())
    }

    /// The oldest format version able to represent this manifest. FNV-addressed,
    /// raw/RLE-only content fits version 1 exactly (the stored-form tags 0 and 1
    /// coincide with the old compressed boolean); XXH64 digests or LZ chunks need
    /// version 2.
    fn wire_version(&self) -> u32 {
        let legacy_forms = self.chunk_refs().all(|chunk| chunk.form != StoredForm::Lz);
        if self.digest == Digest::Fnv1a64 && legacy_forms {
            VERSION_LEGACY
        } else {
            VERSION_CURRENT
        }
    }

    /// Encode to the CRC-trailed binary form, negotiating the oldest version that
    /// can carry the content (see the module docs).
    pub fn encode(&self) -> Vec<u8> {
        // analyzer: allow(no-panic): infallible by construction — metadata is a plain string/number struct; the value-model serializer has no failure mode for it, and encode() has no Result channel
        let metadata =
            serde_json::to_vec(&self.metadata).expect("image metadata always serializes");
        let version = self.wire_version();
        let mut out = Vec::with_capacity(64 + metadata.len() + self.regions.len() * 48);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&(metadata.len() as u32).to_le_bytes());
        out.extend_from_slice(&metadata);
        out.extend_from_slice(&self.upper_epoch.to_le_bytes());
        out.push(policy_tag(self.policy));
        out.extend_from_slice(&self.chunk_size.to_le_bytes());
        if version >= VERSION_CURRENT {
            out.push(self.digest.tag());
        }
        out.extend_from_slice(&(self.regions.len() as u32).to_le_bytes());
        for region in &self.regions {
            out.extend_from_slice(&(region.name.len() as u32).to_le_bytes());
            out.extend_from_slice(region.name.as_bytes());
            out.extend_from_slice(&region.len.to_le_bytes());
            out.push(region.reused as u8);
            out.extend_from_slice(&(region.chunks.len() as u32).to_le_bytes());
            for chunk in &region.chunks {
                out.extend_from_slice(&chunk.digest.to_le_bytes());
                out.extend_from_slice(&chunk.raw_len.to_le_bytes());
                out.extend_from_slice(&chunk.stored_len.to_le_bytes());
                out.push(chunk.form.tag());
            }
        }
        let checksum = crc32(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decode a binary manifest, verifying the trailing CRC-32 before interpreting
    /// any content.
    pub fn decode(bytes: &[u8]) -> MpiResult<Self> {
        let mut cursor = Cursor::new(bytes, "checkpoint manifest");
        if cursor.take(8)? != MAGIC {
            return Err(MpiError::Checkpoint("bad checkpoint manifest magic".into()));
        }
        let version = cursor.u32()?;
        if !(VERSION_LEGACY..=VERSION_CURRENT).contains(&version) {
            return Err(MpiError::Checkpoint(format!(
                "unsupported checkpoint manifest version {version} \
                 (expected {VERSION_LEGACY}..={VERSION_CURRENT})"
            )));
        }
        if bytes.len() < 16 {
            return Err(MpiError::Checkpoint("truncated checkpoint manifest".into()));
        }
        let payload_end = bytes.len() - 4;
        let stored_crc = u32::from_le_bytes(bytes[payload_end..].try_into().map_err(|_| {
            MpiError::Checkpoint("checkpoint manifest CRC trailer truncated".into())
        })?);
        let computed_crc = crc32(&bytes[..payload_end]);
        if stored_crc != computed_crc {
            return Err(MpiError::Checkpoint(format!(
                "checkpoint manifest failed CRC validation \
                 (stored {stored_crc:#010x}, computed {computed_crc:#010x})"
            )));
        }
        let metadata_len = cursor.u32()? as usize;
        let metadata: ImageMetadata = serde_json::from_slice(cursor.take(metadata_len)?)
            .map_err(|e| MpiError::Checkpoint(format!("bad manifest metadata: {e}")))?;
        let upper_epoch = cursor.u64()?;
        let policy = policy_from_tag(cursor.u8()?)?;
        let chunk_size = cursor.u32()?;
        let digest = if version >= VERSION_CURRENT {
            Digest::from_tag(cursor.u8()?)?
        } else {
            Digest::Fnv1a64 // the only digest the version-1 format ever carried
        };
        let region_count = cursor.u32()? as usize;
        let mut regions = Vec::with_capacity(region_count.min(1 << 16));
        for _ in 0..region_count {
            let name_len = cursor.u32()? as usize;
            let name = std::str::from_utf8(cursor.take(name_len)?)
                .map_err(|e| MpiError::Checkpoint(format!("bad region name: {e}")))?
                .to_string();
            let len = cursor.u64()?;
            let reused = cursor.u8()? != 0;
            let chunk_count = cursor.u32()? as usize;
            let mut chunks = Vec::with_capacity(chunk_count.min(1 << 16));
            for _ in 0..chunk_count {
                let chunk_digest = cursor.u64()?;
                let raw_len = cursor.u32()?;
                let stored_len = cursor.u32()?;
                let flags = cursor.u8()?;
                let form = if version >= VERSION_CURRENT {
                    StoredForm::from_tag(flags)?
                } else {
                    // Version 1's flags byte is a strict boolean: anything else is
                    // corruption, not a forward-compat form.
                    match flags {
                        0 => StoredForm::Raw,
                        1 => StoredForm::Rle,
                        other => {
                            return Err(MpiError::Checkpoint(format!(
                                "bad chunk flags byte {other} in version-1 manifest"
                            )))
                        }
                    }
                };
                chunks.push(ChunkRef {
                    digest: chunk_digest,
                    raw_len,
                    stored_len,
                    form,
                });
            }
            regions.push(RegionManifest {
                name,
                len,
                chunks,
                reused,
            });
        }
        if cursor.pos() != payload_end {
            return Err(MpiError::Checkpoint(format!(
                "checkpoint manifest length mismatch: {} bytes",
                payload_end.abs_diff(cursor.pos())
            )));
        }
        Ok(Manifest {
            metadata,
            upper_epoch,
            policy,
            digest,
            chunk_size,
            regions,
        })
    }
}

fn policy_tag(policy: StoragePolicy) -> u8 {
    match policy {
        StoragePolicy::FullImage => 0,
        StoragePolicy::Incremental => 1,
        StoragePolicy::IncrementalCompressed => 2,
    }
}

fn policy_from_tag(tag: u8) -> MpiResult<StoragePolicy> {
    match tag {
        0 => Ok(StoragePolicy::FullImage),
        1 => Ok(StoragePolicy::Incremental),
        2 => Ok(StoragePolicy::IncrementalCompressed),
        other => Err(MpiError::Checkpoint(format!(
            "unknown storage policy tag {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest(digest: Digest, compressed_form: StoredForm) -> Manifest {
        Manifest {
            metadata: ImageMetadata {
                rank: 2,
                world_size: 8,
                generation: 5,
                implementation: "openmpi".into(),
            },
            upper_epoch: 5,
            policy: StoragePolicy::IncrementalCompressed,
            digest,
            chunk_size: 65536,
            regions: vec![
                RegionManifest {
                    name: "app.lattice".into(),
                    len: 130_000,
                    chunks: vec![
                        ChunkRef {
                            digest: 0xDEAD_BEEF_0123_4567,
                            raw_len: 65536,
                            stored_len: 120,
                            form: compressed_form,
                        },
                        ChunkRef {
                            digest: 0x0102_0304_0506_0708,
                            raw_len: 64464,
                            stored_len: 64464,
                            form: StoredForm::Raw,
                        },
                    ],
                    reused: false,
                },
                RegionManifest {
                    name: "empty".into(),
                    len: 0,
                    chunks: vec![],
                    reused: true,
                },
            ],
        }
    }

    #[test]
    fn roundtrip_both_versions() {
        for (digest, form) in [
            (Digest::Fnv1a64, StoredForm::Rle), // encodes as version 1
            (Digest::Xx64, StoredForm::Lz),     // needs version 2
            (Digest::Xx64, StoredForm::Rle),    // digest alone forces version 2
            (Digest::Fnv1a64, StoredForm::Lz),  // form alone forces version 2
        ] {
            let manifest = sample_manifest(digest, form);
            let encoded = manifest.encode();
            let decoded = Manifest::decode(&encoded).unwrap();
            assert_eq!(decoded, manifest);
            assert_eq!(decoded.base_epoch(), 6);
            assert_eq!(decoded.logical_bytes(), 130_000);
            assert_eq!(decoded.chunk_refs().count(), 2);
            assert!(decoded.region("empty").unwrap().reused);
            assert!(decoded.region("missing").is_none());
        }
    }

    #[test]
    fn legacy_content_encodes_as_version_1() {
        // FNV + raw/RLE chunks must produce the pre-codec byte layout: version word
        // 1, no digest byte (a version-2 encode of the same content is exactly one
        // byte longer), flags byte equal to the old compressed boolean.
        let legacy = sample_manifest(Digest::Fnv1a64, StoredForm::Rle);
        let encoded = legacy.encode();
        assert_eq!(&encoded[8..12], &1u32.to_le_bytes());
        let modern = sample_manifest(Digest::Xx64, StoredForm::Rle);
        let modern_encoded = modern.encode();
        assert_eq!(&modern_encoded[8..12], &2u32.to_le_bytes());
        assert_eq!(modern_encoded.len(), encoded.len() + 1);
        // And the decoded legacy manifest carries the implied FNV digest.
        assert_eq!(Manifest::decode(&encoded).unwrap().digest, Digest::Fnv1a64);
    }

    #[test]
    fn version_1_rejects_lz_flags_byte() {
        // Hand-corrupt a version-1 manifest's chunk flags to the LZ tag and refresh
        // the CRC: the strict boolean check must still reject it.
        let legacy = sample_manifest(Digest::Fnv1a64, StoredForm::Rle);
        let mut encoded = legacy.encode();
        let payload_end = encoded.len() - 4;
        let flag_at = (0..payload_end)
            .find(|&i| {
                encoded[i..].starts_with(&0xDEAD_BEEF_0123_4567u64.to_le_bytes())
                    && encoded[i + 16] == 1
            })
            .map(|i| i + 16)
            .expect("sample chunk present");
        encoded[flag_at] = 2;
        let crc = crc32(&encoded[..payload_end]);
        encoded[payload_end..].copy_from_slice(&crc.to_le_bytes());
        assert!(Manifest::decode(&encoded).is_err());
    }

    #[test]
    fn rejects_corruption_and_truncation_everywhere() {
        for (digest, form) in [
            (Digest::Fnv1a64, StoredForm::Rle),
            (Digest::Xx64, StoredForm::Lz),
        ] {
            let encoded = sample_manifest(digest, form).encode();
            for cut in 0..encoded.len() {
                assert!(Manifest::decode(&encoded[..cut]).is_err(), "cut at {cut}");
            }
            for position in 0..encoded.len() {
                let mut corrupted = encoded.clone();
                corrupted[position] ^= 0x10;
                assert!(
                    Manifest::decode(&corrupted).is_err(),
                    "flip at {position} accepted"
                );
            }
        }
    }
}
