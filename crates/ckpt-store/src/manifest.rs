//! The CRC-validated checkpoint manifest: how to reassemble one rank's image for one
//! generation from content-addressed chunks.
//!
//! Binary layout (version 1):
//!
//! ```text
//! magic (8 bytes, "CKPTMANI")
//! version (u32 LE)
//! metadata length (u32 LE) | metadata JSON (split_proc ImageMetadata)
//! upper epoch (u64 LE) | policy tag (u8) | chunk size (u32 LE)
//! region count (u32 LE)
//! per region:
//!   name length (u32 LE) | name UTF-8 | region length (u64 LE) | reused flag (u8)
//!   chunk count (u32 LE)
//!   per chunk: digest (u64 LE) | raw length (u32 LE) | stored length (u32 LE) | flags (u8)
//! crc32 of everything above (u32 LE)
//! ```

use crate::chunk::ChunkRef;
use crate::StoragePolicy;
use mpi_model::error::{MpiError, MpiResult};
use split_proc::image::ImageMetadata;
use split_proc::integrity::{crc32, Cursor};

const MAGIC: &[u8; 8] = b"CKPTMANI";
const VERSION: u32 = 1;

/// One region's reassembly recipe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionManifest {
    /// Region name within the upper half.
    pub name: String,
    /// Uncompressed region length in bytes.
    pub len: u64,
    /// Chunks, in order; empty for an empty region.
    pub chunks: Vec<ChunkRef>,
    /// Whether this region's chunk list was reused verbatim from the previous
    /// generation (the dirty-region fast path). Informational.
    pub reused: bool,
}

/// A complete per-`(generation, rank)` manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The image metadata (rank, world size, generation, implementation).
    pub metadata: ImageMetadata,
    /// Checkpoint epoch of the upper half when the image was built.
    pub upper_epoch: u64,
    /// Policy this manifest was written under.
    pub policy: StoragePolicy,
    /// Chunk size used when the image was split.
    pub chunk_size: u32,
    /// Regions in name order.
    pub regions: Vec<RegionManifest>,
}

impl Manifest {
    /// The epoch the upper half entered after this checkpoint completed. An
    /// incremental write may only reuse this manifest's clean regions when the live
    /// upper half is still in exactly this epoch.
    pub fn base_epoch(&self) -> u64 {
        self.upper_epoch + 1
    }

    /// Look up a region's recipe by name.
    pub fn region(&self, name: &str) -> Option<&RegionManifest> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// Sum of uncompressed region lengths.
    pub fn logical_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.len).sum()
    }

    /// Every chunk reference in the manifest, in region order.
    pub fn chunk_refs(&self) -> impl Iterator<Item = &ChunkRef> {
        self.regions.iter().flat_map(|r| r.chunks.iter())
    }

    /// Encode to the CRC-trailed binary form.
    pub fn encode(&self) -> Vec<u8> {
        // analyzer: allow(no-panic): infallible by construction — metadata is a plain string/number struct; the value-model serializer has no failure mode for it, and encode() has no Result channel
        let metadata =
            serde_json::to_vec(&self.metadata).expect("image metadata always serializes");
        let mut out = Vec::with_capacity(64 + metadata.len() + self.regions.len() * 48);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(metadata.len() as u32).to_le_bytes());
        out.extend_from_slice(&metadata);
        out.extend_from_slice(&self.upper_epoch.to_le_bytes());
        out.push(policy_tag(self.policy));
        out.extend_from_slice(&self.chunk_size.to_le_bytes());
        out.extend_from_slice(&(self.regions.len() as u32).to_le_bytes());
        for region in &self.regions {
            out.extend_from_slice(&(region.name.len() as u32).to_le_bytes());
            out.extend_from_slice(region.name.as_bytes());
            out.extend_from_slice(&region.len.to_le_bytes());
            out.push(region.reused as u8);
            out.extend_from_slice(&(region.chunks.len() as u32).to_le_bytes());
            for chunk in &region.chunks {
                out.extend_from_slice(&chunk.digest.to_le_bytes());
                out.extend_from_slice(&chunk.raw_len.to_le_bytes());
                out.extend_from_slice(&chunk.stored_len.to_le_bytes());
                out.push(chunk.compressed as u8);
            }
        }
        let checksum = crc32(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decode a binary manifest, verifying the trailing CRC-32 before interpreting
    /// any content.
    pub fn decode(bytes: &[u8]) -> MpiResult<Self> {
        let mut cursor = Cursor::new(bytes, "checkpoint manifest");
        if cursor.take(8)? != MAGIC {
            return Err(MpiError::Checkpoint("bad checkpoint manifest magic".into()));
        }
        let version = cursor.u32()?;
        if version != VERSION {
            return Err(MpiError::Checkpoint(format!(
                "unsupported checkpoint manifest version {version} (expected {VERSION})"
            )));
        }
        if bytes.len() < 16 {
            return Err(MpiError::Checkpoint("truncated checkpoint manifest".into()));
        }
        let payload_end = bytes.len() - 4;
        let stored_crc = u32::from_le_bytes(bytes[payload_end..].try_into().map_err(|_| {
            MpiError::Checkpoint("checkpoint manifest CRC trailer truncated".into())
        })?);
        let computed_crc = crc32(&bytes[..payload_end]);
        if stored_crc != computed_crc {
            return Err(MpiError::Checkpoint(format!(
                "checkpoint manifest failed CRC validation \
                 (stored {stored_crc:#010x}, computed {computed_crc:#010x})"
            )));
        }
        let metadata_len = cursor.u32()? as usize;
        let metadata: ImageMetadata = serde_json::from_slice(cursor.take(metadata_len)?)
            .map_err(|e| MpiError::Checkpoint(format!("bad manifest metadata: {e}")))?;
        let upper_epoch = cursor.u64()?;
        let policy = policy_from_tag(cursor.u8()?)?;
        let chunk_size = cursor.u32()?;
        let region_count = cursor.u32()? as usize;
        let mut regions = Vec::with_capacity(region_count.min(1 << 16));
        for _ in 0..region_count {
            let name_len = cursor.u32()? as usize;
            let name = std::str::from_utf8(cursor.take(name_len)?)
                .map_err(|e| MpiError::Checkpoint(format!("bad region name: {e}")))?
                .to_string();
            let len = cursor.u64()?;
            let reused = cursor.u8()? != 0;
            let chunk_count = cursor.u32()? as usize;
            let mut chunks = Vec::with_capacity(chunk_count.min(1 << 16));
            for _ in 0..chunk_count {
                chunks.push(ChunkRef {
                    digest: cursor.u64()?,
                    raw_len: cursor.u32()?,
                    stored_len: cursor.u32()?,
                    compressed: cursor.u8()? != 0,
                });
            }
            regions.push(RegionManifest {
                name,
                len,
                chunks,
                reused,
            });
        }
        if cursor.pos() != payload_end {
            return Err(MpiError::Checkpoint(format!(
                "checkpoint manifest length mismatch: {} bytes",
                payload_end.abs_diff(cursor.pos())
            )));
        }
        Ok(Manifest {
            metadata,
            upper_epoch,
            policy,
            chunk_size,
            regions,
        })
    }
}

fn policy_tag(policy: StoragePolicy) -> u8 {
    match policy {
        StoragePolicy::FullImage => 0,
        StoragePolicy::Incremental => 1,
        StoragePolicy::IncrementalCompressed => 2,
    }
}

fn policy_from_tag(tag: u8) -> MpiResult<StoragePolicy> {
    match tag {
        0 => Ok(StoragePolicy::FullImage),
        1 => Ok(StoragePolicy::Incremental),
        2 => Ok(StoragePolicy::IncrementalCompressed),
        other => Err(MpiError::Checkpoint(format!(
            "unknown storage policy tag {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> Manifest {
        Manifest {
            metadata: ImageMetadata {
                rank: 2,
                world_size: 8,
                generation: 5,
                implementation: "openmpi".into(),
            },
            upper_epoch: 5,
            policy: StoragePolicy::IncrementalCompressed,
            chunk_size: 65536,
            regions: vec![
                RegionManifest {
                    name: "app.lattice".into(),
                    len: 130_000,
                    chunks: vec![
                        ChunkRef {
                            digest: 0xDEAD_BEEF_0123_4567,
                            raw_len: 65536,
                            stored_len: 120,
                            compressed: true,
                        },
                        ChunkRef {
                            digest: 0x0102_0304_0506_0708,
                            raw_len: 64464,
                            stored_len: 64464,
                            compressed: false,
                        },
                    ],
                    reused: false,
                },
                RegionManifest {
                    name: "empty".into(),
                    len: 0,
                    chunks: vec![],
                    reused: true,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let manifest = sample_manifest();
        let encoded = manifest.encode();
        let decoded = Manifest::decode(&encoded).unwrap();
        assert_eq!(decoded, manifest);
        assert_eq!(decoded.base_epoch(), 6);
        assert_eq!(decoded.logical_bytes(), 130_000);
        assert_eq!(decoded.chunk_refs().count(), 2);
        assert!(decoded.region("empty").unwrap().reused);
        assert!(decoded.region("missing").is_none());
    }

    #[test]
    fn rejects_corruption_and_truncation_everywhere() {
        let encoded = sample_manifest().encode();
        for cut in 0..encoded.len() {
            assert!(Manifest::decode(&encoded[..cut]).is_err(), "cut at {cut}");
        }
        for position in 0..encoded.len() {
            let mut corrupted = encoded.clone();
            corrupted[position] ^= 0x10;
            assert!(
                Manifest::decode(&corrupted).is_err(),
                "flip at {position} accepted"
            );
        }
    }
}
