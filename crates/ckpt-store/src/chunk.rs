//! Fixed-size chunking, content digests, and the in-tree RLE codec.

use crate::codec::{Digest, StoredForm};
use mpi_model::error::{MpiError, MpiResult};
use serde::{Deserialize, Serialize};

/// Default chunk size: 64 KiB balances dedup granularity against per-chunk overhead
/// (digest + manifest entry) for the multi-MiB upper halves of Table 3.
pub const DEFAULT_CHUNK_SIZE: usize = 64 * 1024;

/// One chunk reference inside a region manifest: enough to find the chunk in the
/// store and to verify it end-to-end after reassembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkRef {
    /// Digest of the *uncompressed* chunk content (the content address). Which
    /// digest function produced it is recorded once per manifest
    /// ([`crate::Manifest::digest`]), not per chunk.
    pub digest: u64,
    /// Uncompressed chunk length in bytes.
    pub raw_len: u32,
    /// Bytes the chunk occupies in the store (post-compression if compressed).
    pub stored_len: u32,
    /// The form the stored bytes take (raw / RLE / LZ) — the read path decodes by
    /// this record, never by the store's current codec configuration.
    pub form: StoredForm,
}

impl ChunkRef {
    /// The store key: digest plus length, shrinking the collision window further.
    /// Images written under different digest functions therefore occupy disjoint
    /// key spaces and never alias each other.
    pub fn key(&self) -> (u64, u32) {
        (self.digest, self.raw_len)
    }
}

/// Split `data` into fixed-size chunks and hand `(digest, slice)` pairs to `visit` in
/// order, addressing each chunk with `digest_fn`. The final chunk may be short; empty
/// data yields no chunks.
pub fn for_each_chunk(
    data: &[u8],
    chunk_size: usize,
    digest_fn: Digest,
    mut visit: impl FnMut(u64, &[u8]),
) {
    debug_assert!(chunk_size > 0);
    for piece in data.chunks(chunk_size.max(1)) {
        visit(digest_fn.hash(piece), piece);
    }
}

// ----------------------------------------------------------------------------------
// RLE codec
// ----------------------------------------------------------------------------------
//
// Stream of ops. Control byte `c`:
//   c < 0x80  → literal run: the next `c + 1` bytes are copied verbatim (1..=128);
//   c >= 0x80 → repeat run: the next byte repeats `(c - 0x80) + RUN_MIN` times
//               (RUN_MIN..=RUN_MIN+127).
// Runs shorter than RUN_MIN are cheaper as literals, so the encoder never emits them.

const RUN_MIN: usize = 3;
const RUN_MAX: usize = RUN_MIN + 127;
const LITERAL_MAX: usize = 128;

/// RLE-compress `data`; returns `None` unless the compressed form is strictly smaller
/// (incompressible chunks are stored raw).
pub fn rle_compress(data: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len() / 2);
    let mut literal_start = 0usize;
    let mut i = 0usize;
    while i < data.len() {
        // Measure the run starting at i.
        let byte = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == byte && run < RUN_MAX {
            run += 1;
        }
        if run >= RUN_MIN {
            flush_literals(&mut out, &data[literal_start..i]);
            out.push(0x80 | (run - RUN_MIN) as u8);
            out.push(byte);
            i += run;
            literal_start = i;
        } else {
            i += run;
        }
        if out.len() >= data.len() {
            return None; // already not worth it
        }
    }
    flush_literals(&mut out, &data[literal_start..]);
    (out.len() < data.len()).then_some(out)
}

fn flush_literals(out: &mut Vec<u8>, mut literals: &[u8]) {
    while !literals.is_empty() {
        let take = literals.len().min(LITERAL_MAX);
        out.push((take - 1) as u8);
        out.extend_from_slice(&literals[..take]);
        literals = &literals[take..];
    }
}

/// Decompress an RLE stream produced by [`rle_compress`], verifying the expected
/// output length.
pub fn rle_decompress(stream: &[u8], expected_len: usize) -> MpiResult<Vec<u8>> {
    let mut out = Vec::with_capacity(expected_len);
    let mut i = 0usize;
    while i < stream.len() {
        let control = stream[i];
        i += 1;
        if control < 0x80 {
            let take = control as usize + 1;
            if i + take > stream.len() {
                return Err(MpiError::Checkpoint(
                    "truncated RLE literal run in chunk".into(),
                ));
            }
            out.extend_from_slice(&stream[i..i + take]);
            i += take;
        } else {
            let run = (control & 0x7F) as usize + RUN_MIN;
            let byte = *stream
                .get(i)
                .ok_or_else(|| MpiError::Checkpoint("truncated RLE repeat run in chunk".into()))?;
            i += 1;
            out.resize(out.len() + run, byte);
        }
        if out.len() > expected_len {
            return Err(MpiError::Checkpoint(format!(
                "RLE chunk decompressed past its recorded length ({} > {expected_len})",
                out.len()
            )));
        }
    }
    if out.len() != expected_len {
        return Err(MpiError::Checkpoint(format!(
            "RLE chunk decompressed to {} bytes, expected {expected_len}",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_covers_all_bytes_in_order() {
        let data: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
        for digest_fn in [Digest::Fnv1a64, Digest::Xx64] {
            let mut reassembled = Vec::new();
            let mut count = 0;
            for_each_chunk(&data, 128, digest_fn, |digest, piece| {
                assert_eq!(digest, digest_fn.hash(piece));
                reassembled.extend_from_slice(piece);
                count += 1;
            });
            assert_eq!(reassembled, data);
            assert_eq!(count, 3); // 128 + 128 + 44
        }

        let mut none = 0;
        for_each_chunk(&[], 128, Digest::Xx64, |_, _| none += 1);
        assert_eq!(none, 0);
    }

    #[test]
    fn rle_roundtrips_compressible_data() {
        let mut data = vec![0u8; 10_000];
        data[5000..5010].copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let compressed = rle_compress(&data).expect("zero-dominated data compresses");
        assert!(compressed.len() < data.len() / 10);
        assert_eq!(rle_decompress(&compressed, data.len()).unwrap(), data);
    }

    #[test]
    fn rle_roundtrips_long_runs_and_alternations() {
        // Max-length runs, runs of exactly RUN_MIN, and alternating bytes.
        let mut data = vec![7u8; RUN_MAX * 3 + 1];
        data.extend_from_slice(&[1, 1, 1]);
        data.extend((0..500u32).map(|i| (i % 2) as u8));
        match rle_compress(&data) {
            Some(compressed) => {
                assert_eq!(rle_decompress(&compressed, data.len()).unwrap(), data)
            }
            None => panic!("run-dominated data should compress"),
        }
    }

    #[test]
    fn rle_declines_incompressible_data() {
        // A permutation-ish byte sequence with no runs ≥ 3.
        let data: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(97) % 256) as u8)
            .collect();
        assert!(rle_compress(&data).is_none());
    }

    #[test]
    fn rle_decompress_rejects_malformed_streams() {
        assert!(rle_decompress(&[0x05], 6).is_err()); // literal run cut off
        assert!(rle_decompress(&[0x80], 3).is_err()); // repeat run missing byte
        assert!(rle_decompress(&[0x80, 9], 100).is_err()); // too short overall
        assert!(rle_decompress(&[0xFF, 9], 2).is_err()); // overruns expected length
    }
}
