//! The background flusher pool: chunk, compress, and store checkpoint images off the
//! ranks' critical path.
//!
//! The synchronous write path stalls a rank for the whole chunk/compress/store cost
//! of its image. The asynchronous split instead has the rank **snapshot** (freeze an
//! owned [`CheckpointImage`], a memory copy) and hand the image to a [`FlusherPool`],
//! which performs the expensive storage write on a worker thread and completes a
//! [`FlushHandle`] the submitter can wait on (or poll) later.
//!
//! Generation visibility is governed by the store's pending table (see
//! [`CheckpointStorage::begin_generation`]): a generation announced as pending stays
//! invisible to `generations()`/`read`/`latest_valid_images` until every rank's flush
//! has landed, at which point the worker that completes the last flush commits it
//! atomically. A job killed mid-flush therefore leaves a *pending* — never a torn
//! visible — generation, and restart falls back to the newest committed one exactly
//! as it falls back from a torn synchronous write.

use crate::store::{CheckpointStorage, StoreReport};
use crate::StoragePolicy;
use parking_lot::{Condvar, Mutex};
use split_proc::image::CheckpointImage;
use std::collections::VecDeque;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Callback a submitter attaches to a flush job; runs on the worker thread after the
/// image has reached storage (and after the store's per-rank flush accounting), but
/// before the job's [`FlushHandle`] completes — so a waiter that observes the handle
/// done also observes everything the callback published.
type FlushCallback = Box<dyn FnOnce(&StoreReport) + Send>;

struct FlushJob {
    policy: StoragePolicy,
    image: CheckpointImage,
    /// Storage this job writes into. Usually the pool's own storage; a multi-tenant
    /// service instead routes each job into the submitting tenant's view (see
    /// [`FlusherPool::submit_to`]).
    storage: CheckpointStorage,
    handle: Arc<HandleState>,
    on_flushed: Option<FlushCallback>,
}

/// Where one flush job stands.
#[derive(Default, Clone, Copy)]
enum FlushOutcome {
    /// Queued or being written.
    #[default]
    InFlight,
    /// Landed in storage.
    Done(StoreReport),
    /// The worker panicked while processing this job (in the storage write or the
    /// submitter's callback). The flush did not land; waiters must not hang.
    Poisoned,
}

#[derive(Default)]
struct HandleState {
    outcome: Mutex<FlushOutcome>,
    done_cv: Condvar,
}

/// A claim ticket for one submitted flush: wait for (or poll) the background write of
/// one rank's frozen image. Dropping the handle does **not** cancel the flush.
#[derive(Clone)]
pub struct FlushHandle {
    state: Arc<HandleState>,
    generation: u64,
    rank: mpi_model::types::Rank,
}

impl FlushHandle {
    /// The generation the submitted image belongs to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The rank whose image was submitted.
    pub fn rank(&self) -> mpi_model::types::Rank {
        self.rank
    }

    /// Whether the flush has reached storage.
    pub fn is_flushed(&self) -> bool {
        matches!(*self.state.outcome.lock(), FlushOutcome::Done(_))
    }

    /// Whether the worker processing this flush panicked (the flush never landed).
    pub fn is_poisoned(&self) -> bool {
        matches!(*self.state.outcome.lock(), FlushOutcome::Poisoned)
    }

    /// The flush's store report, if it has landed (non-blocking).
    pub fn try_report(&self) -> Option<StoreReport> {
        match *self.state.outcome.lock() {
            FlushOutcome::Done(report) => Some(report),
            _ => None,
        }
    }

    /// A handle that is already complete: carries `report` as if a background write
    /// had just landed. This is what the admission-control fallback path hands back
    /// after performing a rejected submission's write synchronously — the caller's
    /// wait/poll logic stays uniform whether the write rode the pool or not.
    pub fn ready(report: StoreReport) -> FlushHandle {
        let handle = FlushHandle {
            state: Arc::new(HandleState::default()),
            generation: report.generation,
            rank: report.rank,
        };
        *handle.state.outcome.lock() = FlushOutcome::Done(report);
        handle
    }

    /// Block until the background write lands and return its report.
    ///
    /// # Panics
    ///
    /// If the flusher worker panicked while processing this job — the panic is
    /// propagated to the waiter (which surfaces it through whatever harness runs
    /// the rank) instead of leaving it hanging on a flush that will never land.
    pub fn wait(&self) -> StoreReport {
        let mut outcome = self.state.outcome.lock();
        loop {
            match *outcome {
                FlushOutcome::Done(report) => return report,
                // analyzer: allow(no-panic): deliberate panic propagation — the worker already panicked; resurfacing it on the waiter is the documented contract (see doc comment)
                FlushOutcome::Poisoned => panic!(
                    "flusher worker panicked while flushing generation {} of rank {}",
                    self.generation, self.rank
                ),
                FlushOutcome::InFlight => self.state.done_cv.wait(&mut outcome),
            }
        }
    }
}

impl std::fmt::Debug for FlushHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlushHandle")
            .field("generation", &self.generation)
            .field("rank", &self.rank)
            .field("flushed", &self.is_flushed())
            .finish()
    }
}

#[derive(Default)]
struct PoolState {
    jobs: VecDeque<FlushJob>,
    /// Jobs currently being written by a worker.
    active: usize,
    shutdown: bool,
}

struct PoolShared {
    storage: CheckpointStorage,
    state: Mutex<PoolState>,
    /// Workers wait here for jobs (or shutdown).
    work_cv: Condvar,
    /// [`FlusherPool::wait_idle`] waits here for the queue to drain.
    idle_cv: Condvar,
}

/// A pool of background flusher threads sharing one [`CheckpointStorage`].
///
/// Jobs are processed FIFO; jobs from different ranks run concurrently across the
/// workers (the sharded store admits them in parallel, exactly like the synchronous
/// parallel write phase). Dropping the pool drains the remaining queue, then joins
/// the workers.
pub struct FlusherPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl FlusherPool {
    /// A pool over `storage` with one worker per available core, capped at 4.
    pub fn new(storage: CheckpointStorage) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4);
        FlusherPool::with_workers(storage, workers)
    }

    /// A pool over `storage` with exactly `workers` flusher threads (min 1).
    pub fn with_workers(storage: CheckpointStorage, workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            storage,
            state: Mutex::new(PoolState::default()),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        FlusherPool { shared, workers }
    }

    /// The storage engine flushes land in.
    pub fn storage(&self) -> &CheckpointStorage {
        &self.shared.storage
    }

    /// Number of flusher threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Submit one rank's frozen image for background writing under `policy`.
    pub fn submit(&self, policy: StoragePolicy, image: CheckpointImage) -> FlushHandle {
        self.submit_inner(self.shared.storage.clone(), policy, image, None)
    }

    /// [`FlusherPool::submit`] with a completion callback that runs on the worker
    /// thread once the write has landed — after the store's per-rank flush
    /// accounting, before the job's [`FlushHandle`] completes, so a waiter that
    /// observes the handle done also observes everything the callback published.
    pub fn submit_with(
        &self,
        policy: StoragePolicy,
        image: CheckpointImage,
        on_flushed: impl FnOnce(&StoreReport) + Send + 'static,
    ) -> FlushHandle {
        self.submit_inner(
            self.shared.storage.clone(),
            policy,
            image,
            Some(Box::new(on_flushed)),
        )
    }

    /// Submit a flush that writes into `storage` instead of the pool's own — the
    /// multi-tenant path: one shared worker pool, each job landing in the submitting
    /// tenant's storage view. The per-rank flush accounting
    /// (`note_rank_flushed`) runs against the same `storage`, so pending-generation
    /// commits stay within the tenant's namespace.
    pub fn submit_to(
        &self,
        storage: &CheckpointStorage,
        policy: StoragePolicy,
        image: CheckpointImage,
        on_flushed: impl FnOnce(&StoreReport) + Send + 'static,
    ) -> FlushHandle {
        self.submit_inner(storage.clone(), policy, image, Some(Box::new(on_flushed)))
    }

    fn submit_inner(
        &self,
        storage: CheckpointStorage,
        policy: StoragePolicy,
        image: CheckpointImage,
        on_flushed: Option<FlushCallback>,
    ) -> FlushHandle {
        let handle = FlushHandle {
            state: Arc::new(HandleState::default()),
            generation: image.metadata.generation,
            rank: image.metadata.rank,
        };
        let mut state = self.shared.state.lock();
        state.jobs.push_back(FlushJob {
            policy,
            image,
            storage,
            handle: Arc::clone(&handle.state),
            on_flushed,
        });
        drop(state);
        self.shared.work_cv.notify_one();
        handle
    }

    /// Flush jobs queued or in flight right now.
    pub fn backlog(&self) -> usize {
        let state = self.shared.state.lock();
        state.jobs.len() + state.active
    }

    /// Block until every submitted flush has landed (queue empty and no worker busy).
    pub fn wait_idle(&self) {
        let mut state = self.shared.state.lock();
        while !state.jobs.is_empty() || state.active > 0 {
            self.shared.idle_cv.wait(&mut state);
        }
    }
}

impl Drop for FlusherPool {
    fn drop(&mut self) {
        self.shared.state.lock().shutdown = true;
        self.shared.work_cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.state.lock();
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    state.active += 1;
                    break job;
                }
                if state.shutdown {
                    return;
                }
                shared.work_cv.wait(&mut state);
            }
        };
        // Panic containment: a panic in the storage write or the submitter's
        // callback must not wedge the pool — `active` is decremented and the handle
        // completed (as poisoned) either way, so `wait`/`wait_idle` report the
        // failure instead of hanging forever.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let report = job.storage.write_image(job.policy, &job.image);
            // Per-rank flush accounting: the write that completes a pending
            // generation's rank set commits the generation (making it visible)
            // right here, before any callback or waiter can observe the flush as
            // done. Runs against the job's own target storage, so tenant-routed
            // jobs commit within their tenant's namespace.
            job.storage
                .note_rank_flushed(report.generation, report.rank);
            if let Some(on_flushed) = job.on_flushed {
                on_flushed(&report);
            }
            report
        }));
        *job.handle.outcome.lock() = match outcome {
            Ok(report) => FlushOutcome::Done(report),
            Err(_) => FlushOutcome::Poisoned,
        };
        job.handle.done_cv.notify_all();
        let mut state = shared.state.lock();
        state.active -= 1;
        if state.jobs.is_empty() && state.active == 0 {
            shared.idle_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use split_proc::address_space::UpperHalfSpace;
    use split_proc::image::ImageMetadata;

    fn image(rank: i32, world_size: usize, generation: u64, fill: u8) -> CheckpointImage {
        let mut upper = UpperHalfSpace::new();
        upper.map_region("app.state", vec![fill; 200_000]);
        CheckpointImage::new(
            ImageMetadata {
                rank,
                world_size,
                generation,
                implementation: "mpich".into(),
            },
            upper,
        )
    }

    #[test]
    fn flush_lands_and_handle_reports() {
        let storage = CheckpointStorage::unmetered();
        let pool = FlusherPool::with_workers(storage.clone(), 2);
        let handle = pool.submit(StoragePolicy::Incremental, image(0, 1, 0, 0x5A));
        let report = handle.wait();
        assert_eq!(report.generation, 0);
        assert!(handle.is_flushed());
        assert_eq!(
            handle.try_report().unwrap().written_bytes,
            report.written_bytes
        );
        assert_eq!(storage.read(0, 0).unwrap().metadata.rank, 0);
        pool.wait_idle();
        assert_eq!(pool.backlog(), 0);
    }

    #[test]
    fn pending_generation_commits_only_when_every_rank_flushed() {
        let storage = CheckpointStorage::unmetered();
        let pool = FlusherPool::with_workers(storage.clone(), 1);
        storage.begin_generation(3, 2);
        pool.submit(StoragePolicy::Incremental, image(0, 2, 3, 1))
            .wait();
        assert!(storage.is_pending(3));
        assert!(storage.generations().is_empty());
        pool.submit(StoragePolicy::Incremental, image(1, 2, 3, 2))
            .wait();
        assert!(!storage.is_pending(3));
        assert_eq!(storage.generations(), vec![3]);
        assert_eq!(storage.latest_valid_generation(2).unwrap(), 3);
    }

    #[test]
    fn callback_runs_before_the_handle_completes() {
        let storage = CheckpointStorage::unmetered();
        let pool = FlusherPool::with_workers(storage, 1);
        let seen = Arc::new(Mutex::new(None));
        let seen_in_cb = Arc::clone(&seen);
        let handle = pool.submit_with(StoragePolicy::Incremental, image(0, 1, 0, 9), move |r| {
            *seen_in_cb.lock() = Some(r.generation);
        });
        handle.wait();
        assert_eq!(*seen.lock(), Some(0));
    }

    #[test]
    fn drop_drains_the_queue() {
        let storage = CheckpointStorage::unmetered();
        let handles: Vec<FlushHandle> = {
            let pool = FlusherPool::with_workers(storage.clone(), 1);
            (0..4)
                .map(|g| pool.submit(StoragePolicy::Incremental, image(0, 1, g, g as u8)))
                .collect()
        };
        for handle in handles {
            assert!(handle.is_flushed(), "drop must drain queued flushes");
        }
        assert_eq!(storage.generations().len(), 4);
    }
}
