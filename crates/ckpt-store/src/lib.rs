//! # ckpt-store
//!
//! An incremental, content-addressed checkpoint storage engine for the MANA
//! reproduction — the subsystem behind the paper's Table 3 observation that checkpoint
//! cost is dominated by how many bytes reach the filesystem.
//!
//! The flat [`split_proc::store::CheckpointStore`] writes every rank's complete image
//! every generation. This engine instead decomposes an image into fixed-size chunks
//! addressed by content digest and shares them across generations and ranks:
//!
//! * **Chunk store** ([`chunk`]) — fixed-size chunking, 64-bit content digests,
//!   reference-counted chunk entries, optional per-chunk compression. A chunk
//!   whose digest is already stored costs zero new bytes, whoever wrote it first.
//! * **Codec selection** ([`codec`]) — which compressor (RLE or the in-tree LZ) and
//!   which digest (FNV-1a/64 or XXH64) writes use, via
//!   [`CheckpointStorage::with_config`]. Reads are config-independent: every
//!   manifest records the digest and per-chunk stored form it was written with, so
//!   images from any earlier configuration restore bit-identically
//!   ([`StorageConfig::legacy`] reproduces the pre-codec store exactly).
//! * **Dirty-region tracking** — [`split_proc::address_space::UpperHalfSpace`] records
//!   which regions were touched since the previous checkpoint epoch; clean regions are
//!   re-referenced from the previous generation's manifest without even re-hashing
//!   their data.
//! * **Manifests** ([`manifest`]) — per `(generation, rank)` a CRC-32-validated
//!   description of how to reassemble the image from chunks. Corruption or truncation
//!   of a manifest *or any chunk* is detected at read time, so restart can fall back
//!   to the newest generation that still validates end-to-end.
//! * **Generation GC** — pruning a generation decrements chunk refcounts and frees
//!   chunks no surviving generation references. The newest committed generation and
//!   any generation with a flush in flight are never pruned, whatever the cutoff.
//! * **Asynchronous flush** ([`flush`]) — a [`FlusherPool`] writes frozen images off
//!   the ranks' critical path; generations move through a *pending → committed*
//!   state so a half-flushed generation is never visible to readers or restart.
//! * **Tenant views** ([`CheckpointStorage::tenant_view`]) — additional catalog
//!   namespaces over one shared chunk space: each tenant's generations, reads and
//!   GC are isolated, while identical chunks written by different tenants are
//!   stored once (the multi-tenant service in `ckpt-service` builds on this).
//! * **Cold tier** ([`tier`]) — least-recently-referenced chunks can be spilled to
//!   CRC-framed files ([`CheckpointStorage::spill_over`]) and are transparently
//!   promoted — with CRC re-validation — when a read needs them.
//!
//! The engine is selected through [`StoragePolicy`] (a `ManaConfig` knob in the MANA
//! layer): `FullImage` preserves the legacy flat-image baseline — mirroring the
//! paper's legacy-vs-new-design methodology — while `Incremental` and
//! `IncrementalCompressed` exercise the new path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
pub mod codec;
pub mod flush;
pub mod manifest;
pub mod store;
pub mod tier;

pub use chunk::{ChunkRef, DEFAULT_CHUNK_SIZE};
pub use codec::{Codec, Digest, StorageConfig, StoredForm};
pub use flush::{FlushHandle, FlusherPool};
pub use manifest::{Manifest, RegionManifest};
pub use store::{
    CheckpointStorage, PruneReport, ShardStats, SpillReport, StorageStats, StoreReport,
    DEFAULT_SHARD_COUNT,
};
pub use tier::ColdTier;

use serde::{Deserialize, Serialize};

/// How a rank's checkpoint image is written to storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StoragePolicy {
    /// The legacy baseline: one flat, CRC-validated image per `(generation, rank)`,
    /// with no sharing across generations. Mirrors what the flat
    /// `split_proc::store::CheckpointStore` wrote.
    FullImage,
    /// Content-addressed chunking with dirty-region reuse: only regions touched since
    /// the previous generation are re-chunked, and only chunks whose digest is new
    /// reach storage.
    Incremental,
    /// [`StoragePolicy::Incremental`] plus per-chunk compression under the store's
    /// configured [`Codec`] (kept only when it actually shrinks the chunk).
    IncrementalCompressed,
}

impl StoragePolicy {
    /// Short label used by benches and the harness.
    pub fn label(self) -> &'static str {
        match self {
            StoragePolicy::FullImage => "full",
            StoragePolicy::Incremental => "incremental",
            StoragePolicy::IncrementalCompressed => "incremental+comp",
        }
    }

    /// Whether this policy uses the chunked incremental path.
    pub fn is_incremental(self) -> bool {
        !matches!(self, StoragePolicy::FullImage)
    }

    /// Whether chunks are candidates for compression.
    pub fn compresses(self) -> bool {
        matches!(self, StoragePolicy::IncrementalCompressed)
    }
}
