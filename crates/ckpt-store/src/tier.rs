//! The cold tier: file-backed spill storage for least-recently-referenced chunks.
//!
//! A multi-tenant checkpoint service holds the chunk working set of *many* jobs; most
//! of it is referenced only by old generations that exist purely as restart insurance.
//! The [`ColdTier`] lets [`CheckpointStorage`](crate::CheckpointStorage) demote such
//! chunks to file-backed storage (one file per chunk, CRC-32 framed) while the hot set
//! stays in memory. Demotion and promotion are transparent to readers: `read` fetches
//! a cold chunk from its file, **re-validates the CRC**, promotes it back into the
//! in-memory shard, and then runs the usual content-digest validation — a torn or
//! rotted spill file therefore fails a generation exactly like an in-memory
//! corruption, and restart falls back to an older generation.

use mpi_model::error::{MpiError, MpiResult};
use split_proc::integrity::crc32;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes concurrently created tempdir-rooted tiers within one process.
static TIER_COUNTER: AtomicU64 = AtomicU64::new(0);

/// File-backed spill storage for cold chunks: one CRC-32-framed file per chunk key.
///
/// A tier created with [`ColdTier::in_temp`] owns its directory and removes it on
/// drop; [`ColdTier::at`] adopts an existing path and leaves it in place.
pub struct ColdTier {
    dir: PathBuf,
    owned: bool,
}

impl std::fmt::Debug for ColdTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColdTier")
            .field("dir", &self.dir)
            .field("owned", &self.owned)
            .finish()
    }
}

impl ColdTier {
    /// A tier rooted in a fresh directory under the system temp dir. The directory
    /// (and every spilled chunk in it) is removed when the tier is dropped.
    pub fn in_temp() -> MpiResult<ColdTier> {
        let dir = std::env::temp_dir().join(format!(
            "ckpt-cold-{}-{}",
            std::process::id(),
            TIER_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)
            .map_err(|e| MpiError::Checkpoint(format!("creating cold tier {dir:?}: {e}")))?;
        Ok(ColdTier { dir, owned: true })
    }

    /// A tier rooted at `dir` (created if missing, never removed on drop).
    pub fn at(dir: impl Into<PathBuf>) -> MpiResult<ColdTier> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| MpiError::Checkpoint(format!("creating cold tier {dir:?}: {e}")))?;
        Ok(ColdTier { dir, owned: false })
    }

    /// The directory spilled chunks live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, key: (u64, u32)) -> PathBuf {
        self.dir.join(format!("c{:016x}-{}.chunk", key.0, key.1))
    }

    /// Write one chunk's stored form to its spill file, framed with a CRC-32 of the
    /// payload so rot or truncation is detected on the way back in.
    pub(crate) fn spill(&self, key: (u64, u32), stored: &[u8]) -> MpiResult<()> {
        let mut framed = Vec::with_capacity(stored.len() + 4);
        framed.extend_from_slice(&crc32(stored).to_le_bytes());
        framed.extend_from_slice(stored);
        let path = self.path_of(key);
        std::fs::write(&path, framed)
            .map_err(|e| MpiError::Checkpoint(format!("spilling chunk to {path:?}: {e}")))
    }

    /// Read one chunk's stored form back, verifying the CRC-32 frame.
    pub(crate) fn fetch(&self, key: (u64, u32)) -> MpiResult<Vec<u8>> {
        let path = self.path_of(key);
        let framed = std::fs::read(&path)
            .map_err(|e| MpiError::Checkpoint(format!("fetching cold chunk {path:?}: {e}")))?;
        if framed.len() < 4 {
            return Err(MpiError::Checkpoint(format!(
                "cold chunk {path:?} is truncated ({} bytes)",
                framed.len()
            )));
        }
        let expected = u32::from_le_bytes([framed[0], framed[1], framed[2], framed[3]]);
        let payload = &framed[4..];
        if crc32(payload) != expected {
            return Err(MpiError::Checkpoint(format!(
                "cold chunk {path:?} failed CRC re-validation on promote"
            )));
        }
        Ok(payload.to_vec())
    }

    /// Remove one chunk's spill file (best effort — a leftover file is unreachable
    /// garbage, never served, because fetches only happen for entries marked cold).
    pub(crate) fn discard(&self, key: (u64, u32)) {
        let _ = std::fs::remove_file(self.path_of(key));
    }

    /// Flip one byte of a spilled chunk's payload on disk (integrity testing: the
    /// CRC re-validation on promote must refuse it).
    pub fn corrupt_spilled(&self, key: (u64, u32)) -> MpiResult<()> {
        let path = self.path_of(key);
        let mut framed = std::fs::read(&path)
            .map_err(|e| MpiError::Checkpoint(format!("reading cold chunk {path:?}: {e}")))?;
        if framed.len() <= 4 {
            return Err(MpiError::Checkpoint(format!(
                "cold chunk {path:?} too short"
            )));
        }
        let position = 4 + (framed.len() - 4) / 2;
        framed[position] ^= 0x01;
        std::fs::write(&path, framed)
            .map_err(|e| MpiError::Checkpoint(format!("rewriting cold chunk {path:?}: {e}")))
    }
}

impl Drop for ColdTier {
    fn drop(&mut self) {
        if self.owned {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_fetch_round_trip_and_crc_rejection() {
        let tier = ColdTier::in_temp().unwrap();
        let key = (0xABCD, 64);
        tier.spill(key, b"payload bytes").unwrap();
        assert_eq!(tier.fetch(key).unwrap(), b"payload bytes");
        tier.corrupt_spilled(key).unwrap();
        assert!(tier.fetch(key).is_err(), "corrupt spill must fail CRC");
        tier.discard(key);
        assert!(tier.fetch(key).is_err(), "discarded chunk is gone");
    }

    #[test]
    fn owned_temp_dir_is_removed_on_drop() {
        let dir = {
            let tier = ColdTier::in_temp().unwrap();
            tier.spill((1, 1), b"x").unwrap();
            tier.dir().to_path_buf()
        };
        assert!(!dir.exists(), "owned tier dir must be cleaned up");
    }
}
