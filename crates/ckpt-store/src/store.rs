//! The checkpoint storage engine: ref-counted chunk store + manifests + full-image
//! blobs, shared by all ranks of a job (clone-shared, like the flat store).

use crate::chunk::{for_each_chunk, ChunkRef, DEFAULT_CHUNK_SIZE};
use crate::codec::{compress_chunk, decode_chunk, StorageConfig, StoredForm};
use crate::manifest::{Manifest, RegionManifest};
use crate::tier::ColdTier;
use crate::StoragePolicy;
use mpi_model::error::{MpiError, MpiResult};
use mpi_model::payload::PayloadBuf;
use mpi_model::types::Rank;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use split_proc::image::CheckpointImage;
use split_proc::store::StoreConfig;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// What one checkpoint write cost, physically and logically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoreReport {
    /// Checkpoint generation written.
    pub generation: u64,
    /// Rank whose image was written.
    pub rank: Rank,
    /// Policy in force for this write.
    pub policy: StoragePolicy,
    /// Uncompressed upper-half payload bytes (the size a flat image's regions occupy
    /// regardless of policy) — the "logical" checkpoint size of Table 3.
    pub logical_bytes: usize,
    /// Bytes that actually reached storage: new chunk payloads (post-compression)
    /// plus the manifest, or the whole flat image under `FullImage`.
    pub written_bytes: usize,
    /// Bytes of the manifest itself (0 for `FullImage`).
    pub manifest_bytes: usize,
    /// Chunks newly stored by this write.
    pub chunks_new: usize,
    /// Chunks re-referenced from content already in the store.
    pub chunks_reused: usize,
    /// Regions whose chunk lists were reused wholesale via dirty-region tracking.
    pub regions_reused: usize,
    /// Bytes saved by compression on the chunks this write stored.
    pub compression_saved_bytes: usize,
    /// Modelled write time for `written_bytes` (0 when unmetered).
    pub write_time_s: f64,
}

impl StoreReport {
    /// `logical / written`: how many times smaller this write was than a flat image
    /// of the same upper half (1.0 ≈ no savings).
    pub fn reduction_factor(&self) -> f64 {
        if self.written_bytes == 0 {
            f64::INFINITY
        } else {
            self.logical_bytes as f64 / self.written_bytes as f64
        }
    }

    /// Effective bandwidth in MB/s measured against the bytes actually written, or
    /// `None` for an unmetered store (no write-time model, so no bandwidth exists —
    /// reporting `0 MB/s` would be a lie, not a measurement).
    pub fn effective_bandwidth_mb_s(&self) -> Option<f64> {
        if self.write_time_s > 0.0 {
            Some(self.written_bytes as f64 / 1.0e6 / self.write_time_s)
        } else {
            None
        }
    }

    /// View as the flat store's report type (image size = bytes written), for callers
    /// that predate the engine. An unmetered write carries `None` bandwidth — not a
    /// fabricated `0 MB/s` — so downstream reports can skip the column honestly.
    pub fn to_write_report(&self) -> split_proc::store::WriteReport {
        split_proc::store::WriteReport {
            bytes: self.written_bytes,
            write_time_s: self.write_time_s,
            effective_bandwidth_mb_s: self.effective_bandwidth_mb_s(),
        }
    }
}

/// What one [`CheckpointStorage::prune_before`] sweep did — and, as important, what
/// it deliberately did **not** do.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// **Physical** chunk payload bytes freed by the sweep: stored bytes of chunks
    /// whose reference count reached zero. With cross-tenant dedup this can be far
    /// smaller than [`logical_freed_bytes`](PruneReport::logical_freed_bytes) — a
    /// pruned generation whose chunks are still referenced by another generation (or
    /// another tenant's manifests) only drops reference counts.
    pub freed_bytes: usize,
    /// **Logical** bytes released by the sweep: the uncompressed upper-half payload
    /// size of every `(generation, rank)` slot dropped, regardless of whether the
    /// underlying chunks were shared. This is the number quota accounting wants.
    pub logical_freed_bytes: usize,
    /// Generations whose checkpoints were dropped, ascending.
    pub pruned: Vec<u64>,
    /// Generations older than the cutoff that were *kept*: the newest committed
    /// generation (the job's only restart point) and any generation still pending
    /// (a flush in flight must never have its chunks deleted under it), ascending.
    pub retained: Vec<u64>,
}

/// Occupancy of one digest-keyed chunk shard — the real numbers the service's
/// tiering and GC decisions are driven by, not a recomputation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Distinct chunks resident in this shard (hot or cold).
    pub chunk_count: usize,
    /// Stored bytes held by this shard's chunks, hot and cold combined.
    pub stored_bytes: usize,
    /// Stored bytes resident in memory (hot payloads).
    pub hot_bytes: usize,
    /// Chunks whose payload currently lives in the cold tier.
    pub cold_chunks: usize,
    /// Sum of reference counts across this shard's chunks.
    pub refcount_total: u64,
}

/// Aggregate occupancy of the store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageStats {
    /// Distinct chunks held.
    pub chunk_count: usize,
    /// Bytes held by chunk payloads (stored form), hot and cold combined.
    pub chunk_bytes: usize,
    /// Chunk payload bytes resident in memory (the hot set).
    pub hot_bytes: usize,
    /// Chunks whose payload currently lives in the cold tier.
    pub cold_chunk_count: usize,
    /// Chunk payload bytes currently spilled to the cold tier.
    pub cold_bytes: usize,
    /// Sum of chunk reference counts across all shards.
    pub refcount_total: u64,
    /// Chunk fetches served by promoting a cold-tier payload (lifetime counter).
    pub cold_hits: u64,
    /// Total chunk fetches on the read path (lifetime counter, hot + cold).
    pub chunk_reads: u64,
    /// Chunks demoted to the cold tier over the store's lifetime.
    pub spilled_chunks: u64,
    /// Stored bytes demoted to the cold tier over the store's lifetime.
    pub spilled_bytes: u64,
    /// Per-shard occupancy, in shard order.
    pub shards: Vec<ShardStats>,
    /// Manifests held.
    pub manifest_count: usize,
    /// Bytes held by encoded manifests.
    pub manifest_bytes: usize,
    /// Flat images held (FullImage policy writes).
    pub full_image_count: usize,
    /// Bytes held by flat images.
    pub full_image_bytes: usize,
}

impl StorageStats {
    /// Total bytes resident in the store (in memory or spilled).
    pub fn total_bytes(&self) -> usize {
        self.chunk_bytes + self.manifest_bytes + self.full_image_bytes
    }

    /// Fraction of chunk fetches served by promoting from the cold tier, or 0.0
    /// when nothing has been read yet.
    pub fn cold_hit_rate(&self) -> f64 {
        if self.chunk_reads == 0 {
            0.0
        } else {
            self.cold_hits as f64 / self.chunk_reads as f64
        }
    }
}

/// What one [`CheckpointStorage::spill_over`] pass demoted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillReport {
    /// Chunks demoted to the cold tier by this pass.
    pub spilled_chunks: usize,
    /// Stored bytes demoted by this pass.
    pub spilled_bytes: usize,
    /// Hot bytes resident after the pass.
    pub hot_bytes: usize,
}

/// Where a chunk's stored payload currently lives.
enum ChunkPayload {
    /// Resident in memory. A [`PayloadBuf`], so reads hand the stored bytes out as
    /// a refcount bump on this allocation instead of a copy per read.
    Hot(PayloadBuf),
    /// Demoted to the cold tier; fetched (and CRC-revalidated) on next read.
    Cold,
}

struct ChunkEntry {
    refs: u64,
    payload: ChunkPayload,
    /// Length of the stored form (kept even while the payload is cold).
    stored_len: u32,
    /// The form the stored bytes take — mirrored into every [`ChunkRef`] that
    /// references this entry.
    form: StoredForm,
    /// Last-referenced tick from the store's LRU clock; spill candidates are the
    /// chunks with the oldest touch.
    touch: u64,
}

/// Counters and tiering state shared by every tenant view of one chunk space.
struct TierState {
    cold: Option<ColdTier>,
    /// Monotonic LRU clock; bumped on every chunk reference.
    clock: AtomicU64,
    hot_bytes: AtomicUsize,
    cold_hits: AtomicU64,
    chunk_reads: AtomicU64,
    spilled_chunks: AtomicU64,
    spilled_bytes: AtomicU64,
}

impl Default for TierState {
    fn default() -> Self {
        TierState {
            cold: None,
            clock: AtomicU64::new(0),
            hot_bytes: AtomicUsize::new(0),
            cold_hits: AtomicU64::new(0),
            chunk_reads: AtomicU64::new(0),
            spilled_chunks: AtomicU64::new(0),
            spilled_bytes: AtomicU64::new(0),
        }
    }
}

/// Number of digest-keyed chunk shards a store carves its content-addressed space
/// into. Concurrent rank writes land on different shards with high probability, so an
/// 8-rank coordinated checkpoint no longer serializes on one global lock.
pub const DEFAULT_SHARD_COUNT: usize = 16;

/// One digest-keyed slice of the content-addressed chunk space, behind its own lock.
#[derive(Default)]
struct ChunkShard {
    /// Content-addressed chunks, keyed by `(digest, raw_len)`.
    chunks: HashMap<(u64, u32), ChunkEntry>,
}

/// The per-job checkpoint catalog: which `(generation, rank)` slots exist and the
/// encoded bytes of their manifests or flat images. Held separately from the chunk
/// shards (and its lock is never held while a shard lock is taken), so catalog
/// lookups and chunk traffic never contend with each other.
#[derive(Default)]
struct Catalog {
    /// Encoded manifests per `(generation, rank)` — kept encoded so every read
    /// re-validates the CRC, exactly like a file on a checkpoint filesystem.
    manifests: BTreeMap<(u64, Rank), Vec<u8>>,
    /// Flat images per `(generation, rank)` (FullImage policy).
    full_images: BTreeMap<(u64, Rank), Vec<u8>>,
}

/// One generation announced as in flight by an asynchronous flush: which ranks'
/// flushes have landed so far, out of how many the commit needs.
struct PendingGeneration {
    expected_ranks: usize,
    flushed: BTreeSet<Rank>,
    /// Tombstone: the round was aborted. The entry stays (keeping the generation
    /// invisible) so a straggler flush that lands *after* the abort is released on
    /// arrival instead of surfacing a slot of a dead round.
    aborted: bool,
}

/// The storage engine. Cloning shares the underlying store (all ranks of a job write
/// into one engine, which is what makes cross-rank chunk dedup possible).
///
/// Internally the chunk space is split into [`DEFAULT_SHARD_COUNT`] digest-keyed
/// shards, each behind its own lock, so the parallel per-rank writes of a coordinated
/// checkpoint proceed concurrently instead of queueing on one global mutex.
///
/// Generations move through a **pending → committed** state: a generation announced
/// via [`begin_generation`](CheckpointStorage::begin_generation) (the asynchronous
/// flush path) stays invisible to [`generations`](CheckpointStorage::generations),
/// [`read`](CheckpointStorage::read) and therefore
/// [`latest_valid_images`](CheckpointStorage::latest_valid_images) until every rank's
/// flush has landed. Synchronous writes never enter the pending state and are visible
/// immediately, exactly as before.
#[derive(Clone)]
pub struct CheckpointStorage {
    shards: Arc<Vec<Mutex<ChunkShard>>>,
    catalog: Arc<Mutex<Catalog>>,
    /// Generations announced but not yet fully flushed. Locked on its own, never
    /// while the catalog or a shard lock is held.
    pending: Arc<Mutex<BTreeMap<u64, PendingGeneration>>>,
    /// Cold tier + LRU clock + occupancy counters, shared by every clone and every
    /// tenant view of this chunk space.
    tier: Arc<TierState>,
    model: Option<StoreConfig>,
    /// Codec + digest selection for *writes*. Reads are config-independent: they
    /// decode by what each manifest records, which is what lets a store restore
    /// images written under any earlier configuration.
    config: StorageConfig,
    chunk_size: usize,
}

impl Default for CheckpointStorage {
    fn default() -> Self {
        CheckpointStorage::unmetered()
    }
}

impl std::fmt::Debug for CheckpointStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("CheckpointStorage")
            .field("chunks", &stats.chunk_count)
            .field("manifests", &stats.manifest_count)
            .field("full_images", &stats.full_image_count)
            .field("total_bytes", &stats.total_bytes())
            .finish()
    }
}

impl CheckpointStorage {
    /// An unmetered engine (write time reported as zero) with the default chunk size
    /// and shard count.
    pub fn unmetered() -> Self {
        CheckpointStorage {
            shards: Arc::new((0..DEFAULT_SHARD_COUNT).map(|_| Mutex::default()).collect()),
            catalog: Arc::new(Mutex::new(Catalog::default())),
            pending: Arc::new(Mutex::new(BTreeMap::new())),
            tier: Arc::new(TierState::default()),
            model: None,
            config: StorageConfig::default(),
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }

    /// An engine whose write times follow the given filesystem model, applied to the
    /// bytes each write physically stores (incremental checkpoints therefore finish
    /// proportionally faster, which is the whole point).
    pub fn with_model(model: StoreConfig) -> Self {
        CheckpointStorage {
            model: Some(model),
            ..CheckpointStorage::unmetered()
        }
    }

    /// Override the chunk size (mainly for tests and benches).
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Override the codec/digest selection for subsequent writes.
    /// [`StorageConfig::legacy`] reproduces the pre-codec store byte for byte;
    /// reads always follow each manifest's own record, so images written under a
    /// different configuration restore unchanged.
    pub fn with_config(mut self, config: StorageConfig) -> Self {
        self.config = config;
        self
    }

    /// The codec/digest selection writes currently use.
    pub fn config(&self) -> StorageConfig {
        self.config
    }

    /// Override the number of digest-keyed chunk shards. `1` reproduces the old
    /// single-lock engine (the serialized baseline the Table 3 bench compares
    /// against); the default is [`DEFAULT_SHARD_COUNT`].
    ///
    /// Must be called before the store is shared (cloned): it rebuilds the shard set.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Arc::new((0..shards.max(1)).map(|_| Mutex::default()).collect());
        self
    }

    /// Attach a cold tier: least-recently-referenced chunks can then be demoted to
    /// file-backed storage by [`spill_over`](CheckpointStorage::spill_over) and are
    /// transparently promoted (CRC-revalidated) on read.
    ///
    /// Must be called before the store is shared (cloned or viewed): it rebuilds the
    /// shared tier state, so earlier occupancy counters are reset.
    pub fn with_cold_tier(mut self, cold: ColdTier) -> Self {
        self.tier = Arc::new(TierState {
            cold: Some(cold),
            ..TierState::default()
        });
        self
    }

    /// Whether a cold tier is attached.
    pub fn has_cold_tier(&self) -> bool {
        self.tier.cold.is_some()
    }

    /// A new catalog namespace over the **same** content-addressed chunk space.
    ///
    /// The view shares the chunk shards (and their reference counts), the cold tier,
    /// the LRU clock and the write-time model with `self`, but has a fresh, empty
    /// catalog and pending table. This is the tenancy primitive of the multi-tenant
    /// checkpoint service: every tenant writes generations and manifests into its own
    /// namespace — `generations`, `read`, `prune_before`, `latest_valid_images` are
    /// all per-tenant — while identical chunks written by different tenants are
    /// stored once. Shared reference counts make cross-tenant GC safe: a tenant
    /// pruning its generations only frees chunks no other tenant references.
    ///
    /// Configure the store (`with_shards`, `with_chunk_size`, `with_cold_tier`)
    /// **before** creating views; views snapshot the configuration.
    pub fn tenant_view(&self) -> CheckpointStorage {
        CheckpointStorage {
            shards: Arc::clone(&self.shards),
            catalog: Arc::new(Mutex::new(Catalog::default())),
            pending: Arc::new(Mutex::new(BTreeMap::new())),
            tier: Arc::clone(&self.tier),
            model: self.model,
            config: self.config,
            chunk_size: self.chunk_size,
        }
    }

    /// Number of digest-keyed chunk shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Chunk payload bytes currently resident in memory (the hot set).
    pub fn hot_bytes(&self) -> usize {
        self.tier.hot_bytes.load(Ordering::Relaxed)
    }

    /// Next tick of the shared LRU clock.
    fn tick(&self) -> u64 {
        self.tier.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Decrease the hot-byte counter (saturating — defensive against double frees).
    fn sub_hot(&self, bytes: usize) {
        let _ = self
            .tier
            .hot_bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |current| {
                Some(current.saturating_sub(bytes))
            });
    }

    /// The shard a chunk digest routes to.
    fn shard(&self, digest: u64) -> &Mutex<ChunkShard> {
        &self.shards[(digest % self.shards.len() as u64) as usize]
    }

    /// Increment the reference count of `key` if the chunk is resident, returning its
    /// stored form `(stored_len, form)` when it was.
    fn bump_chunk_ref(&self, key: (u64, u32)) -> Option<(u32, StoredForm)> {
        let now = self.tick();
        let mut shard = self.shard(key.0).lock();
        shard.chunks.get_mut(&key).map(|entry| {
            entry.refs += 1;
            entry.touch = now;
            (entry.stored_len, entry.form)
        })
    }

    /// Decrement the reference count of `key` (undo of a bump that must not stand).
    fn release_chunk_ref(&self, key: (u64, u32)) {
        let mut shard = self.shard(key.0).lock();
        if let Some(entry) = shard.chunks.get_mut(&key) {
            entry.refs = entry.refs.saturating_sub(1);
        }
    }

    /// Re-reference every chunk of a previous generation's region, all or nothing:
    /// returns `false` (with any partial bumps released) if a chunk is no longer
    /// resident — a concurrent prune freed it after the manifest was snapshotted.
    fn bump_region_refs(&self, region: &RegionManifest) -> bool {
        for (position, chunk) in region.chunks.iter().enumerate() {
            if self.bump_chunk_ref(chunk.key()).is_none() {
                for taken in &region.chunks[..position] {
                    self.release_chunk_ref(taken.key());
                }
                return false;
            }
        }
        true
    }

    /// Remove whatever `(generation, rank)` currently holds, decrementing the chunk
    /// references a removed manifest owned. Zero-ref chunks stay resident until the
    /// next `prune_before` sweep (or are immediately re-referenced by a rewrite).
    /// Returns the **logical** bytes the slot represented (the uncompressed
    /// upper-half payload size), so GC paths can report logical and physical frees
    /// separately.
    ///
    /// Best effort on an undecodable manifest: it cannot tell us which chunks to
    /// release, so its chunks leak until the store is dropped (and its logical size
    /// is unknowable, reported as 0).
    fn release_slot(&self, generation: u64, rank: Rank) -> usize {
        let (full_image, manifest) = {
            let mut catalog = self.catalog.lock();
            (
                catalog.full_images.remove(&(generation, rank)),
                catalog.manifests.remove(&(generation, rank)),
            )
        };
        let mut logical = full_image.map_or(0, |bytes| bytes.len());
        if let Some(manifest) = manifest.and_then(|bytes| Manifest::decode(&bytes).ok()) {
            logical += manifest
                .regions
                .iter()
                .map(|region| region.len as usize)
                .sum::<usize>();
            for chunk in manifest.chunk_refs() {
                let mut shard = self.shard(chunk.digest).lock();
                if let Some(entry) = shard.chunks.get_mut(&chunk.key()) {
                    entry.refs = entry.refs.saturating_sub(1);
                }
            }
        }
        logical
    }

    // ------------------------------------------------------------------
    // Pending-generation lifecycle (asynchronous flush)
    // ------------------------------------------------------------------

    /// Announce `generation` as in flight: an asynchronous flush of a
    /// `expected_ranks`-rank job is about to write its images. Until
    /// [`note_rank_flushed`](CheckpointStorage::note_rank_flushed) has seen every
    /// rank (or [`commit_generation`](CheckpointStorage::commit_generation) forces
    /// it), the generation is invisible to readers and protected from
    /// [`prune_before`](CheckpointStorage::prune_before).
    ///
    /// Idempotent: later calls for the same generation are no-ops, so every rank can
    /// announce before submitting its own flush without coordinating who goes first.
    /// One exception: an entry left by an **aborted** round (see
    /// [`abort_generation`](CheckpointStorage::abort_generation)) is *reset* to a
    /// fresh round — a restarted job legitimately reuses the generation number, and
    /// the dead round's stale flush accounting must not count toward the new one.
    /// No slot sweep happens here: every dead-round slot is already released by the
    /// abort's own sweep or, for a straggler landing later, by its
    /// [`note_rank_flushed`](CheckpointStorage::note_rank_flushed) hitting the
    /// tombstone — and sweeping here would race a fresh round's first flushes.
    /// (Stragglers still in flight at reset time are the caller's to drain first —
    /// `JobRuntime::restart` waits its flusher pool idle before aborting, precisely
    /// so no dead-round flush can land after this point and be mistaken for the new
    /// round's.)
    pub fn begin_generation(&self, generation: u64, expected_ranks: usize) {
        let mut pending = self.pending.lock();
        let entry = pending
            .entry(generation)
            .or_insert_with(|| PendingGeneration {
                expected_ranks: expected_ranks.max(1),
                flushed: BTreeSet::new(),
                aborted: false,
            });
        if entry.aborted {
            *entry = PendingGeneration {
                expected_ranks: expected_ranks.max(1),
                flushed: BTreeSet::new(),
                aborted: false,
            };
        }
    }

    /// Record that `rank`'s flush for a pending `generation` has landed. When the
    /// last expected rank lands, the generation commits — it becomes visible to
    /// readers — and `true` is returned (exactly once). A generation never announced
    /// as pending returns `false`: it was visible all along (the synchronous path).
    /// A flush landing on an **aborted** round is released on the spot (its round is
    /// dead; the slot must never surface) and reported as `false`.
    pub fn note_rank_flushed(&self, generation: u64, rank: Rank) -> bool {
        let aborted_straggler = {
            let mut pending = self.pending.lock();
            let Some(entry) = pending.get_mut(&generation) else {
                return false;
            };
            if entry.aborted {
                true
            } else {
                entry.flushed.insert(rank);
                if entry.flushed.len() >= entry.expected_ranks {
                    pending.remove(&generation);
                    return true;
                }
                return false;
            }
        };
        if aborted_straggler {
            self.release_slot(generation, rank);
        }
        false
    }

    /// Force-commit a pending generation (make it visible regardless of flush
    /// accounting). A no-op if the generation is not pending or its round was
    /// aborted.
    pub fn commit_generation(&self, generation: u64) {
        let mut pending = self.pending.lock();
        if pending.get(&generation).is_some_and(|entry| !entry.aborted) {
            pending.remove(&generation);
        }
    }

    /// Drop a generation's pending entry entirely, abort tombstone included. Only
    /// safe once no flush of that generation can still be in flight (the tombstone
    /// exists precisely to catch stragglers) — restart uses it after aborting the
    /// dead incarnation's rounds with its flusher pool drained, so the restarted
    /// job's *synchronous* checkpoints can reuse the generation number without the
    /// stale tombstone hiding them forever.
    pub fn forget_generation(&self, generation: u64) {
        self.pending.lock().remove(&generation);
    }

    /// Abort a pending generation: release every slot already written for it (the
    /// chunks become unreferenced and are reclaimed by the next
    /// [`prune_before`](CheckpointStorage::prune_before) sweep) and tombstone the
    /// pending entry — the generation stays invisible, and a straggler flush still
    /// in flight at abort time is released when it lands instead of surfacing a
    /// slot of the dead round. Returns the number of `(generation, rank)` slots
    /// released here (stragglers are released later, on arrival).
    pub fn abort_generation(&self, generation: u64) -> usize {
        {
            let mut pending = self.pending.lock();
            // Only a *pending* round can be aborted: a generation that already
            // committed (or was never announced) is left alone, so an abort racing
            // a completed round cannot destroy a valid restart point.
            match pending.get_mut(&generation) {
                Some(entry) => entry.aborted = true,
                None => return 0,
            }
        }
        let slots: Vec<(u64, Rank)> = {
            let catalog = self.catalog.lock();
            catalog
                .manifests
                .keys()
                .chain(catalog.full_images.keys())
                .filter(|(g, _)| *g == generation)
                .copied()
                .collect()
        };
        for (generation, rank) in &slots {
            self.release_slot(*generation, *rank);
        }
        slots.len()
    }

    /// Whether `generation` is announced but not yet committed.
    pub fn is_pending(&self, generation: u64) -> bool {
        self.pending.lock().contains_key(&generation)
    }

    /// Generations currently pending (announced, not yet fully flushed), ascending.
    pub fn pending_generations(&self) -> Vec<u64> {
        self.pending.lock().keys().copied().collect()
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Write one rank's image for the generation recorded in its metadata, under the
    /// given policy.
    pub fn write_image(&self, policy: StoragePolicy, image: &CheckpointImage) -> StoreReport {
        let generation = image.metadata.generation;
        let rank = image.metadata.rank;
        let logical_bytes = image.upper_half.total_bytes();

        let mut report = StoreReport {
            generation,
            rank,
            policy,
            logical_bytes,
            written_bytes: 0,
            manifest_bytes: 0,
            chunks_new: 0,
            chunks_reused: 0,
            regions_reused: 0,
            compression_saved_bytes: 0,
            write_time_s: 0.0,
        };

        // Rewriting an existing (generation, rank) — e.g. re-checkpointing after a
        // restart replaced a torn generation — must release whatever the slot held,
        // or the replaced manifest's chunk references leak forever.
        self.release_slot(generation, rank);
        if policy.is_incremental() {
            self.write_chunked(policy, image, &mut report);
        } else {
            let encoded = image.encode();
            report.written_bytes = encoded.len();
            self.catalog
                .lock()
                .full_images
                .insert((generation, rank), encoded);
        }

        if let Some(model) = self.model {
            report.write_time_s = model.write_time_s(report.written_bytes as f64 / 1.0e6);
        }
        report
    }

    fn write_chunked(
        &self,
        policy: StoragePolicy,
        image: &CheckpointImage,
        report: &mut StoreReport,
    ) {
        let rank = image.metadata.rank;
        let generation = image.metadata.generation;
        let upper = &image.upper_half;

        // The previous generation's manifest for this rank, if its epoch chain links
        // directly to this image's epoch — otherwise dirty flags describe changes
        // relative to some *other* checkpoint and clean-region reuse would be unsound.
        // Copied out under the catalog lock, decoded outside it.
        let previous = {
            let catalog = self.catalog.lock();
            catalog
                .manifests
                .range(..(generation, rank))
                .rev()
                .find(|((_, r), _)| *r == rank)
                .map(|(_, bytes)| bytes.clone())
        }
        .and_then(|bytes| Manifest::decode(&bytes).ok())
        .filter(|m| m.base_epoch() == upper.epoch())
        // A manifest records one digest function for all its chunks, so clean-region
        // reuse across a digest change would stamp old-digest references into a
        // new-digest manifest and fail validation on read. After a config switch the
        // first checkpoint re-chunks everything; reuse resumes from then on.
        .filter(|m| m.digest == self.config.digest);

        let mut regions = Vec::with_capacity(upper.region_count());
        for (name, data) in upper.iter() {
            let reusable = previous.as_ref().and_then(|m| {
                if upper.is_dirty(name) {
                    return None;
                }
                m.region(name).filter(|r| r.len == data.len() as u64)
            });
            if let Some(prev_region) = reusable {
                // Clean region: re-reference the previous generation's chunks without
                // re-reading the data. A concurrent `prune_before` may have freed some
                // of them between our catalog snapshot and now — if any bump misses,
                // release the ones taken and re-chunk the region from its data
                // instead of committing a manifest with dangling references.
                if self.bump_region_refs(prev_region) {
                    report.chunks_reused += prev_region.chunks.len();
                    report.regions_reused += 1;
                    regions.push(RegionManifest {
                        reused: true,
                        ..prev_region.clone()
                    });
                    continue;
                }
            }

            // Dirty (or un-reusable) region: chunk it; content addressing still
            // dedups any chunk the store has seen before, from any rank or
            // generation. Only the per-digest shard is locked, and never while
            // compressing, so concurrent rank writes proceed in parallel.
            let mut chunks = Vec::with_capacity(data.len() / self.chunk_size + 1);
            for_each_chunk(
                data,
                self.chunk_size,
                self.config.digest,
                |digest, piece| {
                    let key = (digest, piece.len() as u32);
                    if let Some((stored_len, form)) = self.bump_chunk_ref(key) {
                        report.chunks_reused += 1;
                        chunks.push(ChunkRef {
                            digest,
                            raw_len: piece.len() as u32,
                            stored_len,
                            form,
                        });
                        return;
                    }
                    let (stored, form) = if policy.compresses() {
                        compress_chunk(self.config.codec, piece)
                    } else {
                        (piece.to_vec(), StoredForm::Raw)
                    };
                    // Re-check under the shard lock: another rank may have stored the
                    // same content while we were compressing. Whoever loses the race
                    // re-references the winner's copy instead of inserting a duplicate.
                    let now = self.tick();
                    let mut shard = self.shard(digest).lock();
                    if let Some(entry) = shard.chunks.get_mut(&key) {
                        entry.refs += 1;
                        entry.touch = now;
                        report.chunks_reused += 1;
                        chunks.push(ChunkRef {
                            digest,
                            raw_len: piece.len() as u32,
                            stored_len: entry.stored_len,
                            form: entry.form,
                        });
                        return;
                    }
                    if form.is_compressed() {
                        report.compression_saved_bytes += piece.len() - stored.len();
                    }
                    report.chunks_new += 1;
                    report.written_bytes += stored.len();
                    chunks.push(ChunkRef {
                        digest,
                        raw_len: piece.len() as u32,
                        stored_len: stored.len() as u32,
                        form,
                    });
                    self.tier
                        .hot_bytes
                        .fetch_add(stored.len(), Ordering::Relaxed);
                    shard.chunks.insert(
                        key,
                        ChunkEntry {
                            refs: 1,
                            stored_len: stored.len() as u32,
                            payload: ChunkPayload::Hot(stored.into()),
                            form,
                            touch: now,
                        },
                    );
                },
            );
            regions.push(RegionManifest {
                name: name.to_string(),
                len: data.len() as u64,
                chunks,
                reused: false,
            });
        }

        let manifest = Manifest {
            metadata: image.metadata.clone(),
            upper_epoch: upper.epoch(),
            policy,
            digest: self.config.digest,
            chunk_size: self.chunk_size as u32,
            regions,
        };
        let encoded = manifest.encode();
        report.manifest_bytes = encoded.len();
        report.written_bytes += encoded.len();
        self.catalog
            .lock()
            .manifests
            .insert((generation, rank), encoded);
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Read one rank's image back, whichever policy wrote it, verifying the manifest
    /// CRC and every chunk digest (or the flat image's CRC) end to end.
    ///
    /// A generation still pending (an asynchronous flush in flight) is refused: a
    /// half-flushed generation must never be observed, even piecewise.
    pub fn read(&self, generation: u64, rank: Rank) -> MpiResult<CheckpointImage> {
        if self.is_pending(generation) {
            return Err(MpiError::Checkpoint(format!(
                "generation {generation} is pending (its asynchronous flush has not \
                 committed); refusing to read a half-flushed checkpoint"
            )));
        }
        let manifest_bytes = {
            let catalog = self.catalog.lock();
            if let Some(bytes) = catalog.full_images.get(&(generation, rank)) {
                return CheckpointImage::decode(bytes);
            }
            catalog
                .manifests
                .get(&(generation, rank))
                .cloned()
                .ok_or_else(|| {
                    MpiError::Checkpoint(format!(
                        "no checkpoint for generation {generation}, rank {rank}"
                    ))
                })?
        };
        let manifest = Manifest::decode(&manifest_bytes)?;

        let mut upper = split_proc::address_space::UpperHalfSpace::new();
        for region in &manifest.regions {
            let mut data = Vec::with_capacity(region.len as usize);
            for chunk in &region.chunks {
                self.tier.chunk_reads.fetch_add(1, Ordering::Relaxed);
                let now = self.tick();
                // Hot chunks are served straight from the shard; a cold chunk is
                // fetched from its spill file (outside the shard lock), CRC-verified
                // by the tier, and promoted back into memory.
                let hot = {
                    let mut shard = self.shard(chunk.digest).lock();
                    let entry = shard.chunks.get_mut(&chunk.key()).ok_or_else(|| {
                        MpiError::Checkpoint(format!(
                            "chunk {:#018x} (len {}) referenced by generation {generation}, \
                             rank {rank} is missing from the store",
                            chunk.digest, chunk.raw_len
                        ))
                    })?;
                    entry.touch = now;
                    match &entry.payload {
                        // A PayloadBuf clone is a refcount bump on the stored
                        // allocation, not a copy — the hot read path shares.
                        ChunkPayload::Hot(stored) => Some((stored.clone(), entry.form)),
                        ChunkPayload::Cold => None,
                    }
                };
                let (stored, form) = match hot {
                    Some(hot) => hot,
                    None => self.promote_chunk(chunk)?,
                };
                // Decode by the *manifest's* record, never by this store's current
                // codec configuration — that is what keeps images written under any
                // earlier config restorable.
                let decompressed;
                let raw: &[u8] = if form.is_compressed() {
                    decompressed = decode_chunk(form, &stored, chunk.raw_len as usize)?;
                    &decompressed
                } else {
                    &stored
                };
                if raw.len() != chunk.raw_len as usize || manifest.digest.hash(raw) != chunk.digest
                {
                    return Err(MpiError::Checkpoint(format!(
                        "chunk {:#018x} of region {:?} failed digest validation \
                         (generation {generation}, rank {rank})",
                        chunk.digest, region.name
                    )));
                }
                data.extend_from_slice(raw);
            }
            if data.len() != region.len as usize {
                return Err(MpiError::Checkpoint(format!(
                    "region {:?} reassembled to {} bytes, manifest says {}",
                    region.name,
                    data.len(),
                    region.len
                )));
            }
            upper.map_region(region.name.clone(), data);
        }
        upper.set_epoch(manifest.upper_epoch);
        upper.mark_clean();
        Ok(CheckpointImage::new(manifest.metadata.clone(), upper))
    }

    /// Fetch a cold chunk's stored form from the spill file (the tier re-validates
    /// its CRC-32 frame) and promote it back into the in-memory shard. Returns the
    /// stored bytes and their form for the caller's decode. The promoted entry and
    /// the returned buffer share one allocation.
    fn promote_chunk(&self, chunk: &ChunkRef) -> MpiResult<(PayloadBuf, StoredForm)> {
        let cold = self.tier.cold.as_ref().ok_or_else(|| {
            MpiError::Checkpoint(format!(
                "chunk {:#018x} is marked cold but no cold tier is attached",
                chunk.digest
            ))
        })?;
        let stored: PayloadBuf = cold.fetch(chunk.key())?.into();
        if stored.len() != chunk.stored_len as usize {
            return Err(MpiError::Checkpoint(format!(
                "cold chunk {:#018x} promoted to {} bytes, manifest says {}",
                chunk.digest,
                stored.len(),
                chunk.stored_len
            )));
        }
        let mut shard = self.shard(chunk.digest).lock();
        let form = match shard.chunks.get_mut(&chunk.key()) {
            Some(entry) => {
                if matches!(entry.payload, ChunkPayload::Cold) {
                    entry.payload = ChunkPayload::Hot(stored.clone());
                    self.tier
                        .hot_bytes
                        .fetch_add(stored.len(), Ordering::Relaxed);
                }
                entry.form
            }
            // The entry was pruned while we were fetching; serve this read from the
            // file's content anyway (the digest check downstream still guards it).
            None => chunk.form,
        };
        self.tier.cold_hits.fetch_add(1, Ordering::Relaxed);
        Ok((stored, form))
    }

    /// Whether a checkpoint exists (valid or not) for `(generation, rank)`.
    pub fn contains(&self, generation: u64, rank: Rank) -> bool {
        let catalog = self.catalog.lock();
        catalog.manifests.contains_key(&(generation, rank))
            || catalog.full_images.contains_key(&(generation, rank))
    }

    /// All **committed** generations with at least one checkpoint, ascending.
    /// Generations whose asynchronous flush is still pending are excluded — they do
    /// not exist yet as far as readers (and restart fallback) are concerned.
    pub fn generations(&self) -> Vec<u64> {
        // Catalog snapshot first, pending filter second: any catalogued slot of an
        // async generation implies `begin_generation` already ran, so a generation
        // that is half-flushed at the catalog snapshot is still pending when the
        // filter reads — it can never leak out as committed.
        let generations: BTreeSet<u64> = {
            let catalog = self.catalog.lock();
            let mut generations: BTreeSet<u64> =
                catalog.manifests.keys().map(|(g, _)| *g).collect();
            generations.extend(catalog.full_images.keys().map(|(g, _)| *g));
            generations
        };
        let pending = self.pending.lock();
        generations
            .into_iter()
            .filter(|g| !pending.contains_key(g))
            .collect()
    }

    /// The ranks holding a checkpoint in `generation`, ascending (used by tests that
    /// assert a committed generation is complete for the whole world).
    pub fn ranks_in_generation(&self, generation: u64) -> Vec<Rank> {
        let catalog = self.catalog.lock();
        let mut ranks: BTreeSet<Rank> = catalog
            .manifests
            .keys()
            .filter(|(g, _)| *g == generation)
            .map(|(_, r)| *r)
            .collect();
        ranks.extend(
            catalog
                .full_images
                .keys()
                .filter(|(g, _)| *g == generation)
                .map(|(_, r)| *r),
        );
        ranks.into_iter().collect()
    }

    /// The newest generation for which **every** rank of a `world_size` job reads back
    /// and validates end to end, together with the validated images in rank order.
    /// Generations with corrupt or missing pieces are skipped — this is the job-level
    /// fallback restart relies on. Returning the images means the validation decode is
    /// also the restart decode: nothing is reassembled twice.
    pub fn latest_valid_images(&self, world_size: usize) -> MpiResult<(u64, Vec<CheckpointImage>)> {
        for generation in self.generations().into_iter().rev() {
            let images: MpiResult<Vec<CheckpointImage>> = (0..world_size)
                .map(|rank| self.read(generation, rank as Rank))
                .collect();
            if let Ok(images) = images {
                return Ok((generation, images));
            }
        }
        Err(MpiError::Checkpoint(format!(
            "no complete, valid checkpoint generation for a {world_size}-rank job"
        )))
    }

    /// The newest generation that validates end to end at **its own** recorded world
    /// size — whatever that size is — together with the validated images in rank
    /// order. This is the elastic-restart entry point: the caller learns the
    /// checkpointed rank count from the returned images and maps it onto the new
    /// world, instead of asserting a size up front.
    pub fn latest_valid_images_any_size(&self) -> MpiResult<(u64, Vec<CheckpointImage>)> {
        for generation in self.generations().into_iter().rev() {
            let ranks = self.ranks_in_generation(generation);
            let world_size = ranks.len();
            // Only a contiguous 0..world_size rank set is a whole job's checkpoint.
            if world_size == 0 || ranks.iter().enumerate().any(|(i, &r)| r != i as Rank) {
                continue;
            }
            let images: MpiResult<Vec<CheckpointImage>> = (0..world_size)
                .map(|rank| self.read(generation, rank as Rank))
                .collect();
            if let Ok(images) = images {
                return Ok((generation, images));
            }
        }
        Err(MpiError::Checkpoint(
            "no complete, valid checkpoint generation at any world size".into(),
        ))
    }

    /// The newest generation for which **every** rank of a `world_size` job validates
    /// end to end (see [`latest_valid_images`](CheckpointStorage::latest_valid_images)).
    pub fn latest_valid_generation(&self, world_size: usize) -> MpiResult<u64> {
        self.latest_valid_images(world_size)
            .map(|(generation, _)| generation)
    }

    /// Read the full job's images for one generation, in rank order.
    pub fn read_job(&self, generation: u64, world_size: usize) -> MpiResult<Vec<CheckpointImage>> {
        (0..world_size)
            .map(|rank| self.read(generation, rank as Rank))
            .collect()
    }

    // ------------------------------------------------------------------
    // GC and occupancy
    // ------------------------------------------------------------------

    /// Drop checkpoints from generations older than `keep_from`, releasing chunk
    /// references and freeing chunks nothing references any more.
    ///
    /// Two classes of generation are **never** pruned, whatever the cutoff says:
    ///
    /// * the newest committed generation — deleting it could leave
    ///   `restart_job_from_storage` with nothing to fall back to (the cutoff may be
    ///   arbitrarily aggressive, e.g. computed from a generation counter that ran
    ///   ahead of the commits);
    /// * any pending generation — its flush is mid-flight, and deleting chunks under
    ///   a concurrent writer would tear the generation it is about to commit.
    ///
    /// The returned [`PruneReport`] says exactly which generations were dropped and
    /// which were retained despite being older than the cutoff.
    pub fn prune_before(&self, keep_from: u64) -> PruneReport {
        let mut report = PruneReport::default();
        let doomed: Vec<(u64, Rank)> = {
            let catalog = self.catalog.lock();
            // The pending snapshot is taken *while the catalog is held*: any
            // catalogued slot of an async generation implies `begin_generation`
            // already ran, so a half-flushed generation can never be mistaken for
            // the newest committed one (a stale pre-catalog snapshot could miss a
            // generation that began and landed its first slot in between, stripping
            // protection from the real restart point). Lock order catalog → pending
            // is safe: no other path acquires the catalog while holding pending.
            let pending: BTreeSet<u64> = self.pending.lock().keys().copied().collect();
            let mut all: BTreeSet<u64> = catalog.manifests.keys().map(|(g, _)| *g).collect();
            all.extend(catalog.full_images.keys().map(|(g, _)| *g));
            let newest_committed = all.iter().rev().find(|g| !pending.contains(g)).copied();
            let protected = |generation: u64| {
                pending.contains(&generation) || Some(generation) == newest_committed
            };
            for &generation in all.iter().filter(|g| **g < keep_from) {
                if protected(generation) {
                    report.retained.push(generation);
                } else {
                    report.pruned.push(generation);
                }
            }
            let mut catalog = catalog;
            catalog
                .full_images
                .retain(|(generation, _), _| *generation >= keep_from || protected(*generation));
            catalog
                .manifests
                .keys()
                .filter(|(generation, _)| *generation < keep_from && !protected(*generation))
                .copied()
                .collect()
        };
        for (generation, rank) in doomed {
            report.logical_freed_bytes += self.release_slot(generation, rank);
        }

        let mut cold_doomed: Vec<(u64, u32)> = Vec::new();
        for shard in self.shards.iter() {
            shard.lock().chunks.retain(|key, entry| {
                if entry.refs == 0 {
                    report.freed_bytes += entry.stored_len as usize;
                    match entry.payload {
                        ChunkPayload::Hot(_) => self.sub_hot(entry.stored_len as usize),
                        ChunkPayload::Cold => cold_doomed.push(*key),
                    }
                    false
                } else {
                    true
                }
            });
        }
        if let Some(cold) = &self.tier.cold {
            for key in cold_doomed {
                cold.discard(key);
            }
        }
        report
    }

    /// Demote least-recently-referenced chunks to the cold tier until the hot set is
    /// at most `hot_target_bytes`, or until every chunk is cold. A no-op (beyond
    /// reporting current occupancy) when no cold tier is attached or the hot set is
    /// already within target. Demotion is transparent to readers: a cold chunk is
    /// fetched, CRC-revalidated and promoted on the next
    /// [`read`](CheckpointStorage::read) that needs it.
    pub fn spill_over(&self, hot_target_bytes: usize) -> SpillReport {
        let mut report = SpillReport {
            hot_bytes: self.hot_bytes(),
            ..SpillReport::default()
        };
        let Some(cold) = self.tier.cold.as_ref() else {
            return report;
        };
        if report.hot_bytes <= hot_target_bytes {
            return report;
        }

        // Rank hot chunks oldest-touch first. The snapshot is advisory: each
        // candidate is re-checked under its shard lock before demotion.
        let mut candidates: Vec<(u64, (u64, u32))> = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.lock();
            for (key, entry) in shard.chunks.iter() {
                if matches!(entry.payload, ChunkPayload::Hot(_)) {
                    candidates.push((entry.touch, *key));
                }
            }
        }
        candidates.sort_unstable();

        for (_, key) in candidates {
            if self.hot_bytes() <= hot_target_bytes {
                break;
            }
            // Copy the payload out under the lock, write the spill file unlocked
            // (file IO must not block the shard), then flip the entry to cold only
            // if it is still hot — a concurrent prune or spill may have beaten us.
            let stored = {
                let shard = self.shard(key.0).lock();
                match shard.chunks.get(&key).map(|entry| &entry.payload) {
                    Some(ChunkPayload::Hot(bytes)) => bytes.clone(),
                    _ => continue,
                }
            };
            if cold.spill(key, &stored).is_err() {
                // Disk trouble: stop demoting, keep serving from memory.
                break;
            }
            let mut shard = self.shard(key.0).lock();
            match shard.chunks.get_mut(&key) {
                Some(entry) if matches!(entry.payload, ChunkPayload::Hot(_)) => {
                    entry.payload = ChunkPayload::Cold;
                    self.sub_hot(stored.len());
                    report.spilled_chunks += 1;
                    report.spilled_bytes += stored.len();
                }
                Some(_) => {}
                // Pruned while we spilled: the file is unreachable garbage, drop it.
                None => cold.discard(key),
            }
        }
        self.tier
            .spilled_chunks
            .fetch_add(report.spilled_chunks as u64, Ordering::Relaxed);
        self.tier
            .spilled_bytes
            .fetch_add(report.spilled_bytes as u64, Ordering::Relaxed);
        report.hot_bytes = self.hot_bytes();
        report
    }

    /// Aggregate occupancy, including per-shard breakdowns and cold-tier counters.
    ///
    /// On a tenant view the chunk/shard numbers describe the **shared** chunk space
    /// (they are the same from every view), while the manifest and full-image
    /// numbers describe this view's own catalog namespace.
    pub fn stats(&self) -> StorageStats {
        let mut shards = Vec::with_capacity(self.shards.len());
        for shard in self.shards.iter() {
            let shard = shard.lock();
            let mut occupancy = ShardStats {
                chunk_count: shard.chunks.len(),
                ..ShardStats::default()
            };
            for entry in shard.chunks.values() {
                occupancy.stored_bytes += entry.stored_len as usize;
                occupancy.refcount_total += entry.refs;
                match entry.payload {
                    ChunkPayload::Hot(_) => occupancy.hot_bytes += entry.stored_len as usize,
                    ChunkPayload::Cold => occupancy.cold_chunks += 1,
                }
            }
            shards.push(occupancy);
        }
        let mut stats = StorageStats {
            chunk_count: shards.iter().map(|s| s.chunk_count).sum(),
            chunk_bytes: shards.iter().map(|s| s.stored_bytes).sum(),
            hot_bytes: shards.iter().map(|s| s.hot_bytes).sum(),
            cold_chunk_count: shards.iter().map(|s| s.cold_chunks).sum(),
            cold_bytes: shards.iter().map(|s| s.stored_bytes - s.hot_bytes).sum(),
            refcount_total: shards.iter().map(|s| s.refcount_total).sum(),
            cold_hits: self.tier.cold_hits.load(Ordering::Relaxed),
            chunk_reads: self.tier.chunk_reads.load(Ordering::Relaxed),
            spilled_chunks: self.tier.spilled_chunks.load(Ordering::Relaxed),
            spilled_bytes: self.tier.spilled_bytes.load(Ordering::Relaxed),
            shards,
            manifest_count: 0,
            manifest_bytes: 0,
            full_image_count: 0,
            full_image_bytes: 0,
        };
        let catalog = self.catalog.lock();
        stats.manifest_count = catalog.manifests.len();
        stats.manifest_bytes = catalog.manifests.values().map(|m| m.len()).sum();
        stats.full_image_count = catalog.full_images.len();
        stats.full_image_bytes = catalog.full_images.values().map(|i| i.len()).sum();
        stats
    }

    // ------------------------------------------------------------------
    // Fault injection (integrity testing)
    // ------------------------------------------------------------------

    /// Flip one byte of a stored chunk that is referenced by `(generation, rank)` and
    /// by **no other generation** — corrupting exactly one generation's data, the way
    /// a torn write during that checkpoint would. Returns an error if the generation
    /// has no such private chunk.
    pub fn corrupt_fresh_chunk(&self, generation: u64, rank: Rank) -> MpiResult<()> {
        let (target_bytes, other_bytes) = {
            let catalog = self.catalog.lock();
            let target = catalog
                .manifests
                .get(&(generation, rank))
                .cloned()
                .ok_or_else(|| {
                    MpiError::Checkpoint(format!(
                        "no chunked checkpoint for generation {generation}, rank {rank}"
                    ))
                })?;
            let others: Vec<Vec<u8>> = catalog
                .manifests
                .iter()
                .filter(|(key, _)| **key != (generation, rank))
                .map(|(_, bytes)| bytes.clone())
                .collect();
            (target, others)
        };
        let target = Manifest::decode(&target_bytes)?;
        let shared: BTreeSet<(u64, u32)> = other_bytes
            .iter()
            .filter_map(|bytes| Manifest::decode(bytes).ok())
            .flat_map(|manifest| manifest.chunk_refs().map(|c| c.key()).collect::<Vec<_>>())
            .collect();
        let private = target
            .chunk_refs()
            .map(|c| c.key())
            .find(|key| !shared.contains(key))
            .ok_or_else(|| {
                MpiError::Checkpoint(format!(
                    "generation {generation}, rank {rank} shares every chunk with other \
                     generations; nothing private to corrupt"
                ))
            })?;
        let mut shard = self.shard(private.0).lock();
        let entry = shard
            .chunks
            .get_mut(&private)
            .ok_or_else(|| MpiError::Checkpoint("private chunk vanished".into()))?;
        match &mut entry.payload {
            ChunkPayload::Hot(stored) => {
                // The stored buffer is immutable (readers may hold refcounts on it);
                // corruption rebuilds the entry around a flipped copy, exactly like a
                // torn write replacing the on-disk bytes.
                let mut flipped = stored.to_vec();
                let position = flipped.len() / 2;
                flipped[position] ^= 0x01;
                *stored = flipped.into();
                Ok(())
            }
            // The private chunk was demoted: corrupt its spill file instead, which
            // exercises the CRC re-validation on promote.
            ChunkPayload::Cold => self
                .tier
                .cold
                .as_ref()
                .ok_or_else(|| MpiError::Checkpoint("cold chunk without a cold tier".into()))?
                .corrupt_spilled(private),
        }
    }

    /// Flip one byte of the stored manifest (or flat image) for `(generation, rank)`.
    pub fn corrupt_manifest(&self, generation: u64, rank: Rank) -> MpiResult<()> {
        let mut catalog = self.catalog.lock();
        let catalog = &mut *catalog;
        let bytes = match catalog.manifests.get_mut(&(generation, rank)) {
            Some(bytes) => bytes,
            None => catalog
                .full_images
                .get_mut(&(generation, rank))
                .ok_or_else(|| {
                    MpiError::Checkpoint(format!(
                        "no checkpoint for generation {generation}, rank {rank}"
                    ))
                })?,
        };
        let position = bytes.len() / 2;
        bytes[position] ^= 0x01;
        Ok(())
    }
}
