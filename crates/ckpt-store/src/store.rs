//! The checkpoint storage engine: ref-counted chunk store + manifests + full-image
//! blobs, shared by all ranks of a job (clone-shared, like the flat store).

use crate::chunk::{for_each_chunk, rle_compress, rle_decompress, ChunkRef, DEFAULT_CHUNK_SIZE};
use crate::manifest::{Manifest, RegionManifest};
use crate::StoragePolicy;
use mpi_model::error::{MpiError, MpiResult};
use mpi_model::types::Rank;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use split_proc::image::CheckpointImage;
use split_proc::integrity::fnv1a64;
use split_proc::store::StoreConfig;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// What one checkpoint write cost, physically and logically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoreReport {
    /// Checkpoint generation written.
    pub generation: u64,
    /// Rank whose image was written.
    pub rank: Rank,
    /// Policy in force for this write.
    pub policy: StoragePolicy,
    /// Uncompressed upper-half payload bytes (the size a flat image's regions occupy
    /// regardless of policy) — the "logical" checkpoint size of Table 3.
    pub logical_bytes: usize,
    /// Bytes that actually reached storage: new chunk payloads (post-compression)
    /// plus the manifest, or the whole flat image under `FullImage`.
    pub written_bytes: usize,
    /// Bytes of the manifest itself (0 for `FullImage`).
    pub manifest_bytes: usize,
    /// Chunks newly stored by this write.
    pub chunks_new: usize,
    /// Chunks re-referenced from content already in the store.
    pub chunks_reused: usize,
    /// Regions whose chunk lists were reused wholesale via dirty-region tracking.
    pub regions_reused: usize,
    /// Bytes saved by compression on the chunks this write stored.
    pub compression_saved_bytes: usize,
    /// Modelled write time for `written_bytes` (0 when unmetered).
    pub write_time_s: f64,
}

impl StoreReport {
    /// `logical / written`: how many times smaller this write was than a flat image
    /// of the same upper half (1.0 ≈ no savings).
    pub fn reduction_factor(&self) -> f64 {
        if self.written_bytes == 0 {
            f64::INFINITY
        } else {
            self.logical_bytes as f64 / self.written_bytes as f64
        }
    }

    /// Effective bandwidth in MB/s measured against the bytes actually written.
    pub fn effective_bandwidth_mb_s(&self) -> f64 {
        if self.write_time_s > 0.0 {
            self.written_bytes as f64 / 1.0e6 / self.write_time_s
        } else {
            0.0
        }
    }

    /// View as the flat store's report type (image size = bytes written), for callers
    /// that predate the engine.
    pub fn to_write_report(&self) -> split_proc::store::WriteReport {
        split_proc::store::WriteReport {
            bytes: self.written_bytes,
            write_time_s: self.write_time_s,
            effective_bandwidth_mb_s: self.effective_bandwidth_mb_s(),
        }
    }
}

/// Aggregate occupancy of the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageStats {
    /// Distinct chunks held.
    pub chunk_count: usize,
    /// Bytes held by chunk payloads (stored form).
    pub chunk_bytes: usize,
    /// Manifests held.
    pub manifest_count: usize,
    /// Bytes held by encoded manifests.
    pub manifest_bytes: usize,
    /// Flat images held (FullImage policy writes).
    pub full_image_count: usize,
    /// Bytes held by flat images.
    pub full_image_bytes: usize,
}

impl StorageStats {
    /// Total bytes resident in the store.
    pub fn total_bytes(&self) -> usize {
        self.chunk_bytes + self.manifest_bytes + self.full_image_bytes
    }
}

struct ChunkEntry {
    refs: u64,
    stored: Vec<u8>,
    compressed: bool,
}

/// Remove whatever `(generation, rank)` currently holds, decrementing the chunk
/// references a removed manifest owned. Zero-ref chunks stay resident until the next
/// `prune_before` sweep (or are immediately re-referenced by a rewrite).
///
/// Best effort on an undecodable manifest: it cannot tell us which chunks to
/// release, so its chunks leak until the store is dropped.
fn release_slot(inner: &mut Inner, generation: u64, rank: Rank) {
    inner.full_images.remove(&(generation, rank));
    if let Some(bytes) = inner.manifests.remove(&(generation, rank)) {
        if let Ok(manifest) = Manifest::decode(&bytes) {
            for chunk in manifest.chunk_refs() {
                if let Some(entry) = inner.chunks.get_mut(&chunk.key()) {
                    entry.refs = entry.refs.saturating_sub(1);
                }
            }
        }
    }
}

#[derive(Default)]
struct Inner {
    /// Content-addressed chunks, keyed by `(digest, raw_len)`.
    chunks: HashMap<(u64, u32), ChunkEntry>,
    /// Encoded manifests per `(generation, rank)` — kept encoded so every read
    /// re-validates the CRC, exactly like a file on a checkpoint filesystem.
    manifests: BTreeMap<(u64, Rank), Vec<u8>>,
    /// Flat images per `(generation, rank)` (FullImage policy).
    full_images: BTreeMap<(u64, Rank), Vec<u8>>,
}

/// The storage engine. Cloning shares the underlying store (all ranks of a job write
/// into one engine, which is what makes cross-rank chunk dedup possible).
#[derive(Clone, Default)]
pub struct CheckpointStorage {
    inner: Arc<Mutex<Inner>>,
    model: Option<StoreConfig>,
    chunk_size: usize,
}

impl std::fmt::Debug for CheckpointStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("CheckpointStorage")
            .field("chunks", &stats.chunk_count)
            .field("manifests", &stats.manifest_count)
            .field("full_images", &stats.full_image_count)
            .field("total_bytes", &stats.total_bytes())
            .finish()
    }
}

impl CheckpointStorage {
    /// An unmetered engine (write time reported as zero) with the default chunk size.
    pub fn unmetered() -> Self {
        CheckpointStorage {
            inner: Arc::new(Mutex::new(Inner::default())),
            model: None,
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }

    /// An engine whose write times follow the given filesystem model, applied to the
    /// bytes each write physically stores (incremental checkpoints therefore finish
    /// proportionally faster, which is the whole point).
    pub fn with_model(model: StoreConfig) -> Self {
        CheckpointStorage {
            model: Some(model),
            ..CheckpointStorage::unmetered()
        }
    }

    /// Override the chunk size (mainly for tests and benches).
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Write one rank's image for the generation recorded in its metadata, under the
    /// given policy.
    pub fn write_image(&self, policy: StoragePolicy, image: &CheckpointImage) -> StoreReport {
        let generation = image.metadata.generation;
        let rank = image.metadata.rank;
        let logical_bytes = image.upper_half.total_bytes();

        let mut report = StoreReport {
            generation,
            rank,
            policy,
            logical_bytes,
            written_bytes: 0,
            manifest_bytes: 0,
            chunks_new: 0,
            chunks_reused: 0,
            regions_reused: 0,
            compression_saved_bytes: 0,
            write_time_s: 0.0,
        };

        let mut inner = self.inner.lock();
        // Rewriting an existing (generation, rank) — e.g. re-checkpointing after a
        // restart replaced a torn generation — must release whatever the slot held,
        // or the replaced manifest's chunk references leak forever.
        release_slot(&mut inner, generation, rank);
        if policy.is_incremental() {
            self.write_chunked(&mut inner, policy, image, &mut report);
        } else {
            let encoded = image.encode();
            report.written_bytes = encoded.len();
            inner.full_images.insert((generation, rank), encoded);
        }
        drop(inner);

        if let Some(model) = self.model {
            report.write_time_s = model.write_time_s(report.written_bytes as f64 / 1.0e6);
        }
        report
    }

    fn write_chunked(
        &self,
        inner: &mut Inner,
        policy: StoragePolicy,
        image: &CheckpointImage,
        report: &mut StoreReport,
    ) {
        let rank = image.metadata.rank;
        let generation = image.metadata.generation;
        let upper = &image.upper_half;

        // The previous generation's manifest for this rank, if its epoch chain links
        // directly to this image's epoch — otherwise dirty flags describe changes
        // relative to some *other* checkpoint and clean-region reuse would be unsound.
        let previous = inner
            .manifests
            .range(..(generation, rank))
            .rev()
            .find(|((_, r), _)| *r == rank)
            .and_then(|(_, bytes)| Manifest::decode(bytes).ok())
            .filter(|m| m.base_epoch() == upper.epoch());

        let mut regions = Vec::with_capacity(upper.region_count());
        for (name, data) in upper.iter() {
            let reusable = previous.as_ref().and_then(|m| {
                if upper.is_dirty(name) {
                    return None;
                }
                m.region(name).filter(|r| r.len == data.len() as u64)
            });
            if let Some(prev_region) = reusable {
                // Clean region: re-reference the previous generation's chunks without
                // re-reading the data.
                for chunk in &prev_region.chunks {
                    if let Some(entry) = inner.chunks.get_mut(&chunk.key()) {
                        entry.refs += 1;
                    }
                }
                report.chunks_reused += prev_region.chunks.len();
                report.regions_reused += 1;
                regions.push(RegionManifest {
                    reused: true,
                    ..prev_region.clone()
                });
                continue;
            }

            // Dirty (or un-reusable) region: chunk it; content addressing still
            // dedups any chunk the store has seen before, from any rank or
            // generation.
            let mut chunks = Vec::with_capacity(data.len() / self.chunk_size + 1);
            for_each_chunk(data, self.chunk_size, |digest, piece| {
                let key = (digest, piece.len() as u32);
                if let Some(entry) = inner.chunks.get_mut(&key) {
                    entry.refs += 1;
                    report.chunks_reused += 1;
                    chunks.push(ChunkRef {
                        digest,
                        raw_len: piece.len() as u32,
                        stored_len: entry.stored.len() as u32,
                        compressed: entry.compressed,
                    });
                    return;
                }
                let (stored, compressed) = if policy.compresses() {
                    match rle_compress(piece) {
                        Some(compressed) => {
                            report.compression_saved_bytes += piece.len() - compressed.len();
                            (compressed, true)
                        }
                        None => (piece.to_vec(), false),
                    }
                } else {
                    (piece.to_vec(), false)
                };
                report.chunks_new += 1;
                report.written_bytes += stored.len();
                chunks.push(ChunkRef {
                    digest,
                    raw_len: piece.len() as u32,
                    stored_len: stored.len() as u32,
                    compressed,
                });
                inner.chunks.insert(
                    key,
                    ChunkEntry {
                        refs: 1,
                        stored,
                        compressed,
                    },
                );
            });
            regions.push(RegionManifest {
                name: name.to_string(),
                len: data.len() as u64,
                chunks,
                reused: false,
            });
        }

        let manifest = Manifest {
            metadata: image.metadata.clone(),
            upper_epoch: upper.epoch(),
            policy,
            chunk_size: self.chunk_size as u32,
            regions,
        };
        let encoded = manifest.encode();
        report.manifest_bytes = encoded.len();
        report.written_bytes += encoded.len();
        inner.manifests.insert((generation, rank), encoded);
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Read one rank's image back, whichever policy wrote it, verifying the manifest
    /// CRC and every chunk digest (or the flat image's CRC) end to end.
    pub fn read(&self, generation: u64, rank: Rank) -> MpiResult<CheckpointImage> {
        let inner = self.inner.lock();
        if let Some(bytes) = inner.full_images.get(&(generation, rank)) {
            return CheckpointImage::decode(bytes);
        }
        let manifest_bytes = inner.manifests.get(&(generation, rank)).ok_or_else(|| {
            MpiError::Checkpoint(format!(
                "no checkpoint for generation {generation}, rank {rank}"
            ))
        })?;
        let manifest = Manifest::decode(manifest_bytes)?;

        let mut upper = split_proc::address_space::UpperHalfSpace::new();
        for region in &manifest.regions {
            let mut data = Vec::with_capacity(region.len as usize);
            for chunk in &region.chunks {
                let entry = inner.chunks.get(&chunk.key()).ok_or_else(|| {
                    MpiError::Checkpoint(format!(
                        "chunk {:#018x} (len {}) referenced by generation {generation}, \
                         rank {rank} is missing from the store",
                        chunk.digest, chunk.raw_len
                    ))
                })?;
                let raw = if entry.compressed {
                    rle_decompress(&entry.stored, chunk.raw_len as usize)?
                } else {
                    entry.stored.clone()
                };
                if raw.len() != chunk.raw_len as usize || fnv1a64(&raw) != chunk.digest {
                    return Err(MpiError::Checkpoint(format!(
                        "chunk {:#018x} of region {:?} failed digest validation \
                         (generation {generation}, rank {rank})",
                        chunk.digest, region.name
                    )));
                }
                data.extend_from_slice(&raw);
            }
            if data.len() != region.len as usize {
                return Err(MpiError::Checkpoint(format!(
                    "region {:?} reassembled to {} bytes, manifest says {}",
                    region.name,
                    data.len(),
                    region.len
                )));
            }
            upper.map_region(region.name.clone(), data);
        }
        upper.set_epoch(manifest.upper_epoch);
        upper.mark_clean();
        Ok(CheckpointImage::new(manifest.metadata.clone(), upper))
    }

    /// Whether a checkpoint exists (valid or not) for `(generation, rank)`.
    pub fn contains(&self, generation: u64, rank: Rank) -> bool {
        let inner = self.inner.lock();
        inner.manifests.contains_key(&(generation, rank))
            || inner.full_images.contains_key(&(generation, rank))
    }

    /// All generations with at least one checkpoint, ascending.
    pub fn generations(&self) -> Vec<u64> {
        let inner = self.inner.lock();
        let mut generations: BTreeSet<u64> = inner.manifests.keys().map(|(g, _)| *g).collect();
        generations.extend(inner.full_images.keys().map(|(g, _)| *g));
        generations.into_iter().collect()
    }

    /// The newest generation for which **every** rank of a `world_size` job reads back
    /// and validates end to end, together with the validated images in rank order.
    /// Generations with corrupt or missing pieces are skipped — this is the job-level
    /// fallback restart relies on. Returning the images means the validation decode is
    /// also the restart decode: nothing is reassembled twice.
    pub fn latest_valid_images(&self, world_size: usize) -> MpiResult<(u64, Vec<CheckpointImage>)> {
        for generation in self.generations().into_iter().rev() {
            let images: MpiResult<Vec<CheckpointImage>> = (0..world_size)
                .map(|rank| self.read(generation, rank as Rank))
                .collect();
            if let Ok(images) = images {
                return Ok((generation, images));
            }
        }
        Err(MpiError::Checkpoint(format!(
            "no complete, valid checkpoint generation for a {world_size}-rank job"
        )))
    }

    /// The newest generation for which **every** rank of a `world_size` job validates
    /// end to end (see [`latest_valid_images`](CheckpointStorage::latest_valid_images)).
    pub fn latest_valid_generation(&self, world_size: usize) -> MpiResult<u64> {
        self.latest_valid_images(world_size)
            .map(|(generation, _)| generation)
    }

    /// Read the full job's images for one generation, in rank order.
    pub fn read_job(&self, generation: u64, world_size: usize) -> MpiResult<Vec<CheckpointImage>> {
        (0..world_size)
            .map(|rank| self.read(generation, rank as Rank))
            .collect()
    }

    // ------------------------------------------------------------------
    // GC and occupancy
    // ------------------------------------------------------------------

    /// Drop all checkpoints from generations older than `keep_from`, releasing chunk
    /// references and freeing chunks nothing references any more. Returns the number
    /// of chunk payload bytes freed.
    pub fn prune_before(&self, keep_from: u64) -> usize {
        let mut inner = self.inner.lock();
        let doomed: Vec<(u64, Rank)> = inner
            .manifests
            .keys()
            .filter(|(generation, _)| *generation < keep_from)
            .copied()
            .collect();
        for (generation, rank) in doomed {
            release_slot(&mut inner, generation, rank);
        }
        inner
            .full_images
            .retain(|(generation, _), _| *generation >= keep_from);

        let mut freed = 0usize;
        inner.chunks.retain(|_, entry| {
            if entry.refs == 0 {
                freed += entry.stored.len();
                false
            } else {
                true
            }
        });
        freed
    }

    /// Aggregate occupancy.
    pub fn stats(&self) -> StorageStats {
        let inner = self.inner.lock();
        StorageStats {
            chunk_count: inner.chunks.len(),
            chunk_bytes: inner.chunks.values().map(|e| e.stored.len()).sum(),
            manifest_count: inner.manifests.len(),
            manifest_bytes: inner.manifests.values().map(|m| m.len()).sum(),
            full_image_count: inner.full_images.len(),
            full_image_bytes: inner.full_images.values().map(|i| i.len()).sum(),
        }
    }

    // ------------------------------------------------------------------
    // Fault injection (integrity testing)
    // ------------------------------------------------------------------

    /// Flip one byte of a stored chunk that is referenced by `(generation, rank)` and
    /// by **no other generation** — corrupting exactly one generation's data, the way
    /// a torn write during that checkpoint would. Returns an error if the generation
    /// has no such private chunk.
    pub fn corrupt_fresh_chunk(&self, generation: u64, rank: Rank) -> MpiResult<()> {
        let mut inner = self.inner.lock();
        let target = inner
            .manifests
            .get(&(generation, rank))
            .ok_or_else(|| {
                MpiError::Checkpoint(format!(
                    "no chunked checkpoint for generation {generation}, rank {rank}"
                ))
            })
            .and_then(|bytes| Manifest::decode(bytes))?;
        let shared: BTreeSet<(u64, u32)> = inner
            .manifests
            .iter()
            .filter(|(key, _)| **key != (generation, rank))
            .filter_map(|(_, bytes)| Manifest::decode(bytes).ok())
            .flat_map(|manifest| manifest.chunk_refs().map(|c| c.key()).collect::<Vec<_>>())
            .collect();
        let private = target
            .chunk_refs()
            .map(|c| c.key())
            .find(|key| !shared.contains(key))
            .ok_or_else(|| {
                MpiError::Checkpoint(format!(
                    "generation {generation}, rank {rank} shares every chunk with other \
                     generations; nothing private to corrupt"
                ))
            })?;
        let entry = inner
            .chunks
            .get_mut(&private)
            .ok_or_else(|| MpiError::Checkpoint("private chunk vanished".into()))?;
        let position = entry.stored.len() / 2;
        entry.stored[position] ^= 0x01;
        Ok(())
    }

    /// Flip one byte of the stored manifest (or flat image) for `(generation, rank)`.
    pub fn corrupt_manifest(&self, generation: u64, rank: Rank) -> MpiResult<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let bytes = match inner.manifests.get_mut(&(generation, rank)) {
            Some(bytes) => bytes,
            None => inner
                .full_images
                .get_mut(&(generation, rank))
                .ok_or_else(|| {
                    MpiError::Checkpoint(format!(
                        "no checkpoint for generation {generation}, rank {rank}"
                    ))
                })?,
        };
        let position = bytes.len() / 2;
        bytes[position] ^= 0x01;
        Ok(())
    }
}
