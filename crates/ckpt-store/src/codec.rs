//! Codec and digest selection for the chunk store, plus the in-tree LZ compressor.
//!
//! The store's wire-visible knobs live in [`StorageConfig`]: which compressor a
//! compressing policy uses ([`Codec`]) and which content-address digest chunks are
//! keyed and validated by ([`Digest`]). The defaults are the strongest pair (LZ +
//! XXH64); [`StorageConfig::legacy`] reproduces the pre-codec store (RLE + FNV-1a)
//! byte for byte, which is what keeps old checkpoint images restorable — see the
//! manifest's version negotiation ([`crate::manifest`]).
//!
//! ## LZ stream format (self-framed, byte-exact)
//!
//! A sequence of ops; control byte `c`:
//!
//! * `c < 0x80` — literal run: the next `c + 1` bytes are copied verbatim (1..=128);
//! * `c >= 0x80` — match: copy `(c & 0x7F) + 4` bytes from `distance` bytes back in
//!   the produced output, where `distance` is the following little-endian `u16`
//!   (1..=65535, may be shorter than the match length — overlapping copies
//!   replicate runs, which is what subsumes RLE). When `(c & 0x7F) == 0x7F` the
//!   distance is followed by extension bytes, each adding its value to the length,
//!   ending with the first byte below 255 (so a multi-KiB run is one op — this is
//!   what keeps LZ from ever losing to RLE on run-dominated data).
//!
//! The decoder validates everything: a match may not reach behind the start of the
//! produced output, the stream may not end inside an op, and the final length must
//! equal the recorded chunk length exactly. Combined with the digest check on the
//! decompressed bytes, a corrupted or truncated stored chunk cannot decode silently.

use mpi_model::error::{MpiError, MpiResult};
use serde::{Deserialize, Serialize};
use split_proc::integrity::{fnv1a64, xxh64};

/// Which compressor a compressing [`crate::StoragePolicy`] runs chunks through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Codec {
    /// The original run-length codec: only byte runs compress.
    Rle,
    /// The LZ77-style codec below: runs *and* repeated byte strings compress, so it
    /// never does worse than RLE on the corpus (both fall back to stored-raw).
    Lz,
}

/// Which 64-bit digest chunks are content-addressed and validated by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Digest {
    /// FNV-1a/64 — the pre-codec store's digest; kept for old images.
    Fnv1a64,
    /// XXH64 (seed 0) — stronger mixing at lower cost per byte.
    Xx64,
}

impl Digest {
    /// Digest `bytes` with this function.
    pub fn hash(self, bytes: &[u8]) -> u64 {
        match self {
            Digest::Fnv1a64 => fnv1a64(bytes),
            Digest::Xx64 => xxh64(bytes),
        }
    }

    /// Stable on-manifest tag.
    pub fn tag(self) -> u8 {
        match self {
            Digest::Fnv1a64 => 0,
            Digest::Xx64 => 1,
        }
    }

    /// Decode an on-manifest tag.
    pub fn from_tag(tag: u8) -> MpiResult<Digest> {
        match tag {
            0 => Ok(Digest::Fnv1a64),
            1 => Ok(Digest::Xx64),
            other => Err(MpiError::Checkpoint(format!(
                "unknown chunk digest tag {other}"
            ))),
        }
    }
}

/// The form a chunk's bytes take in the store — recorded per chunk in the manifest,
/// so the read path decodes by what was written, never by current configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StoredForm {
    /// Stored verbatim (incompressible under the codec in force, or a
    /// non-compressing policy).
    Raw,
    /// RLE stream ([`crate::chunk::rle_compress`]).
    Rle,
    /// LZ stream ([`lz_compress`]).
    Lz,
}

impl StoredForm {
    /// Whether this form needs a decompression pass on read.
    pub fn is_compressed(self) -> bool {
        self != StoredForm::Raw
    }

    /// Stable on-manifest tag. Tags 0 and 1 coincide with version-1 manifests'
    /// `compressed` boolean, which is what lets a Raw/Rle-only manifest still be
    /// written in the old format.
    pub fn tag(self) -> u8 {
        match self {
            StoredForm::Raw => 0,
            StoredForm::Rle => 1,
            StoredForm::Lz => 2,
        }
    }

    /// Decode an on-manifest tag.
    pub fn from_tag(tag: u8) -> MpiResult<StoredForm> {
        match tag {
            0 => Ok(StoredForm::Raw),
            1 => Ok(StoredForm::Rle),
            2 => Ok(StoredForm::Lz),
            other => Err(MpiError::Checkpoint(format!(
                "unknown chunk stored-form tag {other}"
            ))),
        }
    }
}

/// The store's codec/digest selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StorageConfig {
    /// Compressor used by compressing policies.
    pub codec: Codec,
    /// Content-address digest for chunk keys and read-path validation.
    pub digest: Digest,
}

impl Default for StorageConfig {
    /// The current defaults: LZ compression, XXH64 content addressing.
    fn default() -> Self {
        StorageConfig {
            codec: Codec::Lz,
            digest: Digest::Xx64,
        }
    }
}

impl StorageConfig {
    /// The pre-codec store's behaviour: RLE + FNV-1a/64. A store configured this way
    /// writes version-1 manifests bit-identical to what older builds produced.
    pub fn legacy() -> Self {
        StorageConfig {
            codec: Codec::Rle,
            digest: Digest::Fnv1a64,
        }
    }
}

// ----------------------------------------------------------------------------------
// LZ codec
// ----------------------------------------------------------------------------------

/// Shortest match worth encoding: a match op costs 3 bytes (control + distance).
const MIN_MATCH: usize = 4;
/// Longest match the control byte alone encodes; `(control & 0x7F) == 0x7F` marks
/// extension bytes carrying the rest.
const CONTROL_MATCH_MAX: usize = 0x7F + MIN_MATCH;
/// Longest literal run one op encodes.
const LITERAL_MAX: usize = 128;
/// Farthest back a match may reach (16-bit distance; chunks are ≤ 64 KiB anyway).
const MAX_DISTANCE: usize = u16::MAX as usize;
/// Hash-chain buckets (power of two).
const HASH_BUCKETS: usize = 1 << 13;
/// How many chain candidates the matcher tries per position before settling —
/// bounds worst-case encode time on adversarial data.
const MAX_CHAIN_DEPTH: usize = 32;

#[inline]
fn hash4(bytes: &[u8], at: usize) -> usize {
    // Multiplicative hash of the 4 bytes starting at `at` (caller guarantees them).
    let v = u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - 13)) as usize & (HASH_BUCKETS - 1)
}

/// LZ-compress `data`; returns `None` unless the compressed form is strictly smaller
/// (incompressible chunks are stored raw, exactly like the RLE codec's contract).
pub fn lz_compress(data: &[u8]) -> Option<Vec<u8>> {
    if data.len() < MIN_MATCH {
        return None;
    }
    let mut out = Vec::with_capacity(data.len() / 2);
    // head[h] = most recent position hashing to h; prev[i] = previous position in
    // i's chain. usize::MAX marks "no entry".
    let mut head = vec![usize::MAX; HASH_BUCKETS];
    let mut prev = vec![usize::MAX; data.len()];
    let mut literal_start = 0usize;
    let mut i = 0usize;
    while i + MIN_MATCH <= data.len() {
        let bucket = hash4(data, i);
        // Greedy: take the longest match among the first MAX_CHAIN_DEPTH candidates.
        let mut best_len = 0usize;
        let mut best_distance = 0usize;
        let mut candidate = head[bucket];
        let mut depth = 0;
        while candidate != usize::MAX && depth < MAX_CHAIN_DEPTH {
            let distance = i - candidate;
            if distance > MAX_DISTANCE {
                break; // chains are position-ordered: older entries are farther
            }
            let limit = data.len() - i;
            let mut len = 0usize;
            while len < limit && data[candidate + len] == data[i + len] {
                len += 1;
            }
            if len > best_len {
                best_len = len;
                best_distance = distance;
                if len == limit {
                    break;
                }
            }
            candidate = prev[candidate];
            depth += 1;
        }
        if best_len >= MIN_MATCH {
            flush_lz_literals(&mut out, &data[literal_start..i]);
            let control_len = best_len.min(CONTROL_MATCH_MAX);
            out.push(0x80 | (control_len - MIN_MATCH) as u8);
            out.extend_from_slice(&(best_distance as u16).to_le_bytes());
            if control_len == CONTROL_MATCH_MAX {
                // LZ4-style length extension: each byte adds its value, the first
                // byte below 255 terminates. An exactly-CONTROL_MATCH_MAX match
                // still emits one 0 byte, keeping the framing unambiguous.
                let mut rest = best_len - CONTROL_MATCH_MAX;
                while rest >= 255 {
                    out.push(255);
                    rest -= 255;
                }
                out.push(rest as u8);
            }
            // Insert every covered position into the chains so later matches can
            // reach into this match's span. (Indexing two tables by different
            // keys, so an iterator form would not simplify this.)
            #[allow(clippy::needless_range_loop)]
            for position in i..(i + best_len).min(data.len().saturating_sub(MIN_MATCH - 1)) {
                let bucket = hash4(data, position);
                prev[position] = head[bucket];
                head[bucket] = position;
            }
            i += best_len;
            literal_start = i;
        } else {
            prev[i] = head[bucket];
            head[bucket] = i;
            i += 1;
        }
        if out.len() + (i - literal_start) >= data.len() {
            return None; // already not worth it
        }
    }
    flush_lz_literals(&mut out, &data[literal_start..]);
    (out.len() < data.len()).then_some(out)
}

fn flush_lz_literals(out: &mut Vec<u8>, mut literals: &[u8]) {
    while !literals.is_empty() {
        let take = literals.len().min(LITERAL_MAX);
        out.push((take - 1) as u8);
        out.extend_from_slice(&literals[..take]);
        literals = &literals[take..];
    }
}

/// Decompress an LZ stream produced by [`lz_compress`], verifying the expected
/// output length and every match distance.
pub fn lz_decompress(stream: &[u8], expected_len: usize) -> MpiResult<Vec<u8>> {
    let mut out = Vec::with_capacity(expected_len);
    let mut i = 0usize;
    while i < stream.len() {
        let control = stream[i];
        i += 1;
        if control < 0x80 {
            let take = control as usize + 1;
            if i + take > stream.len() {
                return Err(MpiError::Checkpoint(
                    "truncated LZ literal run in chunk".into(),
                ));
            }
            out.extend_from_slice(&stream[i..i + take]);
            i += take;
        } else {
            let mut len = (control & 0x7F) as usize + MIN_MATCH;
            if i + 2 > stream.len() {
                return Err(MpiError::Checkpoint(
                    "truncated LZ match distance in chunk".into(),
                ));
            }
            let distance = u16::from_le_bytes([stream[i], stream[i + 1]]) as usize;
            i += 2;
            if len == CONTROL_MATCH_MAX {
                loop {
                    let extra = *stream.get(i).ok_or_else(|| {
                        MpiError::Checkpoint("truncated LZ match length extension in chunk".into())
                    })?;
                    i += 1;
                    len += extra as usize;
                    if extra < 255 {
                        break;
                    }
                    if len > expected_len {
                        return Err(MpiError::Checkpoint(
                            "LZ match length extension overruns the chunk".into(),
                        ));
                    }
                }
            }
            if distance == 0 || distance > out.len() {
                return Err(MpiError::Checkpoint(format!(
                    "LZ match reaches {distance} bytes back with only {} produced",
                    out.len()
                )));
            }
            // Byte-at-a-time: a distance shorter than the length is an overlapping
            // copy that replicates the last `distance` bytes (the RLE case).
            let start = out.len() - distance;
            for offset in 0..len {
                let byte = out[start + offset];
                out.push(byte);
            }
        }
        if out.len() > expected_len {
            return Err(MpiError::Checkpoint(format!(
                "LZ chunk decompressed past its recorded length ({} > {expected_len})",
                out.len()
            )));
        }
    }
    if out.len() != expected_len {
        return Err(MpiError::Checkpoint(format!(
            "LZ chunk decompressed to {} bytes, expected {expected_len}",
            out.len()
        )));
    }
    Ok(out)
}

/// Compress `data` under `codec`, returning the stored bytes and their form.
/// Falls back to stored-raw (borrowed nowhere — the caller keeps `data`) when the
/// codec cannot shrink the chunk.
pub fn compress_chunk(codec: Codec, data: &[u8]) -> (Vec<u8>, StoredForm) {
    match codec {
        Codec::Rle => match crate::chunk::rle_compress(data) {
            Some(stream) => (stream, StoredForm::Rle),
            None => (data.to_vec(), StoredForm::Raw),
        },
        Codec::Lz => match lz_compress(data) {
            Some(stream) => (stream, StoredForm::Lz),
            None => (data.to_vec(), StoredForm::Raw),
        },
    }
}

/// Decode a stored chunk back to its raw bytes according to its recorded form.
pub fn decode_chunk(form: StoredForm, stored: &[u8], raw_len: usize) -> MpiResult<Vec<u8>> {
    match form {
        StoredForm::Raw => Ok(stored.to_vec()),
        StoredForm::Rle => crate::chunk::rle_decompress(stored, raw_len),
        StoredForm::Lz => lz_decompress(stored, raw_len),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> bool {
        match lz_compress(data) {
            Some(stream) => {
                assert_eq!(lz_decompress(&stream, data.len()).unwrap(), data);
                true
            }
            None => false,
        }
    }

    #[test]
    fn lz_roundtrips_runs_and_repeats() {
        let mut data = vec![0u8; 10_000];
        data[5000..5010].copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let stream = lz_compress(&data).expect("zero-dominated data compresses");
        assert!(stream.len() < data.len() / 10);
        assert_eq!(lz_decompress(&stream, data.len()).unwrap(), data);

        // Repeated strings (not runs) — the case RLE cannot touch.
        let phrase = b"the quick brown checkpoint fox ".repeat(64);
        let stream = lz_compress(&phrase).expect("repeated strings compress");
        assert!(stream.len() < phrase.len() / 4);
        assert_eq!(lz_decompress(&stream, phrase.len()).unwrap(), phrase);
    }

    #[test]
    fn lz_handles_overlapping_copies_and_boundaries() {
        // Run of one byte → distance-1 overlapping matches.
        assert!(roundtrip(&[7u8; 500]));
        // Period-2 and period-3 patterns.
        assert!(roundtrip(
            &(0..600).map(|i| (i % 2) as u8).collect::<Vec<_>>()
        ));
        assert!(roundtrip(
            &(0..600).map(|i| (i % 3) as u8).collect::<Vec<_>>()
        ));
        // Exactly MIN_MATCH-long repeat.
        let mut data = b"abcdWXYZabcd".to_vec();
        data.extend_from_slice(&[0; 64]);
        roundtrip(&data);
        // Tiny inputs never compress (no room for an op to win).
        assert!(lz_compress(b"").is_none());
        assert!(lz_compress(b"abc").is_none());
    }

    #[test]
    fn lz_declines_incompressible_data() {
        // A xorshift byte stream: no 4-byte repeats within the window to speak of.
        let mut state = 0x12345678u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                state as u8
            })
            .collect();
        assert!(lz_compress(&data).is_none());
        let (stored, form) = compress_chunk(Codec::Lz, &data);
        assert_eq!(form, StoredForm::Raw);
        assert_eq!(stored, data);
    }

    #[test]
    fn lz_beats_or_matches_rle_on_run_heavy_data() {
        let mut data = vec![0u8; 40_000];
        for block in 0..10 {
            let at = block * 4000;
            data[at..at + 100].copy_from_slice(&[block as u8 + 1; 100]);
        }
        let lz = lz_compress(&data).unwrap().len();
        let rle = crate::chunk::rle_compress(&data).unwrap().len();
        assert!(lz <= rle, "LZ ({lz}) must not lose to RLE ({rle}) on runs");
    }

    #[test]
    fn lz_decompress_rejects_malformed_streams() {
        assert!(lz_decompress(&[0x05], 6).is_err()); // literal run cut off
        assert!(lz_decompress(&[0x80], 4).is_err()); // match missing distance
        assert!(lz_decompress(&[0x80, 1], 4).is_err()); // distance truncated
        assert!(lz_decompress(&[0x00, 9, 0x80, 5, 0], 5).is_err()); // distance 5 > 1 produced
        assert!(lz_decompress(&[0x00, 9, 0x80, 0, 0], 5).is_err()); // distance 0
        assert!(lz_decompress(&[0x01, 1, 2], 10).is_err()); // too short overall
        assert!(lz_decompress(&[0x00, 9, 0xFF, 1, 0], 2).is_err()); // overruns expected
    }

    #[test]
    fn digests_and_tags_round_trip() {
        assert_ne!(
            Digest::Fnv1a64.hash(b"checkpoint"),
            Digest::Xx64.hash(b"checkpoint")
        );
        for digest in [Digest::Fnv1a64, Digest::Xx64] {
            assert_eq!(Digest::from_tag(digest.tag()).unwrap(), digest);
        }
        assert!(Digest::from_tag(9).is_err());
        for form in [StoredForm::Raw, StoredForm::Rle, StoredForm::Lz] {
            assert_eq!(StoredForm::from_tag(form.tag()).unwrap(), form);
        }
        assert!(StoredForm::from_tag(9).is_err());
        assert!(!StoredForm::Raw.is_compressed());
        assert!(StoredForm::Lz.is_compressed());
    }

    #[test]
    fn config_defaults_and_legacy() {
        let current = StorageConfig::default();
        assert_eq!(current.codec, Codec::Lz);
        assert_eq!(current.digest, Digest::Xx64);
        let legacy = StorageConfig::legacy();
        assert_eq!(legacy.codec, Codec::Rle);
        assert_eq!(legacy.digest, Digest::Fnv1a64);
    }

    #[test]
    fn decode_chunk_dispatches_by_form() {
        let data = vec![3u8; 1000];
        for codec in [Codec::Rle, Codec::Lz] {
            let (stored, form) = compress_chunk(codec, &data);
            assert!(form.is_compressed());
            assert_eq!(decode_chunk(form, &stored, data.len()).unwrap(), data);
        }
        assert_eq!(
            decode_chunk(StoredForm::Raw, &data, data.len()).unwrap(),
            data
        );
    }
}
