//! The per-rank MANA runtime: the object an application links against in place of the
//! MPI library.
//!
//! A [`ManaRank`] owns one rank's *lower half* (a `Box<dyn MpiApi>` — any simulated MPI
//! implementation), its virtual-id state (unified table or legacy maps, per
//! configuration), the replay log, the upper-half address space the application's state
//! lives in, and the drain bookkeeping needed at checkpoint time. The application calls
//! the wrapper methods defined in [`crate::wrappers`]; every wrapped call translates
//! virtual ids to physical handles, crosses into the lower half exactly once (counted),
//! and translates any returned handles back.

use crate::ckpt::CheckpointIntercept;
use crate::config::{ManaConfig, VirtIdMode};
use crate::legacy::LegacyTables;
use crate::record::{CollectiveLog, ReplayLog};
use crate::virtid::{Descriptor, VirtualId, VirtualIdTable};
use mpi_model::api::MpiApi;
use mpi_model::constants::{ConstantResolution, PredefinedObject};
use mpi_model::error::{MpiError, MpiResult};
use mpi_model::op::UserFunctionRegistry;
use mpi_model::payload::PayloadBuf;
use mpi_model::subset::SubsetFeature;
use mpi_model::types::{HandleKind, PhysHandle, Rank, Tag};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use split_proc::address_space::UpperHalfSpace;
use split_proc::crossing::CrossingCounter;
use std::sync::Arc;

/// Magic pattern stored in the upper 32 bits of an [`AppHandle`], standing in for the
/// remaining bytes of whatever handle type the MPI implementation's `mpi.h` declares.
pub const APP_HANDLE_MAGIC: u64 = 0x4D41_4E41_0000_0000; // "MANA" << 32

/// The handle type the *application* sees.
///
/// Paper §4.2: "MANA embeds its virtual id (the 32-bit integer) into the first 4 bytes
/// of the MPI object type declared by the MPI include file." Whether that type is a
/// 32-bit `int` (MPICH family) or a 64-bit pointer (Open MPI, ExaMPI), the first 32
/// bits carry the virtual id; here the remaining 32 bits hold a fixed magic pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AppHandle(pub u64);

impl AppHandle {
    /// Wrap a virtual id into an application-visible handle.
    pub fn from_virtual(vid: VirtualId) -> Self {
        AppHandle(APP_HANDLE_MAGIC | vid.bits() as u64)
    }

    /// Recover the embedded virtual id.
    pub fn virtual_id(self) -> MpiResult<VirtualId> {
        VirtualId::from_bits(self.0 as u32).ok_or(MpiError::Internal(format!(
            "application handle {:#x} does not carry a MANA virtual id",
            self.0
        )))
    }

    /// The null application handle (no object).
    pub const NULL: AppHandle = AppHandle(0);

    /// Whether this is the null handle.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

/// A point-to-point message drained out of the network at checkpoint time and buffered
/// in the upper half until the application asks for it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferedMessage {
    /// Virtual id of the communicator the message was sent on.
    pub comm: VirtualId,
    /// Sender's rank within that communicator.
    pub source: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Payload bytes. A refcounted [`PayloadBuf`]: buffering a drained message
    /// keeps sharing the allocation the sender injected, and it serializes into
    /// the checkpoint image exactly like the `Vec<u8>` it replaced.
    pub payload: PayloadBuf,
}

/// Either virtual-id data structure, behind one dispatching facade so the wrapper layer
/// is identical in both modes (only the translation cost differs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Translator {
    /// The new unified descriptor table (paper §4.2).
    Unified(VirtualIdTable),
    /// The legacy per-type string-keyed maps (paper §4.1).
    Legacy(LegacyTables),
}

impl Translator {
    /// Create an empty translator of the configured kind.
    pub fn new(mode: VirtIdMode) -> Self {
        match mode {
            VirtIdMode::UnifiedTable => Translator::Unified(VirtualIdTable::new()),
            VirtIdMode::LegacyMaps => Translator::Legacy(LegacyTables::new()),
        }
    }

    /// Insert a descriptor, assigning a fresh virtual id.
    pub fn insert_with(
        &mut self,
        kind: HandleKind,
        predefined: Option<PredefinedObject>,
        ggid_policy: crate::config::GgidPolicy,
        build: impl FnMut(VirtualId, u64) -> Descriptor,
    ) -> VirtualId {
        match self {
            Translator::Unified(t) => t.insert_with(kind, predefined, ggid_policy, build),
            Translator::Legacy(t) => t.insert_with(kind, predefined, ggid_policy, build),
        }
    }

    /// Borrow a descriptor.
    pub fn get(&self, vid: VirtualId) -> MpiResult<&Descriptor> {
        match self {
            Translator::Unified(t) => t.get(vid),
            Translator::Legacy(t) => t.get(vid),
        }
    }

    /// Mutably borrow a descriptor.
    pub fn get_mut(&mut self, vid: VirtualId) -> MpiResult<&mut Descriptor> {
        match self {
            Translator::Unified(t) => t.get_mut(vid),
            Translator::Legacy(t) => t.get_mut(vid),
        }
    }

    /// Remove a descriptor.
    pub fn remove(&mut self, vid: VirtualId) -> MpiResult<Descriptor> {
        match self {
            Translator::Unified(t) => t.remove(vid),
            Translator::Legacy(t) => t.remove(vid),
        }
    }

    /// Hot-path virtual→physical translation.
    pub fn virtual_to_physical(&self, vid: VirtualId) -> MpiResult<PhysHandle> {
        match self {
            Translator::Unified(t) => t.virtual_to_physical(vid),
            Translator::Legacy(t) => t.virtual_to_physical(vid),
        }
    }

    /// Rare physical→virtual translation.
    pub fn physical_to_virtual(&self, phys: PhysHandle) -> Option<VirtualId> {
        match self {
            Translator::Unified(t) => t.physical_to_virtual(phys),
            Translator::Legacy(t) => t.physical_to_virtual(phys),
        }
    }

    /// Rebind a virtual id to a new physical handle.
    pub fn rebind(&mut self, vid: VirtualId, phys: PhysHandle) -> MpiResult<()> {
        match self {
            Translator::Unified(t) => t.rebind(vid, phys),
            Translator::Legacy(t) => t.rebind(vid, phys),
        }
    }

    /// Drop all physical bindings.
    pub fn clear_physical_bindings(&mut self) {
        match self {
            Translator::Unified(t) => t.clear_physical_bindings(),
            Translator::Legacy(t) => t.clear_physical_bindings(),
        }
    }

    /// Live descriptors in creation order.
    pub fn iter_in_creation_order(&self) -> Vec<&Descriptor> {
        match self {
            Translator::Unified(t) => t.iter_in_creation_order(),
            Translator::Legacy(t) => t.iter_in_creation_order(),
        }
    }

    /// Virtual id registered for a predefined object, if any.
    pub fn find_predefined(&self, object: PredefinedObject) -> Option<VirtualId> {
        match self {
            Translator::Unified(t) => t.find_predefined(object),
            Translator::Legacy(t) => t.find_predefined(object),
        }
    }

    /// Number of live descriptors.
    pub fn len(&self) -> usize {
        match self {
            Translator::Unified(t) => t.len(),
            Translator::Legacy(t) => t.len(),
        }
    }

    /// Whether the translator holds no descriptors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rebuild any derived indexes after deserialization + rebinding.
    pub fn rebuild_indexes(&mut self) {
        if let Translator::Unified(t) = self {
            t.rebuild_reverse_index();
        }
    }
}

/// MANA's per-rank drain bookkeeping, serialized into the checkpoint image so the
/// counters stay consistent if a job checkpoints more than once.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrainCounters {
    /// Point-to-point messages sent to each world rank since job start.
    pub sent_to: Vec<u64>,
    /// Point-to-point messages received from each world rank since job start.
    pub received_from: Vec<u64>,
}

impl DrainCounters {
    /// Zeroed counters for a world of `world_size` ranks.
    pub fn new(world_size: usize) -> Self {
        DrainCounters {
            sent_to: vec![0; world_size],
            received_from: vec![0; world_size],
        }
    }
}

/// The per-rank MANA runtime.
pub struct ManaRank {
    pub(crate) lower: Box<dyn MpiApi>,
    pub(crate) config: ManaConfig,
    pub(crate) translator: Translator,
    pub(crate) replay_log: ReplayLog,
    pub(crate) collectives: CollectiveLog,
    pub(crate) buffered: Vec<BufferedMessage>,
    pub(crate) counters: DrainCounters,
    pub(crate) crossings: CrossingCounter,
    pub(crate) upper: UpperHalfSpace,
    pub(crate) registry: Arc<RwLock<UserFunctionRegistry>>,
    pub(crate) world_rank: Rank,
    pub(crate) world_size: usize,
    pub(crate) generation: u64,
    /// Whether the lower half supports the registration phase of the two-phase
    /// collective protocol (cached from its feature list at construction).
    pub(crate) two_phase: bool,
    /// The mid-step checkpoint hook, if an orchestrator installed one: collective
    /// wrappers consult it at their safe points (before registering and after
    /// completing — never inside the critical phase).
    pub(crate) intercept: Option<Arc<dyn CheckpointIntercept>>,
}

impl std::fmt::Debug for ManaRank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManaRank")
            .field("implementation", &self.lower.implementation_name())
            .field("world_rank", &self.world_rank)
            .field("world_size", &self.world_size)
            .field("virtid_mode", &self.config.virtid_mode)
            .field("descriptors", &self.translator.len())
            .field("generation", &self.generation)
            .finish()
    }
}

impl ManaRank {
    /// Wrap a lower half in the MANA runtime.
    ///
    /// Fails if the configuration asks for the legacy integer virtual ids while the
    /// lower half is an implementation whose constants are not stable compile-time
    /// integers — exactly the combination the paper shows the legacy design cannot
    /// support (Open MPI's pointer handles, ExaMPI's lazy constants).
    pub fn new(
        lower: Box<dyn MpiApi>,
        config: ManaConfig,
        registry: Arc<RwLock<UserFunctionRegistry>>,
    ) -> MpiResult<Self> {
        if config.virtid_mode == VirtIdMode::LegacyMaps
            && lower.constant_resolution() != ConstantResolution::CompileTimeInteger
        {
            return Err(MpiError::Unsupported {
                feature: "legacy integer virtual ids on a non-MPICH-family MPI implementation",
            });
        }
        let world_rank = lower.world_rank();
        let world_size = lower.world_size();
        let two_phase = lower
            .provided_features()
            .contains(&SubsetFeature::CollectiveRegistration);
        Ok(ManaRank {
            lower,
            config,
            translator: Translator::new(config.virtid_mode),
            replay_log: ReplayLog::new(),
            collectives: CollectiveLog::new(),
            buffered: Vec::new(),
            counters: DrainCounters::new(world_size),
            crossings: CrossingCounter::new(),
            upper: UpperHalfSpace::new(),
            registry,
            world_rank,
            world_size,
            generation: 0,
            two_phase,
            intercept: None,
        })
    }

    /// World rank of this process.
    pub fn world_rank(&self) -> Rank {
        self.world_rank
    }

    /// Number of ranks in the job.
    pub fn world_size(&self) -> usize {
        self.world_size
    }

    /// Name of the MPI implementation currently loaded in the lower half.
    pub fn implementation_name(&self) -> &'static str {
        self.lower.implementation_name()
    }

    /// The MANA configuration in force.
    pub fn config(&self) -> ManaConfig {
        self.config
    }

    /// Number of upper↔lower crossings (wrapped MPI calls forwarded to the lower half)
    /// performed so far — the quantity §6.3 of the paper measures per application.
    pub fn crossings(&self) -> u64 {
        self.crossings.total()
    }

    /// A clone of the crossing counter (shared; useful for job-wide aggregation).
    pub fn crossing_counter(&self) -> CrossingCounter {
        self.crossings.clone()
    }

    /// Number of live virtual-id descriptors.
    pub fn descriptor_count(&self) -> usize {
        self.translator.len()
    }

    /// Number of drained messages currently buffered in the upper half.
    pub fn buffered_messages(&self) -> usize {
        self.buffered.len()
    }

    /// The checkpoint generation this rank is on (number of checkpoints taken).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Shared registry of user reduction functions.
    pub fn registry(&self) -> Arc<RwLock<UserFunctionRegistry>> {
        Arc::clone(&self.registry)
    }

    /// The upper-half ledger of collective progress (published sequence numbers and
    /// the at-most-one pending registration).
    pub fn collective_log(&self) -> &CollectiveLog {
        &self.collectives
    }

    /// Whether collectives on this rank run through the two-phase protocol (the lower
    /// half advertises collective registration).
    pub fn two_phase_collectives(&self) -> bool {
        self.two_phase
    }

    /// Install a mid-step checkpoint hook: collective wrappers will consult it at
    /// their safe points and service pending checkpoint intents through it.
    pub fn set_intercept(&mut self, intercept: Arc<dyn CheckpointIntercept>) {
        self.intercept = Some(intercept);
    }

    /// Remove the mid-step checkpoint hook.
    pub fn clear_intercept(&mut self) {
        self.intercept = None;
    }

    /// Read-only view of the application's upper-half address space.
    pub fn upper(&self) -> &UpperHalfSpace {
        &self.upper
    }

    /// Mutable view of the application's upper-half address space. Application state
    /// stored here (and only here) survives checkpoints.
    pub fn upper_mut(&mut self) -> &mut UpperHalfSpace {
        &mut self.upper
    }

    /// Audit the currently loaded lower half for the required MANA subset.
    pub fn audit_lower_half(&self) -> crate::subset_check::ManaCompatibility {
        crate::subset_check::audit_api(self.lower.as_ref())
    }

    // ------------------------------------------------------------------
    // Internal helpers shared by the wrapper/checkpoint/restart modules
    // ------------------------------------------------------------------

    /// Record one crossing into the lower half.
    pub(crate) fn cross(&self) {
        self.crossings.record();
    }

    /// Translate an application handle to the descriptor's current physical handle.
    pub(crate) fn phys(&self, handle: AppHandle, expected: HandleKind) -> MpiResult<PhysHandle> {
        let vid = handle.virtual_id()?;
        if vid.kind() != expected {
            return Err(MpiError::WrongKind {
                expected,
                found: vid.kind(),
            });
        }
        self.translator.virtual_to_physical(vid)
    }

    /// Resolve (or lazily enter) the virtual id for a predefined object and return the
    /// application handle for it.
    pub fn constant(&mut self, object: PredefinedObject) -> MpiResult<AppHandle> {
        if let Some(vid) = self.translator.find_predefined(object) {
            return Ok(AppHandle::from_virtual(vid));
        }
        self.cross();
        let phys = self.lower.resolve_constant(object)?;
        let ggid_policy = self.config.ggid_policy;
        let members = match object {
            PredefinedObject::CommWorld => Some((0..self.world_size as Rank).collect::<Vec<_>>()),
            PredefinedObject::CommSelf => Some(vec![self.world_rank]),
            PredefinedObject::GroupEmpty => Some(vec![]),
            _ => None,
        };
        let datatype = match object {
            PredefinedObject::Datatype(p) => {
                Some(mpi_model::datatype::TypeDescriptor::Primitive(p))
            }
            _ => None,
        };
        let op = match object {
            PredefinedObject::Op(o) => Some(mpi_model::op::OpDescriptor::Predefined(o)),
            _ => None,
        };
        let kind = object.kind();
        let vid = self
            .translator
            .insert_with(kind, Some(object), ggid_policy, |vid, seq| {
                let mut d = crate::virtid::blank_descriptor(kind, phys);
                d.vid = vid;
                d.creation_seq = seq;
                d.predefined = Some(object);
                d.members_world = members.clone();
                d.datatype = datatype.clone();
                d.op = op;
                d
            });
        Ok(AppHandle::from_virtual(vid))
    }

    /// Convenience: the application handle for `MPI_COMM_WORLD`.
    pub fn world(&mut self) -> MpiResult<AppHandle> {
        self.constant(PredefinedObject::CommWorld)
    }

    /// The world rank of `peer` (a rank within the communicator `comm`).
    pub(crate) fn peer_world_rank(&self, comm: VirtualId, peer: Rank) -> MpiResult<Rank> {
        let descriptor = self.translator.get(comm)?;
        let members = descriptor
            .members_world
            .as_ref()
            .ok_or_else(|| MpiError::Internal("communicator descriptor without members".into()))?;
        members
            .get(peer.max(0) as usize)
            .copied()
            .ok_or(MpiError::InvalidRank {
                rank: peer,
                size: members.len(),
            })
    }

    /// Position of the earliest buffered (drained) message matching the receive
    /// arguments, without consuming it.
    pub(crate) fn buffered_position(
        &self,
        comm: VirtualId,
        source: Rank,
        tag: Tag,
    ) -> Option<usize> {
        use mpi_model::types::{ANY_SOURCE, ANY_TAG};
        self.buffered.iter().position(|m| {
            m.comm == comm
                && (source == ANY_SOURCE || m.source == source)
                && (tag == ANY_TAG || m.tag == tag)
        })
    }

    /// Take the earliest buffered (drained) message matching the receive arguments,
    /// refusing — with the message left buffered, so a larger retry still receives
    /// it — when it does not fit in `max_bytes`. `Ok(None)` means nothing matches.
    pub(crate) fn take_buffered_checked(
        &mut self,
        comm: VirtualId,
        source: Rank,
        tag: Tag,
        max_bytes: usize,
    ) -> MpiResult<Option<(mpi_model::status::Status, PayloadBuf)>> {
        let Some(position) = self.buffered_position(comm, source, tag) else {
            return Ok(None);
        };
        let message_bytes = self.buffered[position].payload.len();
        if message_bytes > max_bytes {
            return Err(MpiError::Truncate {
                message_bytes,
                buffer_bytes: max_bytes,
            });
        }
        let message = self.buffered.remove(position);
        let status = mpi_model::status::Status::new(message.source, message.tag, message_bytes);
        Ok(Some((status, message.payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_model::api::MpiImplementationFactory;
    use mpich_sim::MpichFactory;
    use openmpi_sim::OpenMpiFactory;

    fn registry() -> Arc<RwLock<UserFunctionRegistry>> {
        Arc::new(RwLock::new(UserFunctionRegistry::new()))
    }

    #[test]
    fn app_handle_embeds_virtual_id() {
        let vid = VirtualId::new(HandleKind::Comm, true, 7);
        let handle = AppHandle::from_virtual(vid);
        assert_eq!(handle.virtual_id().unwrap(), vid);
        assert_eq!(handle.0 >> 32, APP_HANDLE_MAGIC >> 32);
        assert!(AppHandle::NULL.is_null());
        assert!(!handle.is_null());
    }

    #[test]
    fn legacy_mode_rejected_on_openmpi_but_accepted_on_mpich() {
        let reg = registry();
        let mut openmpi = OpenMpiFactory::new().launch(1, reg.clone(), 1).unwrap();
        let err = ManaRank::new(openmpi.remove(0), ManaConfig::legacy_design(), reg.clone())
            .expect_err("legacy ids cannot serve Open MPI");
        assert!(matches!(err, MpiError::Unsupported { .. }));

        let mut mpich = MpichFactory::mpich().launch(1, reg.clone(), 1).unwrap();
        assert!(ManaRank::new(mpich.remove(0), ManaConfig::legacy_design(), reg).is_ok());
    }

    #[test]
    fn constants_are_cached_and_kinds_checked() {
        let reg = registry();
        let mut ranks = MpichFactory::mpich().launch(1, reg.clone(), 1).unwrap();
        let mut mana = ManaRank::new(ranks.remove(0), ManaConfig::new_design(), reg).unwrap();
        let a = mana.world().unwrap();
        let b = mana.world().unwrap();
        assert_eq!(
            a, b,
            "constant resolution is cached in the descriptor table"
        );
        assert_eq!(mana.descriptor_count(), 1);
        // Passing a communicator where a datatype is expected fails with WrongKind.
        let err = mana.phys(a, HandleKind::Datatype).unwrap_err();
        assert!(matches!(err, MpiError::WrongKind { .. }));
        assert!(mana.audit_lower_half().compatible());
    }
}
