//! MANA configuration: which virtual-id design to use, how to compute ggids, how
//! upper↔lower crossings are costed, and how checkpoint images reach storage.

use serde::{Deserialize, Serialize};
use split_proc::crossing::CrossingMode;

pub use ckpt_store::StoragePolicy;

/// Which virtual-id data structure the wrapper layer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VirtIdMode {
    /// The pre-paper production design (paper §4.1): one string-keyed associative map
    /// per MPI object type, `int`-sized virtual ids, and separate side tables for any
    /// metadata. Only sound when the lower half's constants are stable integers, i.e.
    /// the MPICH family — attempting to use it with Open MPI or ExaMPI fails, which is
    /// exactly the limitation that motivated the new design.
    LegacyMaps,
    /// The new implementation-oblivious design (paper §4.2): one unified table of
    /// descriptor structs indexed by a 32-bit virtual id that embeds the kind tag and
    /// ggid/index, with all per-object metadata stored inline in the descriptor.
    UnifiedTable,
}

impl VirtIdMode {
    /// Short label used by the benchmark harness ("MANA" vs "MANA+virtId").
    pub fn label(self) -> &'static str {
        match self {
            VirtIdMode::LegacyMaps => "MANA",
            VirtIdMode::UnifiedTable => "MANA+virtId",
        }
    }
}

/// When the ggid (global group id) of a new communicator is computed (paper §4.2, §9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GgidPolicy {
    /// Compute the ggid as soon as the communicator is created (the paper's current
    /// choice). Costs a hash of the membership per creation — noticeable for codes
    /// that create and free communicators in a loop.
    Eager,
    /// Defer computing the ggid until it is first needed (checkpoint time).
    Lazy,
    /// Compute eagerly only for communicators at most this many members; defer larger
    /// ones. A middle ground the paper's future-work section contemplates.
    Hybrid {
        /// Membership size at or below which the ggid is computed eagerly.
        eager_up_to: usize,
    },
}

impl GgidPolicy {
    /// Whether a communicator of `members` ranks gets its ggid computed at creation.
    pub fn eager_for(&self, members: usize) -> bool {
        match self {
            GgidPolicy::Eager => true,
            GgidPolicy::Lazy => false,
            GgidPolicy::Hybrid { eager_up_to } => members <= *eager_up_to,
        }
    }
}

/// Per-rank MANA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ManaConfig {
    /// Virtual-id data structure.
    pub virtid_mode: VirtIdMode,
    /// ggid computation policy.
    pub ggid_policy: GgidPolicy,
    /// The `fs`-register switching mechanism available on the host (used only for
    /// overhead accounting; the simulation's correctness does not depend on it).
    pub crossing_mode: CrossingMode,
    /// How [`ManaRank::checkpoint_into`] writes this rank's images to a
    /// [`ckpt_store::CheckpointStorage`]: the legacy flat image (the paper's baseline)
    /// or the incremental content-addressed engine, optionally compressed.
    ///
    /// [`ManaRank::checkpoint_into`]: crate::runtime::ManaRank::checkpoint_into
    pub storage: StoragePolicy,
}

impl Default for ManaConfig {
    fn default() -> Self {
        ManaConfig {
            virtid_mode: VirtIdMode::UnifiedTable,
            ggid_policy: GgidPolicy::Eager,
            crossing_mode: CrossingMode::Fsgsbase,
            storage: StoragePolicy::FullImage,
        }
    }
}

impl ManaConfig {
    /// The new-design configuration (unified table, eager ggid).
    pub fn new_design() -> Self {
        Self::default()
    }

    /// The legacy-design configuration (string-keyed per-type maps).
    pub fn legacy_design() -> Self {
        ManaConfig {
            virtid_mode: VirtIdMode::LegacyMaps,
            ..Self::default()
        }
    }

    /// Same configuration but with the given crossing mode.
    pub fn with_crossing(mut self, mode: CrossingMode) -> Self {
        self.crossing_mode = mode;
        self
    }

    /// Same configuration but with the given ggid policy.
    pub fn with_ggid(mut self, policy: GgidPolicy) -> Self {
        self.ggid_policy = policy;
        self
    }

    /// Same configuration but with the given checkpoint storage policy.
    pub fn with_storage(mut self, policy: StoragePolicy) -> Self {
        self.storage = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(VirtIdMode::LegacyMaps.label(), "MANA");
        assert_eq!(VirtIdMode::UnifiedTable.label(), "MANA+virtId");
    }

    #[test]
    fn ggid_policy_thresholds() {
        assert!(GgidPolicy::Eager.eager_for(1_000_000));
        assert!(!GgidPolicy::Lazy.eager_for(1));
        let hybrid = GgidPolicy::Hybrid { eager_up_to: 64 };
        assert!(hybrid.eager_for(64));
        assert!(!hybrid.eager_for(65));
    }

    #[test]
    fn builders() {
        let config = ManaConfig::legacy_design()
            .with_crossing(CrossingMode::Prctl)
            .with_ggid(GgidPolicy::Lazy)
            .with_storage(StoragePolicy::IncrementalCompressed);
        assert_eq!(config.virtid_mode, VirtIdMode::LegacyMaps);
        assert_eq!(config.crossing_mode, CrossingMode::Prctl);
        assert_eq!(config.ggid_policy, GgidPolicy::Lazy);
        assert_eq!(config.storage, StoragePolicy::IncrementalCompressed);
        assert_eq!(ManaConfig::default().virtid_mode, VirtIdMode::UnifiedTable);
        assert_eq!(ManaConfig::default().storage, StoragePolicy::FullImage);
    }
}
