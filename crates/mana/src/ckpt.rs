//! Transparent checkpoint: drain the network, then save the upper half.
//!
//! The checkpoint is *collective and cooperative*: every rank calls
//! [`ManaRank::checkpoint`] (in the real system a checkpoint-request signal interrupts
//! the ranks at a wrapper boundary; the coordination protocol from there on is the
//! same). The algorithm uses only MPI calls from the required subset of paper §5:
//!
//! 1. `MPI_Barrier` on the world communicator — every rank has stopped injecting new
//!    point-to-point messages.
//! 2. `MPI_Alltoall` of per-destination send counts — every rank learns how many
//!    messages are still headed its way.
//! 3. A drain loop of `MPI_Iprobe` + `MPI_Recv` over every live communicator until the
//!    received counts match the expected counts. Drained messages are buffered in the
//!    *upper half*, so the application will still receive them (from the buffer) after
//!    the restart.
//! 4. `MPI_Barrier`, then serialize the upper half — application regions, the
//!    descriptor table, the replay log, the drained-message buffer and the drain
//!    counters — into a [`CheckpointImage`] and hand it to the checkpoint store.
//!
//! Nothing from the lower half (fabric mailboxes, library object stores, constant
//! addresses) is saved: that is the whole point of the split-process design.

use crate::runtime::{BufferedMessage, ManaRank};
use ckpt_store::{CheckpointStorage, FlushHandle, FlusherPool, StoreReport};
use mpi_model::buffer::{bytes_to_u64, u64_to_bytes};
use mpi_model::constants::PredefinedObject;
use mpi_model::error::{MpiError, MpiResult};
use mpi_model::types::{HandleKind, Rank, ANY_SOURCE, ANY_TAG};
use split_proc::image::{CheckpointImage, ImageMetadata};
use split_proc::store::{CheckpointStore, WriteReport};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Upper-half region names used for MANA's own state inside a checkpoint image.
pub mod regions {
    /// The virtual-id translator (descriptor table or legacy maps).
    pub const TRANSLATOR: &str = "mana.translator";
    /// The object-creation replay log.
    pub const REPLAY_LOG: &str = "mana.replay_log";
    /// Messages drained from the network at checkpoint time.
    pub const BUFFERED: &str = "mana.buffered";
    /// Per-peer send/receive counters.
    pub const COUNTERS: &str = "mana.counters";
    /// The collective-progress ledger (published sequence numbers + the pending
    /// registration of a straddled collective).
    pub const COLLECTIVES: &str = "mana.collectives";

    /// All MANA-internal regions, in the order they are mapped into an image.
    pub const ALL: [&str; 5] = [TRANSLATOR, REPLAY_LOG, BUFFERED, COUNTERS, COLLECTIVES];
}

/// Smallest sleep of the drain backoff ladder.
const BACKOFF_FLOOR: Duration = Duration::from_micros(4);
/// Cap of the drain backoff ladder: an idle rank never sleeps longer than this
/// between probe sweeps, so late traffic is still picked up promptly.
const BACKOFF_CAP: Duration = Duration::from_millis(1);

/// The drain's expected traffic and the job-wide collective agreement, produced by
/// [`ManaRank::begin_checkpoint`]: how many point-to-point messages each world rank
/// has sent this rank since job start, plus the world-communicator collective epoch
/// every rank reported — the proof that no rank sits inside a collective's critical
/// phase (all ranks are *between* the same pair of world collectives).
#[derive(Debug, Clone)]
pub struct DrainPlan {
    expected_from: Vec<u64>,
    collective_epoch: u64,
}

impl DrainPlan {
    /// A hand-built plan: expect `expected_from[i]` cumulative messages from world
    /// rank `i`, at the given collective epoch. For tests and stall-path diagnostics
    /// that need a plan no real exchange would produce (e.g. a peer that never
    /// sends); real checkpoints get their plan from
    /// [`ManaRank::begin_checkpoint`].
    pub fn synthetic(expected_from: Vec<u64>, collective_epoch: u64) -> Self {
        DrainPlan {
            expected_from,
            collective_epoch,
        }
    }

    /// Expected cumulative message count from each world rank.
    pub fn expected_from(&self) -> &[u64] {
        &self.expected_from
    }

    /// The job-agreed collective epoch: completed collectives on the world
    /// communicator, identical on every rank at checkpoint time.
    pub fn collective_epoch(&self) -> u64 {
        self.collective_epoch
    }
}

/// What a serviced checkpoint intent asks the interrupted wrapper to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntentOutcome {
    /// Resume the interrupted operation (checkpoint-and-continue).
    Continue,
    /// Vacate the allocation: the wrapper unwinds with
    /// [`MpiError::Preempted`] and the orchestrator treats the run as preempted.
    Vacate,
}

/// The mid-step checkpoint hook an orchestrator installs on a [`ManaRank`]
/// (see [`ManaRank::set_intercept`]): how a rank learns that a checkpoint intent has
/// been broadcast, and how it services one from *inside* a wrapper.
///
/// Collective wrappers consult the hook only at registration-phase safe points:
/// wrapper entry (before registering), and from the registration poll loop, where a
/// rank withdraws its registration (atomically, see `collective_withdraw`) before
/// servicing — so a checkpoint can never catch a rank inside a collective. There is
/// no post-critical-phase check: an intent arriving during the critical phase waits
/// for the next registration or step-boundary safe point, where every rank's
/// upper-half state is the same deterministic step prefix.
pub trait CheckpointIntercept: Send + Sync {
    /// Whether a checkpoint intent is pending that this rank has not serviced yet.
    fn intent_pending(&self) -> bool;

    /// Service the pending intent: run this rank's side of a full coordinated
    /// checkpoint (quiesce, drain, write, commit). Called with the rank at a safe
    /// point. Returns what the interrupted wrapper should do next.
    fn service(&self, rank: &mut ManaRank) -> MpiResult<IntentOutcome>;
}

/// One peer this rank is still waiting on during a drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainShortfall {
    /// The peer world rank that still owes messages.
    pub peer: Rank,
    /// Messages that peer has sent this rank since job start.
    pub expected: u64,
    /// Messages this rank has received from that peer so far.
    pub received: u64,
}

impl DrainShortfall {
    /// Messages still missing from this peer.
    pub fn missing(&self) -> u64 {
        self.expected.saturating_sub(self.received)
    }
}

fn describe_shortfalls(shortfalls: &[DrainShortfall], dead_peers: &[Rank]) -> String {
    shortfalls
        .iter()
        .map(|s| {
            // Distinguish a peer that will *never* send (its heartbeat expired) from
            // one that is merely slow: under chaos the two need opposite responses —
            // abort-and-recover vs wait — and a stall budget is only meaningful for
            // the latter.
            let verdict = if dead_peers.contains(&s.peer) {
                "peer dead: heartbeat expired"
            } else {
                "peer slow"
            };
            format!(
                "rank {} is short {} (expected {}, received {}; {verdict})",
                s.peer,
                s.missing(),
                s.expected,
                s.received
            )
        })
        .collect::<Vec<_>>()
        .join("; ")
}

/// Observes drain progress across whatever scope the caller has: a single rank (the
/// default, [`LocalDrainObserver`]) or the whole job (a coordinator).
///
/// The drain loop declares a stall only when the observer's *progress stamp* has been
/// frozen for the whole stall budget. A job-wide observer therefore keeps a rank
/// patient while any other rank is still making progress — the coordinator-observed
/// replacement for the old per-rank idle-round counter, which could misfire on a slow
/// machine even though the job as a whole was healthy.
pub trait DrainObserver: Send + Sync {
    /// Record that `rank` drained `messages` more in-flight messages.
    fn record_progress(&self, rank: Rank, messages: u64);

    /// A stamp that increases whenever any observed rank makes progress.
    fn progress_stamp(&self) -> u64;

    /// How long a rank may watch a frozen stamp before declaring the drain stalled.
    fn stall_budget(&self) -> Duration {
        Duration::from_secs(5)
    }

    /// World ranks the observer's failure detector has declared dead (heartbeat
    /// expired). The drain uses this to fail *fast* — a peer that will never send
    /// again should not be waited on for the whole stall budget — and to label its
    /// stall diagnostic "peer dead" instead of the misleading "peer slow". The
    /// default (no detector) reports nobody dead.
    fn dead_peers(&self) -> Vec<Rank> {
        Vec::new()
    }
}

/// The fallback observer used by the standalone [`ManaRank::checkpoint`] /
/// [`ManaRank::checkpoint_into`] paths: only this rank's own progress is visible.
#[derive(Debug, Default)]
pub struct LocalDrainObserver {
    drained: AtomicU64,
}

impl DrainObserver for LocalDrainObserver {
    fn record_progress(&self, _rank: Rank, messages: u64) {
        self.drained.fetch_add(messages, Ordering::Relaxed);
    }

    fn progress_stamp(&self) -> u64 {
        self.drained.load(Ordering::Relaxed)
    }
}

impl ManaRank {
    /// Take a transparent checkpoint into the legacy flat-image store and continue
    /// running. This is the paper-baseline write path: every generation writes the
    /// complete image.
    ///
    /// Collective: every rank of the job must call this at the same logical point.
    /// Returns the write report (image size and modelled write time) for this rank.
    pub fn checkpoint(&mut self, store: &CheckpointStore) -> MpiResult<WriteReport> {
        self.quiesce_and_drain(&LocalDrainObserver::default())?;
        self.write_checkpoint(store)
    }

    /// Take a transparent checkpoint into the `ckpt-store` storage engine, using the
    /// storage policy from this rank's [`ManaConfig`](crate::config::ManaConfig)
    /// (full image, incremental, or incremental+compressed).
    ///
    /// On the incremental policies only the upper-half regions dirtied since the
    /// previous generation are re-encoded, and only content-new chunks reach storage;
    /// after a successful write the upper half is marked clean and its checkpoint
    /// epoch advances, so the *next* checkpoint diffs against this one.
    ///
    /// Collective: every rank of the job must call this at the same logical point.
    /// Jobs running under an orchestrator (`job-runtime`) go through the same phases
    /// individually, with a job-wide [`DrainObserver`] in the middle.
    pub fn checkpoint_into(&mut self, storage: &CheckpointStorage) -> MpiResult<StoreReport> {
        self.quiesce_and_drain(&LocalDrainObserver::default())?;
        self.write_checkpoint_into(storage)
    }

    /// Phases 1-2 of the checkpoint protocol: quiesce the job (world barrier),
    /// exchange per-destination send counts, and agree on the job-wide collective
    /// epoch, producing the [`DrainPlan`] the drain phase works off. Collective.
    ///
    /// Each alltoall block carries two words: the cumulative send count to that peer
    /// and this rank's world-communicator collective epoch. The epoch agreement is
    /// the checkable half of the two-phase collective guarantee: if any two ranks
    /// report different epochs, some rank was caught inside (or past) a collective
    /// the others have not reached, and the checkpoint must not proceed.
    pub fn begin_checkpoint(&mut self) -> MpiResult<DrainPlan> {
        let world = self.world()?;
        let world_vid = world.virtual_id()?;
        let world_phys = self.phys(world, HandleKind::Comm)?;

        // Phase 1: quiesce. After this barrier no rank injects new messages until the
        // checkpoint completes.
        self.cross();
        self.lower.barrier(world_phys)?;

        // Phase 2: publish per-destination send counts and the collective epoch
        // (required subset, category 3).
        let my_epoch = self.collectives.completed_on(world_vid);
        let mut contribution = Vec::with_capacity(self.world_size * 2);
        for &count in &self.counters.sent_to {
            contribution.push(count);
            contribution.push(my_epoch);
        }
        self.cross();
        let exchanged = self
            .lower
            .alltoall(&u64_to_bytes(&contribution), 16, world_phys)?;
        let words = bytes_to_u64(&exchanged);
        if words.len() != self.world_size * 2 {
            return Err(MpiError::Checkpoint(
                "send-count exchange returned the wrong number of peers".into(),
            ));
        }
        let expected_from: Vec<u64> = words.iter().step_by(2).copied().collect();
        for (peer, &epoch) in words.iter().skip(1).step_by(2).enumerate() {
            if epoch != my_epoch {
                return Err(MpiError::Checkpoint(format!(
                    "collective epoch disagreement at checkpoint: rank {} is at world \
                     epoch {}, but rank {peer} reported {epoch} — a rank straddles a \
                     collective's critical phase",
                    self.world_rank, my_epoch
                )));
            }
        }
        Ok(DrainPlan {
            expected_from,
            collective_epoch: my_epoch,
        })
    }

    /// Phase 4 of the checkpoint protocol: a world barrier confirming every rank has
    /// drained, then a refresh of ggids a lazy policy deferred (paper §4.2: "At the
    /// time of checkpoint, the structures may be further updated"). After this returns
    /// the rank is safe to snapshot. Collective.
    pub fn complete_drain(&mut self) -> MpiResult<()> {
        let world = self.world()?;
        let world_phys = self.phys(world, HandleKind::Comm)?;
        self.cross();
        self.lower.barrier(world_phys)?;

        let comm_and_group_vids: Vec<_> = self
            .translator
            .iter_in_creation_order()
            .iter()
            .filter(|d| matches!(d.kind, HandleKind::Comm | HandleKind::Group))
            .map(|d| d.vid)
            .collect();
        for vid in comm_and_group_vids {
            self.translator.get_mut(vid)?.ggid_or_compute();
        }
        Ok(())
    }

    /// Snapshot this rank's upper half into the legacy flat store and advance the
    /// generation. The caller must have completed the drain phases first.
    pub fn write_checkpoint(&mut self, store: &CheckpointStore) -> MpiResult<WriteReport> {
        let generation = self.generation;
        let report = self.with_built_image(|image| store.write(generation, image))?;
        self.generation += 1;
        Ok(report)
    }

    /// Snapshot this rank's upper half into the `ckpt-store` engine under the
    /// configured storage policy and advance the generation + dirty-tracking epoch.
    /// The caller must have completed the drain phases first.
    ///
    /// Writes from different ranks may run concurrently: the sharded store admits
    /// them in parallel, which is what the orchestrator's parallel write phase
    /// exploits.
    pub fn write_checkpoint_into(&mut self, storage: &CheckpointStorage) -> MpiResult<StoreReport> {
        let policy = self.config.storage;
        let report = self.with_built_image(|image| storage.write_image(policy, image))?;
        self.upper.mark_clean();
        self.upper.advance_epoch();
        self.generation += 1;
        Ok(report)
    }

    /// The fast half of the asynchronous checkpoint split: freeze this rank's
    /// checkpoint image (one memory copy of the upper half, with the MANA regions
    /// serialized in) and immediately return the rank to computation. The caller
    /// hands the frozen image to a [`FlusherPool`], which performs the expensive
    /// chunk/compress/store work in the background.
    ///
    /// Generation and dirty-tracking epoch advance *here*, at freeze time: every
    /// application write after this call is dirty relative to this snapshot, exactly
    /// as it would be after a synchronous write. The caller must have completed the
    /// drain phases first.
    pub fn snapshot_checkpoint(&mut self) -> MpiResult<CheckpointImage> {
        let image = self.with_built_image(|image| image.clone())?;
        self.upper.mark_clean();
        self.upper.advance_epoch();
        self.generation += 1;
        Ok(image)
    }

    /// Snapshot this rank (see
    /// [`snapshot_checkpoint`](ManaRank::snapshot_checkpoint)) and submit the frozen
    /// image to `flusher` for background writing under the configured storage
    /// policy. The generation is announced as *pending* in the flusher's store — it
    /// becomes visible only once every rank of the world has flushed it, so a job
    /// killed mid-flush restarts from the newest committed generation exactly like a
    /// job killed mid-write does today. The caller must have completed the drain
    /// phases first.
    pub fn write_checkpoint_async(&mut self, flusher: &FlusherPool) -> MpiResult<FlushHandle> {
        self.write_checkpoint_async_with(flusher, |_| {})
    }

    /// [`write_checkpoint_async`](ManaRank::write_checkpoint_async) with a completion
    /// callback, run on the flusher thread after this rank's image lands in storage
    /// (orchestrators hang their commit accounting here).
    pub fn write_checkpoint_async_with(
        &mut self,
        flusher: &FlusherPool,
        on_flushed: impl FnOnce(&StoreReport) + Send + 'static,
    ) -> MpiResult<FlushHandle> {
        let policy = self.config.storage;
        let world_size = self.world_size;
        let image = self.snapshot_checkpoint()?;
        flusher
            .storage()
            .begin_generation(image.metadata.generation, world_size);
        Ok(flusher.submit_with(policy, image, on_flushed))
    }

    /// Take a full transparent checkpoint with an asynchronous flush: quiesce and
    /// drain (collective, as always), then snapshot and return immediately with a
    /// [`FlushHandle`] while the storage write proceeds in the background.
    ///
    /// Collective: every rank of the job must call this at the same logical point,
    /// all against pools sharing one store (or one shared pool).
    pub fn checkpoint_async(&mut self, flusher: &FlusherPool) -> MpiResult<FlushHandle> {
        self.quiesce_and_drain(&LocalDrainObserver::default())?;
        self.write_checkpoint_async(flusher)
    }

    /// Phases 1-4 of the checkpoint protocol in one call, for the standalone paths.
    fn quiesce_and_drain(&mut self, observer: &dyn DrainObserver) -> MpiResult<()> {
        let plan = self.begin_checkpoint()?;
        self.drain_quiescent(&plan, observer)?;
        self.complete_drain()
    }

    /// Build the checkpoint image for this rank without writing it anywhere (used by
    /// tests and by the Table 3 bench, which only needs sizes). This path pays one
    /// clone of the upper half; the write paths serialize in place (the upper half is
    /// moved into the image and back) and do not.
    pub fn build_image(&mut self) -> MpiResult<CheckpointImage> {
        self.with_built_image(|image| image.clone())
    }

    /// Run `consume` over this rank's checkpoint image without cloning the upper
    /// half: the MANA regions (descriptor table, replay log, drained messages,
    /// counters, collective ledger) are serialized *into* the live upper half, the
    /// space is moved into the image for the duration of the call, then moved back
    /// and the MANA regions unmapped. Peak memory stays one upper half, where the
    /// old clone-based path briefly held two.
    fn with_built_image<R>(&mut self, consume: impl FnOnce(&CheckpointImage) -> R) -> MpiResult<R> {
        self.upper
            .store_json(regions::TRANSLATOR, &self.translator)?;
        self.upper
            .store_json(regions::REPLAY_LOG, &self.replay_log)?;
        self.upper.store_json(regions::BUFFERED, &self.buffered)?;
        self.upper.store_json(regions::COUNTERS, &self.counters)?;
        self.upper
            .store_json(regions::COLLECTIVES, &self.collectives)?;
        let image = CheckpointImage::new(
            ImageMetadata {
                rank: self.world_rank,
                world_size: self.world_size,
                generation: self.generation,
                implementation: self.lower.implementation_name().to_string(),
            },
            std::mem::take(&mut self.upper),
        );
        let result = consume(&image);
        self.upper = image.upper_half;
        for region in regions::ALL {
            let _ = self.upper.unmap_region(region);
        }
        Ok(result)
    }

    /// Phase 3 of the checkpoint protocol: drain pending point-to-point traffic into
    /// the upper-half buffer until every count in `plan` is satisfied.
    ///
    /// Idle rounds back off exponentially (capped at 1 ms) instead of
    /// spinning, and a stall is declared only after the observer's progress stamp has
    /// been frozen for its whole stall budget — under a job-wide observer, only when
    /// *no rank anywhere* is draining anything. The stall diagnostic names each peer
    /// this rank is still waiting on and by how many messages.
    pub fn drain_quiescent(
        &mut self,
        plan: &DrainPlan,
        observer: &dyn DrainObserver,
    ) -> MpiResult<()> {
        let expected_from = &plan.expected_from;
        // Snapshot the live communicators (vid, physical handle, membership) so we can
        // iterate without holding a borrow on the translator.
        let comms: Vec<_> = self
            .translator
            .iter_in_creation_order()
            .iter()
            .filter(|d| d.kind == HandleKind::Comm && !d.phys.is_null())
            .map(|d| (d.vid, d.phys, d.members_world.clone().unwrap_or_default()))
            .collect();

        let mut backoff = BACKOFF_FLOOR;
        let mut last_stamp = observer.progress_stamp();
        let mut frozen_since = Instant::now();
        loop {
            let satisfied = self
                .counters
                .received_from
                .iter()
                .zip(expected_from.iter())
                .all(|(got, want)| got >= want);
            if satisfied {
                return Ok(());
            }
            let drained = self.drain_sweep(&comms)?;
            if drained > 0 {
                observer.record_progress(self.world_rank, drained);
                backoff = BACKOFF_FLOOR;
                frozen_since = Instant::now();
                continue;
            }
            // A declared-dead peer that still owes us messages can never satisfy the
            // plan: fail fast with an honest diagnostic instead of burning the whole
            // stall budget waiting on a corpse.
            let dead = observer.dead_peers();
            if !dead.is_empty() {
                let shortfalls = self.drain_shortfall(expected_from);
                if shortfalls.iter().any(|s| dead.contains(&s.peer)) {
                    return Err(MpiError::Checkpoint(format!(
                        "drain on rank {} cannot complete: a peer it is waiting on \
                         is dead (heartbeat expired); still missing {} messages: {}",
                        self.world_rank,
                        shortfalls.iter().map(DrainShortfall::missing).sum::<u64>(),
                        describe_shortfalls(&shortfalls, &dead)
                    )));
                }
            }
            // Nothing here — but if any observed rank progressed, the job is healthy;
            // reset the stall clock and stay patient.
            let stamp = observer.progress_stamp();
            if stamp != last_stamp {
                last_stamp = stamp;
                backoff = BACKOFF_FLOOR;
                frozen_since = Instant::now();
            } else if frozen_since.elapsed() >= observer.stall_budget() {
                let shortfalls = self.drain_shortfall(expected_from);
                return Err(MpiError::Checkpoint(format!(
                    "drain stalled on rank {} after {:.3}s without progress \
                     anywhere in the job (stall budget {:.3}s); still missing {} \
                     messages: {}",
                    self.world_rank,
                    frozen_since.elapsed().as_secs_f64(),
                    observer.stall_budget().as_secs_f64(),
                    shortfalls.iter().map(DrainShortfall::missing).sum::<u64>(),
                    describe_shortfalls(&shortfalls, &dead)
                )));
            }
            // Clamp the sleep to the remaining stall budget: an uncapped backoff
            // taken *after* the stall check could overshoot the budget by a whole
            // sleep, declaring the stall late and misreporting the real wait.
            let remaining = observer
                .stall_budget()
                .saturating_sub(frozen_since.elapsed());
            std::thread::sleep(backoff.min(remaining));
            backoff = (backoff * 2).min(BACKOFF_CAP);
        }
    }

    /// One probe-and-receive sweep over every live communicator, draining each until
    /// its probe runs dry; returns how many in-flight messages were buffered in the
    /// upper half. (Draining only one message per communicator per sweep would force
    /// a full backoff-loop iteration — with its sleep — per in-flight message.)
    fn drain_sweep(
        &mut self,
        comms: &[(
            crate::virtid::VirtualId,
            mpi_model::types::PhysHandle,
            Vec<Rank>,
        )],
    ) -> MpiResult<u64> {
        let mut drained = 0u64;
        for (vid, phys, members) in comms {
            loop {
                self.cross();
                let Some(status) = self.lower.iprobe(ANY_SOURCE, ANY_TAG, *phys)? else {
                    break;
                };
                // Receive exactly the probed message and buffer it in the upper half.
                let byte_type = self.constant(PredefinedObject::Datatype(
                    mpi_model::datatype::PrimitiveType::Byte,
                ))?;
                let byte_phys = self.phys(byte_type, HandleKind::Datatype)?;
                self.cross();
                let (payload, status) = self.lower.recv(
                    byte_phys,
                    status.count_bytes,
                    status.source,
                    status.tag,
                    *phys,
                )?;
                let source_world = members
                    .get(status.source.max(0) as usize)
                    .copied()
                    .ok_or_else(|| {
                        MpiError::Checkpoint(
                            "drained message from a rank outside the communicator".into(),
                        )
                    })?;
                self.counters.received_from[source_world as usize] += 1;
                self.buffered.push(BufferedMessage {
                    comm: *vid,
                    source: status.source,
                    tag: status.tag,
                    payload,
                });
                drained += 1;
            }
        }
        Ok(drained)
    }

    /// Whether a checkpoint intent is pending on the installed intercept.
    pub(crate) fn intent_pending(&self) -> bool {
        self.intercept
            .as_ref()
            .is_some_and(|hook| hook.intent_pending())
    }

    /// Service a pending mid-step checkpoint intent, if an intercept is installed and
    /// an intent is pending; a no-op otherwise. Must only be called from a safe point
    /// (between wrapper calls, or inside a collective wrapper strictly outside the
    /// critical phase). Returns [`MpiError::Preempted`] when the serviced intent asks
    /// the rank to vacate.
    pub fn service_pending_intent(&mut self) -> MpiResult<()> {
        let Some(hook) = self.intercept.clone() else {
            return Ok(());
        };
        if !hook.intent_pending() {
            return Ok(());
        }
        match hook.service(self)? {
            IntentOutcome::Continue => Ok(()),
            IntentOutcome::Vacate => Err(MpiError::Preempted),
        }
    }

    /// The peers this rank is still waiting on, with expected/received counts — the
    /// payload of the stall diagnostic.
    pub fn drain_shortfall(&self, expected_from: &[u64]) -> Vec<DrainShortfall> {
        self.counters
            .received_from
            .iter()
            .zip(expected_from.iter())
            .enumerate()
            .filter(|(_, (got, want))| got < want)
            .map(|(peer, (got, want))| DrainShortfall {
                peer: peer as Rank,
                expected: *want,
                received: *got,
            })
            .collect()
    }
}
