//! Transparent checkpoint: drain the network, then save the upper half.
//!
//! The checkpoint is *collective and cooperative*: every rank calls
//! [`ManaRank::checkpoint`] (in the real system a checkpoint-request signal interrupts
//! the ranks at a wrapper boundary; the coordination protocol from there on is the
//! same). The algorithm uses only MPI calls from the required subset of paper §5:
//!
//! 1. `MPI_Barrier` on the world communicator — every rank has stopped injecting new
//!    point-to-point messages.
//! 2. `MPI_Alltoall` of per-destination send counts — every rank learns how many
//!    messages are still headed its way.
//! 3. A drain loop of `MPI_Iprobe` + `MPI_Recv` over every live communicator until the
//!    received counts match the expected counts. Drained messages are buffered in the
//!    *upper half*, so the application will still receive them (from the buffer) after
//!    the restart.
//! 4. `MPI_Barrier`, then serialize the upper half — application regions, the
//!    descriptor table, the replay log, the drained-message buffer and the drain
//!    counters — into a [`CheckpointImage`] and hand it to the checkpoint store.
//!
//! Nothing from the lower half (fabric mailboxes, library object stores, constant
//! addresses) is saved: that is the whole point of the split-process design.

use crate::runtime::{BufferedMessage, ManaRank};
use ckpt_store::{CheckpointStorage, StoreReport};
use mpi_model::buffer::{bytes_to_u64, u64_to_bytes};
use mpi_model::constants::PredefinedObject;
use mpi_model::error::{MpiError, MpiResult};
use mpi_model::types::{HandleKind, ANY_SOURCE, ANY_TAG};
use split_proc::image::{CheckpointImage, ImageMetadata};
use split_proc::store::{CheckpointStore, WriteReport};

/// Upper-half region names used for MANA's own state inside a checkpoint image.
pub mod regions {
    /// The virtual-id translator (descriptor table or legacy maps).
    pub const TRANSLATOR: &str = "mana.translator";
    /// The object-creation replay log.
    pub const REPLAY_LOG: &str = "mana.replay_log";
    /// Messages drained from the network at checkpoint time.
    pub const BUFFERED: &str = "mana.buffered";
    /// Per-peer send/receive counters.
    pub const COUNTERS: &str = "mana.counters";
}

impl ManaRank {
    /// Take a transparent checkpoint into the legacy flat-image store and continue
    /// running. This is the paper-baseline write path: every generation writes the
    /// complete image.
    ///
    /// Collective: every rank of the job must call this at the same logical point.
    /// Returns the write report (image size and modelled write time) for this rank.
    pub fn checkpoint(&mut self, store: &CheckpointStore) -> MpiResult<WriteReport> {
        self.quiesce_and_drain()?;
        let image = self.build_image()?;
        let report = store.write(self.generation, &image);
        self.generation += 1;
        Ok(report)
    }

    /// Take a transparent checkpoint into the `ckpt-store` storage engine, using the
    /// storage policy from this rank's [`ManaConfig`](crate::config::ManaConfig)
    /// (full image, incremental, or incremental+compressed).
    ///
    /// On the incremental policies only the upper-half regions dirtied since the
    /// previous generation are re-encoded, and only content-new chunks reach storage;
    /// after a successful write the upper half is marked clean and its checkpoint
    /// epoch advances, so the *next* checkpoint diffs against this one.
    ///
    /// Collective: every rank of the job must call this at the same logical point.
    pub fn checkpoint_into(&mut self, storage: &CheckpointStorage) -> MpiResult<StoreReport> {
        self.quiesce_and_drain()?;
        let image = self.build_image()?;
        let report = storage.write_image(self.config.storage, &image);
        self.upper.mark_clean();
        self.upper.advance_epoch();
        self.generation += 1;
        Ok(report)
    }

    /// Phases 1-4 of the checkpoint protocol: quiesce the job, exchange send counts,
    /// drain in-flight traffic into the upper half, and refresh deferred ggids. After
    /// this returns the rank is safe to snapshot.
    fn quiesce_and_drain(&mut self) -> MpiResult<()> {
        let world = self.world()?;
        let world_phys = self.phys(world, HandleKind::Comm)?;

        // Phase 1: quiesce. After this barrier no rank injects new messages until the
        // checkpoint completes.
        self.cross();
        self.lower.barrier(world_phys)?;

        // Phase 2: publish per-destination send counts (required subset, category 3).
        let send_counts = u64_to_bytes(&self.counters.sent_to);
        self.cross();
        let exchanged = self.lower.alltoall(&send_counts, 8, world_phys)?;
        let expected_from = bytes_to_u64(&exchanged);
        if expected_from.len() != self.world_size {
            return Err(MpiError::Checkpoint(
                "send-count exchange returned the wrong number of peers".into(),
            ));
        }

        // Phase 3: drain until everything that was in flight has been buffered
        // (required subset, category 1: Iprobe + Recv).
        self.drain(&expected_from)?;

        // Phase 4: everyone has drained; it is now safe to snapshot.
        self.cross();
        self.lower.barrier(world_phys)?;

        // Refresh ggids that a lazy policy deferred (paper §4.2: "At the time of
        // checkpoint, the structures may be further updated").
        let comm_and_group_vids: Vec<_> = self
            .translator
            .iter_in_creation_order()
            .iter()
            .filter(|d| matches!(d.kind, HandleKind::Comm | HandleKind::Group))
            .map(|d| d.vid)
            .collect();
        for vid in comm_and_group_vids {
            self.translator.get_mut(vid)?.ggid_or_compute();
        }
        Ok(())
    }

    /// Build the checkpoint image for this rank without writing it anywhere (used by
    /// tests and by the Table 3 bench, which only needs sizes).
    pub fn build_image(&mut self) -> MpiResult<CheckpointImage> {
        let mut upper = self.upper.clone();
        upper.store_json(regions::TRANSLATOR, &self.translator)?;
        upper.store_json(regions::REPLAY_LOG, &self.replay_log)?;
        upper.store_json(regions::BUFFERED, &self.buffered)?;
        upper.store_json(regions::COUNTERS, &self.counters)?;
        Ok(CheckpointImage::new(
            ImageMetadata {
                rank: self.world_rank,
                world_size: self.world_size,
                generation: self.generation,
                implementation: self.lower.implementation_name().to_string(),
            },
            upper,
        ))
    }

    /// Drain pending point-to-point traffic until `expected_from` is satisfied.
    fn drain(&mut self, expected_from: &[u64]) -> MpiResult<()> {
        // Snapshot the live communicators (vid, physical handle, membership) so we can
        // iterate without holding a borrow on the translator.
        let comms: Vec<_> = self
            .translator
            .iter_in_creation_order()
            .iter()
            .filter(|d| d.kind == HandleKind::Comm && !d.phys.is_null())
            .map(|d| (d.vid, d.phys, d.members_world.clone().unwrap_or_default()))
            .collect();

        let mut idle_rounds = 0u64;
        const MAX_IDLE_ROUNDS: u64 = 1_000_000;
        loop {
            let satisfied = self
                .counters
                .received_from
                .iter()
                .zip(expected_from.iter())
                .all(|(got, want)| got >= want);
            if satisfied {
                return Ok(());
            }
            let mut progressed = false;
            for (vid, phys, members) in &comms {
                self.cross();
                if let Some(status) = self.lower.iprobe(ANY_SOURCE, ANY_TAG, *phys)? {
                    // Receive exactly the probed message and buffer it in the upper half.
                    let byte_type = self.constant(PredefinedObject::Datatype(
                        mpi_model::datatype::PrimitiveType::Byte,
                    ))?;
                    let byte_phys = self.phys(byte_type, HandleKind::Datatype)?;
                    self.cross();
                    let (payload, status) = self.lower.recv(
                        byte_phys,
                        status.count_bytes,
                        status.source,
                        status.tag,
                        *phys,
                    )?;
                    let source_world = members
                        .get(status.source.max(0) as usize)
                        .copied()
                        .ok_or_else(|| {
                            MpiError::Checkpoint(
                                "drained message from a rank outside the communicator".into(),
                            )
                        })?;
                    self.counters.received_from[source_world as usize] += 1;
                    self.buffered.push(BufferedMessage {
                        comm: *vid,
                        source: status.source,
                        tag: status.tag,
                        payload,
                    });
                    progressed = true;
                }
            }
            if !progressed {
                idle_rounds += 1;
                if idle_rounds > MAX_IDLE_ROUNDS {
                    return Err(MpiError::Checkpoint(format!(
                        "drain stalled on rank {}: expected {:?}, received {:?}",
                        self.world_rank, expected_from, self.counters.received_from
                    )));
                }
                std::thread::yield_now();
            } else {
                idle_rounds = 0;
            }
        }
    }
}
