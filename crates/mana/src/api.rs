//! The typed session layer: a misuse-resistant API *above* the byte-faithful
//! wrappers.
//!
//! The wrapper layer ([`crate::wrappers`]) deliberately mirrors the paper's contract:
//! one [`AppHandle`] space for communicators, groups, datatypes, ops and requests;
//! `MPI_BYTE`-level buffers; per-call resolution of predefined constants (§4.3). That
//! substrate stays untouched — it is what the checkpoint protocol is specified
//! against. This module adds the layer applications actually program to:
//!
//! * **Distinct newtype handles** — [`Comm`], [`Group`], [`Datatype<T>`], [`Op<T>`]
//!   and [`Request<T>`] — so passing a datatype where a communicator belongs is a
//!   compile error, not a runtime `WrongKind`.
//! * **Typed buffers** — every point-to-point and collective call is generic over
//!   [`MpiData`], which carries the element type's datatype descriptor/envelope and
//!   its encode/decode; no application ever hand-rolls `to_le_bytes` marshalling.
//! * **A per-rank [`Session`]** — resolves each predefined constant exactly once and
//!   caches the handle (the wrapper layer re-finds it per call), caches committed
//!   derived datatypes per element type, and reaps request descriptors abandoned by a
//!   dropped [`Request<T>`], so forgotten requests no longer leak virtual ids.
//!
//! Typed handles are plain `Copy` values wrapping the same 64-bit [`AppHandle`]s the
//! byte layer uses, and they serialize identically — an application can store a
//! [`Comm`] or [`Datatype<f64>`] in its upper-half state and find it valid after a
//! checkpoint/restart, exactly like a raw handle. `Session::rank_mut` is the escape
//! hatch down to the byte layer; the two layers interoperate freely.

use crate::runtime::{AppHandle, ManaRank};
use crate::virtid::VirtualId;
use ckpt_store::{CheckpointStorage, StoreReport};
use mpi_model::constants::PredefinedObject;
use mpi_model::datatype::{PrimitiveType, TypeDescriptor};
use mpi_model::error::{MpiError, MpiResult};
use mpi_model::op::PredefinedOp;
use mpi_model::status::Status;
use mpi_model::typed::MpiData;
use mpi_model::types::{HandleKind, Rank, Tag};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use split_proc::address_space::UpperHalfSpace;
use split_proc::store::{CheckpointStore, WriteReport};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Arc;

/// A typed communicator handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Comm(AppHandle);

/// A typed group handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Group(AppHandle);

impl Comm {
    /// The null communicator (e.g. the result of an `MPI_UNDEFINED` split colour).
    pub const NULL: Comm = Comm(AppHandle::NULL);

    /// Whether this is the null communicator.
    pub fn is_null(self) -> bool {
        self.0.is_null()
    }

    /// The underlying byte-layer handle (escape hatch; see module docs).
    pub fn handle(self) -> AppHandle {
        self.0
    }

    /// Wrap a byte-layer communicator handle (unchecked: the kind is validated on
    /// first use, as with any raw handle).
    pub fn from_handle(handle: AppHandle) -> Comm {
        Comm(handle)
    }
}

impl Group {
    /// The underlying byte-layer handle.
    pub fn handle(self) -> AppHandle {
        self.0
    }

    /// Wrap a byte-layer group handle.
    pub fn from_handle(handle: AppHandle) -> Group {
        Group(handle)
    }
}

/// A typed datatype handle: the element type is part of the handle's type, so a
/// `Datatype<f64>` cannot be used to describe an `i32` buffer.
pub struct Datatype<T: MpiData> {
    handle: AppHandle,
    _elem: PhantomData<fn() -> T>,
}

impl<T: MpiData> Datatype<T> {
    /// The underlying byte-layer handle.
    pub fn handle(self) -> AppHandle {
        self.handle
    }

    /// Wrap a byte-layer datatype handle, asserting it describes elements of `T`.
    pub fn from_handle(handle: AppHandle) -> Datatype<T> {
        Datatype {
            handle,
            _elem: PhantomData,
        }
    }
}

impl<T: MpiData> Clone for Datatype<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: MpiData> Copy for Datatype<T> {}
impl<T: MpiData> std::fmt::Debug for Datatype<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Datatype({:#x})", self.handle.0)
    }
}
impl<T: MpiData> PartialEq for Datatype<T> {
    fn eq(&self, other: &Self) -> bool {
        self.handle == other.handle
    }
}
impl<T: MpiData> Eq for Datatype<T> {}

/// How a typed reduction op names its reduction. Predefined ops are pure values —
/// they carry no per-rank handle and are resolved (once, cached) by the session at
/// call time; user ops carry the handle `op_create` registered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum OpKind {
    Predefined(PredefinedOp),
    User(AppHandle),
}

/// A typed reduction operation over elements of `T`.
///
/// `Op::<f64>::sum()` (usually just `Op::sum()` with the element type inferred from
/// the reduced buffer) is a plain value: predefined ops need no session to construct,
/// and the type parameter ties the op to the element type of the buffers it may
/// reduce — `allreduce(&[f64], Op<i32>, ..)` does not compile.
pub struct Op<T: MpiData> {
    kind: OpKind,
    _elem: PhantomData<fn() -> T>,
}

impl<T: MpiData> Clone for Op<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: MpiData> Copy for Op<T> {}
impl<T: MpiData> std::fmt::Debug for Op<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Op({:?})", self.kind)
    }
}
impl<T: MpiData> PartialEq for Op<T> {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}
impl<T: MpiData> Eq for Op<T> {}

// The constructors are written out (no macro) so the API-surface snapshot test,
// which extracts `pub fn` declarations from this source, pins every one of them.
impl<T: MpiData> Op<T> {
    /// A typed view of any predefined reduction.
    pub fn predefined(op: PredefinedOp) -> Op<T> {
        Op {
            kind: OpKind::Predefined(op),
            _elem: PhantomData,
        }
    }

    /// `MPI_SUM`.
    pub fn sum() -> Op<T> {
        Op::predefined(PredefinedOp::Sum)
    }

    /// `MPI_PROD`.
    pub fn prod() -> Op<T> {
        Op::predefined(PredefinedOp::Prod)
    }

    /// `MPI_MAX`.
    pub fn max() -> Op<T> {
        Op::predefined(PredefinedOp::Max)
    }

    /// `MPI_MIN`.
    pub fn min() -> Op<T> {
        Op::predefined(PredefinedOp::Min)
    }

    /// `MPI_LAND`.
    pub fn logical_and() -> Op<T> {
        Op::predefined(PredefinedOp::LogicalAnd)
    }

    /// `MPI_LOR`.
    pub fn logical_or() -> Op<T> {
        Op::predefined(PredefinedOp::LogicalOr)
    }

    /// `MPI_BAND` (integer element types only; floats error at reduce time).
    pub fn bitwise_and() -> Op<T> {
        Op::predefined(PredefinedOp::BitwiseAnd)
    }

    /// `MPI_BOR` (integer element types only; floats error at reduce time).
    pub fn bitwise_or() -> Op<T> {
        Op::predefined(PredefinedOp::BitwiseOr)
    }

    /// `MPI_MAXLOC` (meaningful on [`mpi_model::typed::DoubleInt`] pairs).
    pub fn maxloc() -> Op<T> {
        Op::predefined(PredefinedOp::MaxLoc)
    }

    /// `MPI_MINLOC` (meaningful on [`mpi_model::typed::DoubleInt`] pairs).
    pub fn minloc() -> Op<T> {
        Op::predefined(PredefinedOp::MinLoc)
    }
}

// Typed handles serialize as their underlying byte-layer handle, so application
// state stored in the upper half looks identical whether it holds `Comm` or raw
// `AppHandle` values — and survives checkpoint/restart the same way. (The in-tree
// serde derive does not cover generic types, hence the manual impls.)
macro_rules! serialize_as_handle {
    ($ty:ident) => {
        impl Serialize for $ty {
            fn to_value(&self) -> serde::Value {
                self.0.to_value()
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
                AppHandle::from_value(value).map($ty)
            }
        }
    };
}
serialize_as_handle!(Comm);
serialize_as_handle!(Group);

impl<T: MpiData> Serialize for Datatype<T> {
    fn to_value(&self) -> serde::Value {
        self.handle.to_value()
    }
}
impl<'de, T: MpiData> Deserialize<'de> for Datatype<T> {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        AppHandle::from_value(value).map(Datatype::from_handle)
    }
}

impl<T: MpiData> Serialize for Op<T> {
    fn to_value(&self) -> serde::Value {
        self.kind.to_value()
    }
}
impl<'de, T: MpiData> Deserialize<'de> for Op<T> {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Op {
            kind: OpKind::from_value(value)?,
            _elem: PhantomData,
        })
    }
}

/// Shared drop-box for request descriptors whose typed [`Request`] was dropped
/// without `wait`/`test`: the session removes them at its next call. The `pending`
/// flag keeps the per-call check a single relaxed atomic load — the mutex is only
/// touched when a request was actually abandoned.
#[derive(Default)]
struct ReaperState {
    pending: std::sync::atomic::AtomicBool,
    vids: Mutex<Vec<VirtualId>>,
}

impl ReaperState {
    fn push(&self, vid: VirtualId) {
        self.vids.lock().push(vid);
        self.pending
            .store(true, std::sync::atomic::Ordering::Release);
    }
}

type Reaper = Arc<ReaperState>;

/// A typed non-blocking request for elements of `T`.
///
/// `wait` consumes the request and returns the received elements (empty for send
/// requests); `test` polls without blocking. Dropping a request without completing it
/// does **not** leak its descriptor: the drop enqueues the virtual id with the
/// session that minted it, and the session removes the descriptor on its next call —
/// the byte layer, by contrast, leaks the vid of every abandoned request.
#[must_use = "an unawaited request is cancelled when dropped"]
pub struct Request<T: MpiData> {
    handle: AppHandle,
    reaper: Reaper,
    consumed: bool,
    _elem: PhantomData<fn() -> T>,
}

impl<T: MpiData> std::fmt::Debug for Request<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Request({:#x})", self.handle.0)
    }
}

impl<T: MpiData> Request<T> {
    /// Block until the request completes. Returns the received elements (empty for a
    /// send request) and the completion status. The request descriptor is removed on
    /// success and failure alike.
    pub fn wait(mut self, session: &mut Session) -> MpiResult<(Vec<T>, Status)> {
        self.consumed = true;
        let (status, payload) = session.rank.wait(self.handle)?;
        let values = match payload {
            Some(bytes) => T::decode(&bytes)?,
            None => Vec::new(),
        };
        Ok((values, status))
    }

    /// Non-blocking completion check: `Ok(None)` means still pending (the request
    /// stays live and retryable). On completion — or on a failed completion attempt —
    /// the request is consumed.
    pub fn test(&mut self, session: &mut Session) -> MpiResult<Option<(Vec<T>, Status)>> {
        match session.rank.test(self.handle) {
            Ok(None) => Ok(None),
            Ok(Some((status, payload))) => {
                self.consumed = true;
                let values = match payload {
                    Some(bytes) => T::decode(&bytes)?,
                    None => Vec::new(),
                };
                Ok(Some((values, status)))
            }
            Err(error) => {
                // The byte layer removed the descriptor on its error path.
                self.consumed = true;
                Err(error)
            }
        }
    }
}

impl<T: MpiData> Drop for Request<T> {
    fn drop(&mut self) {
        if !self.consumed {
            if let Ok(vid) = self.handle.virtual_id() {
                self.reaper.push(vid);
            }
        }
    }
}

const PRIMITIVES: usize = PrimitiveType::ALL.len();
const OPS: usize = PredefinedOp::ALL.len();

/// The session's constant cache: each predefined object is resolved against the
/// lower half at most once per session (the wrapper layer re-finds the descriptor on
/// every call). Index-addressed, so the hot path is an array load.
#[derive(Default)]
struct ConstCache {
    comm_world: Option<AppHandle>,
    comm_self: Option<AppHandle>,
    datatypes: [Option<AppHandle>; PRIMITIVES],
    ops: [Option<AppHandle>; OPS],
}

/// The per-rank typed session: owns the rank's [`ManaRank`] runtime and provides the
/// typed, misuse-resistant API every application, example, test and benchmark in this
/// workspace programs against.
///
/// Construction is cheap (no MPI calls); constants are resolved lazily, once. The
/// byte-faithful wrapper layer remains reachable through [`Session::rank_mut`] for
/// code that genuinely needs `MPI_BYTE`-level control.
pub struct Session {
    rank: ManaRank,
    consts: ConstCache,
    /// Committed derived datatypes already materialized in this session, keyed by
    /// their structural description.
    derived: HashMap<TypeDescriptor, AppHandle>,
    reaper: Reaper,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").field("rank", &self.rank).finish()
    }
}

impl Session {
    /// Wrap a MANA rank in a typed session.
    pub fn new(rank: ManaRank) -> Session {
        Session {
            rank,
            consts: ConstCache::default(),
            derived: HashMap::new(),
            reaper: Arc::new(ReaperState::default()),
        }
    }

    /// Unwrap back into the byte-layer runtime.
    pub fn into_rank(mut self) -> ManaRank {
        self.reap();
        self.rank
    }

    /// The underlying byte-layer runtime (read-only).
    pub fn rank(&self) -> &ManaRank {
        &self.rank
    }

    /// The underlying byte-layer runtime (escape hatch to the wrapper layer).
    pub fn rank_mut(&mut self) -> &mut ManaRank {
        &mut self.rank
    }

    /// Remove the descriptors of requests dropped without `wait`/`test` since the
    /// last call. Invoked from every communication entry point; callable directly
    /// when a long compute phase wants the vids back sooner. Costs one relaxed
    /// atomic load when nothing was dropped (the overwhelmingly common case).
    pub fn reap(&mut self) {
        use std::sync::atomic::Ordering;
        if !self.reaper.pending.load(Ordering::Acquire) {
            return;
        }
        self.reaper.pending.store(false, Ordering::Release);
        let vids: Vec<VirtualId> = std::mem::take(&mut *self.reaper.vids.lock());
        for vid in vids {
            // Already-consumed (raced) requests are fine to skip.
            let _ = self.rank.translator.remove(vid);
        }
    }

    // ------------------------------------------------------------------
    // Constant resolution (cached once per session)
    // ------------------------------------------------------------------

    fn primitive_handle(&mut self, primitive: PrimitiveType) -> MpiResult<AppHandle> {
        let slot = &mut self.consts.datatypes[primitive.index()];
        if let Some(handle) = *slot {
            return Ok(handle);
        }
        let handle = self.rank.constant(PredefinedObject::Datatype(primitive))?;
        *slot = Some(handle);
        Ok(handle)
    }

    fn predefined_op_handle(&mut self, op: PredefinedOp) -> MpiResult<AppHandle> {
        let slot = &mut self.consts.ops[op.index()];
        if let Some(handle) = *slot {
            return Ok(handle);
        }
        let handle = self.rank.constant(PredefinedObject::Op(op))?;
        *slot = Some(handle);
        Ok(handle)
    }

    /// `MPI_COMM_WORLD` as a typed handle (resolved once per session).
    pub fn world(&mut self) -> MpiResult<Comm> {
        if let Some(handle) = self.consts.comm_world {
            return Ok(Comm(handle));
        }
        let handle = self.rank.constant(PredefinedObject::CommWorld)?;
        self.consts.comm_world = Some(handle);
        Ok(Comm(handle))
    }

    /// `MPI_COMM_SELF` as a typed handle (resolved once per session).
    pub fn comm_self(&mut self) -> MpiResult<Comm> {
        if let Some(handle) = self.consts.comm_self {
            return Ok(Comm(handle));
        }
        let handle = self.rank.constant(PredefinedObject::CommSelf)?;
        self.consts.comm_self = Some(handle);
        Ok(Comm(handle))
    }

    /// The committed datatype handle for elements of `T`: a cached predefined handle
    /// for scalars, a cached (built-and-committed on first use) derived datatype for
    /// struct layouts.
    pub fn datatype<T: MpiData>(&mut self) -> MpiResult<Datatype<T>> {
        self.datatype_handle::<T>().map(Datatype::from_handle)
    }

    fn datatype_handle<T: MpiData>(&mut self) -> MpiResult<AppHandle> {
        match T::type_descriptor() {
            TypeDescriptor::Primitive(p) => self.primitive_handle(p),
            descriptor => {
                if let Some(&handle) = self.derived.get(&descriptor) {
                    return Ok(handle);
                }
                // After a restart a fresh session wraps a rank whose descriptor table
                // already holds this derived type: reuse it instead of re-creating —
                // but only a *committed* one (per the replay log). A structurally
                // identical type the application built through the byte-layer escape
                // hatch and has not committed must not be adopted: sending on it
                // would fail with `TypeNotCommitted`, and committing it behind the
                // application's back would be a surprise.
                let existing = self
                    .rank
                    .translator
                    .iter_in_creation_order()
                    .iter()
                    .find(|d| {
                        d.kind == HandleKind::Datatype
                            && d.datatype.as_ref() == Some(&descriptor)
                            && self.rank.replay_log.events().iter().any(|event| {
                                event.vid == Some(d.vid)
                                    && matches!(
                                        event.recipe,
                                        crate::record::CreationRecipe::DerivedDatatype {
                                            committed: true,
                                            ..
                                        }
                                    )
                            })
                    })
                    .map(|d| AppHandle::from_virtual(d.vid));
                let handle = match existing {
                    Some(handle) => handle,
                    None => {
                        let handle = self.build_descriptor(&descriptor)?;
                        self.rank.type_commit(handle)?;
                        handle
                    }
                };
                self.derived.insert(descriptor, handle);
                Ok(handle)
            }
        }
    }

    /// Recursively materialize a structural datatype description through the
    /// byte-layer type constructors (so it is recorded for restart replay like any
    /// application-created type).
    fn build_descriptor(&mut self, descriptor: &TypeDescriptor) -> MpiResult<AppHandle> {
        match descriptor {
            TypeDescriptor::Primitive(p) => self.primitive_handle(*p),
            TypeDescriptor::Dup(inner) => {
                let inner = self.build_descriptor(inner)?;
                self.rank.type_dup(inner)
            }
            TypeDescriptor::Contiguous { count, inner } => {
                let inner = self.build_descriptor(inner)?;
                self.rank.type_contiguous(*count, inner)
            }
            TypeDescriptor::Vector {
                count,
                block_length,
                stride,
                inner,
            } => {
                let inner = self.build_descriptor(inner)?;
                self.rank.type_vector(*count, *block_length, *stride, inner)
            }
            TypeDescriptor::Indexed {
                block_lengths,
                displacements,
                inner,
            } => {
                let inner = self.build_descriptor(inner)?;
                self.rank.type_indexed(block_lengths, displacements, inner)
            }
            TypeDescriptor::Struct {
                block_lengths,
                byte_displacements,
                types,
            } => {
                let mut members = Vec::with_capacity(types.len());
                for member in types {
                    members.push(self.build_descriptor(member)?);
                }
                self.rank
                    .type_create_struct(block_lengths, byte_displacements, &members)
            }
        }
    }

    fn op_handle<T: MpiData>(&mut self, op: Op<T>) -> MpiResult<AppHandle> {
        match op.kind {
            OpKind::Predefined(p) => self.predefined_op_handle(p),
            OpKind::User(handle) => Ok(handle),
        }
    }

    // ------------------------------------------------------------------
    // Communicator and group management
    // ------------------------------------------------------------------

    /// `MPI_Comm_rank`.
    pub fn comm_rank(&mut self, comm: Comm) -> MpiResult<Rank> {
        self.rank.comm_rank(comm.0)
    }

    /// `MPI_Comm_size`.
    pub fn comm_size(&mut self, comm: Comm) -> MpiResult<usize> {
        self.rank.comm_size(comm.0)
    }

    /// `MPI_Comm_dup` (collective).
    pub fn comm_dup(&mut self, comm: Comm) -> MpiResult<Comm> {
        self.rank.comm_dup(comm.0).map(Comm)
    }

    /// `MPI_Comm_split` (collective); `color == None` models `MPI_UNDEFINED`.
    pub fn comm_split(&mut self, comm: Comm, color: Option<i32>, key: i32) -> MpiResult<Comm> {
        self.rank.comm_split(comm.0, color, key).map(Comm)
    }

    /// `MPI_Comm_create` (collective) from a subgroup.
    pub fn comm_create(&mut self, comm: Comm, group: Group) -> MpiResult<Comm> {
        self.rank.comm_create(comm.0, group.0).map(Comm)
    }

    /// `MPI_Comm_free` (predefined communicators are rejected).
    pub fn comm_free(&mut self, comm: Comm) -> MpiResult<()> {
        self.rank.comm_free(comm.0)
    }

    /// `MPI_Comm_group`.
    pub fn comm_group(&mut self, comm: Comm) -> MpiResult<Group> {
        self.rank.comm_group(comm.0).map(Group)
    }

    /// `MPI_Group_size`.
    pub fn group_size(&mut self, group: Group) -> MpiResult<usize> {
        self.rank.group_size(group.0)
    }

    /// `MPI_Group_incl`.
    pub fn group_incl(&mut self, group: Group, ranks: &[Rank]) -> MpiResult<Group> {
        self.rank.group_incl(group.0, ranks).map(Group)
    }

    /// `MPI_Group_translate_ranks`.
    pub fn group_translate_ranks(
        &mut self,
        group: Group,
        ranks: &[Rank],
        other: Group,
    ) -> MpiResult<Vec<Rank>> {
        self.rank.group_translate_ranks(group.0, ranks, other.0)
    }

    /// `MPI_Group_free` (predefined groups are rejected).
    pub fn group_free(&mut self, group: Group) -> MpiResult<()> {
        self.rank.group_free(group.0)
    }

    // ------------------------------------------------------------------
    // Datatype and op management
    // ------------------------------------------------------------------

    /// `MPI_Type_size` of the datatype for elements of `T`.
    pub fn type_size<T: MpiData>(&mut self, datatype: Datatype<T>) -> MpiResult<usize> {
        self.rank.type_size(datatype.handle)
    }

    /// `MPI_Type_free` a derived datatype (predefined datatypes are rejected). The
    /// session's cache entry is dropped with it.
    pub fn type_free<T: MpiData>(&mut self, datatype: Datatype<T>) -> MpiResult<()> {
        self.rank.type_free(datatype.handle)?;
        self.derived
            .retain(|_, &mut handle| handle != datatype.handle);
        Ok(())
    }

    /// `MPI_Op_create`: register a user reduction over elements of `T` under the
    /// upper-half function id `func_id`.
    pub fn op_create<T: MpiData>(&mut self, func_id: u64, commutative: bool) -> MpiResult<Op<T>> {
        let handle = self.rank.op_create(func_id, commutative)?;
        Ok(Op {
            kind: OpKind::User(handle),
            _elem: PhantomData,
        })
    }

    /// `MPI_Op_free` a user op (predefined ops are rejected — they have no handle to
    /// free in the first place).
    pub fn op_free<T: MpiData>(&mut self, op: Op<T>) -> MpiResult<()> {
        match op.kind {
            OpKind::User(handle) => self.rank.op_free(handle),
            OpKind::Predefined(p) => Err(MpiError::FreePredefined(PredefinedObject::Op(p))),
        }
    }

    // ------------------------------------------------------------------
    // Point-to-point communication
    // ------------------------------------------------------------------

    /// `MPI_Send` of a typed buffer.
    ///
    /// The borrow-based fast path: the elements are encoded once into an owned
    /// buffer which is handed down as a refcounted
    /// [`PayloadBuf`](mpi_model::payload::PayloadBuf) — the wrapper layer, the
    /// lower half and the fabric all share that single allocation, so a typed send
    /// costs exactly one marshalling pass and zero further copies.
    pub fn send<T: MpiData>(
        &mut self,
        data: &[T],
        dest: Rank,
        tag: Tag,
        comm: Comm,
    ) -> MpiResult<()> {
        self.reap();
        let datatype = self.datatype_handle::<T>()?;
        self.rank
            .send_payload(T::encode(data).into(), datatype, dest, tag, comm.0)
    }

    /// `MPI_Recv` of up to `max_count` elements of `T`.
    ///
    /// The decode runs directly over the received
    /// [`PayloadBuf`](mpi_model::payload::PayloadBuf) view — still the sender's
    /// allocation — so the only copy on the receive side is the typed unmarshalling
    /// itself; no intermediate `Vec<u8>` is materialized.
    pub fn recv<T: MpiData>(
        &mut self,
        max_count: usize,
        source: Rank,
        tag: Tag,
        comm: Comm,
    ) -> MpiResult<(Vec<T>, Status)> {
        self.reap();
        let datatype = self.datatype_handle::<T>()?;
        let (bytes, status) =
            self.rank
                .recv(datatype, max_count * T::elem_size(), source, tag, comm.0)?;
        Ok((T::decode(&bytes)?, status))
    }

    /// `MPI_Isend` of a typed buffer.
    pub fn isend<T: MpiData>(
        &mut self,
        data: &[T],
        dest: Rank,
        tag: Tag,
        comm: Comm,
    ) -> MpiResult<Request<T>> {
        self.reap();
        let datatype = self.datatype_handle::<T>()?;
        let handle =
            self.rank
                .isend_payload(T::encode(data).into(), datatype, dest, tag, comm.0)?;
        Ok(self.request(handle))
    }

    /// `MPI_Irecv` for up to `max_count` elements of `T`.
    pub fn irecv<T: MpiData>(
        &mut self,
        max_count: usize,
        source: Rank,
        tag: Tag,
        comm: Comm,
    ) -> MpiResult<Request<T>> {
        self.reap();
        let datatype = self.datatype_handle::<T>()?;
        let handle = self
            .rank
            .irecv(datatype, max_count * T::elem_size(), source, tag, comm.0)?;
        Ok(self.request(handle))
    }

    fn request<T: MpiData>(&self, handle: AppHandle) -> Request<T> {
        Request {
            handle,
            reaper: Arc::clone(&self.reaper),
            consumed: false,
            _elem: PhantomData,
        }
    }

    /// `MPI_Iprobe`.
    pub fn iprobe(&mut self, source: Rank, tag: Tag, comm: Comm) -> MpiResult<Option<Status>> {
        self.rank.iprobe(source, tag, comm.0)
    }

    // ------------------------------------------------------------------
    // Collective communication
    // ------------------------------------------------------------------

    /// `MPI_Barrier`.
    pub fn barrier(&mut self, comm: Comm) -> MpiResult<()> {
        self.reap();
        self.rank.barrier(comm.0)
    }

    /// `MPI_Bcast`: `data` holds the payload at the root and is replaced by the
    /// root's payload everywhere else.
    pub fn bcast<T: MpiData>(
        &mut self,
        data: &mut Vec<T>,
        root: Rank,
        comm: Comm,
    ) -> MpiResult<()> {
        self.reap();
        let mut bytes = T::encode(data);
        self.rank.bcast(&mut bytes, root, comm.0)?;
        *data = T::decode(&bytes)?;
        Ok(())
    }

    /// `MPI_Reduce`: returns `Some(result)` at the root, `None` elsewhere.
    pub fn reduce<T: MpiData>(
        &mut self,
        data: &[T],
        op: Op<T>,
        root: Rank,
        comm: Comm,
    ) -> MpiResult<Option<Vec<T>>> {
        self.reap();
        let datatype = self.datatype_handle::<T>()?;
        let op = self.op_handle(op)?;
        match self
            .rank
            .reduce(&T::encode(data), datatype, op, root, comm.0)?
        {
            Some(bytes) => Ok(Some(T::decode(&bytes)?)),
            None => Ok(None),
        }
    }

    /// `MPI_Allreduce`.
    pub fn allreduce<T: MpiData>(
        &mut self,
        data: &[T],
        op: Op<T>,
        comm: Comm,
    ) -> MpiResult<Vec<T>> {
        self.reap();
        let datatype = self.datatype_handle::<T>()?;
        let op = self.op_handle(op)?;
        let bytes = self
            .rank
            .allreduce(&T::encode(data), datatype, op, comm.0)?;
        T::decode(&bytes)
    }

    /// `MPI_Alltoall` with `block_count` elements per peer: `data` must hold
    /// `comm_size * block_count` elements; every rank receives the same.
    pub fn alltoall<T: MpiData>(
        &mut self,
        data: &[T],
        block_count: usize,
        comm: Comm,
    ) -> MpiResult<Vec<T>> {
        self.reap();
        let bytes = self
            .rank
            .alltoall(&T::encode(data), block_count * T::elem_size(), comm.0)?;
        T::decode(&bytes)
    }

    /// `MPI_Gather` of equal-sized contributions; the concatenation lands at the
    /// root.
    pub fn gather<T: MpiData>(
        &mut self,
        data: &[T],
        root: Rank,
        comm: Comm,
    ) -> MpiResult<Option<Vec<T>>> {
        self.reap();
        match self.rank.gather(&T::encode(data), root, comm.0)? {
            Some(bytes) => Ok(Some(T::decode(&bytes)?)),
            None => Ok(None),
        }
    }

    /// `MPI_Allgather` of equal-sized contributions.
    pub fn allgather<T: MpiData>(&mut self, data: &[T], comm: Comm) -> MpiResult<Vec<T>> {
        self.reap();
        let bytes = self.rank.allgather(&T::encode(data), comm.0)?;
        T::decode(&bytes)
    }

    /// `MPI_Scatter`: the root supplies `Some(blocks)` (`comm_size * block_count`
    /// elements); every rank receives its `block_count`-element block.
    pub fn scatter<T: MpiData>(
        &mut self,
        data: Option<&[T]>,
        block_count: usize,
        root: Rank,
        comm: Comm,
    ) -> MpiResult<Vec<T>> {
        self.reap();
        let encoded = data.map(|values| T::encode(values));
        let bytes = self.rank.scatter(
            encoded.as_deref(),
            block_count * T::elem_size(),
            root,
            comm.0,
        )?;
        T::decode(&bytes)
    }

    // ------------------------------------------------------------------
    // Checkpoint / restart
    // ------------------------------------------------------------------

    /// Transparent checkpoint into the legacy flat store (collective; see
    /// [`ManaRank::checkpoint`]).
    pub fn checkpoint(&mut self, store: &CheckpointStore) -> MpiResult<WriteReport> {
        self.reap();
        self.rank.checkpoint(store)
    }

    /// Transparent checkpoint through the `ckpt-store` engine under the configured
    /// storage policy (collective; see [`ManaRank::checkpoint_into`]).
    pub fn checkpoint_into(&mut self, storage: &CheckpointStorage) -> MpiResult<StoreReport> {
        self.reap();
        self.rank.checkpoint_into(storage)
    }

    /// Service a pending mid-step checkpoint intent, if any (see
    /// [`ManaRank::service_pending_intent`]). Reaps dropped requests first: a
    /// serviced intent writes a checkpoint image, and an abandoned descriptor
    /// serialized into it would leak permanently after restart.
    pub fn service_pending_intent(&mut self) -> MpiResult<()> {
        self.reap();
        self.rank.service_pending_intent()
    }

    // ------------------------------------------------------------------
    // Introspection passthroughs
    // ------------------------------------------------------------------

    /// World rank of this process.
    pub fn world_rank(&self) -> Rank {
        self.rank.world_rank()
    }

    /// Number of ranks in the job.
    pub fn world_size(&self) -> usize {
        self.rank.world_size()
    }

    /// Name of the MPI implementation loaded in the lower half.
    pub fn implementation_name(&self) -> &'static str {
        self.rank.implementation_name()
    }

    /// Upper↔lower crossings performed so far (paper §6.3).
    pub fn crossings(&self) -> u64 {
        self.rank.crossings()
    }

    /// Live virtual-id descriptors.
    pub fn descriptor_count(&self) -> usize {
        self.rank.descriptor_count()
    }

    /// Drained messages buffered in the upper half.
    pub fn buffered_messages(&self) -> usize {
        self.rank.buffered_messages()
    }

    /// The checkpoint generation this rank is on.
    pub fn generation(&self) -> u64 {
        self.rank.generation()
    }

    /// Read-only view of the application's upper-half address space.
    pub fn upper(&self) -> &UpperHalfSpace {
        self.rank.upper()
    }

    /// Mutable view of the upper-half address space; state stored here (typed
    /// handles included) survives checkpoints.
    pub fn upper_mut(&mut self) -> &mut UpperHalfSpace {
        self.rank.upper_mut()
    }

    /// Audit the lower half for the required MANA subset.
    pub fn audit_lower_half(&self) -> crate::subset_check::ManaCompatibility {
        self.rank.audit_lower_half()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ManaConfig;
    use mpi_model::api::MpiImplementationFactory;
    use mpi_model::op::UserFunctionRegistry;
    use parking_lot::RwLock;

    fn session() -> Session {
        let registry = Arc::new(RwLock::new(UserFunctionRegistry::new()));
        let mut lowers = mpich_sim::MpichFactory::mpich()
            .launch(1, Arc::clone(&registry), 1)
            .unwrap();
        Session::new(ManaRank::new(lowers.remove(0), ManaConfig::new_design(), registry).unwrap())
    }

    #[test]
    fn constants_resolve_once_and_cache() {
        let mut session = session();
        let world = session.world().unwrap();
        assert_eq!(session.world().unwrap(), world);
        let dt = session.datatype::<f64>().unwrap();
        assert_eq!(session.datatype::<f64>().unwrap(), dt);
        assert_eq!(session.type_size(dt).unwrap(), 8);
        // Exactly one descriptor per distinct constant.
        let count = session.descriptor_count();
        let _ = session.datatype::<f64>().unwrap();
        let _ = session.world().unwrap();
        assert_eq!(session.descriptor_count(), count);
    }

    #[test]
    fn predefined_ops_are_plain_values() {
        let sum = Op::<f64>::sum();
        assert_eq!(sum, Op::predefined(PredefinedOp::Sum));
        assert_ne!(Op::<i32>::max(), Op::<i32>::min());
    }

    #[test]
    fn dropped_request_is_reaped_not_leaked() {
        let mut session = session();
        let world = session.world().unwrap();
        let _ = session.datatype::<u8>().unwrap();
        let before = session.descriptor_count();
        let request = session.irecv::<u8>(16, 0, 3, world).unwrap();
        assert_eq!(session.descriptor_count(), before + 1);
        drop(request);
        // The next session call reaps the abandoned descriptor.
        session.reap();
        assert_eq!(session.descriptor_count(), before);
    }

    #[test]
    fn typed_self_roundtrip() {
        let mut session = session();
        let world = session.world().unwrap();
        session.send(&[1.5f64, -2.5], 0, 7, world).unwrap();
        let (values, status) = session.recv::<f64>(8, 0, 7, world).unwrap();
        assert_eq!(values, vec![1.5, -2.5]);
        assert_eq!(status.count_bytes, 16);
    }
}
