//! The legacy virtual-id design (paper §4.1): the baseline the new unified table is
//! measured against.
//!
//! The pre-paper production MANA kept **one associative map per MPI object type**,
//! keyed by strings assembled from the type name, with plain `int` virtual ids and any
//! additional per-object data held in *separate* side maps. The paper lists the
//! consequences: repeated string comparisons on every translation, multiple lookups per
//! wrapper call when metadata is needed, an O(n) real→virtual path, and — fatally for
//! implementation-obliviousness — an `int`-sized id that cannot impersonate Open MPI's
//! 64-bit pointer handles or ExaMPI's lazily-resolved constants.
//!
//! This module reproduces that design faithfully enough for the performance comparison
//! (string-keyed `BTreeMap`s, separate metadata maps, linear reverse lookup) while
//! exposing the same storage API as [`crate::virtid::VirtualIdTable`], so the wrapper
//! layer can run in either mode and the Figure 2/3 "MANA" vs "MANA+virtId" bars can be
//! generated from the same code path.

use crate::config::GgidPolicy;
use crate::virtid::{Descriptor, VirtualId};
use mpi_model::comm::ggid_of_members;
use mpi_model::constants::PredefinedObject;
use mpi_model::error::{MpiError, MpiResult};
use mpi_model::types::{HandleKind, PhysHandle, Rank};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

fn map_key(kind: HandleKind, index: u32) -> String {
    // The legacy design selected the per-type map via macro-encoded string comparison;
    // building and comparing these keys on every call is the overhead being modelled.
    format!("{}:{}", kind.mpi_type_name(), index)
}

/// The legacy per-type, string-keyed tables.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LegacyTables {
    /// virtual→physical translation, one string-keyed entry per object.
    translation: BTreeMap<String, PhysHandle>,
    /// Everything the new design stores inline lives in side maps here.
    descriptors: BTreeMap<String, Descriptor>,
    /// Separate metadata map for communicator/group membership (a second lookup per
    /// call that needs it, as in the legacy design).
    members: BTreeMap<String, Vec<Rank>>,
    next_index: u32,
    creation_counter: u64,
}

impl LegacyTables {
    /// An empty set of legacy tables.
    pub fn new() -> Self {
        LegacyTables::default()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.descriptors.len()
    }

    /// Whether no objects are tracked.
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// Insert a descriptor, assigning a fresh `int`-style virtual id.
    pub fn insert_with(
        &mut self,
        kind: HandleKind,
        predefined: Option<PredefinedObject>,
        ggid_policy: GgidPolicy,
        mut build: impl FnMut(VirtualId, u64) -> Descriptor,
    ) -> VirtualId {
        let index = self.next_index;
        self.next_index += 1;
        let vid = VirtualId::new(kind, predefined.is_some(), index);
        let seq = self.creation_counter;
        self.creation_counter += 1;
        let mut descriptor = build(vid, seq);
        descriptor.vid = vid;
        descriptor.creation_seq = seq;
        if let Some(members) = &descriptor.members_world {
            if descriptor.ggid.is_none() && ggid_policy.eager_for(members.len()) {
                descriptor.ggid = Some(ggid_of_members(members));
            }
        }
        let key = map_key(kind, index);
        self.translation.insert(key.clone(), descriptor.phys);
        if let Some(members) = descriptor.members_world.clone() {
            self.members.insert(key.clone(), members);
        }
        self.descriptors.insert(key, descriptor);
        vid
    }

    /// Borrow the descriptor for `vid` (legacy path: string key construction + map
    /// lookup).
    pub fn get(&self, vid: VirtualId) -> MpiResult<&Descriptor> {
        self.descriptors
            .get(&map_key(vid.kind(), vid.index()))
            .ok_or(MpiError::InvalidHandle {
                kind: vid.kind(),
                handle: PhysHandle(vid.bits() as u64),
            })
    }

    /// Mutably borrow the descriptor for `vid`.
    pub fn get_mut(&mut self, vid: VirtualId) -> MpiResult<&mut Descriptor> {
        self.descriptors
            .get_mut(&map_key(vid.kind(), vid.index()))
            .ok_or(MpiError::InvalidHandle {
                kind: vid.kind(),
                handle: PhysHandle(vid.bits() as u64),
            })
    }

    /// Remove the descriptor for `vid`.
    pub fn remove(&mut self, vid: VirtualId) -> MpiResult<Descriptor> {
        let key = map_key(vid.kind(), vid.index());
        self.translation.remove(&key);
        self.members.remove(&key);
        self.descriptors
            .remove(&key)
            .ok_or(MpiError::InvalidHandle {
                kind: vid.kind(),
                handle: PhysHandle(vid.bits() as u64),
            })
    }

    /// virtual→physical translation: string key construction, then a map lookup in the
    /// translation table (separate from the descriptor map, as in the legacy design).
    pub fn virtual_to_physical(&self, vid: VirtualId) -> MpiResult<PhysHandle> {
        self.translation
            .get(&map_key(vid.kind(), vid.index()))
            .copied()
            .ok_or(MpiError::InvalidHandle {
                kind: vid.kind(),
                handle: PhysHandle(vid.bits() as u64),
            })
    }

    /// physical→virtual translation: O(n) iteration over all values (paper §4.1,
    /// drawback 5).
    pub fn physical_to_virtual(&self, phys: PhysHandle) -> Option<VirtualId> {
        self.descriptors
            .values()
            .find(|d| d.phys == phys && !phys.is_null())
            .map(|d| d.vid)
    }

    /// Membership lookup from the *separate* metadata map (a second string-keyed
    /// lookup, as the legacy design required).
    pub fn members_of(&self, vid: VirtualId) -> Option<&[Rank]> {
        self.members
            .get(&map_key(vid.kind(), vid.index()))
            .map(|m| m.as_slice())
    }

    /// Rebind a descriptor to a new physical handle (restart path).
    pub fn rebind(&mut self, vid: VirtualId, new_phys: PhysHandle) -> MpiResult<()> {
        let key = map_key(vid.kind(), vid.index());
        let descriptor = self
            .descriptors
            .get_mut(&key)
            .ok_or(MpiError::InvalidHandle {
                kind: vid.kind(),
                handle: PhysHandle(vid.bits() as u64),
            })?;
        descriptor.phys = new_phys;
        self.translation.insert(key, new_phys);
        Ok(())
    }

    /// Drop all physical bindings (lower half discarded).
    pub fn clear_physical_bindings(&mut self) {
        for descriptor in self.descriptors.values_mut() {
            descriptor.phys = PhysHandle::NULL;
        }
        for phys in self.translation.values_mut() {
            *phys = PhysHandle::NULL;
        }
    }

    /// Live descriptors in creation order.
    pub fn iter_in_creation_order(&self) -> Vec<&Descriptor> {
        let mut live: Vec<&Descriptor> = self.descriptors.values().collect();
        live.sort_by_key(|d| d.creation_seq);
        live
    }

    /// The virtual id registered for a predefined object, if any.
    pub fn find_predefined(&self, object: PredefinedObject) -> Option<VirtualId> {
        self.descriptors
            .values()
            .find(|d| d.predefined == Some(object))
            .map(|d| d.vid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::virtid::blank_descriptor;

    fn insert_comm(tables: &mut LegacyTables, phys: u64, members: Vec<Rank>) -> VirtualId {
        tables.insert_with(HandleKind::Comm, None, GgidPolicy::Eager, |_vid, _seq| {
            Descriptor {
                members_world: Some(members.clone()),
                ..blank_descriptor(HandleKind::Comm, PhysHandle(phys))
            }
        })
    }

    #[test]
    fn translation_and_metadata_are_separate_lookups() {
        let mut tables = LegacyTables::new();
        let vid = insert_comm(&mut tables, 0x10, vec![0, 1, 2]);
        assert_eq!(tables.virtual_to_physical(vid).unwrap(), PhysHandle(0x10));
        assert_eq!(tables.members_of(vid).unwrap(), &[0, 1, 2]);
        assert_eq!(tables.len(), 1);
        assert!(tables.get(vid).unwrap().ggid.is_some());
    }

    #[test]
    fn reverse_lookup_is_linear_but_correct() {
        let mut tables = LegacyTables::new();
        let mut vids = vec![];
        for i in 0..100u64 {
            vids.push(insert_comm(&mut tables, 0x1000 + i, vec![0]));
        }
        assert_eq!(
            tables.physical_to_virtual(PhysHandle(0x1000 + 57)),
            Some(vids[57])
        );
        assert_eq!(tables.physical_to_virtual(PhysHandle(0xdead)), None);
    }

    #[test]
    fn remove_and_rebind() {
        let mut tables = LegacyTables::new();
        let vid = insert_comm(&mut tables, 0x10, vec![0]);
        tables.rebind(vid, PhysHandle(0x99)).unwrap();
        assert_eq!(tables.virtual_to_physical(vid).unwrap(), PhysHandle(0x99));
        tables.clear_physical_bindings();
        assert!(tables.virtual_to_physical(vid).unwrap().is_null());
        tables.remove(vid).unwrap();
        assert!(tables.get(vid).is_err());
        assert!(tables.is_empty());
    }

    #[test]
    fn creation_order_and_predefined() {
        let mut tables = LegacyTables::new();
        let world = tables.insert_with(
            HandleKind::Comm,
            Some(PredefinedObject::CommWorld),
            GgidPolicy::Eager,
            |_vid, _seq| Descriptor {
                predefined: Some(PredefinedObject::CommWorld),
                members_world: Some(vec![0, 1]),
                ..blank_descriptor(HandleKind::Comm, PhysHandle(1))
            },
        );
        let other = insert_comm(&mut tables, 2, vec![0]);
        let order: Vec<VirtualId> = tables
            .iter_in_creation_order()
            .iter()
            .map(|d| d.vid)
            .collect();
        assert_eq!(order, vec![world, other]);
        assert_eq!(
            tables.find_predefined(PredefinedObject::CommWorld),
            Some(world)
        );
    }
}
