//! The new virtual-id subsystem (paper §4.2).
//!
//! A [`VirtualId`] is a 32-bit integer that MANA hands to the application in place of
//! the implementation's physical handle. Its bit layout encodes the object kind (3
//! bits), a predefined-object flag (1 bit), and a 28-bit index into a single unified
//! table of [`Descriptor`] structs. The descriptor stores the current physical handle
//! (whatever width the lower half uses — the 64-bit [`PhysHandle`] covers `int`
//! handles, struct pointers and enum discriminants alike) together with the
//! MANA-internal metadata needed at checkpoint and restart time: the ggid and
//! membership of communicators and groups, the structural description of datatypes,
//! the registration parameters of user ops, and the progress record of requests.
//!
//! Compared with the legacy design (one string-keyed map per object type, see
//! [`crate::legacy`]), the unified table gives:
//!
//! * a single integer-indexed lookup on the virtual→physical path (no string
//!   comparisons, no per-type map dispatch),
//! * an O(1) physical→virtual reverse lookup via an auxiliary hash map (the legacy
//!   design iterates, O(n)),
//! * all metadata co-located with the translation entry, so one lookup serves a whole
//!   wrapper call.

use crate::config::GgidPolicy;
use mpi_model::comm::ggid_of_members;
use mpi_model::constants::PredefinedObject;
use mpi_model::datatype::TypeDescriptor;
use mpi_model::error::{MpiError, MpiResult};
use mpi_model::op::OpDescriptor;
use mpi_model::request::RequestRecord;
use mpi_model::types::{HandleKind, PhysHandle, Rank};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Number of bits reserved for the table index / ggid portion of a virtual id.
pub const INDEX_BITS: u32 = 28;
/// Mask selecting the index bits.
pub const INDEX_MASK: u32 = (1 << INDEX_BITS) - 1;
/// Bit position of the predefined flag.
const PREDEF_SHIFT: u32 = INDEX_BITS; // 28
/// Bit position of the 3-bit kind field.
const KIND_SHIFT: u32 = INDEX_BITS + 1; // 29

/// A 32-bit MANA virtual id.
///
/// This is the value MANA embeds "into the first 4 bytes of the MPI object type
/// declared by the MPI include file" (paper §4.2); see [`crate::runtime::AppHandle`]
/// for the embedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VirtualId(u32);

impl VirtualId {
    /// Build a virtual id from its fields.
    pub fn new(kind: HandleKind, predefined: bool, index: u32) -> Self {
        debug_assert!(index <= INDEX_MASK, "virtual-id index overflow");
        VirtualId(
            (kind.tag() << KIND_SHIFT)
                | (u32::from(predefined) << PREDEF_SHIFT)
                | (index & INDEX_MASK),
        )
    }

    /// The raw 32-bit value.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Rebuild from a raw 32-bit value, validating the kind bits.
    pub fn from_bits(bits: u32) -> Option<Self> {
        HandleKind::from_tag(bits >> KIND_SHIFT)?;
        Some(VirtualId(bits))
    }

    /// The object kind encoded in the id.
    pub fn kind(self) -> HandleKind {
        // analyzer: allow(no-panic): provable invariant — every constructor (new/from_bits) validates the kind tag, and the field is private
        HandleKind::from_tag(self.0 >> KIND_SHIFT).expect("kind bits validated at construction")
    }

    /// Whether the id names a predefined object.
    pub fn is_predefined(self) -> bool {
        (self.0 >> PREDEF_SHIFT) & 1 == 1
    }

    /// The 28-bit table index (or ggid-derived index).
    pub fn index(self) -> u32 {
        self.0 & INDEX_MASK
    }
}

/// Virtual ids key the per-communicator maps of the collective ledger
/// ([`crate::record::CollectiveLog`]), which is serialized into every checkpoint
/// image — so they must round-trip as JSON object keys.
impl serde::MapKey for VirtualId {
    fn to_key(&self) -> String {
        self.bits().to_string()
    }

    fn from_key(key: &str) -> Result<Self, serde::Error> {
        let bits: u32 = key
            .parse()
            .map_err(|_| serde::Error::custom(format!("invalid virtual-id map key {key:?}")))?;
        VirtualId::from_bits(bits)
            .ok_or_else(|| serde::Error::custom(format!("map key {key:?} is not a virtual id")))
    }
}

impl std::fmt::Display for VirtualId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "virt:{}:{}{}",
            self.kind().mpi_type_name(),
            self.index(),
            if self.is_predefined() { ":predef" } else { "" }
        )
    }
}

/// The MANA-internal structure behind one virtual id (paper §4.2: "Each virtual id in
/// the new design is represented by a structure ... containing additional MANA-specific
/// information associated with that MPI object").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Descriptor {
    /// The virtual id this descriptor belongs to.
    pub vid: VirtualId,
    /// Object kind (duplicated from the vid for convenience).
    pub kind: HandleKind,
    /// The *current* physical handle in the lower half. Refreshed at restart; never
    /// meaningful across sessions.
    pub phys: PhysHandle,
    /// If this descriptor stands for a predefined object, which one.
    pub predefined: Option<PredefinedObject>,
    /// Global group id for communicators and groups (paper §4.2). `None` until
    /// computed (see [`GgidPolicy`]).
    pub ggid: Option<u32>,
    /// For communicators and groups: the member world ranks in rank order.
    pub members_world: Option<Vec<Rank>>,
    /// For datatypes: the structural description (also the restart recipe).
    pub datatype: Option<TypeDescriptor>,
    /// For ops: the reduction description.
    pub op: Option<OpDescriptor>,
    /// For requests: the progress record.
    pub request: Option<RequestRecord>,
    /// Creation order, used to replay object creation in a consistent order.
    pub creation_seq: u64,
}

impl Descriptor {
    /// Compute (or return the cached) ggid for a communicator/group descriptor.
    pub fn ggid_or_compute(&mut self) -> Option<u32> {
        if self.ggid.is_none() {
            if let Some(members) = &self.members_world {
                self.ggid = Some(ggid_of_members(members));
            }
        }
        self.ggid
    }
}

/// The unified descriptor table: the new virtual-id data structure.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VirtualIdTable {
    /// Slot `i` holds the descriptor whose vid index is `i`.
    slots: Vec<Option<Descriptor>>,
    /// O(1) physical→virtual lookup (not serialized: physical handles are
    /// session-specific and rebuilt at restart).
    #[serde(skip)]
    reverse: HashMap<PhysHandle, VirtualId>,
    /// Monotone creation counter. Indices are never reused, so a stale virtual id can
    /// never silently alias a newer object.
    next_index: u32,
    creation_counter: u64,
}

impl VirtualIdTable {
    /// An empty table.
    pub fn new() -> Self {
        VirtualIdTable::default()
    }

    /// Number of live descriptors.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether the table has no live descriptors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a new descriptor, assigning it a fresh virtual id.
    ///
    /// The caller provides everything except `vid` and `creation_seq`, via the
    /// `build` closure which receives the assigned vid.
    pub fn insert_with(
        &mut self,
        kind: HandleKind,
        predefined: Option<PredefinedObject>,
        ggid_policy: GgidPolicy,
        mut build: impl FnMut(VirtualId, u64) -> Descriptor,
    ) -> VirtualId {
        let index = self.next_index;
        self.next_index += 1;
        let vid = VirtualId::new(kind, predefined.is_some(), index);
        let seq = self.creation_counter;
        self.creation_counter += 1;
        let mut descriptor = build(vid, seq);
        descriptor.vid = vid;
        descriptor.creation_seq = seq;
        if let Some(members) = &descriptor.members_world {
            if descriptor.ggid.is_none() && ggid_policy.eager_for(members.len()) {
                descriptor.ggid = Some(ggid_of_members(members));
            }
        }
        if !descriptor.phys.is_null() {
            self.reverse.insert(descriptor.phys, vid);
        }
        if self.slots.len() <= index as usize {
            self.slots.resize(index as usize + 1, None);
        }
        self.slots[index as usize] = Some(descriptor);
        vid
    }

    /// Borrow the descriptor for `vid`.
    pub fn get(&self, vid: VirtualId) -> MpiResult<&Descriptor> {
        self.slots
            .get(vid.index() as usize)
            .and_then(|s| s.as_ref())
            .filter(|d| d.vid == vid)
            .ok_or(MpiError::InvalidHandle {
                kind: vid.kind(),
                handle: PhysHandle(vid.bits() as u64),
            })
    }

    /// Mutably borrow the descriptor for `vid`.
    pub fn get_mut(&mut self, vid: VirtualId) -> MpiResult<&mut Descriptor> {
        self.slots
            .get_mut(vid.index() as usize)
            .and_then(|s| s.as_mut())
            .filter(|d| d.vid == vid)
            .ok_or(MpiError::InvalidHandle {
                kind: vid.kind(),
                handle: PhysHandle(vid.bits() as u64),
            })
    }

    /// Remove the descriptor for `vid`.
    pub fn remove(&mut self, vid: VirtualId) -> MpiResult<Descriptor> {
        let slot = self
            .slots
            .get_mut(vid.index() as usize)
            .ok_or(MpiError::InvalidHandle {
                kind: vid.kind(),
                handle: PhysHandle(vid.bits() as u64),
            })?;
        match slot.take() {
            Some(descriptor) if descriptor.vid == vid => {
                self.reverse.remove(&descriptor.phys);
                Ok(descriptor)
            }
            other => {
                *slot = other;
                Err(MpiError::InvalidHandle {
                    kind: vid.kind(),
                    handle: PhysHandle(vid.bits() as u64),
                })
            }
        }
    }

    /// Translate a virtual id to its current physical handle (the hot path of every
    /// wrapper function).
    pub fn virtual_to_physical(&self, vid: VirtualId) -> MpiResult<PhysHandle> {
        Ok(self.get(vid)?.phys)
    }

    /// Translate a physical handle back to its virtual id (used by the rare wrapper
    /// that receives a physical handle from the lower half).
    pub fn physical_to_virtual(&self, phys: PhysHandle) -> Option<VirtualId> {
        self.reverse.get(&phys).copied()
    }

    /// Rebind a descriptor to a new physical handle (restart path).
    pub fn rebind(&mut self, vid: VirtualId, new_phys: PhysHandle) -> MpiResult<()> {
        let old = {
            let descriptor = self.get_mut(vid)?;
            let old = descriptor.phys;
            descriptor.phys = new_phys;
            old
        };
        self.reverse.remove(&old);
        if !new_phys.is_null() {
            self.reverse.insert(new_phys, vid);
        }
        Ok(())
    }

    /// Clear every physical binding (called when the lower half is discarded at
    /// checkpoint/restart, so no stale physical handle can leak across sessions).
    pub fn clear_physical_bindings(&mut self) {
        self.reverse.clear();
        for slot in self.slots.iter_mut().flatten() {
            slot.phys = PhysHandle::NULL;
        }
    }

    /// Rebuild the reverse map from the slots (after deserialization followed by
    /// rebinding).
    pub fn rebuild_reverse_index(&mut self) {
        self.reverse = self
            .slots
            .iter()
            .flatten()
            .filter(|d| !d.phys.is_null())
            .map(|d| (d.phys, d.vid))
            .collect();
    }

    /// Iterate over live descriptors in creation order.
    pub fn iter_in_creation_order(&self) -> Vec<&Descriptor> {
        let mut live: Vec<&Descriptor> = self.slots.iter().flatten().collect();
        live.sort_by_key(|d| d.creation_seq);
        live
    }

    /// Iterate over live descriptors of one kind in creation order.
    pub fn iter_kind(&self, kind: HandleKind) -> Vec<&Descriptor> {
        self.iter_in_creation_order()
            .into_iter()
            .filter(|d| d.kind == kind)
            .collect()
    }

    /// Find the virtual id of the predefined object `object`, if it has been entered.
    pub fn find_predefined(&self, object: PredefinedObject) -> Option<VirtualId> {
        self.slots
            .iter()
            .flatten()
            .find(|d| d.predefined == Some(object))
            .map(|d| d.vid)
    }
}

/// A descriptor skeleton with every optional field empty; the wrappers fill in the
/// fields relevant to the object kind.
pub fn blank_descriptor(kind: HandleKind, phys: PhysHandle) -> Descriptor {
    Descriptor {
        vid: VirtualId::new(kind, false, 0),
        kind,
        phys,
        predefined: None,
        ggid: None,
        members_world: None,
        datatype: None,
        op: None,
        request: None,
        creation_seq: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_id_bit_layout() {
        let vid = VirtualId::new(HandleKind::Datatype, true, 12345);
        assert_eq!(vid.kind(), HandleKind::Datatype);
        assert!(vid.is_predefined());
        assert_eq!(vid.index(), 12345);
        assert_eq!(VirtualId::from_bits(vid.bits()), Some(vid));
        // The id genuinely fits in 32 bits (it *is* 32 bits).
        assert_eq!(std::mem::size_of::<VirtualId>(), 4);
    }

    #[test]
    fn from_bits_rejects_bad_kind() {
        // kind tag 7 (0b111) is invalid
        assert_eq!(VirtualId::from_bits(0b111 << 29), None);
    }

    #[test]
    fn insert_get_translate_remove() {
        let mut table = VirtualIdTable::new();
        let vid = table.insert_with(HandleKind::Comm, None, GgidPolicy::Eager, |vid, seq| {
            Descriptor {
                members_world: Some(vec![0, 1, 2]),
                phys: PhysHandle(0xabc),
                ..blank_descriptor(HandleKind::Comm, PhysHandle(0xabc))
            }
            .with_vid_seq(vid, seq)
        });
        assert_eq!(table.len(), 1);
        assert_eq!(table.virtual_to_physical(vid).unwrap(), PhysHandle(0xabc));
        assert_eq!(table.physical_to_virtual(PhysHandle(0xabc)), Some(vid));
        assert!(
            table.get(vid).unwrap().ggid.is_some(),
            "eager policy computes ggid"
        );
        table.remove(vid).unwrap();
        assert!(table.get(vid).is_err());
        assert_eq!(table.physical_to_virtual(PhysHandle(0xabc)), None);
    }

    #[test]
    fn lazy_ggid_policy_defers() {
        let mut table = VirtualIdTable::new();
        let vid = table.insert_with(HandleKind::Comm, None, GgidPolicy::Lazy, |vid, seq| {
            Descriptor {
                members_world: Some(vec![0, 1]),
                ..blank_descriptor(HandleKind::Comm, PhysHandle(1))
            }
            .with_vid_seq(vid, seq)
        });
        assert!(table.get(vid).unwrap().ggid.is_none());
        let computed = table.get_mut(vid).unwrap().ggid_or_compute();
        assert!(computed.is_some());
        assert_eq!(table.get(vid).unwrap().ggid, computed);
    }

    #[test]
    fn rebind_and_clear() {
        let mut table = VirtualIdTable::new();
        let vid = table.insert_with(HandleKind::Datatype, None, GgidPolicy::Eager, |vid, seq| {
            blank_descriptor(HandleKind::Datatype, PhysHandle(5)).with_vid_seq(vid, seq)
        });
        table.rebind(vid, PhysHandle(77)).unwrap();
        assert_eq!(table.virtual_to_physical(vid).unwrap(), PhysHandle(77));
        assert_eq!(table.physical_to_virtual(PhysHandle(5)), None);
        assert_eq!(table.physical_to_virtual(PhysHandle(77)), Some(vid));
        table.clear_physical_bindings();
        assert!(table.virtual_to_physical(vid).unwrap().is_null());
        assert_eq!(table.physical_to_virtual(PhysHandle(77)), None);
    }

    #[test]
    fn indices_are_not_reused() {
        let mut table = VirtualIdTable::new();
        let a = table.insert_with(HandleKind::Group, None, GgidPolicy::Eager, |vid, seq| {
            blank_descriptor(HandleKind::Group, PhysHandle(1)).with_vid_seq(vid, seq)
        });
        table.remove(a).unwrap();
        let b = table.insert_with(HandleKind::Group, None, GgidPolicy::Eager, |vid, seq| {
            blank_descriptor(HandleKind::Group, PhysHandle(2)).with_vid_seq(vid, seq)
        });
        assert_ne!(a.index(), b.index(), "stale vids never alias new objects");
        assert!(table.get(a).is_err());
    }

    #[test]
    fn creation_order_iteration_and_predefined_lookup() {
        let mut table = VirtualIdTable::new();
        let world = table.insert_with(
            HandleKind::Comm,
            Some(PredefinedObject::CommWorld),
            GgidPolicy::Eager,
            |vid, seq| {
                Descriptor {
                    predefined: Some(PredefinedObject::CommWorld),
                    members_world: Some(vec![0, 1]),
                    ..blank_descriptor(HandleKind::Comm, PhysHandle(1))
                }
                .with_vid_seq(vid, seq)
            },
        );
        let dt = table.insert_with(HandleKind::Datatype, None, GgidPolicy::Eager, |vid, seq| {
            blank_descriptor(HandleKind::Datatype, PhysHandle(2)).with_vid_seq(vid, seq)
        });
        let order: Vec<VirtualId> = table
            .iter_in_creation_order()
            .iter()
            .map(|d| d.vid)
            .collect();
        assert_eq!(order, vec![world, dt]);
        assert_eq!(table.iter_kind(HandleKind::Comm).len(), 1);
        assert_eq!(
            table.find_predefined(PredefinedObject::CommWorld),
            Some(world)
        );
        assert_eq!(table.find_predefined(PredefinedObject::CommSelf), None);
        assert!(world.is_predefined());
        assert!(!dt.is_predefined());
    }

    #[test]
    fn serde_roundtrip_preserves_descriptors_but_not_reverse_index() {
        let mut table = VirtualIdTable::new();
        let vid = table.insert_with(HandleKind::Comm, None, GgidPolicy::Eager, |vid, seq| {
            Descriptor {
                members_world: Some(vec![0, 1, 2, 3]),
                ..blank_descriptor(HandleKind::Comm, PhysHandle(0x1234))
            }
            .with_vid_seq(vid, seq)
        });
        let json = serde_json::to_string(&table).unwrap();
        let mut restored: VirtualIdTable = serde_json::from_str(&json).unwrap();
        assert_eq!(
            restored.get(vid).unwrap().members_world,
            Some(vec![0, 1, 2, 3])
        );
        // The reverse index is rebuilt explicitly, mirroring the restart path.
        assert_eq!(restored.physical_to_virtual(PhysHandle(0x1234)), None);
        restored.rebuild_reverse_index();
        assert_eq!(restored.physical_to_virtual(PhysHandle(0x1234)), Some(vid));
    }

    impl Descriptor {
        fn with_vid_seq(mut self, vid: VirtualId, seq: u64) -> Self {
            self.vid = vid;
            self.creation_seq = seq;
            self
        }
    }

    /// Deterministic walk over the index space: edge values plus a pseudo-random
    /// sample (xorshift), standing in for the original proptest strategies now that
    /// the build environment cannot fetch proptest.
    fn sampled_indices() -> Vec<u32> {
        let mut indices = vec![0, 1, 2, INDEX_MASK - 1, INDEX_MASK];
        let mut state = 0x9E37_79B9u32;
        for _ in 0..256 {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            indices.push(state & INDEX_MASK);
        }
        indices
    }

    #[test]
    fn prop_virtual_id_roundtrip() {
        for kind_tag in 0u32..5 {
            let kind = HandleKind::from_tag(kind_tag).unwrap();
            for predefined in [false, true] {
                for &index in &sampled_indices() {
                    let vid = VirtualId::new(kind, predefined, index);
                    assert_eq!(vid.kind(), kind);
                    assert_eq!(vid.is_predefined(), predefined);
                    assert_eq!(vid.index(), index);
                    assert_eq!(VirtualId::from_bits(vid.bits()), Some(vid));
                }
            }
        }
    }

    #[test]
    fn prop_distinct_fields_give_distinct_ids() {
        let indices = sampled_indices();
        for &a in &indices {
            for &b in &indices {
                if a == b {
                    continue;
                }
                let x = VirtualId::new(HandleKind::Comm, false, a);
                let y = VirtualId::new(HandleKind::Comm, false, b);
                assert_ne!(x.bits(), y.bits());
            }
        }
    }
}
