//! Creation recipes and the per-rank replay log.
//!
//! MANA reconstructs MPI objects at restart by *record-replay*: during normal execution
//! every object-creating wrapper appends a [`ReplayEvent`] describing how the object
//! was created (its [`CreationRecipe`]); at restart the log is replayed, in order,
//! against the fresh lower half. Collectively-created objects (communicators) need
//! every original participant to replay the call — including ranks whose result was
//! `MPI_COMM_NULL` — which is why events record participation even when no virtual id
//! was produced.
//!
//! This is the "record-replay of MPI objects during restart" strategy the paper lists
//! among the options its descriptor design keeps open (§1.2, point 4); the descriptor's
//! cached metadata (datatype contents, communicator membership) would equally support
//! the alternative "serialize a representation of the MPI object" strategy.

use crate::virtid::VirtualId;
use mpi_model::constants::PredefinedObject;
use mpi_model::datatype::TypeDescriptor;
use mpi_model::types::Rank;
use serde::{Deserialize, Serialize};

/// How an MPI object was created, in enough detail to create a semantically equivalent
/// object in a fresh lower half.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CreationRecipe {
    /// A predefined object (world/self communicators, named datatypes, built-in ops);
    /// re-resolved from the lower half's constants rather than re-created.
    Predefined(PredefinedObject),
    /// `MPI_Comm_dup(parent)`.
    CommDup {
        /// Virtual id of the parent communicator.
        parent: VirtualId,
    },
    /// `MPI_Comm_split(parent, color, key)`; `color == None` is `MPI_UNDEFINED`.
    CommSplit {
        /// Virtual id of the parent communicator.
        parent: VirtualId,
        /// Split colour (`None` = `MPI_UNDEFINED`).
        color: Option<i32>,
        /// Ordering key.
        key: i32,
    },
    /// `MPI_Comm_create(parent, group)`, with the group's membership captured as world
    /// ranks so the group object itself need not survive.
    CommCreate {
        /// Virtual id of the parent communicator.
        parent: VirtualId,
        /// World ranks of the new communicator's members, in group order.
        members_world: Vec<Rank>,
    },
    /// `MPI_Comm_group(comm)`.
    GroupFromComm {
        /// Virtual id of the communicator whose group was taken.
        comm: VirtualId,
    },
    /// `MPI_Group_incl(parent_group, ranks)`.
    GroupIncl {
        /// Virtual id of the parent group.
        parent: VirtualId,
        /// Group ranks selected from the parent.
        ranks: Vec<Rank>,
    },
    /// Any derived-datatype constructor, captured structurally. The structural
    /// description is exactly what `MPI_Type_get_envelope`/`MPI_Type_get_contents`
    /// decode to (paper §5, category 2).
    DerivedDatatype {
        /// Structural description of the datatype.
        descriptor: TypeDescriptor,
        /// Whether `MPI_Type_commit` had been called by checkpoint time.
        committed: bool,
    },
    /// `MPI_Op_create(func_id, commutative)`.
    UserOp {
        /// Upper-half function id.
        func_id: u64,
        /// Commutativity flag.
        commutative: bool,
    },
}

impl CreationRecipe {
    /// Whether replaying this recipe requires a collective call (and therefore the
    /// participation of other ranks).
    pub fn is_collective(&self) -> bool {
        matches!(
            self,
            CreationRecipe::CommDup { .. }
                | CreationRecipe::CommSplit { .. }
                | CreationRecipe::CommCreate { .. }
        )
    }
}

/// One entry in the per-rank replay log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayEvent {
    /// The recipe to replay.
    pub recipe: CreationRecipe,
    /// The virtual id the original call produced on this rank, or `None` if the call
    /// returned a null handle here (e.g. `MPI_Comm_split` with `MPI_UNDEFINED`).
    pub vid: Option<VirtualId>,
    /// Whether the object has since been freed. Freed objects are still *replayed*
    /// (collective creation must stay aligned across ranks) and then immediately freed
    /// again in the fresh lower half.
    pub freed: bool,
}

impl ReplayEvent {
    /// A new, live event.
    pub fn new(recipe: CreationRecipe, vid: Option<VirtualId>) -> Self {
        ReplayEvent {
            recipe,
            vid,
            freed: false,
        }
    }
}

/// The ordered log of object-creating calls made by one rank.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReplayLog {
    events: Vec<ReplayEvent>,
}

impl ReplayLog {
    /// An empty log.
    pub fn new() -> Self {
        ReplayLog::default()
    }

    /// Append an event.
    pub fn push(&mut self, event: ReplayEvent) {
        self.events.push(event);
    }

    /// Mark the event that produced `vid` as freed.
    pub fn mark_freed(&mut self, vid: VirtualId) {
        if let Some(event) = self
            .events
            .iter_mut()
            .rev()
            .find(|e| e.vid == Some(vid) && !e.freed)
        {
            event.freed = true;
        }
    }

    /// The events in creation order.
    pub fn events(&self) -> &[ReplayEvent] {
        &self.events
    }

    /// Mutable access to one event by position (used to record late facts such as
    /// `MPI_Type_commit` having been called on an already-recorded datatype).
    pub fn event_mut(&mut self, index: usize) -> &mut ReplayEvent {
        &mut self.events[index]
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events that will need collective replay at restart.
    pub fn collective_events(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.recipe.is_collective())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_model::types::HandleKind;

    fn vid(i: u32) -> VirtualId {
        VirtualId::new(HandleKind::Comm, false, i)
    }

    #[test]
    fn push_and_mark_freed() {
        let mut log = ReplayLog::new();
        log.push(ReplayEvent::new(
            CreationRecipe::CommDup { parent: vid(1) },
            Some(vid(2)),
        ));
        log.push(ReplayEvent::new(
            CreationRecipe::CommSplit {
                parent: vid(1),
                color: None,
                key: 0,
            },
            None,
        ));
        assert_eq!(log.len(), 2);
        assert_eq!(log.collective_events(), 2);
        log.mark_freed(vid(2));
        assert!(log.events()[0].freed);
        assert!(!log.events()[1].freed);
        // Marking an unknown vid is a no-op.
        log.mark_freed(vid(99));
    }

    #[test]
    fn collectives_are_identified() {
        assert!(CreationRecipe::CommSplit {
            parent: vid(1),
            color: Some(0),
            key: 0
        }
        .is_collective());
        assert!(!CreationRecipe::UserOp {
            func_id: 1,
            commutative: true
        }
        .is_collective());
        assert!(!CreationRecipe::GroupFromComm { comm: vid(1) }.is_collective());
    }
}
