//! Creation recipes and the per-rank replay log.
//!
//! MANA reconstructs MPI objects at restart by *record-replay*: during normal execution
//! every object-creating wrapper appends a [`ReplayEvent`] describing how the object
//! was created (its [`CreationRecipe`]); at restart the log is replayed, in order,
//! against the fresh lower half. Collectively-created objects (communicators) need
//! every original participant to replay the call — including ranks whose result was
//! `MPI_COMM_NULL` — which is why events record participation even when no virtual id
//! was produced.
//!
//! This is the "record-replay of MPI objects during restart" strategy the paper lists
//! among the options its descriptor design keeps open (§1.2, point 4); the descriptor's
//! cached metadata (datatype contents, communicator membership) would equally support
//! the alternative "serialize a representation of the MPI object" strategy.

use crate::virtid::VirtualId;
use mpi_model::constants::PredefinedObject;
use mpi_model::datatype::TypeDescriptor;
use mpi_model::error::{MpiError, MpiResult};
use mpi_model::types::Rank;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How an MPI object was created, in enough detail to create a semantically equivalent
/// object in a fresh lower half.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CreationRecipe {
    /// A predefined object (world/self communicators, named datatypes, built-in ops);
    /// re-resolved from the lower half's constants rather than re-created.
    Predefined(PredefinedObject),
    /// `MPI_Comm_dup(parent)`.
    CommDup {
        /// Virtual id of the parent communicator.
        parent: VirtualId,
    },
    /// `MPI_Comm_split(parent, color, key)`; `color == None` is `MPI_UNDEFINED`.
    CommSplit {
        /// Virtual id of the parent communicator.
        parent: VirtualId,
        /// Split colour (`None` = `MPI_UNDEFINED`).
        color: Option<i32>,
        /// Ordering key.
        key: i32,
    },
    /// `MPI_Comm_create(parent, group)`, with the group's membership captured as world
    /// ranks so the group object itself need not survive.
    CommCreate {
        /// Virtual id of the parent communicator.
        parent: VirtualId,
        /// World ranks of the new communicator's members, in group order.
        members_world: Vec<Rank>,
    },
    /// `MPI_Comm_group(comm)`.
    GroupFromComm {
        /// Virtual id of the communicator whose group was taken.
        comm: VirtualId,
    },
    /// `MPI_Group_incl(parent_group, ranks)`.
    GroupIncl {
        /// Virtual id of the parent group.
        parent: VirtualId,
        /// Group ranks selected from the parent.
        ranks: Vec<Rank>,
    },
    /// Any derived-datatype constructor, captured structurally. The structural
    /// description is exactly what `MPI_Type_get_envelope`/`MPI_Type_get_contents`
    /// decode to (paper §5, category 2).
    DerivedDatatype {
        /// Structural description of the datatype.
        descriptor: TypeDescriptor,
        /// Whether `MPI_Type_commit` had been called by checkpoint time.
        committed: bool,
    },
    /// `MPI_Op_create(func_id, commutative)`.
    UserOp {
        /// Upper-half function id.
        func_id: u64,
        /// Commutativity flag.
        commutative: bool,
    },
}

impl CreationRecipe {
    /// Whether replaying this recipe requires a collective call (and therefore the
    /// participation of other ranks).
    pub fn is_collective(&self) -> bool {
        matches!(
            self,
            CreationRecipe::CommDup { .. }
                | CreationRecipe::CommSplit { .. }
                | CreationRecipe::CommCreate { .. }
        )
    }
}

/// One entry in the per-rank replay log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayEvent {
    /// The recipe to replay.
    pub recipe: CreationRecipe,
    /// The virtual id the original call produced on this rank, or `None` if the call
    /// returned a null handle here (e.g. `MPI_Comm_split` with `MPI_UNDEFINED`).
    pub vid: Option<VirtualId>,
    /// Whether the object has since been freed. Freed objects are still *replayed*
    /// (collective creation must stay aligned across ranks) and then immediately freed
    /// again in the fresh lower half.
    pub freed: bool,
}

impl ReplayEvent {
    /// A new, live event.
    pub fn new(recipe: CreationRecipe, vid: Option<VirtualId>) -> Self {
        ReplayEvent {
            recipe,
            vid,
            freed: false,
        }
    }
}

/// The ordered log of object-creating calls made by one rank.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReplayLog {
    events: Vec<ReplayEvent>,
}

impl ReplayLog {
    /// An empty log.
    pub fn new() -> Self {
        ReplayLog::default()
    }

    /// Append an event.
    pub fn push(&mut self, event: ReplayEvent) {
        self.events.push(event);
    }

    /// Mark the event that produced `vid` as freed.
    pub fn mark_freed(&mut self, vid: VirtualId) {
        if let Some(event) = self
            .events
            .iter_mut()
            .rev()
            .find(|e| e.vid == Some(vid) && !e.freed)
        {
            event.freed = true;
        }
    }

    /// The events in creation order.
    pub fn events(&self) -> &[ReplayEvent] {
        &self.events
    }

    /// Mutable access to one event by position (used to record late facts such as
    /// `MPI_Type_commit` having been called on an already-recorded datatype).
    pub fn event_mut(&mut self, index: usize) -> &mut ReplayEvent {
        &mut self.events[index]
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events that will need collective replay at restart.
    pub fn collective_events(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.recipe.is_collective())
            .count()
    }
}

// ----------------------------------------------------------------------
// Collective record-keeping (two-phase collective protocol)
// ----------------------------------------------------------------------

/// Which collective operation a [`CollectiveRecord`] describes. Arguments are not
/// recorded: a straddled collective is re-executed by re-running the application code
/// that issued it, so only the *identity* of the call matters — it names, in the
/// serialized ledger, which collective the checkpoint interrupted (diagnosis and
/// tests), and it is what a sanity check against a pending record compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// `MPI_Barrier`.
    Barrier,
    /// `MPI_Bcast`.
    Bcast,
    /// `MPI_Reduce`.
    Reduce,
    /// `MPI_Allreduce`.
    Allreduce,
    /// `MPI_Alltoall`.
    Alltoall,
    /// `MPI_Gather`.
    Gather,
    /// `MPI_Allgather`.
    Allgather,
    /// `MPI_Scatter`.
    Scatter,
}

/// The collective this rank has *registered for but not completed*: the record a
/// checkpoint serializes when the intent lands while ranks straddle a collective.
/// Restart clears it ([`CollectiveLog::clear_pending`]) — the interrupted step
/// re-runs from its beginning, so the straddled collective is re-executed as a fresh
/// issue whose sequence number ([`CollectiveLog::begin`] hands out the completed
/// count) necessarily equals the one the pending registration held.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectiveRecord {
    /// Virtual id of the communicator the collective runs on.
    pub comm: VirtualId,
    /// Upper-half collective sequence number on that communicator (0-based).
    pub seq: u64,
    /// Which collective operation was issued.
    pub kind: CollectiveKind,
}

/// The upper-half ledger of collective progress, serialized into every checkpoint
/// image: per-communicator completed-collective counts (the published collective
/// sequence numbers of the two-phase protocol) plus the at-most-one pending
/// registration. Because a rank is single-threaded, at most one collective can be
/// between its registration and its completion at any instant.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectiveLog {
    completed: BTreeMap<VirtualId, u64>,
    pending: Option<CollectiveRecord>,
    total_completed: u64,
}

impl CollectiveLog {
    /// An empty log.
    pub fn new() -> Self {
        CollectiveLog::default()
    }

    /// Enter the registration phase of a collective on `comm`: assign (and publish
    /// into the upper half) its sequence number. A rank is single-threaded, so a
    /// leftover pending record here means a previous collective was neither
    /// completed nor aborted — an internal protocol violation.
    pub fn begin(&mut self, comm: VirtualId, kind: CollectiveKind) -> MpiResult<u64> {
        if let Some(pending) = self.pending {
            return Err(MpiError::Internal(format!(
                "collective {kind:?} on {comm} begun while {:?} seq {} on {} is \
                 still pending",
                pending.kind, pending.seq, pending.comm
            )));
        }
        let seq = self.completed.get(&comm).copied().unwrap_or(0);
        self.pending = Some(CollectiveRecord { comm, seq, kind });
        Ok(seq)
    }

    /// Record that the collective `(comm, seq)` completed its critical phase.
    pub fn complete(&mut self, comm: VirtualId, seq: u64) -> MpiResult<()> {
        match self.pending {
            Some(pending) if pending.comm == comm && pending.seq == seq => {
                self.pending = None;
                self.completed.insert(comm, seq + 1);
                self.total_completed += 1;
                Ok(())
            }
            other => Err(MpiError::Internal(format!(
                "collective completion for {comm} seq {seq} does not match the \
                 pending registration {other:?}"
            ))),
        }
    }

    /// Drop the pending registration for `(comm, seq)` without completing it: the
    /// collective errored before (or inside) its critical phase, so the sequence
    /// number is not consumed and a later retry re-issues it afresh.
    pub fn abort(&mut self, comm: VirtualId, seq: u64) {
        if matches!(self.pending, Some(p) if p.comm == comm && p.seq == seq) {
            self.pending = None;
        }
    }

    /// Forget any pending registration (restart path): the restored application
    /// re-runs the interrupted step from its beginning, re-issuing every collective
    /// of the step — including the straddled one, which [`CollectiveLog::begin`]
    /// then hands the same sequence number the cleared registration held.
    pub fn clear_pending(&mut self) {
        self.pending = None;
    }

    /// The collective this rank has registered for but not completed, if any.
    pub fn pending(&self) -> Option<CollectiveRecord> {
        self.pending
    }

    /// Collectives completed on one communicator (its published sequence number).
    pub fn completed_on(&self, comm: VirtualId) -> u64 {
        self.completed.get(&comm).copied().unwrap_or(0)
    }

    /// Collectives completed across all communicators.
    pub fn total_completed(&self) -> u64 {
        self.total_completed
    }

    /// Drop the record of a freed communicator (its sequence numbers die with it).
    pub fn forget_comm(&mut self, comm: VirtualId) {
        self.completed.remove(&comm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_model::types::HandleKind;

    fn vid(i: u32) -> VirtualId {
        VirtualId::new(HandleKind::Comm, false, i)
    }

    #[test]
    fn push_and_mark_freed() {
        let mut log = ReplayLog::new();
        log.push(ReplayEvent::new(
            CreationRecipe::CommDup { parent: vid(1) },
            Some(vid(2)),
        ));
        log.push(ReplayEvent::new(
            CreationRecipe::CommSplit {
                parent: vid(1),
                color: None,
                key: 0,
            },
            None,
        ));
        assert_eq!(log.len(), 2);
        assert_eq!(log.collective_events(), 2);
        log.mark_freed(vid(2));
        assert!(log.events()[0].freed);
        assert!(!log.events()[1].freed);
        // Marking an unknown vid is a no-op.
        log.mark_freed(vid(99));
    }

    #[test]
    fn collectives_are_identified() {
        assert!(CreationRecipe::CommSplit {
            parent: vid(1),
            color: Some(0),
            key: 0
        }
        .is_collective());
        assert!(!CreationRecipe::UserOp {
            func_id: 1,
            commutative: true
        }
        .is_collective());
        assert!(!CreationRecipe::GroupFromComm { comm: vid(1) }.is_collective());
    }

    #[test]
    fn collective_log_tracks_pending_and_completed() {
        let mut log = CollectiveLog::new();
        let world = vid(1);
        let seq = log.begin(world, CollectiveKind::Allreduce).unwrap();
        assert_eq!(seq, 0);
        assert_eq!(
            log.pending(),
            Some(CollectiveRecord {
                comm: world,
                seq: 0,
                kind: CollectiveKind::Allreduce
            })
        );
        // A second begin while one is pending is an internal protocol violation.
        assert!(log.begin(world, CollectiveKind::Barrier).is_err());
        // An aborted collective does not consume its sequence number: clearing the
        // pending record (restart path) behaves identically.
        log.abort(world, 0);
        assert!(log.pending().is_none());
        assert_eq!(log.begin(world, CollectiveKind::Allreduce).unwrap(), 0);
        log.clear_pending();
        assert_eq!(log.begin(world, CollectiveKind::Allreduce).unwrap(), 0);
        log.complete(world, 0).unwrap();
        assert!(log.pending().is_none());
        assert_eq!(log.completed_on(world), 1);
        assert_eq!(log.total_completed(), 1);
        assert_eq!(log.begin(world, CollectiveKind::Barrier).unwrap(), 1);
        log.complete(world, 1).unwrap();
        // Completing without a matching registration is an internal error.
        assert!(log.complete(world, 5).is_err());
        log.forget_comm(world);
        assert_eq!(log.completed_on(world), 0);
        assert_eq!(log.total_completed(), 2, "totals survive forget_comm");
    }
}
