//! Restart: rebuild a rank from its checkpoint image on top of a *fresh* lower half.
//!
//! The fresh lower half may be a new session of the same MPI implementation or — since
//! nothing below the wrapper layer is recorded in the image — a different
//! implementation altogether (the cross-implementation restart the paper's §9 sets as
//! future work; this reproduction supports it for applications that stay within the
//! shared feature subset). Either way, all physical handles and constant addresses in
//! the new lower half differ from the ones in force when the checkpoint was taken, and
//! the job of this module is to make that invisible to the application:
//!
//! 1. Deserialize MANA's state (descriptor table, replay log, drained-message buffer,
//!    drain counters) out of the image's upper half.
//! 2. Re-resolve every predefined object against the new lower half and rebind its
//!    descriptor (paper §4.3 — constants are functions, not stable values).
//! 3. Replay the object-creation log in order, making collective calls where the
//!    original creation was collective, and rebind each surviving descriptor to the
//!    newly created physical handle (paper §4.2).
//! 4. Hand back a [`ManaRank`] whose virtual ids — including any the application has
//!    stored inside its own (restored) data structures — are valid again.
//!
//! All ranks of the job must call [`restart_rank`] concurrently (each with its own
//! lower half from the same freshly launched job), because step 3 replays collective
//! communicator-creation calls.

use crate::ckpt::regions;
use crate::config::ManaConfig;
use crate::record::{CollectiveLog, CreationRecipe, ReplayLog};
use crate::runtime::{BufferedMessage, DrainCounters, ManaRank, Translator};
use crate::virtid::VirtualId;
use mpi_model::api::MpiApi;
use mpi_model::constants::{ConstantResolution, PredefinedObject};
use mpi_model::datatype::TypeDescriptor;
use mpi_model::error::{MpiError, MpiResult};
use mpi_model::op::UserFunctionRegistry;
use mpi_model::types::{PhysHandle, Rank};
use parking_lot::RwLock;
use split_proc::address_space::UpperHalfSpace;
use split_proc::crossing::CrossingCounter;
use split_proc::image::{CheckpointImage, ImageMetadata};
use std::collections::HashMap;
use std::sync::Arc;

/// One rank's MANA state as recovered from a checkpoint image, before it is bound to
/// any lower half: the deserialized descriptor table, replay log, drained-message
/// buffer, drain counters and collective ledger, plus the application's upper half
/// with the MANA-internal regions already unmapped.
///
/// This is the seam the elastic-restart subsystem edits through: `crates/elastic`
/// dismantles every image of a generation, rewrites memberships, counters and replay
/// logs through its rank map, and hands the surgically adjusted state back to
/// [`assemble_rank`]. The identity path ([`restart_rank`]) passes it straight through.
#[derive(Debug, Clone)]
pub struct RestoredUpper {
    /// The virtual-id translator (physical bindings already cleared).
    pub translator: Translator,
    /// The object-creation replay log.
    pub replay_log: ReplayLog,
    /// The collective-progress ledger, pending record included: the caller decides
    /// whether to clear it (identity restart) or reject it (resize).
    pub collectives: CollectiveLog,
    /// Messages drained from the network at checkpoint time.
    pub buffered: Vec<BufferedMessage>,
    /// Per-peer send/receive counters.
    pub counters: DrainCounters,
    /// The application's upper half (MANA regions unmapped).
    pub upper: UpperHalfSpace,
}

/// Take a checkpoint image apart into its metadata and the MANA state it carries.
///
/// Physical bindings recorded before the checkpoint are cleared (they have no meaning
/// in any new session); the pending collective record, if any, is **kept** — the
/// identity path clears it, the elastic path rejects it.
pub fn dismantle_image(image: CheckpointImage) -> MpiResult<(ImageMetadata, RestoredUpper)> {
    let mut upper = image.upper_half;
    let mut translator: Translator = upper.load_json(regions::TRANSLATOR)?;
    let replay_log: ReplayLog = upper.load_json(regions::REPLAY_LOG)?;
    let buffered: Vec<BufferedMessage> = upper.load_json(regions::BUFFERED)?;
    let counters: DrainCounters = upper.load_json(regions::COUNTERS)?;
    let collectives: CollectiveLog = upper.load_json(regions::COLLECTIVES)?;
    for region in regions::ALL {
        let _ = upper.unmap_region(region);
    }
    // No physical handle recorded before the checkpoint has any meaning now.
    translator.clear_physical_bindings();
    Ok((
        image.metadata,
        RestoredUpper {
            translator,
            replay_log,
            collectives,
            buffered,
            counters,
            upper,
        },
    ))
}

/// Bind recovered (and possibly remapped) MANA state to a fresh lower half: rebind
/// every predefined object, replay the creation log — making collective calls where
/// the original creation was collective — and rebuild the translator's indexes.
///
/// Collective across the job: every rank of the new world must call this concurrently
/// with lower halves from a single `launch`. `generation` is the generation the
/// rebuilt rank will checkpoint *next* (the restored generation plus one).
pub fn assemble_rank(
    lower: Box<dyn MpiApi>,
    restored: RestoredUpper,
    config: ManaConfig,
    registry: Arc<RwLock<UserFunctionRegistry>>,
    generation: u64,
) -> MpiResult<ManaRank> {
    if config.virtid_mode == crate::config::VirtIdMode::LegacyMaps
        && lower.constant_resolution() != ConstantResolution::CompileTimeInteger
    {
        return Err(MpiError::Unsupported {
            feature: "legacy integer virtual ids on a non-MPICH-family MPI implementation",
        });
    }
    let RestoredUpper {
        translator,
        replay_log,
        collectives,
        buffered,
        counters,
        mut upper,
    } = restored;
    // The restored upper half *is* the checkpoint: mark it clean and advance its
    // epoch past the image's, so the next incremental checkpoint diffs against the
    // generation we are restoring from.
    upper.mark_clean();
    upper.advance_epoch();

    let world_rank = lower.world_rank();
    let world_size = lower.world_size();
    let two_phase = lower
        .provided_features()
        .contains(&mpi_model::subset::SubsetFeature::CollectiveRegistration);
    let mut rank = ManaRank {
        lower,
        config,
        translator,
        replay_log,
        collectives,
        buffered,
        counters,
        crossings: CrossingCounter::new(),
        upper,
        registry,
        world_rank,
        world_size,
        generation,
        two_phase,
        intercept: None,
    };

    rebind_predefined(&mut rank)?;
    replay_creations(&mut rank)?;
    rank.translator.rebuild_indexes();
    Ok(rank)
}

/// Rebuild one rank from `image` on top of `lower`.
///
/// Collective across the job: every rank must call this concurrently with lower halves
/// obtained from a single [`mpi_model::api::MpiImplementationFactory::launch`] call.
pub fn restart_rank(
    lower: Box<dyn MpiApi>,
    image: CheckpointImage,
    config: ManaConfig,
    registry: Arc<RwLock<UserFunctionRegistry>>,
) -> MpiResult<ManaRank> {
    if image.metadata.world_size != lower.world_size() {
        return Err(MpiError::WorldSizeMismatch {
            checkpointed: image.metadata.world_size,
            offered: lower.world_size(),
            generation: image.metadata.generation,
        });
    }
    if image.metadata.rank != lower.world_rank() {
        return Err(MpiError::Checkpoint(format!(
            "image for rank {} restored onto rank {}",
            image.metadata.rank,
            lower.world_rank()
        )));
    }

    let (metadata, mut restored) = dismantle_image(image)?;
    // The collective ledger carries the published sequence numbers plus any
    // straddled (registered-but-not-completed) collective. The pending record is
    // cleared here: the restored application re-runs the interrupted step from its
    // beginning, re-issuing every collective of the step in order — the straddled
    // one is re-executed as a fresh issue that receives the same sequence number
    // (begin hands out the completed count, which the pending registration never
    // advanced).
    restored.collectives.clear_pending();
    assemble_rank(lower, restored, config, registry, metadata.generation + 1)
}

/// Step 2: re-resolve every predefined object and rebind its descriptor.
fn rebind_predefined(rank: &mut ManaRank) -> MpiResult<()> {
    let predefined: Vec<(VirtualId, PredefinedObject)> = rank
        .translator
        .iter_in_creation_order()
        .iter()
        .filter_map(|d| d.predefined.map(|p| (d.vid, p)))
        .collect();
    for (vid, object) in predefined {
        rank.cross();
        let phys = rank.lower.resolve_constant(object)?;
        rank.translator.rebind(vid, phys)?;
    }
    Ok(())
}

/// Step 3: replay the creation log against the fresh lower half.
fn replay_creations(rank: &mut ManaRank) -> MpiResult<()> {
    // Physical handles of everything replayed so far (including objects that were
    // freed before the checkpoint: they are still re-created to keep collective calls
    // aligned across ranks, they are simply never rebound to a live descriptor).
    let mut scratch: HashMap<VirtualId, PhysHandle> = HashMap::new();
    let events: Vec<_> = rank.replay_log.events().to_vec();
    for event in events {
        let phys = match &event.recipe {
            CreationRecipe::Predefined(object) => {
                rank.cross();
                Some(rank.lower.resolve_constant(*object)?)
            }
            CreationRecipe::CommDup { parent } => {
                let parent_phys = resolve(rank, &scratch, *parent)?;
                rank.cross();
                Some(rank.lower.comm_dup(parent_phys)?)
            }
            CreationRecipe::CommSplit { parent, color, key } => {
                let parent_phys = resolve(rank, &scratch, *parent)?;
                rank.cross();
                let result = rank.lower.comm_split(parent_phys, *color, *key)?;
                if color.is_some() {
                    Some(result)
                } else {
                    None
                }
            }
            CreationRecipe::CommCreate {
                parent,
                members_world,
            } => {
                let parent_phys = resolve(rank, &scratch, *parent)?;
                // Rebuild the member group in terms of the parent communicator's group.
                let parent_members = rank
                    .translator
                    .get(*parent)
                    .ok()
                    .and_then(|d| d.members_world.clone())
                    .unwrap_or_else(|| (0..rank.world_size as Rank).collect());
                let group_ranks: Vec<Rank> = members_world
                    .iter()
                    .map(|world| {
                        parent_members
                            .iter()
                            .position(|m| m == world)
                            .map(|p| p as Rank)
                            .ok_or_else(|| {
                                MpiError::Checkpoint(
                                    "comm_create member not found in parent communicator".into(),
                                )
                            })
                    })
                    .collect::<MpiResult<_>>()?;
                rank.cross();
                let parent_group = rank.lower.comm_group(parent_phys)?;
                rank.cross();
                let subgroup = rank.lower.group_incl(parent_group, &group_ranks)?;
                rank.cross();
                let new_comm = rank.lower.comm_create(parent_phys, subgroup)?;
                rank.cross();
                rank.lower.group_free(subgroup)?;
                rank.cross();
                rank.lower.group_free(parent_group)?;
                if members_world.contains(&rank.world_rank) {
                    Some(new_comm)
                } else {
                    None
                }
            }
            CreationRecipe::GroupFromComm { comm } => {
                let comm_phys = resolve(rank, &scratch, *comm)?;
                rank.cross();
                Some(rank.lower.comm_group(comm_phys)?)
            }
            CreationRecipe::GroupIncl { parent, ranks } => {
                let parent_phys = resolve(rank, &scratch, *parent)?;
                rank.cross();
                Some(rank.lower.group_incl(parent_phys, ranks)?)
            }
            CreationRecipe::DerivedDatatype {
                descriptor,
                committed,
            } => {
                let phys = build_datatype(rank, descriptor)?;
                if *committed {
                    rank.cross();
                    rank.lower.type_commit(phys)?;
                }
                Some(phys)
            }
            CreationRecipe::UserOp {
                func_id,
                commutative,
            } => {
                rank.cross();
                Some(rank.lower.op_create(*func_id, *commutative)?)
            }
        };
        if let (Some(vid), Some(phys)) = (event.vid, phys) {
            scratch.insert(vid, phys);
            if !event.freed && rank.translator.get(vid).is_ok() {
                rank.translator.rebind(vid, phys)?;
            }
        }
    }
    Ok(())
}

/// Resolve the physical handle for a virtual id during replay: prefer objects replayed
/// earlier in this pass, then predefined/live descriptors already rebound.
fn resolve(
    rank: &ManaRank,
    scratch: &HashMap<VirtualId, PhysHandle>,
    vid: VirtualId,
) -> MpiResult<PhysHandle> {
    if let Some(&phys) = scratch.get(&vid) {
        return Ok(phys);
    }
    let phys = rank.translator.virtual_to_physical(vid)?;
    if phys.is_null() {
        return Err(MpiError::Checkpoint(format!(
            "replay referenced {vid} before it was re-created"
        )));
    }
    Ok(phys)
}

/// Rebuild a derived datatype in the lower half from its structural description
/// (the information `MPI_Type_get_envelope` / `MPI_Type_get_contents` decode to).
fn build_datatype(rank: &mut ManaRank, descriptor: &TypeDescriptor) -> MpiResult<PhysHandle> {
    match descriptor {
        TypeDescriptor::Primitive(p) => {
            rank.cross();
            rank.lower.resolve_constant(PredefinedObject::Datatype(*p))
        }
        TypeDescriptor::Dup(inner) => {
            let inner_phys = build_datatype(rank, inner)?;
            rank.cross();
            rank.lower.type_dup(inner_phys)
        }
        TypeDescriptor::Contiguous { count, inner } => {
            let inner_phys = build_datatype(rank, inner)?;
            rank.cross();
            rank.lower.type_contiguous(*count, inner_phys)
        }
        TypeDescriptor::Vector {
            count,
            block_length,
            stride,
            inner,
        } => {
            let inner_phys = build_datatype(rank, inner)?;
            rank.cross();
            rank.lower
                .type_vector(*count, *block_length, *stride, inner_phys)
        }
        TypeDescriptor::Indexed {
            block_lengths,
            displacements,
            inner,
        } => {
            let inner_phys = build_datatype(rank, inner)?;
            rank.cross();
            rank.lower
                .type_indexed(block_lengths, displacements, inner_phys)
        }
        TypeDescriptor::Struct {
            block_lengths,
            byte_displacements,
            types,
        } => {
            let mut member_handles = Vec::with_capacity(types.len());
            for member in types {
                member_handles.push(build_datatype(rank, member)?);
            }
            rank.cross();
            rank.lower
                .type_create_struct(block_lengths, byte_displacements, &member_handles)
        }
    }
}

/// A helper for tests and the harness: checkpoint-restart round trip for a whole job.
///
/// `lowers` must come from a single fresh `launch` of the new implementation; `images`
/// are the per-rank images of one checkpoint generation, indexed by rank. Returns the
/// restarted ranks in rank order. Each rank is restarted on its own thread because the
/// creation replay makes collective calls.
pub fn restart_job(
    lowers: Vec<Box<dyn MpiApi>>,
    images: Vec<CheckpointImage>,
    config: ManaConfig,
    registry: Arc<RwLock<UserFunctionRegistry>>,
) -> MpiResult<Vec<ManaRank>> {
    if lowers.len() != images.len() {
        return Err(MpiError::Checkpoint(
            "rank count mismatch between new job and checkpoint images".into(),
        ));
    }
    let handles: Vec<_> = lowers
        .into_iter()
        .zip(images)
        .map(|(lower, image)| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || restart_rank(lower, image, config, registry))
        })
        .collect();
    let mut ranks = Vec::with_capacity(handles.len());
    for handle in handles {
        ranks.push(
            handle
                .join()
                .map_err(|_| MpiError::Checkpoint("a rank panicked during restart".into()))??,
        );
    }
    ranks.sort_by_key(|r| r.world_rank());
    Ok(ranks)
}

/// Restart a whole job from a [`ckpt_store::CheckpointStorage`], using the newest
/// generation that validates end to end for **every** rank.
///
/// Each candidate generation's manifests and chunks (or flat images) are CRC- and
/// digest-verified before any rank is rebuilt; a generation with a corrupt or
/// truncated piece — the torn-write case a preempted job can leave behind — is skipped
/// for the job as a whole, so all ranks restart from the same older generation rather
/// than a torn mix. Returns the restarted ranks in rank order plus the generation that
/// was actually used.
///
/// Generations still *pending* (an asynchronous flush the dead incarnation never
/// committed) are aborted first — torn by definition, their half-landed slots are
/// released and the round tombstoned. Callers driving their own
/// [`ckpt_store::FlusherPool`] must drain it (`wait_idle`) or drop it before
/// restarting from the same storage, so no dead-incarnation flush is still in flight
/// when the restarted job reuses a generation number.
pub fn restart_job_from_storage(
    lowers: Vec<Box<dyn MpiApi>>,
    storage: &ckpt_store::CheckpointStorage,
    config: ManaConfig,
    registry: Arc<RwLock<UserFunctionRegistry>>,
) -> MpiResult<(Vec<ManaRank>, u64)> {
    let world_size = lowers.len();
    // Any generation still pending belongs to the incarnation that died: its flush
    // never committed, so the round is torn by definition. Abort it — releasing any
    // half-landed slots and tombstoning the round — so the restarted job can reuse
    // the generation number with fresh flush accounting instead of inheriting the
    // dead round's partial rank set (which would let a mixed-round generation
    // commit).
    for generation in storage.pending_generations() {
        storage.abort_generation(generation);
        // With no flush of the dead incarnation left in flight (the caller drained
        // its pool — see above), the tombstone has nothing left to catch. Drop it,
        // or it would hide the restarted job's own checkpoints when they reuse the
        // generation number through the *synchronous* path, which never announces.
        storage.forget_generation(generation);
    }
    let (generation, images) = storage.latest_valid_images(world_size)?;
    let ranks = restart_job(lowers, images, config, registry)?;
    Ok((ranks, generation))
}
