//! MPI-subset compliance auditing (paper §5).
//!
//! Before MANA agrees to run on top of an MPI implementation, it can audit whether the
//! implementation provides the three categories of functions MANA itself needs:
//! message drain (Iprobe/Recv/Test), object decoding (Comm_group,
//! Group_translate_ranks, Type_get_envelope/contents) and internal communication
//! (Send/Recv/Alltoall). The audit also reports which *optional* application-facing
//! features are present, which is how the harness knows the CoMD/LULESH proxies can run
//! on ExaMPI while the communicator-heavy proxies cannot.

use mpi_model::api::MpiApi;
use mpi_model::subset::{required_category, ComplianceReport, SubsetFeature, REQUIRED_SUBSET};
use serde::{Deserialize, Serialize};

/// The result of auditing one lower half for MANA support.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManaCompatibility {
    /// The raw compliance report (provided vs required features).
    pub report: ComplianceReport,
    /// Required features missing, grouped by the paper's three categories.
    pub missing_by_category: Vec<(u8, Vec<SubsetFeature>)>,
    /// Optional features the implementation additionally provides.
    pub optional_features: Vec<SubsetFeature>,
}

impl ManaCompatibility {
    /// Whether MANA can host applications on this implementation.
    pub fn compatible(&self) -> bool {
        self.report.mana_compatible()
    }
}

/// Audit a lower half via its self-reported feature list.
pub fn audit_api(api: &dyn MpiApi) -> ManaCompatibility {
    audit_features(api.implementation_name(), &api.provided_features())
}

/// Audit an explicit feature list.
pub fn audit_features(name: &str, provided: &[SubsetFeature]) -> ManaCompatibility {
    let report = ComplianceReport::audit(name, provided);
    let mut missing_by_category: Vec<(u8, Vec<SubsetFeature>)> = vec![];
    for &feature in &report.missing_required {
        // A required feature without a category is a table bug; sort it last and
        // keep it visible in the report rather than panicking the audit.
        let category = required_category(feature).unwrap_or(u8::MAX);
        match missing_by_category.iter_mut().find(|(c, _)| *c == category) {
            Some((_, list)) => list.push(feature),
            None => missing_by_category.push((category, vec![feature])),
        }
    }
    missing_by_category.sort_by_key(|(c, _)| *c);
    let optional_features = provided
        .iter()
        .copied()
        .filter(|f| !REQUIRED_SUBSET.contains(f))
        .collect();
    ManaCompatibility {
        report,
        missing_by_category,
        optional_features,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_implementation_is_compatible() {
        let mut provided = REQUIRED_SUBSET.to_vec();
        provided.push(SubsetFeature::Bcast);
        let audit = audit_features("full", &provided);
        assert!(audit.compatible());
        assert!(audit.missing_by_category.is_empty());
        assert_eq!(audit.optional_features, vec![SubsetFeature::Bcast]);
    }

    #[test]
    fn missing_features_are_grouped_by_category() {
        let provided = vec![
            SubsetFeature::Send,
            SubsetFeature::Recv,
            // Iprobe and Test missing (category 1)
            SubsetFeature::CommGroup,
            SubsetFeature::GroupTranslateRanks,
            SubsetFeature::TypeGetEnvelope,
            // TypeGetContents missing (category 2)
            // Alltoall missing (category 3)
        ];
        let audit = audit_features("partial", &provided);
        assert!(!audit.compatible());
        let categories: Vec<u8> = audit.missing_by_category.iter().map(|(c, _)| *c).collect();
        assert_eq!(categories, vec![1, 2, 3]);
        let cat1 = &audit.missing_by_category[0].1;
        assert!(cat1.contains(&SubsetFeature::Iprobe) && cat1.contains(&SubsetFeature::Test));
    }
}
