//! # mana
//!
//! A Rust reproduction of MANA's *implementation-oblivious* transparent
//! checkpoint-restart layer for MPI ("Implementation-Oblivious Transparent
//! Checkpoint-Restart for MPI", SC 2023).
//!
//! The crate sits between an MPI application (the proxy mini-apps in `mana-apps`, the
//! examples, or your own code written against [`runtime::ManaRank`]) and *any*
//! simulated MPI implementation that satisfies the required subset of paper §5
//! (`mpich-sim`, `openmpi-sim`, `exampi-sim`). It provides:
//!
//! * **Wrapper (stub) functions** for the MPI calls the application makes
//!   ([`wrappers`]): each call translates application-visible *virtual ids* into the
//!   lower half's *physical handles*, forwards to the lower half, and translates
//!   results back — counting one upper↔lower crossing per forwarded call.
//! * **The new virtual-id subsystem** ([`virtid`]): a single unified table of
//!   descriptors indexed by a 32-bit id that encodes the object kind, a predefined
//!   flag, and a ggid/index — the design of paper §4.2 — able to stand in for `int`
//!   handles, 64-bit pointer handles, and lazily-resolved constants alike.
//! * **The legacy baseline** ([`legacy`]): per-type, string-keyed associative maps with
//!   separate metadata side-tables, reproducing the pre-paper production design and its
//!   documented drawbacks (paper §4.1) so the benchmarks can compare the two.
//! * **Transparent checkpoint** ([`ckpt`]): a cooperative, collective checkpoint that
//!   drains in-flight point-to-point traffic using only `MPI_Iprobe`/`MPI_Recv`/
//!   `MPI_Test`/`MPI_Alltoall` (§5 categories 1 and 3), then serializes the upper half
//!   (application regions + MANA descriptors + drained-message buffer) into a
//!   [`split_proc::CheckpointImage`].
//! * **Restart** ([`restart`]): launches a fresh lower half (same or *different* MPI
//!   implementation), re-resolves every global constant, replays the recorded
//!   object-creation log to build semantically equivalent communicators, groups,
//!   datatypes and ops, and rebinds the descriptors' physical handles — leaving every
//!   virtual id the application holds in its own memory valid.
//! * **MPI-subset auditing** ([`subset_check`]): verifies that a candidate lower half
//!   provides the three categories of functions MANA needs (§5).
//! * **The typed session layer** ([`api`]): [`api::Session`] and the typed handles
//!   ([`api::Comm`], [`api::Datatype`], [`api::Op`], [`api::Request`]) — the
//!   misuse-resistant, marshalling-free API applications program against, layered
//!   *above* (never replacing) the byte-faithful wrappers the paper's protocol
//!   requires.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod ckpt;
pub mod config;
pub mod legacy;
pub mod record;
pub mod restart;
pub mod runtime;
pub mod subset_check;
pub mod virtid;
pub mod wrappers;

pub use api::{Comm, Datatype, Group, Op, Request, Session};
pub use ckpt::{
    CheckpointIntercept, DrainObserver, DrainPlan, DrainShortfall, IntentOutcome,
    LocalDrainObserver,
};
pub use config::{GgidPolicy, ManaConfig, StoragePolicy, VirtIdMode};
pub use record::{CollectiveKind, CollectiveLog, CollectiveRecord};
pub use restart::{
    assemble_rank, dismantle_image, restart_job_from_storage, restart_rank, RestoredUpper,
};
pub use runtime::{AppHandle, ManaRank};
pub use virtid::{Descriptor, VirtualId, VirtualIdTable};
