//! The MANA wrapper (stub) functions: the MPI-like API the application calls.
//!
//! Every method translates application-visible [`AppHandle`]s (which embed MANA virtual
//! ids) into the lower half's physical handles, forwards the call, and wraps any
//! resulting physical handles in fresh virtual ids. Object-creating wrappers also
//! append to the replay log and fill in descriptor metadata so the object can be
//! reconstructed at restart. Each forwarded call is counted as one upper↔lower
//! crossing (plus the small number of bookkeeping calls creation wrappers make), which
//! is the quantity behind the paper's §6.3 context-switch analysis.

use crate::record::{CollectiveKind, CreationRecipe, ReplayEvent};
use crate::runtime::{AppHandle, BufferedMessage, ManaRank};
use crate::virtid::blank_descriptor;
use mpi_model::error::{MpiError, MpiResult};
use mpi_model::op::OpDescriptor;
use mpi_model::payload::PayloadBuf;
use mpi_model::request::{RequestKind, RequestRecord, RequestState};
use mpi_model::status::Status;
use mpi_model::types::{HandleKind, PhysHandle, Rank, Tag};
use std::time::Duration;

/// Smallest sleep between registration polls while waiting for a collective round to
/// commit.
const REGISTRATION_BACKOFF_FLOOR: Duration = Duration::from_micros(2);
/// Cap of the registration poll backoff: late-arriving peers are noticed within this
/// bound, so the two-phase protocol adds little latency to an uncontended collective.
const REGISTRATION_BACKOFF_CAP: Duration = Duration::from_micros(256);
/// How long a registered rank waits for the round to commit before declaring the
/// collective dead (a peer errored out before registering). Matches the fabric's
/// blocking timeout, which guarded this failure mode when collectives crossed
/// straight into the blocking exchange.
const REGISTRATION_STALL_BUDGET: Duration = Duration::from_secs(60);

impl ManaRank {
    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// `MPI_Comm_rank`.
    pub fn comm_rank(&mut self, comm: AppHandle) -> MpiResult<Rank> {
        let phys = self.phys(comm, HandleKind::Comm)?;
        self.cross();
        self.lower.comm_rank(phys)
    }

    /// `MPI_Comm_size`.
    pub fn comm_size(&mut self, comm: AppHandle) -> MpiResult<usize> {
        let phys = self.phys(comm, HandleKind::Comm)?;
        self.cross();
        self.lower.comm_size(phys)
    }

    /// Register a newly created communicator: discover its membership from the lower
    /// half, enter a descriptor, and append a replay event.
    fn register_new_comm(
        &mut self,
        phys: PhysHandle,
        recipe: CreationRecipe,
    ) -> MpiResult<AppHandle> {
        if self.lower_comm_is_null(phys) {
            // Participation with a null result (e.g. MPI_UNDEFINED colour): record the
            // event so the collective call is replayed at restart, but hand the
            // application a null handle.
            self.replay_log.push(ReplayEvent::new(recipe, None));
            return Ok(AppHandle::NULL);
        }
        self.cross();
        let group = self.lower.comm_group(phys)?;
        self.cross();
        let members = self.lower.group_members(group)?;
        self.cross();
        self.lower.group_free(group)?;
        let ggid_policy = self.config.ggid_policy;
        let vid = self
            .translator
            .insert_with(HandleKind::Comm, None, ggid_policy, |vid, seq| {
                let mut d = blank_descriptor(HandleKind::Comm, phys);
                d.vid = vid;
                d.creation_seq = seq;
                d.members_world = Some(members.clone());
                d
            });
        self.replay_log.push(ReplayEvent::new(recipe, Some(vid)));
        Ok(AppHandle::from_virtual(vid))
    }

    fn lower_comm_is_null(&mut self, phys: PhysHandle) -> bool {
        // A physical handle that the lower half cannot size is its null communicator.
        self.lower.comm_size(phys).is_err()
    }

    /// `MPI_Comm_dup` (collective).
    pub fn comm_dup(&mut self, comm: AppHandle) -> MpiResult<AppHandle> {
        let vid = comm.virtual_id()?;
        let phys = self.phys(comm, HandleKind::Comm)?;
        self.cross();
        let new_phys = self.lower.comm_dup(phys)?;
        self.register_new_comm(new_phys, CreationRecipe::CommDup { parent: vid })
    }

    /// `MPI_Comm_split` (collective). `color == None` models `MPI_UNDEFINED`.
    pub fn comm_split(
        &mut self,
        comm: AppHandle,
        color: Option<i32>,
        key: i32,
    ) -> MpiResult<AppHandle> {
        let vid = comm.virtual_id()?;
        let phys = self.phys(comm, HandleKind::Comm)?;
        self.cross();
        let new_phys = self.lower.comm_split(phys, color, key)?;
        self.register_new_comm(
            new_phys,
            CreationRecipe::CommSplit {
                parent: vid,
                color,
                key,
            },
        )
    }

    /// `MPI_Comm_create` (collective) from a group handle.
    pub fn comm_create(&mut self, comm: AppHandle, group: AppHandle) -> MpiResult<AppHandle> {
        let comm_vid = comm.virtual_id()?;
        let comm_phys = self.phys(comm, HandleKind::Comm)?;
        let group_phys = self.phys(group, HandleKind::Group)?;
        let members_world = self
            .translator
            .get(group.virtual_id()?)?
            .members_world
            .clone()
            .ok_or_else(|| MpiError::Internal("group descriptor without members".into()))?;
        self.cross();
        let new_phys = self.lower.comm_create(comm_phys, group_phys)?;
        self.register_new_comm(
            new_phys,
            CreationRecipe::CommCreate {
                parent: comm_vid,
                members_world,
            },
        )
    }

    /// Reject frees of predefined objects: the standard makes freeing
    /// `MPI_COMM_WORLD`, a named datatype or a built-in op erroneous, and silently
    /// removing the descriptor would additionally break every later constant lookup
    /// on this rank. The descriptor (and the lower half) are left untouched.
    fn reject_predefined_free(&self, handle: AppHandle) -> MpiResult<()> {
        let vid = handle.virtual_id()?;
        if let Some(object) = self.translator.get(vid)?.predefined {
            return Err(MpiError::FreePredefined(object));
        }
        Ok(())
    }

    /// `MPI_Comm_free`.
    pub fn comm_free(&mut self, comm: AppHandle) -> MpiResult<()> {
        let vid = comm.virtual_id()?;
        let phys = self.phys(comm, HandleKind::Comm)?;
        self.reject_predefined_free(comm)?;
        self.cross();
        self.lower.comm_free(phys)?;
        self.translator.remove(vid)?;
        self.replay_log.mark_freed(vid);
        self.collectives.forget_comm(vid);
        Ok(())
    }

    /// `MPI_Comm_group`.
    pub fn comm_group(&mut self, comm: AppHandle) -> MpiResult<AppHandle> {
        let comm_vid = comm.virtual_id()?;
        let phys = self.phys(comm, HandleKind::Comm)?;
        self.cross();
        let group_phys = self.lower.comm_group(phys)?;
        self.cross();
        let members = self.lower.group_members(group_phys)?;
        let ggid_policy = self.config.ggid_policy;
        let vid = self
            .translator
            .insert_with(HandleKind::Group, None, ggid_policy, |vid, seq| {
                let mut d = blank_descriptor(HandleKind::Group, group_phys);
                d.vid = vid;
                d.creation_seq = seq;
                d.members_world = Some(members.clone());
                d
            });
        self.replay_log.push(ReplayEvent::new(
            CreationRecipe::GroupFromComm { comm: comm_vid },
            Some(vid),
        ));
        Ok(AppHandle::from_virtual(vid))
    }

    // ------------------------------------------------------------------
    // Group management
    // ------------------------------------------------------------------

    /// `MPI_Group_size`.
    pub fn group_size(&mut self, group: AppHandle) -> MpiResult<usize> {
        let phys = self.phys(group, HandleKind::Group)?;
        self.cross();
        self.lower.group_size(phys)
    }

    /// `MPI_Group_incl`.
    pub fn group_incl(&mut self, group: AppHandle, ranks: &[Rank]) -> MpiResult<AppHandle> {
        let parent_vid = group.virtual_id()?;
        let phys = self.phys(group, HandleKind::Group)?;
        self.cross();
        let new_phys = self.lower.group_incl(phys, ranks)?;
        self.cross();
        let members = self.lower.group_members(new_phys)?;
        let ggid_policy = self.config.ggid_policy;
        let vid = self
            .translator
            .insert_with(HandleKind::Group, None, ggid_policy, |vid, seq| {
                let mut d = blank_descriptor(HandleKind::Group, new_phys);
                d.vid = vid;
                d.creation_seq = seq;
                d.members_world = Some(members.clone());
                d
            });
        self.replay_log.push(ReplayEvent::new(
            CreationRecipe::GroupIncl {
                parent: parent_vid,
                ranks: ranks.to_vec(),
            },
            Some(vid),
        ));
        Ok(AppHandle::from_virtual(vid))
    }

    /// `MPI_Group_translate_ranks`.
    pub fn group_translate_ranks(
        &mut self,
        group: AppHandle,
        ranks: &[Rank],
        other: AppHandle,
    ) -> MpiResult<Vec<Rank>> {
        let a = self.phys(group, HandleKind::Group)?;
        let b = self.phys(other, HandleKind::Group)?;
        self.cross();
        self.lower.group_translate_ranks(a, ranks, b)
    }

    /// `MPI_Group_free`.
    pub fn group_free(&mut self, group: AppHandle) -> MpiResult<()> {
        let vid = group.virtual_id()?;
        let phys = self.phys(group, HandleKind::Group)?;
        self.reject_predefined_free(group)?;
        self.cross();
        self.lower.group_free(phys)?;
        self.translator.remove(vid)?;
        self.replay_log.mark_freed(vid);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Datatype management
    // ------------------------------------------------------------------

    fn register_new_datatype(
        &mut self,
        phys: PhysHandle,
        descriptor: mpi_model::datatype::TypeDescriptor,
    ) -> AppHandle {
        let ggid_policy = self.config.ggid_policy;
        let vid =
            self.translator
                .insert_with(HandleKind::Datatype, None, ggid_policy, |vid, seq| {
                    let mut d = blank_descriptor(HandleKind::Datatype, phys);
                    d.vid = vid;
                    d.creation_seq = seq;
                    d.datatype = Some(descriptor.clone());
                    d
                });
        self.replay_log.push(ReplayEvent::new(
            CreationRecipe::DerivedDatatype {
                descriptor,
                committed: false,
            },
            Some(vid),
        ));
        AppHandle::from_virtual(vid)
    }

    fn inner_type_descriptor(
        &self,
        inner: AppHandle,
    ) -> MpiResult<mpi_model::datatype::TypeDescriptor> {
        self.translator
            .get(inner.virtual_id()?)?
            .datatype
            .clone()
            .ok_or_else(|| MpiError::Internal("datatype descriptor missing structure".into()))
    }

    /// `MPI_Type_contiguous`.
    pub fn type_contiguous(&mut self, count: usize, inner: AppHandle) -> MpiResult<AppHandle> {
        // Kind check first: a non-datatype handle fails with `WrongKind` naming the
        // expected vs. actual kind, never with a generic missing-metadata error.
        let inner_phys = self.phys(inner, HandleKind::Datatype)?;
        let inner_desc = self.inner_type_descriptor(inner)?;
        self.cross();
        let phys = self.lower.type_contiguous(count, inner_phys)?;
        Ok(self.register_new_datatype(
            phys,
            mpi_model::datatype::TypeDescriptor::Contiguous {
                count,
                inner: Box::new(inner_desc),
            },
        ))
    }

    /// `MPI_Type_vector`.
    pub fn type_vector(
        &mut self,
        count: usize,
        block_length: usize,
        stride: i64,
        inner: AppHandle,
    ) -> MpiResult<AppHandle> {
        let inner_phys = self.phys(inner, HandleKind::Datatype)?;
        let inner_desc = self.inner_type_descriptor(inner)?;
        self.cross();
        let phys = self
            .lower
            .type_vector(count, block_length, stride, inner_phys)?;
        Ok(self.register_new_datatype(
            phys,
            mpi_model::datatype::TypeDescriptor::Vector {
                count,
                block_length,
                stride,
                inner: Box::new(inner_desc),
            },
        ))
    }

    /// `MPI_Type_indexed`.
    pub fn type_indexed(
        &mut self,
        block_lengths: &[usize],
        displacements: &[i64],
        inner: AppHandle,
    ) -> MpiResult<AppHandle> {
        let inner_phys = self.phys(inner, HandleKind::Datatype)?;
        let inner_desc = self.inner_type_descriptor(inner)?;
        self.cross();
        let phys = self
            .lower
            .type_indexed(block_lengths, displacements, inner_phys)?;
        Ok(self.register_new_datatype(
            phys,
            mpi_model::datatype::TypeDescriptor::Indexed {
                block_lengths: block_lengths.to_vec(),
                displacements: displacements.to_vec(),
                inner: Box::new(inner_desc),
            },
        ))
    }

    /// `MPI_Type_create_struct`.
    pub fn type_create_struct(
        &mut self,
        block_lengths: &[usize],
        byte_displacements: &[i64],
        members: &[AppHandle],
    ) -> MpiResult<AppHandle> {
        let mut member_phys = Vec::with_capacity(members.len());
        let mut member_descs = Vec::with_capacity(members.len());
        for &member in members {
            member_phys.push(self.phys(member, HandleKind::Datatype)?);
            member_descs.push(self.inner_type_descriptor(member)?);
        }
        self.cross();
        let phys =
            self.lower
                .type_create_struct(block_lengths, byte_displacements, &member_phys)?;
        Ok(self.register_new_datatype(
            phys,
            mpi_model::datatype::TypeDescriptor::Struct {
                block_lengths: block_lengths.to_vec(),
                byte_displacements: byte_displacements.to_vec(),
                types: member_descs,
            },
        ))
    }

    /// `MPI_Type_dup`.
    pub fn type_dup(&mut self, inner: AppHandle) -> MpiResult<AppHandle> {
        let inner_phys = self.phys(inner, HandleKind::Datatype)?;
        let inner_desc = self.inner_type_descriptor(inner)?;
        self.cross();
        let phys = self.lower.type_dup(inner_phys)?;
        Ok(self.register_new_datatype(
            phys,
            mpi_model::datatype::TypeDescriptor::Dup(Box::new(inner_desc)),
        ))
    }

    /// `MPI_Type_commit`.
    pub fn type_commit(&mut self, datatype: AppHandle) -> MpiResult<()> {
        let vid = datatype.virtual_id()?;
        let phys = self.phys(datatype, HandleKind::Datatype)?;
        self.cross();
        self.lower.type_commit(phys)?;
        // Remember commitment in the replay log so restart re-commits.
        if let Some(event) = self
            .replay_log
            .events()
            .iter()
            .position(|e| e.vid == Some(vid))
        {
            if let CreationRecipe::DerivedDatatype { committed, .. } =
                &mut self.replay_log.event_mut(event).recipe
            {
                *committed = true;
            }
        }
        Ok(())
    }

    /// `MPI_Type_free`.
    pub fn type_free(&mut self, datatype: AppHandle) -> MpiResult<()> {
        let vid = datatype.virtual_id()?;
        let phys = self.phys(datatype, HandleKind::Datatype)?;
        self.reject_predefined_free(datatype)?;
        self.cross();
        self.lower.type_free(phys)?;
        self.translator.remove(vid)?;
        self.replay_log.mark_freed(vid);
        Ok(())
    }

    /// `MPI_Type_size`.
    pub fn type_size(&mut self, datatype: AppHandle) -> MpiResult<usize> {
        let phys = self.phys(datatype, HandleKind::Datatype)?;
        self.cross();
        self.lower.type_size(phys)
    }

    // ------------------------------------------------------------------
    // Reduction operations
    // ------------------------------------------------------------------

    /// `MPI_Op_create`.
    pub fn op_create(&mut self, func_id: u64, commutative: bool) -> MpiResult<AppHandle> {
        self.cross();
        let phys = self.lower.op_create(func_id, commutative)?;
        let ggid_policy = self.config.ggid_policy;
        let vid = self
            .translator
            .insert_with(HandleKind::Op, None, ggid_policy, |vid, seq| {
                let mut d = blank_descriptor(HandleKind::Op, phys);
                d.vid = vid;
                d.creation_seq = seq;
                d.op = Some(OpDescriptor::User {
                    func_id,
                    commutative,
                });
                d
            });
        self.replay_log.push(ReplayEvent::new(
            CreationRecipe::UserOp {
                func_id,
                commutative,
            },
            Some(vid),
        ));
        Ok(AppHandle::from_virtual(vid))
    }

    /// `MPI_Op_free`.
    pub fn op_free(&mut self, op: AppHandle) -> MpiResult<()> {
        let vid = op.virtual_id()?;
        let phys = self.phys(op, HandleKind::Op)?;
        self.reject_predefined_free(op)?;
        self.cross();
        self.lower.op_free(phys)?;
        self.translator.remove(vid)?;
        self.replay_log.mark_freed(vid);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Point-to-point communication
    // ------------------------------------------------------------------

    /// `MPI_Send`.
    pub fn send(
        &mut self,
        buf: &[u8],
        datatype: AppHandle,
        dest: Rank,
        tag: Tag,
        comm: AppHandle,
    ) -> MpiResult<()> {
        let comm_vid = comm.virtual_id()?;
        let comm_phys = self.phys(comm, HandleKind::Comm)?;
        let type_phys = self.phys(datatype, HandleKind::Datatype)?;
        let dest_world = self.peer_world_rank(comm_vid, dest)?;
        self.cross();
        self.lower.send(buf, type_phys, dest, tag, comm_phys)?;
        self.counters.sent_to[dest_world as usize] += 1;
        Ok(())
    }

    /// `MPI_Send` of an owned buffer: the zero-copy fast path.
    ///
    /// The caller hands over a [`PayloadBuf`] (typically built once from an encoded
    /// `Vec<u8>`), and the buffer crosses the wrapper, the lower half and the fabric
    /// as a refcount hand-off — no byte is copied anywhere on the send side.
    pub fn send_payload(
        &mut self,
        buf: PayloadBuf,
        datatype: AppHandle,
        dest: Rank,
        tag: Tag,
        comm: AppHandle,
    ) -> MpiResult<()> {
        let comm_vid = comm.virtual_id()?;
        let comm_phys = self.phys(comm, HandleKind::Comm)?;
        let type_phys = self.phys(datatype, HandleKind::Datatype)?;
        let dest_world = self.peer_world_rank(comm_vid, dest)?;
        self.cross();
        self.lower
            .send_payload(buf, type_phys, dest, tag, comm_phys)?;
        self.counters.sent_to[dest_world as usize] += 1;
        Ok(())
    }

    /// `MPI_Recv`.
    ///
    /// Messages drained into the upper-half buffer at a previous checkpoint are
    /// delivered first; only then does the call cross into the lower half.
    pub fn recv(
        &mut self,
        datatype: AppHandle,
        max_bytes: usize,
        source: Rank,
        tag: Tag,
        comm: AppHandle,
    ) -> MpiResult<(PayloadBuf, Status)> {
        let comm_vid = comm.virtual_id()?;
        // Peek before taking: a truncation error must leave the drained message
        // buffered, so a retry with a large enough buffer still receives it.
        if let Some((status, payload)) =
            self.take_buffered_checked(comm_vid, source, tag, max_bytes)?
        {
            return Ok((payload, status));
        }
        let comm_phys = self.phys(comm, HandleKind::Comm)?;
        let type_phys = self.phys(datatype, HandleKind::Datatype)?;
        self.cross();
        let (payload, status) = self
            .lower
            .recv(type_phys, max_bytes, source, tag, comm_phys)?;
        let source_world = self.peer_world_rank(comm_vid, status.source)?;
        self.counters.received_from[source_world as usize] += 1;
        Ok((payload, status))
    }

    /// `MPI_Isend`. The underlying protocol is eager, so the request completes at post
    /// time; the request object exists purely in the upper half.
    pub fn isend(
        &mut self,
        buf: &[u8],
        datatype: AppHandle,
        dest: Rank,
        tag: Tag,
        comm: AppHandle,
    ) -> MpiResult<AppHandle> {
        self.send(buf, datatype, dest, tag, comm)?;
        self.record_eager_send(buf.len(), dest, tag, comm)
    }

    /// `MPI_Isend` of an owned buffer: the zero-copy counterpart of
    /// [`ManaRank::send_payload`] for the non-blocking path.
    pub fn isend_payload(
        &mut self,
        buf: PayloadBuf,
        datatype: AppHandle,
        dest: Rank,
        tag: Tag,
        comm: AppHandle,
    ) -> MpiResult<AppHandle> {
        let len = buf.len();
        self.send_payload(buf, datatype, dest, tag, comm)?;
        self.record_eager_send(len, dest, tag, comm)
    }

    /// Enter the upper-half request descriptor for an already-completed eager send.
    fn record_eager_send(
        &mut self,
        len: usize,
        dest: Rank,
        tag: Tag,
        comm: AppHandle,
    ) -> MpiResult<AppHandle> {
        let comm_vid = comm.virtual_id()?;
        let ggid_policy = self.config.ggid_policy;
        let mut record = RequestRecord::pending(
            RequestKind::Send,
            dest,
            tag,
            PhysHandle(comm_vid.bits() as u64),
            len,
        );
        record.complete(Status::new(dest, tag, len));
        let vid =
            self.translator
                .insert_with(HandleKind::Request, None, ggid_policy, |vid, seq| {
                    let mut d = blank_descriptor(HandleKind::Request, PhysHandle::NULL);
                    d.vid = vid;
                    d.creation_seq = seq;
                    d.request = Some(record.clone());
                    d
                });
        Ok(AppHandle::from_virtual(vid))
    }

    /// `MPI_Irecv`. MANA defers posting anything to the lower half: the request is
    /// recorded in the upper half and satisfied at `wait`/`test` time, first from the
    /// drained-message buffer and then from the network. This is what guarantees that
    /// no rank is ever blocked inside the lower half at checkpoint time (paper §2.1).
    pub fn irecv(
        &mut self,
        datatype: AppHandle,
        max_bytes: usize,
        source: Rank,
        tag: Tag,
        comm: AppHandle,
    ) -> MpiResult<AppHandle> {
        // The datatype is not needed until completion (the deferred receive uses
        // MPI_BYTE), but its kind is still validated at post time, like every other
        // argument position.
        let _ = self.phys(datatype, HandleKind::Datatype)?;
        let comm_vid = comm.virtual_id()?;
        let ggid_policy = self.config.ggid_policy;
        let record = RequestRecord::pending(
            RequestKind::Recv,
            source,
            tag,
            PhysHandle(comm_vid.bits() as u64),
            max_bytes,
        );
        let vid =
            self.translator
                .insert_with(HandleKind::Request, None, ggid_policy, |vid, seq| {
                    let mut d = blank_descriptor(HandleKind::Request, PhysHandle::NULL);
                    d.vid = vid;
                    d.creation_seq = seq;
                    d.request = Some(record.clone());
                    d
                });
        Ok(AppHandle::from_virtual(vid))
    }

    fn request_record(&self, request: AppHandle) -> MpiResult<RequestRecord> {
        self.translator
            .get(request.virtual_id()?)?
            .request
            .clone()
            .ok_or_else(|| MpiError::Internal("request descriptor without a record".into()))
    }

    /// `MPI_Wait`. For receive requests the payload is returned alongside the status.
    ///
    /// The request is consumed whether the wait completes or fails: the descriptor is
    /// removed on the error path too, so a failing lower-half receive (or a peer
    /// translation failure) cannot leak the virtual id.
    pub fn wait(&mut self, request: AppHandle) -> MpiResult<(Status, Option<PayloadBuf>)> {
        let vid = request.virtual_id()?;
        let record = self.request_record(request)?;
        match self.wait_complete(&record) {
            Ok(result) => {
                self.translator.remove(vid)?;
                Ok(result)
            }
            Err(error) => {
                let _ = self.translator.remove(vid);
                Err(error)
            }
        }
    }

    /// The completion half of [`ManaRank::wait`], separated so the caller can remove
    /// the request descriptor on success *and* failure alike.
    fn wait_complete(&mut self, record: &RequestRecord) -> MpiResult<(Status, Option<PayloadBuf>)> {
        match record.kind {
            RequestKind::Send => match record.state {
                RequestState::Complete(status) => Ok((status, None)),
                _ => Err(MpiError::Internal("eager send request left pending".into())),
            },
            RequestKind::Recv => {
                let comm_vid = crate::virtid::VirtualId::from_bits(record.comm.bits() as u32)
                    .ok_or_else(|| MpiError::Internal("request with bad comm vid".into()))?;
                if let Some((status, payload)) =
                    self.take_buffered_checked(comm_vid, record.peer, record.tag, record.bytes)?
                {
                    Ok((status, Some(payload)))
                } else {
                    let comm_phys = self.translator.virtual_to_physical(comm_vid)?;
                    let byte_type =
                        self.constant(mpi_model::constants::PredefinedObject::Datatype(
                            mpi_model::datatype::PrimitiveType::Byte,
                        ))?;
                    let type_phys = self.phys(byte_type, HandleKind::Datatype)?;
                    self.cross();
                    let (payload, status) = self.lower.recv(
                        type_phys,
                        record.bytes,
                        record.peer,
                        record.tag,
                        comm_phys,
                    )?;
                    let source_world = self.peer_world_rank(comm_vid, status.source)?;
                    self.counters.received_from[source_world as usize] += 1;
                    Ok((status, Some(payload)))
                }
            }
        }
    }

    /// `MPI_Test`: non-blocking completion check.
    ///
    /// A request that is still pending stays live (retryable); a request that
    /// completes — or whose completion attempt *fails* — is consumed, so error paths
    /// cannot leak the descriptor.
    pub fn test(&mut self, request: AppHandle) -> MpiResult<Option<(Status, Option<PayloadBuf>)>> {
        let vid = request.virtual_id()?;
        let record = self.request_record(request)?;
        match self.test_complete(&record) {
            Ok(None) => Ok(None),
            Ok(Some(result)) => {
                self.translator.remove(vid)?;
                Ok(Some(result))
            }
            Err(error) => {
                let _ = self.translator.remove(vid);
                Err(error)
            }
        }
    }

    /// The completion half of [`ManaRank::test`]; `Ok(None)` means "not yet".
    fn test_complete(
        &mut self,
        record: &RequestRecord,
    ) -> MpiResult<Option<(Status, Option<PayloadBuf>)>> {
        match record.kind {
            RequestKind::Send => match record.state {
                RequestState::Complete(status) => Ok(Some((status, None))),
                _ => Err(MpiError::Internal("eager send request left pending".into())),
            },
            RequestKind::Recv => {
                let comm_vid = crate::virtid::VirtualId::from_bits(record.comm.bits() as u32)
                    .ok_or_else(|| MpiError::Internal("request with bad comm vid".into()))?;
                if let Some((status, payload)) =
                    self.take_buffered_checked(comm_vid, record.peer, record.tag, record.bytes)?
                {
                    return Ok(Some((status, Some(payload))));
                }
                let comm_phys = self.translator.virtual_to_physical(comm_vid)?;
                self.cross();
                match self.lower.iprobe(record.peer, record.tag, comm_phys)? {
                    None => Ok(None),
                    Some(_) => {
                        let byte_type =
                            self.constant(mpi_model::constants::PredefinedObject::Datatype(
                                mpi_model::datatype::PrimitiveType::Byte,
                            ))?;
                        let type_phys = self.phys(byte_type, HandleKind::Datatype)?;
                        self.cross();
                        let (payload, status) = self.lower.recv(
                            type_phys,
                            record.bytes,
                            record.peer,
                            record.tag,
                            comm_phys,
                        )?;
                        let source_world = self.peer_world_rank(comm_vid, status.source)?;
                        self.counters.received_from[source_world as usize] += 1;
                        Ok(Some((status, Some(payload))))
                    }
                }
            }
        }
    }

    /// `MPI_Iprobe`.
    pub fn iprobe(&mut self, source: Rank, tag: Tag, comm: AppHandle) -> MpiResult<Option<Status>> {
        let comm_vid = comm.virtual_id()?;
        // A buffered (drained) message satisfies the probe without touching the network.
        if let Some(found) = self.buffered.iter().find(|m| {
            m.comm == comm_vid
                && (source == mpi_model::types::ANY_SOURCE || m.source == source)
                && (tag == mpi_model::types::ANY_TAG || m.tag == tag)
        }) {
            return Ok(Some(Status::new(
                found.source,
                found.tag,
                found.payload.len(),
            )));
        }
        let comm_phys = self.phys(comm, HandleKind::Comm)?;
        self.cross();
        self.lower.iprobe(source, tag, comm_phys)
    }

    // ------------------------------------------------------------------
    // Collective communication (two-phase protocol)
    // ------------------------------------------------------------------

    /// Run one collective through the two-phase protocol.
    ///
    /// Phase one — **registration** ("trivial barrier"): the wrapper publishes the
    /// collective's sequence number into the upper half ([`crate::record::CollectiveLog`])
    /// and announces itself on the lower half's registration board, then polls until
    /// every member of the communicator has registered. While polling, the rank sits
    /// at a *safe point*: a broadcast checkpoint intent is serviced by atomically
    /// withdrawing the registration (which fails if and only if the round already
    /// committed) and running the coordinated checkpoint, after which the rank
    /// re-registers. Phase two — the **critical phase**: once the round commits,
    /// every member is obliged to run the real lower-half collective promptly and
    /// without checkpointing, so at checkpoint time every rank provably sits either
    /// before or after the collective, never inside it.
    ///
    /// Intents are serviced *only* at registration-phase safe points (wrapper entry,
    /// or withdrawal from an uncommitted round) and at the orchestrator's step
    /// boundary — all points at which the upper-half state is the same deterministic
    /// step prefix on every rank. There is deliberately **no** safe point right after
    /// the critical phase: an intent landing in that window could be observed by some
    /// ranks before and others after the step's post-collective state mutation,
    /// committing a generation whose ranks disagree about how much of the step ran.
    /// An intent that arrives during the critical phase therefore waits for the next
    /// registration or boundary.
    ///
    /// On lower halves without [`CollectiveRegistration`] support the collective runs
    /// directly (sequence numbers are still published, so checkpoint-time epoch
    /// agreement holds, but intents cannot be serviced inside a step).
    ///
    /// [`CollectiveRegistration`]: mpi_model::subset::SubsetFeature::CollectiveRegistration
    fn two_phase_collective<R>(
        &mut self,
        comm: AppHandle,
        kind: CollectiveKind,
        body: impl FnOnce(&mut Self, PhysHandle) -> MpiResult<R>,
    ) -> MpiResult<R> {
        let comm_vid = comm.virtual_id()?;
        let phys = self.phys(comm, HandleKind::Comm)?;
        if self.two_phase {
            // Safe point: an intent that arrived since the last wrapper call is
            // serviced before this collective begins.
            self.service_pending_intent()?;
        }
        let seq = self.collectives.begin(comm_vid, kind)?;
        let result = if self.two_phase {
            self.register_and_await(phys)
                .and_then(|()| body(self, phys))
        } else {
            body(self, phys)
        };
        match result {
            Ok(value) => {
                self.collectives.complete(comm_vid, seq)?;
                Ok(value)
            }
            Err(error) => {
                // The collective never completed (a failed round, or a vacating
                // preemption unwinding out of the registration phase): release the
                // pending registration so the sequence number is not consumed and
                // later collectives on this rank are not poisoned.
                self.collectives.abort(comm_vid, seq);
                Err(error)
            }
        }
    }

    /// The registration loop of the two-phase protocol: register, poll for the round
    /// to commit, and service checkpoint intents by withdraw-checkpoint-re-register
    /// while the round has not committed. A round that fails to commit within the
    /// stall budget (and with no intent to service) means a peer died before
    /// registering; the wait is bounded so the job errors out instead of hanging.
    fn register_and_await(&mut self, phys: PhysHandle) -> MpiResult<()> {
        'register: loop {
            self.cross();
            let ticket = self.lower.collective_register(phys)?;
            let mut backoff = REGISTRATION_BACKOFF_FLOOR;
            let registered_at = std::time::Instant::now();
            loop {
                self.cross();
                if self.lower.collective_ready(phys, ticket)? {
                    return Ok(());
                }
                if self.intent_pending() {
                    self.cross();
                    if self.lower.collective_withdraw(phys, ticket)? {
                        // Provably outside the collective: service the checkpoint,
                        // then start the registration over.
                        self.service_pending_intent()?;
                        continue 'register;
                    }
                    // The round committed before the withdrawal: this rank is
                    // obliged to enter the collective; the intent is serviced at
                    // the next registration or step-boundary safe point.
                    return Ok(());
                }
                if registered_at.elapsed() >= REGISTRATION_STALL_BUDGET {
                    return Err(MpiError::Internal(format!(
                        "rank {} waited more than {REGISTRATION_STALL_BUDGET:?} for \
                         a collective registration round to commit — a peer likely \
                         died before registering",
                        self.world_rank
                    )));
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(REGISTRATION_BACKOFF_CAP);
            }
        }
    }

    /// `MPI_Barrier`.
    pub fn barrier(&mut self, comm: AppHandle) -> MpiResult<()> {
        self.two_phase_collective(comm, CollectiveKind::Barrier, |rank, phys| {
            rank.cross();
            rank.lower.barrier(phys)
        })
    }

    /// `MPI_Bcast`.
    pub fn bcast(&mut self, buf: &mut Vec<u8>, root: Rank, comm: AppHandle) -> MpiResult<()> {
        self.two_phase_collective(comm, CollectiveKind::Bcast, |rank, phys| {
            rank.cross();
            rank.lower.bcast(buf, root, phys)
        })
    }

    /// `MPI_Reduce`.
    pub fn reduce(
        &mut self,
        sendbuf: &[u8],
        datatype: AppHandle,
        op: AppHandle,
        root: Rank,
        comm: AppHandle,
    ) -> MpiResult<Option<Vec<u8>>> {
        let type_phys = self.phys(datatype, HandleKind::Datatype)?;
        let op_phys = self.phys(op, HandleKind::Op)?;
        self.two_phase_collective(comm, CollectiveKind::Reduce, |rank, phys| {
            rank.cross();
            rank.lower.reduce(sendbuf, type_phys, op_phys, root, phys)
        })
    }

    /// `MPI_Allreduce`.
    pub fn allreduce(
        &mut self,
        sendbuf: &[u8],
        datatype: AppHandle,
        op: AppHandle,
        comm: AppHandle,
    ) -> MpiResult<Vec<u8>> {
        let type_phys = self.phys(datatype, HandleKind::Datatype)?;
        let op_phys = self.phys(op, HandleKind::Op)?;
        self.two_phase_collective(comm, CollectiveKind::Allreduce, |rank, phys| {
            rank.cross();
            rank.lower.allreduce(sendbuf, type_phys, op_phys, phys)
        })
    }

    /// `MPI_Alltoall` with equal block sizes.
    pub fn alltoall(
        &mut self,
        sendbuf: &[u8],
        block_bytes: usize,
        comm: AppHandle,
    ) -> MpiResult<Vec<u8>> {
        self.two_phase_collective(comm, CollectiveKind::Alltoall, |rank, phys| {
            rank.cross();
            rank.lower.alltoall(sendbuf, block_bytes, phys)
        })
    }

    /// `MPI_Gather` of equal-sized contributions.
    pub fn gather(
        &mut self,
        sendbuf: &[u8],
        root: Rank,
        comm: AppHandle,
    ) -> MpiResult<Option<Vec<u8>>> {
        self.two_phase_collective(comm, CollectiveKind::Gather, |rank, phys| {
            rank.cross();
            rank.lower.gather(sendbuf, root, phys)
        })
    }

    /// `MPI_Allgather` of equal-sized contributions.
    pub fn allgather(&mut self, sendbuf: &[u8], comm: AppHandle) -> MpiResult<Vec<u8>> {
        self.two_phase_collective(comm, CollectiveKind::Allgather, |rank, phys| {
            rank.cross();
            rank.lower.allgather(sendbuf, phys)
        })
    }

    /// `MPI_Scatter`.
    pub fn scatter(
        &mut self,
        sendbuf: Option<&[u8]>,
        block_bytes: usize,
        root: Rank,
        comm: AppHandle,
    ) -> MpiResult<Vec<u8>> {
        self.two_phase_collective(comm, CollectiveKind::Scatter, |rank, phys| {
            rank.cross();
            rank.lower.scatter(sendbuf, block_bytes, root, phys)
        })
    }

    /// Deliver any still-buffered drained message into `buffered` inspection (test
    /// support; applications normally drain the buffer through `recv`).
    pub fn buffered_snapshot(&self) -> Vec<BufferedMessage> {
        self.buffered.clone()
    }
}
