//! Regression: a checkpoint intent serviced while a rank is parked in the
//! registration phase of a step's *second* collective. The serialized collective
//! ledger then carries a pending record for that second collective — and the restart
//! re-runs the interrupted step from its beginning, re-issuing the *first* collective
//! first. The pending record must therefore be cleared at restart (the re-issued
//! collectives receive their sequence numbers afresh); matching the first re-issued
//! call against the pending second-collective record would wrongly reject the replay
//! as divergent.

use ckpt_store::CheckpointStorage;
use job_runtime::run_world;
use mana::restart::restart_job_from_storage;
use mana::{
    CheckpointIntercept, CollectiveKind, IntentOutcome, LocalDrainObserver, ManaConfig, ManaRank,
    Op, Session,
};
use mpi_model::api::MpiImplementationFactory;
use mpi_model::error::{MpiError, MpiResult};
use mpi_model::op::UserFunctionRegistry;
use mpich_sim::MpichFactory;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const WORLD: usize = 2;

/// The test intercept: `intent_pending` reads a flag the workload flips between its
/// two collectives, and `service` runs a full standalone checkpoint, records what the
/// rank's collective ledger held pending at that moment, and vacates.
struct StraddleIntercept {
    intent: Arc<AtomicBool>,
    storage: CheckpointStorage,
    pending_at_service: Arc<Mutex<Vec<Option<CollectiveKind>>>>,
}

impl CheckpointIntercept for StraddleIntercept {
    fn intent_pending(&self) -> bool {
        self.intent.load(Ordering::SeqCst)
    }

    fn service(&self, rank: &mut ManaRank) -> MpiResult<IntentOutcome> {
        self.pending_at_service
            .lock()
            .push(rank.collective_log().pending().map(|p| p.kind));
        let plan = rank.begin_checkpoint()?;
        rank.drain_quiescent(&plan, &LocalDrainObserver::default())?;
        rank.complete_drain()?;
        rank.write_checkpoint_into(&self.storage)?;
        Ok(IntentOutcome::Vacate)
    }
}

/// The interrupted "step": an `allreduce` followed by an `allgather`, state mutation
/// only after both. Returns the two collective results.
fn two_collective_step(session: &mut Session) -> MpiResult<(u64, u64)> {
    let me = session.world_rank() as u64;
    let world = session.world()?;
    let local = me * 7 + 3;
    let total = session.allreduce(&[local], Op::sum(), world)?[0];
    let digest = session
        .allgather(&[local], world)?
        .iter()
        .fold(0u64, |acc, &x| acc.rotate_left(5) ^ x);
    Ok((total, digest))
}

#[test]
fn straddling_the_second_collective_of_a_step_restarts_cleanly() {
    let registry = Arc::new(RwLock::new(UserFunctionRegistry::new()));
    let storage = CheckpointStorage::unmetered();
    let intent = Arc::new(AtomicBool::new(false));
    let pending_at_service = Arc::new(Mutex::new(Vec::new()));

    let ranks: Vec<ManaRank> = MpichFactory::mpich()
        .launch(WORLD, Arc::clone(&registry), 1)
        .unwrap()
        .into_iter()
        .map(|lower| ManaRank::new(lower, ManaConfig::new_design(), Arc::clone(&registry)).unwrap())
        .collect();

    let reference = {
        // Uninterrupted reference in its own world.
        let reg = Arc::new(RwLock::new(UserFunctionRegistry::new()));
        let fresh: Vec<ManaRank> = MpichFactory::mpich()
            .launch(WORLD, Arc::clone(&reg), 9)
            .unwrap()
            .into_iter()
            .map(|lower| ManaRank::new(lower, ManaConfig::new_design(), Arc::clone(&reg)).unwrap())
            .collect();
        run_world(fresh, |_, rank| {
            two_collective_step(&mut Session::new(rank))
        })
        .unwrap()
    };

    // Interrupted run: rank 0 dawdles between its allreduce completion and its
    // allgather (flipping the intent flag mid-sleep), so rank 1 is already parked in
    // the allgather's registration phase when the intent lands — pending record:
    // the *second* collective of the step.
    let outcomes = {
        let storage = storage.clone();
        let intent = Arc::clone(&intent);
        let pending_at_service = Arc::clone(&pending_at_service);
        run_world(ranks, move |index, rank| {
            let mut session = Session::new(rank);
            session
                .rank_mut()
                .set_intercept(Arc::new(StraddleIntercept {
                    intent: Arc::clone(&intent),
                    storage: storage.clone(),
                    pending_at_service: Arc::clone(&pending_at_service),
                }));
            let me = session.world_rank() as u64;
            let world = session.world()?;
            let local = me * 7 + 3;
            session.allreduce(&[local], Op::sum(), world)?;
            if index == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
                intent.store(true, Ordering::SeqCst);
            }
            match session.allgather(&[local], world) {
                Err(MpiError::Preempted) => Ok("preempted"),
                Ok(_) => Ok("completed"),
                Err(error) => Err(error),
            }
        })
        .unwrap()
    };
    assert_eq!(outcomes, vec!["preempted"; WORLD]);
    let pendings = pending_at_service.lock().clone();
    assert!(
        pendings.contains(&Some(CollectiveKind::Allgather)),
        "at least one rank must have been caught inside the second collective's \
         registration phase (got {pendings:?})"
    );

    // Restart from the straddled-collective generation and re-run the whole step:
    // the allreduce is re-issued *first*, which must not trip over the restored
    // pending allgather record.
    let registry = Arc::new(RwLock::new(UserFunctionRegistry::new()));
    let lowers = MpichFactory::mpich()
        .launch(WORLD, Arc::clone(&registry), 2)
        .unwrap();
    let (restored, generation) =
        restart_job_from_storage(lowers, &storage, ManaConfig::new_design(), registry).unwrap();
    assert_eq!(generation, 0);
    for rank in &restored {
        assert!(
            rank.collective_log().pending().is_none(),
            "restart must clear the straddled pending record"
        );
    }
    let results = run_world(restored, |_, rank| {
        two_collective_step(&mut Session::new(rank))
    })
    .unwrap();
    assert_eq!(
        results, reference,
        "the re-executed step must reproduce the uninterrupted run"
    );
}
