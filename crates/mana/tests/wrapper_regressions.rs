//! Regression tests for the point-to-point wrapper bugs fixed alongside the
//! two-phase collective work:
//!
//! * `recv` used to consume a drained (buffered) message *before* checking the
//!   receive buffer was large enough, destroying the payload on `MPI_ERR_TRUNCATE`;
//! * `wait`/`test` used to leak the request descriptor when the lower-half receive
//!   (or the peer-rank translation) failed, because the `?` early-returns skipped
//!   `translator.remove`.

use job_runtime::run_world;
use mana::{ManaConfig, ManaRank};
use mpi_model::api::MpiImplementationFactory;
use mpi_model::constants::PredefinedObject;
use mpi_model::datatype::PrimitiveType;
use mpi_model::error::MpiError;
use mpi_model::op::UserFunctionRegistry;
use mpich_sim::MpichFactory;
use parking_lot::RwLock;
use split_proc::store::CheckpointStore;
use std::sync::Arc;

fn launch_mana(world: usize) -> Vec<ManaRank> {
    let registry = Arc::new(RwLock::new(UserFunctionRegistry::new()));
    MpichFactory::mpich()
        .launch(world, Arc::clone(&registry), 1)
        .unwrap()
        .into_iter()
        .map(|lower| ManaRank::new(lower, ManaConfig::new_design(), Arc::clone(&registry)).unwrap())
        .collect()
}

/// Drive a two-rank world to the state where rank 1 holds one 8-byte drained message
/// in its upper-half buffer (rank 0 sent it, both ranks checkpointed, the drain moved
/// it out of the network), then return rank 1.
fn rank_with_buffered_message() -> ManaRank {
    let store = CheckpointStore::unmetered();
    let ranks = launch_mana(2);
    let mut out = run_world(ranks, move |rank_index, mut rank: ManaRank| {
        let world = rank.world().unwrap();
        let byte = rank
            .constant(PredefinedObject::Datatype(PrimitiveType::Byte))
            .unwrap();
        if rank_index == 0 {
            rank.send(&[1, 2, 3, 4, 5, 6, 7, 8], byte, 1, 7, world)
                .unwrap();
        }
        rank.checkpoint(&store).unwrap();
        Ok(rank)
    })
    .unwrap();
    let receiver = out.remove(1);
    assert_eq!(
        receiver.buffered_messages(),
        1,
        "the checkpoint must have drained the in-flight message"
    );
    receiver
}

#[test]
fn truncated_recv_keeps_the_drained_message_buffered() {
    let mut receiver = rank_with_buffered_message();
    let world = receiver.world().unwrap();
    let byte = receiver
        .constant(PredefinedObject::Datatype(PrimitiveType::Byte))
        .unwrap();

    // A too-small receive fails with MPI_ERR_TRUNCATE — and must NOT destroy the
    // buffered payload.
    let err = receiver.recv(byte, 4, 0, 7, world).unwrap_err();
    assert!(matches!(
        err,
        MpiError::Truncate {
            message_bytes: 8,
            buffer_bytes: 4
        }
    ));
    assert_eq!(
        receiver.buffered_messages(),
        1,
        "truncation must leave the drained message in the buffer"
    );

    // Retrying with a large enough buffer still receives the original payload.
    let (payload, status) = receiver.recv(byte, 64, 0, 7, world).unwrap();
    assert_eq!(payload, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    assert_eq!(status.source, 0);
    assert_eq!(receiver.buffered_messages(), 0);
}

#[test]
fn truncated_wait_keeps_the_message_and_consumes_the_request() {
    let mut receiver = rank_with_buffered_message();
    let world = receiver.world().unwrap();
    let byte = receiver
        .constant(PredefinedObject::Datatype(PrimitiveType::Byte))
        .unwrap();

    let before = receiver.descriptor_count();
    let request = receiver.irecv(byte, 4, 0, 7, world).unwrap();
    let err = receiver.wait(request).unwrap_err();
    assert!(matches!(err, MpiError::Truncate { .. }));
    assert_eq!(
        receiver.descriptor_count(),
        before,
        "a failed wait must not leak the request descriptor"
    );
    assert_eq!(
        receiver.buffered_messages(),
        1,
        "the drained message survives the truncated wait"
    );

    // A fresh request with a big enough buffer completes and delivers the payload.
    let request = receiver.irecv(byte, 64, 0, 7, world).unwrap();
    let (status, payload) = receiver.wait(request).unwrap();
    assert_eq!(payload.unwrap(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    assert_eq!(status.count_bytes, 8);
    assert_eq!(receiver.descriptor_count(), before);
}

#[test]
fn failing_wait_releases_the_request_descriptor() {
    let ranks = launch_mana(2);
    let results = run_world(ranks, |rank_index, mut rank: ManaRank| {
        let world = rank.world().unwrap();
        let byte = rank
            .constant(PredefinedObject::Datatype(PrimitiveType::Byte))
            .unwrap();
        if rank_index == 0 {
            // An 8-byte message the receiver's request cannot hold: the lower-half
            // receive inside `wait` fails with MPI_ERR_TRUNCATE, and before the fix
            // the `?` early-return skipped the descriptor removal.
            rank.send(&[7; 8], byte, 1, 11, world).unwrap();
            return Ok(0);
        }
        let before = rank.descriptor_count();
        let request = rank.irecv(byte, 4, 0, 11, world).unwrap();
        assert_eq!(rank.descriptor_count(), before + 1);
        let err = rank.wait(request).unwrap_err();
        assert!(matches!(err, MpiError::Truncate { .. }));
        assert_eq!(
            rank.descriptor_count(),
            before,
            "a failed wait must remove the request descriptor"
        );
        Ok(1)
    })
    .unwrap();
    assert_eq!(results, vec![0, 1]);
}

#[test]
fn failing_test_releases_the_request_descriptor() {
    let ranks = launch_mana(2);
    let results = run_world(ranks, |rank_index, mut rank: ManaRank| {
        let world = rank.world().unwrap();
        let byte = rank
            .constant(PredefinedObject::Datatype(PrimitiveType::Byte))
            .unwrap();
        if rank_index == 0 {
            // An 8-byte message the receiver's request cannot hold.
            rank.send(&[9; 8], byte, 1, 3, world).unwrap();
            return Ok(0);
        }
        let before = rank.descriptor_count();
        let request = rank.irecv(byte, 4, 0, 3, world).unwrap();
        // Poll until the message arrives; the completion attempt then fails with
        // MPI_ERR_TRUNCATE coming from the lower half.
        let error = loop {
            match rank.test(request) {
                Ok(None) => std::thread::yield_now(),
                Ok(Some(_)) => panic!("an oversized message must not complete the request"),
                Err(error) => break error,
            }
        };
        assert!(matches!(error, MpiError::Truncate { .. }));
        assert_eq!(
            rank.descriptor_count(),
            before,
            "a failed test must remove the request descriptor"
        );
        Ok(1)
    })
    .unwrap();
    assert_eq!(results, vec![0, 1]);
}

#[test]
fn pending_test_keeps_the_request_retryable() {
    let mut ranks = launch_mana(1);
    let mut rank = ranks.remove(0);
    let world = rank.world().unwrap();
    let byte = rank
        .constant(PredefinedObject::Datatype(PrimitiveType::Byte))
        .unwrap();

    let before = rank.descriptor_count();
    let request = rank.irecv(byte, 16, 0, 0, world).unwrap();
    assert!(rank.test(request).unwrap().is_none(), "nothing sent yet");
    assert_eq!(
        rank.descriptor_count(),
        before + 1,
        "a still-pending request stays live after a test"
    );
    // Satisfy it so the world shuts down clean.
    rank.send(&[1], byte, 0, 0, world).unwrap();
    let completed = rank.wait(request).unwrap();
    assert_eq!(completed.1.unwrap(), vec![1]);
    assert_eq!(rank.descriptor_count(), before);
}
