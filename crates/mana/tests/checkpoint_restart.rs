//! End-to-end transparent checkpoint-restart tests for the MANA layer, written
//! against the typed session API.
//!
//! These are the behavioural claims of the paper, exercised across all three simulated
//! MPI implementations:
//!
//! * typed handles (wrapping virtual ids) held in application memory stay valid across
//!   a restart even though every physical handle and constant address in the new lower
//!   half is different;
//! * point-to-point messages that were in flight at checkpoint time are delivered
//!   after restart;
//! * communicators/datatypes/ops created before the checkpoint work after it;
//! * a checkpoint taken under one implementation can be restarted under another
//!   (the §9 "future work" scenario, possible here because nothing lower-half-specific
//!   is stored in the image).

use job_runtime::{run_world, Backend, JobConfig, JobRuntime};
use mana::{Comm, Datatype, ManaConfig, Op, Session};
use mpi_model::types::ANY_SOURCE;
use serde::{Deserialize, Serialize};
use split_proc::store::CheckpointStore;

/// Application state the "app" stores in its upper half: the typed handles it holds
/// and a little progress marker. Surviving serialization of *handles* is the point.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AppState {
    world: Comm,
    row_comm: Comm,
    double_type: Datatype<f64>,
    sum_op: Op<i32>,
    iteration: u64,
}

const STATE_REGION: &str = "app.state";
const TAG_INFLIGHT: i32 = 99;
const TAG_NORMAL: i32 = 7;

/// Phase 1 of the scenario: build objects, do some traffic, leave one message in
/// flight, then checkpoint.
fn phase_before(mut session: Session, store: &CheckpointStore) -> (u64, usize) {
    let me = session.world_rank();
    let n = session.world_size() as i32;

    let world = session.world().unwrap();
    let double_type = session.datatype::<f64>().unwrap();
    let sum_op = Op::<i32>::sum();

    // Split the world into two "rows".
    let color = me % 2;
    let row_comm = session.comm_split(world, Some(color), me).unwrap();
    assert!(!row_comm.is_null());

    // Some completed traffic: an allreduce over the row communicator.
    let total = session.allreduce(&[me + 1], sum_op, row_comm).unwrap()[0];
    assert!(total > 0);

    // A normal send/recv ring on the world communicator.
    let next = (me + 1) % n;
    let prev = (me + n - 1) % n;
    session.send(&[me as f64], next, TAG_NORMAL, world).unwrap();
    let (data, status) = session.recv::<f64>(8, prev, TAG_NORMAL, world).unwrap();
    assert_eq!(status.source, prev);
    assert_eq!(data[0] as i32, prev);

    // Leave one message *in flight*: rank 0 sends to rank 1, but rank 1 will only
    // receive it after the restart. The checkpoint drain must preserve it.
    if me == 0 {
        session
            .send(&[1234.5, 678.9], 1, TAG_INFLIGHT, world)
            .unwrap();
    }

    // Stash the typed handles and progress in the upper half: this is the application
    // state the checkpoint must preserve.
    let state = AppState {
        world,
        row_comm,
        double_type,
        sum_op,
        iteration: 41 + me as u64,
    };
    session
        .upper_mut()
        .store_json(STATE_REGION, &state)
        .unwrap();

    let report = session.checkpoint(store).unwrap();
    assert!(report.bytes > 0);
    (session.crossings(), session.buffered_messages())
}

/// Phase 2: after restart, recover the state, receive the in-flight message, and keep
/// computing with the pre-checkpoint typed handles.
fn phase_after(mut session: Session) {
    let me = session.world_rank();
    let state: AppState = session.upper().load_json(STATE_REGION).unwrap();
    assert_eq!(state.iteration, 41 + me as u64);

    // The saved typed handles still work, even though the lower half is brand new.
    assert_eq!(
        session.comm_size(state.world).unwrap(),
        session.world_size()
    );
    assert_eq!(session.comm_rank(state.world).unwrap(), me);
    let row_size = session.comm_size(state.row_comm).unwrap();
    let n = session.world_size();
    let expected_row = if me % 2 == 0 { n.div_ceil(2) } else { n / 2 };
    assert_eq!(row_size, expected_row);
    assert_eq!(session.type_size(state.double_type).unwrap(), 8);

    // The in-flight message arrives after restart.
    if me == 1 {
        let (payload, status) = session
            .recv::<f64>(8, ANY_SOURCE, TAG_INFLIGHT, state.world)
            .unwrap();
        assert_eq!(status.tag, TAG_INFLIGHT);
        assert_eq!(payload, vec![1234.5, 678.9]);
    }

    // Collectives over both surviving communicators still work.
    let total = session.allreduce(&[1], state.sum_op, state.world).unwrap()[0];
    assert_eq!(total as usize, session.world_size());
    let row_total = session
        .allreduce(&[1], state.sum_op, state.row_comm)
        .unwrap()[0];
    assert_eq!(row_total as usize, row_size);

    session.barrier(state.world).unwrap();
}

fn run_scenario(first: Backend, second: Backend, config: ManaConfig, world_size: usize) {
    let runtime = JobRuntime::new(JobConfig::new(world_size, first).with_mana(config));
    let store = CheckpointStore::unmetered();

    // --- Run until the checkpoint under the first implementation. ---
    let store_for_ranks = store.clone();
    let results = runtime
        .run(move |session, _ctx| Ok(phase_before(session, &store_for_ranks)))
        .unwrap();
    for (crossings, _buffered) in results {
        assert!(
            crossings > 0,
            "wrapped calls must cross into the lower half"
        );
    }

    // --- Restart under the second implementation (a brand-new session). ---
    let images: Vec<_> = (0..world_size)
        .map(|r| store.read(0, r as i32).unwrap())
        .collect();
    assert!(images
        .iter()
        .all(|i| i.metadata.implementation == first.name()));
    let new_lowers = second
        .factory()
        .launch(world_size, runtime.registry(), 2)
        .unwrap();
    let second_name = second.name();
    let restarted =
        mana::restart::restart_job(new_lowers, images, config, runtime.registry()).unwrap();
    run_world(restarted, move |_, rank| {
        assert_eq!(rank.implementation_name(), second_name);
        phase_after(Session::new(rank));
        Ok(())
    })
    .unwrap();
}

#[test]
fn checkpoint_restart_on_mpich_new_virtid() {
    run_scenario(Backend::Mpich, Backend::Mpich, ManaConfig::new_design(), 4);
}

#[test]
fn checkpoint_restart_on_mpich_legacy_design() {
    run_scenario(
        Backend::Mpich,
        Backend::Mpich,
        ManaConfig::legacy_design(),
        4,
    );
}

#[test]
fn checkpoint_restart_on_openmpi() {
    run_scenario(
        Backend::OpenMpi,
        Backend::OpenMpi,
        ManaConfig::new_design(),
        4,
    );
}

#[test]
fn checkpoint_restart_on_craympi() {
    run_scenario(
        Backend::CrayMpi,
        Backend::CrayMpi,
        ManaConfig::new_design(),
        3,
    );
}

#[test]
fn cross_implementation_restart_mpich_to_openmpi() {
    // Checkpoint under MPICH, restart under Open MPI: nothing implementation-specific
    // survives in the image, so this works for applications inside the common subset.
    run_scenario(
        Backend::Mpich,
        Backend::OpenMpi,
        ManaConfig::new_design(),
        4,
    );
}

#[test]
fn cross_implementation_restart_openmpi_to_mpich() {
    run_scenario(
        Backend::OpenMpi,
        Backend::Mpich,
        ManaConfig::new_design(),
        2,
    );
}

#[test]
fn exampi_checkpoint_restart_within_subset() {
    // ExaMPI does not provide comm_dup/comm_create or user ops, but comm_split,
    // reductions and point-to-point are enough for the CoMD/LULESH-style workload this
    // scenario models.
    run_scenario(
        Backend::ExaMpi,
        Backend::ExaMpi,
        ManaConfig::new_design(),
        4,
    );
}

#[test]
fn multiple_checkpoint_generations() {
    let runtime = JobRuntime::new(JobConfig::new(2, Backend::Mpich));
    let store = CheckpointStore::unmetered();
    let store_for_ranks = store.clone();
    runtime
        .run(move |mut session, _ctx| {
            let world = session.world()?;
            for generation in 0..3u64 {
                let total = session.allreduce(&[1], Op::sum(), world)?[0];
                assert_eq!(total, 2);
                let report = session.checkpoint(&store_for_ranks)?;
                assert!(report.bytes > 0);
                assert_eq!(session.generation(), generation + 1);
            }
            Ok(session.world_rank())
        })
        .unwrap();
    // Three generations of two ranks each.
    assert_eq!(store.image_count(), 6);
    // The restart path works from the latest generation.
    let images: Vec<_> = (0..2).map(|r| store.read(2, r).unwrap()).collect();
    let new_lowers = Backend::Mpich
        .factory()
        .launch(2, runtime.registry(), 9)
        .unwrap();
    let restarted = mana::restart::restart_job(
        new_lowers,
        images,
        ManaConfig::new_design(),
        runtime.registry(),
    )
    .unwrap();
    assert_eq!(restarted.len(), 2);
    assert_eq!(restarted[0].generation(), 3);
}

#[test]
fn drain_buffers_many_inflight_messages() {
    let runtime = JobRuntime::new(JobConfig::new(2, Backend::Mpich));
    // The coordinated checkpoint goes through the runtime's sharded engine store; the
    // drain behaviour under test is identical either way.
    runtime
        .run(move |mut session, ctx| {
            let me = session.world_rank();
            let world = session.world()?;
            // Rank 0 fires 20 messages that rank 1 never receives before the
            // checkpoint; the drain must buffer all of them, in order.
            if me == 0 {
                for i in 0..20u8 {
                    session.send(&[i], 1, 5, world)?;
                }
            }
            ctx.checkpoint(&mut session)?;
            if me == 1 {
                assert_eq!(session.buffered_messages(), 20);
                // And they are delivered, in FIFO order, by ordinary receives.
                for i in 0..20u8 {
                    let (payload, status) = session.recv::<u8>(16, 0, 5, world)?;
                    assert_eq!(payload, vec![i]);
                    assert_eq!(status.source, 0);
                }
                assert_eq!(session.buffered_messages(), 0);
            } else {
                assert_eq!(session.buffered_messages(), 0);
            }
            Ok(())
        })
        .unwrap();
}

#[test]
fn nonblocking_requests_survive_checkpoint() {
    let runtime = JobRuntime::new(JobConfig::new(2, Backend::OpenMpi));
    runtime
        .run(move |mut session, ctx| {
            let me = session.world_rank();
            let world = session.world()?;
            if me == 0 {
                let req = session.isend(&[42u8, 43], 1, 11, world)?;
                ctx.checkpoint(&mut session)?;
                let (payload, status) = req.wait(&mut session)?;
                assert!(payload.is_empty());
                assert_eq!(status.tag, 11);
            } else {
                // Post the irecv *before* the checkpoint; satisfy it afterwards.
                let req = session.irecv::<u8>(16, 0, 11, world)?;
                ctx.checkpoint(&mut session)?;
                let (payload, status) = req.wait(&mut session)?;
                assert_eq!(status.count_bytes, 2);
                assert_eq!(payload, vec![42, 43]);
            }
            Ok(())
        })
        .unwrap();
}
