//! End-to-end transparent checkpoint-restart tests for the MANA layer.
//!
//! These are the behavioural claims of the paper, exercised across all three simulated
//! MPI implementations:
//!
//! * virtual ids held in application memory stay valid across a restart even though
//!   every physical handle and constant address in the new lower half is different;
//! * point-to-point messages that were in flight at checkpoint time are delivered
//!   after restart;
//! * communicators/datatypes/ops created before the checkpoint work after it;
//! * a checkpoint taken under one implementation can be restarted under another
//!   (the §9 "future work" scenario, possible here because nothing lower-half-specific
//!   is stored in the image).

use job_runtime::{run_world, Backend, JobConfig, JobRuntime};
use mana::restart::restart_job;
use mana::runtime::AppHandle;
use mana::{ManaConfig, ManaRank};
use mpi_model::buffer::{bytes_to_f64, bytes_to_i32, f64_to_bytes, i32_to_bytes};
use mpi_model::constants::PredefinedObject;
use mpi_model::datatype::PrimitiveType;
use mpi_model::op::PredefinedOp;
use mpi_model::types::ANY_SOURCE;
use serde::{Deserialize, Serialize};
use split_proc::store::CheckpointStore;

/// Application state the "app" stores in its upper half: the virtual handles it holds
/// and a little progress marker. Surviving serialization of *handles* is the point.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AppState {
    world: AppHandle,
    row_comm: AppHandle,
    double_type: AppHandle,
    sum_op: AppHandle,
    iteration: u64,
}

const STATE_REGION: &str = "app.state";
const TAG_INFLIGHT: i32 = 99;
const TAG_NORMAL: i32 = 7;

/// Phase 1 of the scenario: build objects, do some traffic, leave one message in
/// flight, then checkpoint.
fn phase_before(mut rank: ManaRank, store: &CheckpointStore) -> (u64, usize) {
    let me = rank.world_rank();
    let n = rank.world_size() as i32;

    let world = rank.world().unwrap();
    let double_type = rank
        .constant(PredefinedObject::Datatype(PrimitiveType::Double))
        .unwrap();
    let int_type = rank
        .constant(PredefinedObject::Datatype(PrimitiveType::Int))
        .unwrap();
    let sum_op = rank
        .constant(PredefinedObject::Op(PredefinedOp::Sum))
        .unwrap();

    // Split the world into two "rows".
    let color = me % 2;
    let row_comm = rank.comm_split(world, Some(color), me).unwrap();
    assert!(!row_comm.is_null());

    // Some completed traffic: an allreduce over the row communicator.
    let total = rank
        .allreduce(&i32_to_bytes(&[me + 1]), int_type, sum_op, row_comm)
        .unwrap();
    assert!(bytes_to_i32(&total)[0] > 0);

    // A normal send/recv ring on the world communicator.
    let next = (me + 1) % n;
    let prev = (me + n - 1) % n;
    rank.send(
        &f64_to_bytes(&[me as f64]),
        double_type,
        next,
        TAG_NORMAL,
        world,
    )
    .unwrap();
    let (data, status) = rank.recv(double_type, 64, prev, TAG_NORMAL, world).unwrap();
    assert_eq!(status.source, prev);
    assert_eq!(bytes_to_f64(&data)[0] as i32, prev);

    // Leave one message *in flight*: rank 0 sends to rank 1, but rank 1 will only
    // receive it after the restart. The checkpoint drain must preserve it.
    if me == 0 {
        rank.send(
            &f64_to_bytes(&[1234.5, 678.9]),
            double_type,
            1,
            TAG_INFLIGHT,
            world,
        )
        .unwrap();
    }

    // Stash the handles and progress in the upper half: this is the application state
    // the checkpoint must preserve.
    let state = AppState {
        world,
        row_comm,
        double_type,
        sum_op,
        iteration: 41 + me as u64,
    };
    rank.upper_mut().store_json(STATE_REGION, &state).unwrap();

    let report = rank.checkpoint(store).unwrap();
    assert!(report.bytes > 0);
    (rank.crossings(), rank.buffered_messages())
}

/// Phase 2: after restart, recover the state, receive the in-flight message, and keep
/// computing with the pre-checkpoint handles.
fn phase_after(mut rank: ManaRank) {
    let me = rank.world_rank();
    let state: AppState = rank.upper().load_json(STATE_REGION).unwrap();
    assert_eq!(state.iteration, 41 + me as u64);

    // The saved virtual ids still work, even though the lower half is brand new.
    assert_eq!(rank.comm_size(state.world).unwrap(), rank.world_size());
    assert_eq!(rank.comm_rank(state.world).unwrap(), me);
    let row_size = rank.comm_size(state.row_comm).unwrap();
    let n = rank.world_size();
    let expected_row = if me % 2 == 0 { n.div_ceil(2) } else { n / 2 };
    assert_eq!(row_size, expected_row);

    // The in-flight message arrives after restart.
    if me == 1 {
        let (payload, status) = rank
            .recv(state.double_type, 64, ANY_SOURCE, TAG_INFLIGHT, state.world)
            .unwrap();
        assert_eq!(status.tag, TAG_INFLIGHT);
        assert_eq!(bytes_to_f64(&payload), vec![1234.5, 678.9]);
    }

    // Collectives over both surviving communicators still work.
    let int_type = rank
        .constant(PredefinedObject::Datatype(PrimitiveType::Int))
        .unwrap();
    let total = rank
        .allreduce(&i32_to_bytes(&[1]), int_type, state.sum_op, state.world)
        .unwrap();
    assert_eq!(bytes_to_i32(&total)[0] as usize, rank.world_size());
    let row_total = rank
        .allreduce(&i32_to_bytes(&[1]), int_type, state.sum_op, state.row_comm)
        .unwrap();
    assert_eq!(bytes_to_i32(&row_total)[0] as usize, row_size);

    rank.barrier(state.world).unwrap();
}

fn run_scenario(first: Backend, second: Backend, config: ManaConfig, world_size: usize) {
    let runtime = JobRuntime::new(JobConfig::new(world_size, first).with_mana(config));
    let store = CheckpointStore::unmetered();

    // --- Run until the checkpoint under the first implementation. ---
    let store_for_ranks = store.clone();
    let results = runtime
        .run(move |rank, _ctx| Ok(phase_before(rank, &store_for_ranks)))
        .unwrap();
    for (crossings, _buffered) in results {
        assert!(
            crossings > 0,
            "wrapped calls must cross into the lower half"
        );
    }

    // --- Restart under the second implementation (a brand-new session). ---
    let images: Vec<_> = (0..world_size)
        .map(|r| store.read(0, r as i32).unwrap())
        .collect();
    assert!(images
        .iter()
        .all(|i| i.metadata.implementation == first.name()));
    let new_lowers = second
        .factory()
        .launch(world_size, runtime.registry(), 2)
        .unwrap();
    let second_name = second.name();
    let restarted = restart_job(new_lowers, images, config, runtime.registry()).unwrap();
    run_world(restarted, move |_, rank| {
        assert_eq!(rank.implementation_name(), second_name);
        phase_after(rank);
        Ok(())
    })
    .unwrap();
}

#[test]
fn checkpoint_restart_on_mpich_new_virtid() {
    run_scenario(Backend::Mpich, Backend::Mpich, ManaConfig::new_design(), 4);
}

#[test]
fn checkpoint_restart_on_mpich_legacy_design() {
    run_scenario(
        Backend::Mpich,
        Backend::Mpich,
        ManaConfig::legacy_design(),
        4,
    );
}

#[test]
fn checkpoint_restart_on_openmpi() {
    run_scenario(
        Backend::OpenMpi,
        Backend::OpenMpi,
        ManaConfig::new_design(),
        4,
    );
}

#[test]
fn checkpoint_restart_on_craympi() {
    run_scenario(
        Backend::CrayMpi,
        Backend::CrayMpi,
        ManaConfig::new_design(),
        3,
    );
}

#[test]
fn cross_implementation_restart_mpich_to_openmpi() {
    // Checkpoint under MPICH, restart under Open MPI: nothing implementation-specific
    // survives in the image, so this works for applications inside the common subset.
    run_scenario(
        Backend::Mpich,
        Backend::OpenMpi,
        ManaConfig::new_design(),
        4,
    );
}

#[test]
fn cross_implementation_restart_openmpi_to_mpich() {
    run_scenario(
        Backend::OpenMpi,
        Backend::Mpich,
        ManaConfig::new_design(),
        2,
    );
}

#[test]
fn exampi_checkpoint_restart_within_subset() {
    // ExaMPI does not provide comm_dup/comm_create or user ops, but comm_split,
    // reductions and point-to-point are enough for the CoMD/LULESH-style workload this
    // scenario models.
    run_scenario(
        Backend::ExaMpi,
        Backend::ExaMpi,
        ManaConfig::new_design(),
        4,
    );
}

#[test]
fn multiple_checkpoint_generations() {
    let runtime = JobRuntime::new(JobConfig::new(2, Backend::Mpich));
    let store = CheckpointStore::unmetered();
    let store_for_ranks = store.clone();
    runtime
        .run(move |mut rank, _ctx| {
            let world = rank.world()?;
            let int_type = rank.constant(PredefinedObject::Datatype(PrimitiveType::Int))?;
            let sum = rank.constant(PredefinedObject::Op(PredefinedOp::Sum))?;
            for generation in 0..3u64 {
                let total = rank.allreduce(&i32_to_bytes(&[1]), int_type, sum, world)?;
                assert_eq!(bytes_to_i32(&total)[0], 2);
                let report = rank.checkpoint(&store_for_ranks)?;
                assert!(report.bytes > 0);
                assert_eq!(rank.generation(), generation + 1);
            }
            Ok(rank.world_rank())
        })
        .unwrap();
    // Three generations of two ranks each.
    assert_eq!(store.image_count(), 6);
    // The restart path works from the latest generation.
    let images: Vec<_> = (0..2).map(|r| store.read(2, r).unwrap()).collect();
    let new_lowers = Backend::Mpich
        .factory()
        .launch(2, runtime.registry(), 9)
        .unwrap();
    let restarted = restart_job(
        new_lowers,
        images,
        ManaConfig::new_design(),
        runtime.registry(),
    )
    .unwrap();
    assert_eq!(restarted.len(), 2);
    assert_eq!(restarted[0].generation(), 3);
}

#[test]
fn drain_buffers_many_inflight_messages() {
    let runtime = JobRuntime::new(JobConfig::new(2, Backend::Mpich));
    // The coordinated checkpoint goes through the runtime's sharded engine store; the
    // drain behaviour under test is identical either way.
    runtime
        .run(move |mut rank, ctx| {
            let me = rank.world_rank();
            let world = rank.world()?;
            let byte_type = rank.constant(PredefinedObject::Datatype(PrimitiveType::Byte))?;
            // Rank 0 fires 20 messages that rank 1 never receives before the
            // checkpoint; the drain must buffer all of them, in order.
            if me == 0 {
                for i in 0..20u8 {
                    rank.send(&[i], byte_type, 1, 5, world)?;
                }
            }
            ctx.checkpoint(&mut rank)?;
            if me == 1 {
                assert_eq!(rank.buffered_messages(), 20);
                // And they are delivered, in FIFO order, by ordinary receives.
                for i in 0..20u8 {
                    let (payload, status) = rank.recv(byte_type, 16, 0, 5, world)?;
                    assert_eq!(payload, vec![i]);
                    assert_eq!(status.source, 0);
                }
                assert_eq!(rank.buffered_messages(), 0);
            } else {
                assert_eq!(rank.buffered_messages(), 0);
            }
            Ok(())
        })
        .unwrap();
}

#[test]
fn nonblocking_requests_survive_checkpoint() {
    let runtime = JobRuntime::new(JobConfig::new(2, Backend::OpenMpi));
    runtime
        .run(move |mut rank, ctx| {
            let me = rank.world_rank();
            let world = rank.world()?;
            let byte_type = rank.constant(PredefinedObject::Datatype(PrimitiveType::Byte))?;
            if me == 0 {
                let req = rank.isend(&[42, 43], byte_type, 1, 11, world)?;
                ctx.checkpoint(&mut rank)?;
                let (status, payload) = rank.wait(req)?;
                assert!(payload.is_none());
                assert_eq!(status.tag, 11);
            } else {
                // Post the irecv *before* the checkpoint; satisfy it afterwards.
                let req = rank.irecv(byte_type, 16, 0, 11, world)?;
                ctx.checkpoint(&mut rank)?;
                let (status, payload) = rank.wait(req)?;
                assert_eq!(status.count_bytes, 2);
                assert_eq!(payload.unwrap(), vec![42, 43]);
            }
            Ok(())
        })
        .unwrap();
}
