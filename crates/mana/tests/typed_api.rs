//! Satellite coverage for the typed session layer:
//!
//! * encode/decode round trips for every `MpiData` scalar — and a derived-datatype
//!   struct — through a real send/recv on **all four** simulated backends;
//! * typed reductions (including `MAXLOC` on `DoubleInt` pairs);
//! * a checkpoint-restart proof that typed handles stored in the upper half
//!   (`Datatype<f64>`, `Comm`) survive restart exactly like raw `AppHandle`s do
//!   (both forms are stored side by side and compared after the restart).

use job_runtime::{Backend, JobConfig, JobRuntime};
use mana::runtime::AppHandle;
use mana::{Comm, Datatype, Op, Session};
use mpi_model::datatype::{PrimitiveType, TypeDescriptor};
use mpi_model::error::MpiResult;
use mpi_model::typed::{DoubleInt, MpiData};

/// A derived-datatype struct: three coordinates and a tag, laid out as
/// `MPI_Type_create_struct([3, 1], [0, 24], [MPI_DOUBLE, MPI_UNSIGNED_LONG])`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Particle {
    position: [f64; 3],
    id: u64,
}

impl MpiData for Particle {
    fn type_descriptor() -> TypeDescriptor {
        TypeDescriptor::Struct {
            block_lengths: vec![3, 1],
            byte_displacements: vec![0, 24],
            types: vec![
                TypeDescriptor::Primitive(PrimitiveType::Double),
                TypeDescriptor::Primitive(PrimitiveType::UnsignedLong),
            ],
        }
    }

    fn encode_element(self, out: &mut Vec<u8>) {
        for coordinate in self.position {
            out.extend_from_slice(&coordinate.to_le_bytes());
        }
        out.extend_from_slice(&self.id.to_le_bytes());
    }

    fn decode_element(bytes: &[u8]) -> MpiResult<Self> {
        let mut position = [0.0; 3];
        for (i, coordinate) in position.iter_mut().enumerate() {
            *coordinate = f64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap());
        }
        Ok(Particle {
            position,
            id: u64::from_le_bytes(bytes[24..32].try_into().unwrap()),
        })
    }
}

/// Ping one typed payload from rank 0 to rank 1 and assert it arrives intact.
fn ping<T: MpiData + PartialEq + std::fmt::Debug>(
    session: &mut Session,
    payload: &[T],
    tag: i32,
) -> MpiResult<()> {
    let world = session.world()?;
    match session.world_rank() {
        0 => session.send(payload, 1, tag, world)?,
        1 => {
            let (received, status) = session.recv::<T>(payload.len(), 0, tag, world)?;
            assert_eq!(received, payload, "round trip must be lossless");
            assert_eq!(status.count_bytes, payload.len() * T::elem_size());
        }
        _ => unreachable!("two-rank world"),
    }
    session.barrier(world)?;
    Ok(())
}

/// Every scalar `MpiData` type plus the derived `Particle` struct, round-tripped on
/// one backend.
fn roundtrip_all_types(backend: Backend) {
    let runtime = JobRuntime::new(JobConfig::new(2, backend));
    runtime
        .run(|mut session, _ctx| {
            ping::<i8>(&mut session, &[-3, 0, i8::MAX], 1)?;
            ping::<u8>(&mut session, &[0, 1, u8::MAX], 2)?;
            ping::<i32>(&mut session, &[i32::MIN, -1, i32::MAX], 3)?;
            ping::<u32>(&mut session, &[0, 7, u32::MAX], 4)?;
            ping::<i64>(&mut session, &[i64::MIN, 0, i64::MAX], 5)?;
            ping::<u64>(&mut session, &[0, 42, u64::MAX], 6)?;
            ping::<f32>(&mut session, &[-1.5, 0.0, f32::MAX], 7)?;
            ping::<f64>(&mut session, &[1.5e300, -2.25, f64::MIN_POSITIVE], 8)?;
            ping::<bool>(&mut session, &[true, false, true], 9)?;
            ping::<DoubleInt>(
                &mut session,
                &[DoubleInt {
                    value: 3.5,
                    index: 2,
                }],
                10,
            )?;
            ping::<Particle>(
                &mut session,
                &[
                    Particle {
                        position: [1.0, -2.0, 3.5],
                        id: 7,
                    },
                    Particle {
                        position: [0.25, 0.5, 0.75],
                        id: u64::MAX,
                    },
                ],
                11,
            )?;
            // The derived struct datatype is a real committed lower-half type.
            let particle_type = session.datatype::<Particle>()?;
            assert_eq!(session.type_size(particle_type)?, 32);
            Ok(())
        })
        .unwrap_or_else(|e| panic!("{}: {e:?}", backend.name()));
}

#[test]
fn scalar_and_struct_roundtrips_on_mpich() {
    roundtrip_all_types(Backend::Mpich);
}

#[test]
fn scalar_and_struct_roundtrips_on_craympi() {
    roundtrip_all_types(Backend::CrayMpi);
}

#[test]
fn scalar_and_struct_roundtrips_on_openmpi() {
    roundtrip_all_types(Backend::OpenMpi);
}

#[test]
fn scalar_and_struct_roundtrips_on_exampi() {
    roundtrip_all_types(Backend::ExaMpi);
}

#[test]
fn typed_reductions_including_maxloc() {
    let runtime = JobRuntime::new(JobConfig::new(4, Backend::Mpich));
    runtime
        .run(|mut session, _ctx| {
            let me = session.world_rank();
            let world = session.world()?;
            assert_eq!(session.allreduce(&[me + 1], Op::sum(), world)?[0], 10);
            assert_eq!(session.allreduce(&[me], Op::max(), world)?[0], 3);
            assert_eq!(session.allreduce(&[me as f64], Op::min(), world)?[0], 0.0);
            // MAXLOC over (value, rank) pairs: every rank contributes its own rank as
            // the value, rank 3 must win with index 3.
            let pair = DoubleInt {
                value: me as f64,
                index: me,
            };
            let winner = session.allreduce(&[pair], Op::maxloc(), world)?[0];
            assert_eq!(winner.value, 3.0);
            assert_eq!(winner.index, 3);
            // Typed gather/scatter/bcast round trips.
            let gathered = session.allgather(&[me as u64 * 10], world)?;
            assert_eq!(gathered, vec![0, 10, 20, 30]);
            let mut broadcast = if me == 0 { vec![5i32, 6] } else { vec![0, 0] };
            session.bcast(&mut broadcast, 0, world)?;
            assert_eq!(broadcast, vec![5, 6]);
            let scattered = session.scatter(
                (me == 2).then(|| vec![9i32, 8, 7, 6]).as_deref(),
                1,
                2,
                world,
            )?;
            assert_eq!(scattered, vec![9 - me]);
            Ok(())
        })
        .unwrap();
}

/// The satellite's checkpoint-restart proof: a `Datatype<f64>` and a `Comm` stored in
/// the upper half survive a restart **exactly like raw `AppHandle`s do** — both forms
/// of the same handles are stored before the checkpoint and compared after.
#[test]
fn typed_handles_survive_restart_like_raw_handles() {
    const TYPED: &str = "app.typed_handles";
    const RAW: &str = "app.raw_handles";

    let runtime = JobRuntime::new(JobConfig::new(2, Backend::OpenMpi));
    runtime
        .run(|mut session, ctx| {
            let world = session.world()?;
            let double = session.datatype::<f64>()?;
            let row = session.comm_split(world, Some(session.world_rank() % 2), 0)?;
            session
                .upper_mut()
                .store_json(TYPED, &(world, double, row))?;
            session
                .upper_mut()
                .store_json(RAW, &(world.handle(), double.handle(), row.handle()))?;
            ctx.checkpoint(&mut session)?;
            Ok(())
        })
        .unwrap();

    runtime
        .resume(|mut session, _ctx| {
            let (world, double, row): (Comm, Datatype<f64>, Comm) =
                session.upper().load_json(TYPED)?;
            let (raw_world, raw_double, raw_row): (AppHandle, AppHandle, AppHandle) =
                session.upper().load_json(RAW)?;
            // Bit-for-bit the same virtual ids as their raw counterparts...
            assert_eq!(world.handle(), raw_world);
            assert_eq!(double.handle(), raw_double);
            assert_eq!(row.handle(), raw_row);
            // ...and fully functional on the fresh lower half, typed and raw alike.
            assert_eq!(session.comm_size(world)?, 2);
            assert_eq!(session.comm_size(row)?, 1);
            assert_eq!(session.type_size(double)?, 8);
            assert_eq!(
                session.rank_mut().comm_size(raw_world)?,
                2,
                "the raw handle works through the byte layer too"
            );
            let sum = session.allreduce(&[2.5f64], Op::sum(), world)?[0];
            assert_eq!(sum, 5.0);
            Ok(())
        })
        .unwrap();
}

/// A derived struct datatype created through the typed layer is recorded in the
/// replay log and rebuilt at restart; the session wrapping the restored rank reuses
/// it instead of minting a duplicate.
#[test]
fn derived_struct_datatype_survives_restart() {
    const STATE: &str = "app.particle_type";

    let runtime = JobRuntime::new(JobConfig::new(2, Backend::Mpich));
    runtime
        .run(|mut session, ctx| {
            let ty = session.datatype::<Particle>()?;
            session.upper_mut().store_json(STATE, &ty)?;
            ctx.checkpoint(&mut session)?;
            Ok(())
        })
        .unwrap();

    runtime
        .resume(|mut session, _ctx| {
            let saved: Datatype<Particle> = session.upper().load_json(STATE)?;
            assert_eq!(session.type_size(saved)?, 32, "replayed derived type works");
            // Resolving the datatype again finds the restored descriptor instead of
            // creating a second derived type.
            let resolved = session.datatype::<Particle>()?;
            assert_eq!(resolved, saved);
            // And it still moves data.
            let world = session.world()?;
            let payload = [Particle {
                position: [9.0, 8.0, 7.0],
                id: 1,
            }];
            match session.world_rank() {
                0 => session.send(&payload, 1, 21, world)?,
                _ => {
                    let (received, _) = session.recv::<Particle>(1, 0, 21, world)?;
                    assert_eq!(received, payload);
                }
            }
            session.barrier(world)?;
            Ok(())
        })
        .unwrap();
}

/// A structurally identical — but *uncommitted* — derived type built through the
/// byte-layer escape hatch must not be adopted by the session's datatype
/// resolution: sending on it would fail with `TypeNotCommitted`, and committing it
/// behind the application's back would be a surprise. The session builds (and
/// commits) its own type instead.
#[test]
fn uncommitted_app_built_type_is_not_adopted() {
    let runtime = JobRuntime::new(JobConfig::new(1, Backend::Mpich));
    runtime
        .run(|mut session, _ctx| {
            let double = session.datatype::<f64>()?.handle();
            let ulong =
                session
                    .rank_mut()
                    .constant(mpi_model::constants::PredefinedObject::Datatype(
                        PrimitiveType::UnsignedLong,
                    ))?;
            // Same layout as Particle, created raw and deliberately left uncommitted.
            let uncommitted =
                session
                    .rank_mut()
                    .type_create_struct(&[3, 1], &[0, 24], &[double, ulong])?;
            // The typed resolution must mint a fresh committed type, not adopt it...
            let resolved = session.datatype::<Particle>()?;
            assert_ne!(resolved.handle(), uncommitted);
            // ...so typed traffic works even with the impostor in the table.
            let world = session.world()?;
            let payload = [Particle {
                position: [1.0, 2.0, 3.0],
                id: 5,
            }];
            session.send(&payload, 0, 31, world)?;
            let (received, _) = session.recv::<Particle>(1, 0, 31, world)?;
            assert_eq!(received, payload);
            Ok(())
        })
        .unwrap();
}
