//! Public-API snapshot test for the typed session layer (`mana::api`).
//!
//! The exported surface — every `pub` item and `pub fn` signature in
//! `src/api.rs` — is extracted from the source at compile time and diffed against
//! the committed golden file `tests/api_surface.golden`. Accidental breakage of the
//! typed API (a renamed method, a changed signature, a removed handle type) fails
//! this test in CI with a readable diff.
//!
//! To accept an *intentional* surface change, regenerate the golden file:
//!
//! ```text
//! UPDATE_API_SURFACE=1 cargo test -p mana --test api_surface
//! ```

const SOURCE: &str = include_str!("../src/api.rs");
const GOLDEN: &str = include_str!("api_surface.golden");
const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/api_surface.golden");

/// Extract the public surface: every `pub` declaration line (struct/enum/trait/
/// const/type/fn), with multi-line `fn` signatures joined up to their body brace and
/// whitespace normalized. Stops at the `#[cfg(test)]` module.
fn extract_surface(source: &str) -> String {
    let mut items: Vec<String> = Vec::new();
    let mut lines = source.lines();
    while let Some(line) = lines.next() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        let is_decl = [
            "pub fn ",
            "pub struct ",
            "pub enum ",
            "pub trait ",
            "pub const ",
            "pub type ",
        ]
        .iter()
        .any(|prefix| trimmed.starts_with(prefix));
        if !is_decl {
            continue;
        }
        // Join continuation lines until the declaration closes with `{` or `;`.
        let mut declaration = trimmed.trim_end().to_string();
        while !declaration.contains('{') && !declaration.ends_with(';') {
            match lines.next() {
                Some(next) => {
                    declaration.push(' ');
                    declaration.push_str(next.trim());
                }
                None => break,
            }
        }
        // Cut the body/initializer: keep everything before `{`; for consts/types,
        // everything before `=`.
        let mut signature = declaration.split('{').next().unwrap().trim().to_string();
        if signature.starts_with("pub const ") || signature.starts_with("pub type ") {
            signature = signature.split('=').next().unwrap().trim().to_string();
        }
        signature = signature.trim_end_matches(';').trim().to_string();
        // Normalize internal whitespace — and the trailing comma rustfmt leaves on
        // the last argument of a wrapped signature — so rewraps never count as
        // changes.
        let normalized = signature
            .split_whitespace()
            .collect::<Vec<_>>()
            .join(" ")
            .replace(", )", ")")
            .replace(",)", ")");
        items.push(normalized);
    }
    let mut surface = items.join("\n");
    surface.push('\n');
    surface
}

#[test]
fn typed_api_surface_matches_golden_file() {
    let surface = extract_surface(SOURCE);
    if std::env::var_os("UPDATE_API_SURFACE").is_some() {
        std::fs::write(GOLDEN_PATH, &surface).expect("write golden file");
        println!("regenerated {GOLDEN_PATH}");
        return;
    }
    if surface != GOLDEN {
        let wanted: Vec<&str> = GOLDEN.lines().collect();
        let got: Vec<&str> = surface.lines().collect();
        let mut diff = String::new();
        for line in &wanted {
            if !got.contains(line) {
                diff.push_str(&format!("- {line}\n"));
            }
        }
        for line in &got {
            if !wanted.contains(line) {
                diff.push_str(&format!("+ {line}\n"));
            }
        }
        panic!(
            "the exported mana::api surface changed:\n{diff}\n\
             If this change is intentional, regenerate the snapshot with\n\
             UPDATE_API_SURFACE=1 cargo test -p mana --test api_surface"
        );
    }
}

#[test]
fn surface_extraction_sees_the_core_items() {
    // Guard the extractor itself: if parsing silently broke, the golden comparison
    // would pass vacuously on an empty surface.
    let surface = extract_surface(SOURCE);
    for needle in [
        "pub struct Session",
        "pub struct Comm",
        "pub struct Group",
        "pub struct Datatype<T: MpiData>",
        "pub struct Op<T: MpiData>",
        "pub struct Request<T: MpiData>",
        "pub fn allreduce<T: MpiData>",
        "pub fn wait(mut self, session: &mut Session)",
    ] {
        assert!(
            surface.lines().any(|line| line.contains(needle)),
            "extractor lost {needle:?}:\n{surface}"
        );
    }
    assert!(
        surface.lines().count() > 40,
        "suspiciously small surface:\n{surface}"
    );
}
