//! End-to-end tests for the `ckpt-store` storage engine driven through the full MANA
//! stack: incremental generations, dirty-region savings, and job-level fallback to an
//! older generation when a chunk of the newest one is corrupt.

use ckpt_store::{CheckpointStorage, StoragePolicy};
use job_runtime::{Backend, JobConfig, JobRuntime};
use mana::{ManaConfig, Op};

const BULK_REGION: &str = "app.bulk";
const MARKER_REGION: &str = "app.marker";
const BULK_BYTES: usize = 512 * 1024;

/// Run a 2-rank job under the orchestrator that takes `generations` coordinated
/// engine checkpoints. Between checkpoints only the small marker region changes; the
/// bulk region stays clean. Returns the runtime (for restarts) and all reports.
fn checkpoint_generations(
    storage: &CheckpointStorage,
    config: ManaConfig,
    generations: u64,
) -> (JobRuntime, Vec<ckpt_store::StoreReport>) {
    let runtime = JobRuntime::with_storage(
        JobConfig::new(2, Backend::Mpich).with_mana(config),
        storage.clone(),
    );
    let per_rank = runtime
        .run(move |mut session, ctx| {
            let me = session.world_rank();
            let world = session.world()?;

            // High multiplier bits: aperiodic over the whole region (low-bit
            // patterns repeat every 2^(9+8) bytes and would self-dedup), offset
            // per rank so ranks do not share chunks either.
            let bulk: Vec<u8> = (0..BULK_BYTES)
                .map(|i| {
                    ((i as u64 + me as u64 * 10_000_019).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 24)
                        as u8
                })
                .collect();
            session.upper_mut().map_region(BULK_REGION, bulk);

            let mut reports = Vec::new();
            for generation in 0..generations {
                let total = session.allreduce(&[1], Op::sum(), world)?[0];
                assert_eq!(total, 2);
                session
                    .upper_mut()
                    .map_region(MARKER_REGION, vec![me as u8, generation as u8]);
                reports.push(ctx.checkpoint(&mut session)?);
            }
            Ok(reports)
        })
        .unwrap();
    let reports = per_rank.into_iter().flatten().collect();
    (runtime, reports)
}

#[test]
fn incremental_generations_reuse_the_clean_bulk() {
    let storage = CheckpointStorage::unmetered();
    let config = ManaConfig::new_design().with_storage(StoragePolicy::Incremental);
    let (runtime, reports) = checkpoint_generations(&storage, config, 3);

    for report in &reports {
        assert_eq!(report.policy, StoragePolicy::Incremental);
        if report.generation == 0 {
            // First generation pays for the bulk region.
            assert!(report.written_bytes > BULK_BYTES / 2);
        } else {
            // Later generations rewrite only the marker + MANA's own small regions.
            assert!(
                report.written_bytes * 10 <= BULK_BYTES,
                "generation {} of rank {} wrote {} bytes",
                report.generation,
                report.rank,
                report.written_bytes
            );
            assert!(
                report.regions_reused >= 1,
                "clean bulk region must be reused"
            );
        }
    }

    // Restart lands on the newest generation with the matching marker.
    let (ranks, generation) = runtime.restart(Backend::Mpich).unwrap();
    assert_eq!(generation, 2);
    assert_eq!(runtime.published_generation(), Some(2));
    for rank in &ranks {
        let marker = rank.upper().region(MARKER_REGION).unwrap();
        assert_eq!(marker, &[rank.world_rank() as u8, 2]);
        assert_eq!(rank.generation(), 3);
    }
}

/// Acceptance criterion: a corrupted chunk is detected at restart and the previous
/// generation is restored successfully — for the whole job, not a torn mix.
#[test]
fn corrupt_newest_generation_falls_back_to_previous() {
    let storage = CheckpointStorage::unmetered();
    let config = ManaConfig::new_design().with_storage(StoragePolicy::Incremental);
    let (runtime, _reports) = checkpoint_generations(&storage, config, 2);

    // Corrupt a chunk that only generation 1 of rank 1 references (its marker).
    storage.corrupt_fresh_chunk(1, 1).unwrap();
    assert!(storage.read(1, 1).is_err(), "corruption must be detected");
    assert!(
        storage.read(1, 0).is_ok(),
        "rank 0's generation 1 is intact"
    );

    // The restored ranks carry generation 0's marker and still communicate.
    let (_, generation) = runtime
        .resume(|mut session, _ctx| {
            let marker = session.upper().region(MARKER_REGION).unwrap().to_vec();
            assert_eq!(marker, vec![session.world_rank() as u8, 0]);
            let world = session.world()?;
            let total = session.allreduce(&[1], Op::sum(), world)?[0];
            assert_eq!(total, 2);
            Ok(())
        })
        .unwrap();
    assert_eq!(
        generation, 0,
        "the job as a whole must fall back to generation 0"
    );

    // With every generation of rank 1 corrupt, restart has nothing left to offer.
    storage.corrupt_manifest(0, 1).unwrap();
    assert!(runtime.restart(Backend::Mpich).is_err());
}

#[test]
fn compressed_policy_round_trips_through_the_stack() {
    let storage = CheckpointStorage::unmetered();
    let config = ManaConfig::new_design().with_storage(StoragePolicy::IncrementalCompressed);
    let (runtime, reports) = checkpoint_generations(&storage, config, 2);
    assert!(reports
        .iter()
        .all(|r| r.policy == StoragePolicy::IncrementalCompressed));

    let (ranks, generation) = runtime.restart(Backend::Mpich).unwrap();
    assert_eq!(generation, 1);
    assert_eq!(ranks.len(), 2);
}
