//! End-to-end tests for the `ckpt-store` storage engine driven through the full MANA
//! stack: incremental generations, dirty-region savings, and job-level fallback to an
//! older generation when a chunk of the newest one is corrupt.

use ckpt_store::{CheckpointStorage, StoragePolicy};
use mana::restart::restart_job_from_storage;
use mana::{ManaConfig, ManaRank};
use mpi_model::api::MpiImplementationFactory;
use mpi_model::buffer::{bytes_to_i32, i32_to_bytes};
use mpi_model::constants::PredefinedObject;
use mpi_model::datatype::PrimitiveType;
use mpi_model::op::{PredefinedOp, UserFunctionRegistry};
use parking_lot::RwLock;
use std::sync::Arc;

fn registry() -> Arc<RwLock<UserFunctionRegistry>> {
    Arc::new(RwLock::new(UserFunctionRegistry::new()))
}

const BULK_REGION: &str = "app.bulk";
const MARKER_REGION: &str = "app.marker";
const BULK_BYTES: usize = 512 * 1024;

/// Run a 2-rank job that takes `generations` engine checkpoints. Between
/// checkpoints only the small marker region changes; the bulk region stays clean.
fn checkpoint_generations(
    storage: &CheckpointStorage,
    config: ManaConfig,
    generations: u64,
) -> Vec<ckpt_store::StoreReport> {
    let reg = registry();
    let factory = mpich_sim::MpichFactory::mpich();
    let lowers = factory.launch(2, reg.clone(), 1).unwrap();
    let handles: Vec<_> = lowers
        .into_iter()
        .map(|lower| {
            let reg = reg.clone();
            let storage = storage.clone();
            std::thread::spawn(move || {
                let mut rank = ManaRank::new(lower, config, reg).unwrap();
                let me = rank.world_rank();
                let world = rank.world().unwrap();
                let int_type = rank
                    .constant(PredefinedObject::Datatype(PrimitiveType::Int))
                    .unwrap();
                let sum = rank
                    .constant(PredefinedObject::Op(PredefinedOp::Sum))
                    .unwrap();

                // High multiplier bits: aperiodic over the whole region (low-bit
                // patterns repeat every 2^(9+8) bytes and would self-dedup), offset
                // per rank so ranks do not share chunks either.
                let bulk: Vec<u8> = (0..BULK_BYTES)
                    .map(|i| {
                        ((i as u64 + me as u64 * 10_000_019).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            >> 24) as u8
                    })
                    .collect();
                rank.upper_mut().map_region(BULK_REGION, bulk);

                let mut reports = Vec::new();
                for generation in 0..generations {
                    let total = rank
                        .allreduce(&i32_to_bytes(&[1]), int_type, sum, world)
                        .unwrap();
                    assert_eq!(bytes_to_i32(&total)[0], 2);
                    rank.upper_mut()
                        .map_region(MARKER_REGION, vec![me as u8, generation as u8]);
                    reports.push(rank.checkpoint_into(&storage).unwrap());
                }
                reports
            })
        })
        .collect();
    let mut all = Vec::new();
    for handle in handles {
        all.extend(handle.join().unwrap());
    }
    all
}

#[test]
fn incremental_generations_reuse_the_clean_bulk() {
    let storage = CheckpointStorage::unmetered();
    let config = ManaConfig::new_design().with_storage(StoragePolicy::Incremental);
    let reports = checkpoint_generations(&storage, config, 3);

    for report in &reports {
        assert_eq!(report.policy, StoragePolicy::Incremental);
        if report.generation == 0 {
            // First generation pays for the bulk region.
            assert!(report.written_bytes > BULK_BYTES / 2);
        } else {
            // Later generations rewrite only the marker + MANA's own small regions.
            assert!(
                report.written_bytes * 10 <= BULK_BYTES,
                "generation {} of rank {} wrote {} bytes",
                report.generation,
                report.rank,
                report.written_bytes
            );
            assert!(
                report.regions_reused >= 1,
                "clean bulk region must be reused"
            );
        }
    }

    // Restart lands on the newest generation with the matching marker.
    let reg = registry();
    let factory = mpich_sim::MpichFactory::mpich();
    let new_lowers = factory.launch(2, reg.clone(), 9).unwrap();
    let (ranks, generation) = restart_job_from_storage(new_lowers, &storage, config, reg).unwrap();
    assert_eq!(generation, 2);
    for rank in &ranks {
        let marker = rank.upper().region(MARKER_REGION).unwrap();
        assert_eq!(marker, &[rank.world_rank() as u8, 2]);
        assert_eq!(rank.generation(), 3);
    }
}

/// Acceptance criterion: a corrupted chunk is detected at restart and the previous
/// generation is restored successfully — for the whole job, not a torn mix.
#[test]
fn corrupt_newest_generation_falls_back_to_previous() {
    let storage = CheckpointStorage::unmetered();
    let config = ManaConfig::new_design().with_storage(StoragePolicy::Incremental);
    checkpoint_generations(&storage, config, 2);

    // Corrupt a chunk that only generation 1 of rank 1 references (its marker).
    storage.corrupt_fresh_chunk(1, 1).unwrap();
    assert!(storage.read(1, 1).is_err(), "corruption must be detected");
    assert!(
        storage.read(1, 0).is_ok(),
        "rank 0's generation 1 is intact"
    );

    let reg = registry();
    let factory = mpich_sim::MpichFactory::mpich();
    let new_lowers = factory.launch(2, reg.clone(), 9).unwrap();
    let (ranks, generation) =
        restart_job_from_storage(new_lowers, &storage, config, reg.clone()).unwrap();
    assert_eq!(
        generation, 0,
        "the job as a whole must fall back to generation 0"
    );

    // The restored ranks carry generation 0's marker and still communicate.
    let handles: Vec<_> = ranks
        .into_iter()
        .map(|mut rank| {
            std::thread::spawn(move || {
                let marker = rank.upper().region(MARKER_REGION).unwrap().to_vec();
                assert_eq!(marker, vec![rank.world_rank() as u8, 0]);
                let world = rank.world().unwrap();
                let int_type = rank
                    .constant(PredefinedObject::Datatype(PrimitiveType::Int))
                    .unwrap();
                let sum = rank
                    .constant(PredefinedObject::Op(PredefinedOp::Sum))
                    .unwrap();
                let total = rank
                    .allreduce(&i32_to_bytes(&[1]), int_type, sum, world)
                    .unwrap();
                assert_eq!(bytes_to_i32(&total)[0], 2);
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    // With every generation of rank 1 corrupt, restart has nothing left to offer.
    storage.corrupt_manifest(0, 1).unwrap();
    let new_lowers = mpich_sim::MpichFactory::mpich()
        .launch(2, reg.clone(), 11)
        .unwrap();
    assert!(restart_job_from_storage(new_lowers, &storage, config, reg).is_err());
}

#[test]
fn compressed_policy_round_trips_through_the_stack() {
    let storage = CheckpointStorage::unmetered();
    let config = ManaConfig::new_design().with_storage(StoragePolicy::IncrementalCompressed);
    let reports = checkpoint_generations(&storage, config, 2);
    assert!(reports
        .iter()
        .all(|r| r.policy == StoragePolicy::IncrementalCompressed));

    let reg = registry();
    let new_lowers = mpich_sim::MpichFactory::mpich()
        .launch(2, reg.clone(), 9)
        .unwrap();
    let (ranks, generation) = restart_job_from_storage(new_lowers, &storage, config, reg).unwrap();
    assert_eq!(generation, 1);
    assert_eq!(ranks.len(), 2);
}
