//! Satellite regressions for the byte-level wrapper layer's argument validation:
//!
//! * every argument position rejects a handle of the wrong kind with
//!   [`MpiError::WrongKind`] naming the expected vs. actual descriptor kind — never
//!   with a generic lookup/metadata error (the pre-fix behaviour of the datatype
//!   constructors and `irecv`);
//! * `comm_free`/`group_free`/`type_free`/`op_free` on predefined objects
//!   (world/self communicators, named datatypes, built-in ops) fail cleanly with
//!   [`MpiError::FreePredefined`] and leave the descriptor intact.

use mana::runtime::AppHandle;
use mana::{ManaConfig, ManaRank};
use mpi_model::api::MpiImplementationFactory;
use mpi_model::constants::PredefinedObject;
use mpi_model::datatype::PrimitiveType;
use mpi_model::error::MpiError;
use mpi_model::op::{PredefinedOp, UserFunctionRegistry};
use mpi_model::types::HandleKind;
use mpich_sim::MpichFactory;
use parking_lot::RwLock;
use std::sync::Arc;

/// A single-rank world plus one live handle of every kind.
struct Fixture {
    rank: ManaRank,
    comm: AppHandle,
    group: AppHandle,
    datatype: AppHandle,
    op: AppHandle,
}

fn fixture() -> Fixture {
    let registry = Arc::new(RwLock::new(UserFunctionRegistry::new()));
    let mut lowers = MpichFactory::mpich()
        .launch(1, Arc::clone(&registry), 1)
        .unwrap();
    let mut rank = ManaRank::new(lowers.remove(0), ManaConfig::new_design(), registry).unwrap();
    let comm = rank.world().unwrap();
    let group = rank.comm_group(comm).unwrap();
    let datatype = rank
        .constant(PredefinedObject::Datatype(PrimitiveType::Double))
        .unwrap();
    let op = rank
        .constant(PredefinedObject::Op(PredefinedOp::Sum))
        .unwrap();
    Fixture {
        rank,
        comm,
        group,
        datatype,
        op,
    }
}

fn assert_wrong_kind(result: MpiError, expected: HandleKind, found: HandleKind, position: &str) {
    match result {
        MpiError::WrongKind {
            expected: e,
            found: f,
        } => {
            assert_eq!(e, expected, "{position}: expected kind");
            assert_eq!(f, found, "{position}: found kind");
        }
        other => panic!("{position}: wanted WrongKind, got {other:?}"),
    }
}

#[test]
fn comm_argument_positions_reject_non_comms() {
    let Fixture {
        mut rank,
        group,
        datatype,
        op,
        ..
    } = fixture();
    use HandleKind::{Comm, Datatype, Group, Op};

    assert_wrong_kind(
        rank.comm_rank(datatype).unwrap_err(),
        Comm,
        Datatype,
        "comm_rank(comm)",
    );
    assert_wrong_kind(
        rank.comm_size(group).unwrap_err(),
        Comm,
        Group,
        "comm_size(comm)",
    );
    assert_wrong_kind(rank.comm_dup(op).unwrap_err(), Comm, Op, "comm_dup(comm)");
    assert_wrong_kind(
        rank.comm_split(datatype, Some(0), 0).unwrap_err(),
        Comm,
        Datatype,
        "comm_split(comm)",
    );
    assert_wrong_kind(
        rank.comm_create(group, group).unwrap_err(),
        Comm,
        Group,
        "comm_create(comm)",
    );
    assert_wrong_kind(
        rank.comm_group(op).unwrap_err(),
        Comm,
        Op,
        "comm_group(comm)",
    );
    assert_wrong_kind(
        rank.comm_free(datatype).unwrap_err(),
        Comm,
        Datatype,
        "comm_free(comm)",
    );
    assert_wrong_kind(
        rank.send(&[0u8; 8], datatype, 0, 0, datatype).unwrap_err(),
        Comm,
        Datatype,
        "send(comm)",
    );
    assert_wrong_kind(
        rank.recv(datatype, 8, 0, 0, group).unwrap_err(),
        Comm,
        Group,
        "recv(comm)",
    );
    assert_wrong_kind(
        rank.iprobe(0, 0, datatype).unwrap_err(),
        Comm,
        Datatype,
        "iprobe(comm)",
    );
    assert_wrong_kind(rank.barrier(op).unwrap_err(), Comm, Op, "barrier(comm)");
    assert_wrong_kind(
        rank.allgather(&[0u8; 8], group).unwrap_err(),
        Comm,
        Group,
        "allgather(comm)",
    );
    assert_wrong_kind(
        rank.alltoall(&[0u8; 8], 8, datatype).unwrap_err(),
        Comm,
        Datatype,
        "alltoall(comm)",
    );
}

#[test]
fn datatype_argument_positions_reject_non_datatypes() {
    let Fixture {
        mut rank,
        comm,
        group,
        op,
        ..
    } = fixture();
    use HandleKind::{Comm, Datatype, Group, Op};

    assert_wrong_kind(
        rank.send(&[0u8; 8], comm, 0, 0, comm).unwrap_err(),
        Datatype,
        Comm,
        "send(datatype)",
    );
    assert_wrong_kind(
        rank.recv(group, 8, 0, 0, comm).unwrap_err(),
        Datatype,
        Group,
        "recv(datatype)",
    );
    assert_wrong_kind(
        rank.isend(&[0u8; 8], op, 0, 0, comm).unwrap_err(),
        Datatype,
        Op,
        "isend(datatype)",
    );
    assert_wrong_kind(
        rank.irecv(comm, 8, 0, 0, comm).unwrap_err(),
        Datatype,
        Comm,
        "irecv(datatype)",
    );
    assert_wrong_kind(
        rank.reduce(&[0u8; 8], comm, op, 0, comm).unwrap_err(),
        Datatype,
        Comm,
        "reduce(datatype)",
    );
    assert_wrong_kind(
        rank.allreduce(&[0u8; 8], group, op, comm).unwrap_err(),
        Datatype,
        Group,
        "allreduce(datatype)",
    );
    // The datatype constructors used to reach the descriptor-metadata fetch first
    // and fail with a generic `Internal` error; the kind check now fires first.
    assert_wrong_kind(
        rank.type_contiguous(4, comm).unwrap_err(),
        Datatype,
        Comm,
        "type_contiguous(inner)",
    );
    assert_wrong_kind(
        rank.type_vector(4, 2, 3, group).unwrap_err(),
        Datatype,
        Group,
        "type_vector(inner)",
    );
    assert_wrong_kind(
        rank.type_indexed(&[1], &[0], op).unwrap_err(),
        Datatype,
        Op,
        "type_indexed(inner)",
    );
    assert_wrong_kind(
        rank.type_create_struct(&[1], &[0], &[comm]).unwrap_err(),
        Datatype,
        Comm,
        "type_create_struct(members)",
    );
    assert_wrong_kind(
        rank.type_dup(group).unwrap_err(),
        Datatype,
        Group,
        "type_dup(inner)",
    );
    assert_wrong_kind(
        rank.type_commit(comm).unwrap_err(),
        Datatype,
        Comm,
        "type_commit(datatype)",
    );
    assert_wrong_kind(
        rank.type_size(op).unwrap_err(),
        Datatype,
        Op,
        "type_size(datatype)",
    );
    assert_wrong_kind(
        rank.type_free(comm).unwrap_err(),
        Datatype,
        Comm,
        "type_free(datatype)",
    );
}

#[test]
fn op_and_group_argument_positions_reject_wrong_kinds() {
    let Fixture {
        mut rank,
        comm,
        group,
        datatype,
        op,
    } = fixture();
    use HandleKind::{Comm, Datatype, Group, Op};

    assert_wrong_kind(
        rank.reduce(&[0u8; 8], datatype, comm, 0, comm).unwrap_err(),
        Op,
        Comm,
        "reduce(op)",
    );
    assert_wrong_kind(
        rank.allreduce(&[0u8; 8], datatype, datatype, comm)
            .unwrap_err(),
        Op,
        Datatype,
        "allreduce(op)",
    );
    assert_wrong_kind(rank.op_free(group).unwrap_err(), Op, Group, "op_free(op)");

    assert_wrong_kind(
        rank.group_size(comm).unwrap_err(),
        Group,
        Comm,
        "group_size(group)",
    );
    assert_wrong_kind(
        rank.group_incl(op, &[0]).unwrap_err(),
        Group,
        Op,
        "group_incl(group)",
    );
    assert_wrong_kind(
        rank.group_translate_ranks(group, &[0], datatype)
            .unwrap_err(),
        Group,
        Datatype,
        "group_translate_ranks(other)",
    );
    assert_wrong_kind(
        rank.group_translate_ranks(comm, &[0], group).unwrap_err(),
        Group,
        Comm,
        "group_translate_ranks(group)",
    );
    assert_wrong_kind(
        rank.group_free(datatype).unwrap_err(),
        Group,
        Datatype,
        "group_free(group)",
    );
    assert_wrong_kind(
        rank.comm_create(comm, datatype).unwrap_err(),
        Group,
        Datatype,
        "comm_create(group)",
    );
}

#[test]
fn freeing_predefined_objects_fails_cleanly() {
    let Fixture {
        mut rank,
        comm,
        datatype,
        op,
        ..
    } = fixture();
    let before = rank.descriptor_count();

    // World communicator.
    match rank.comm_free(comm).unwrap_err() {
        MpiError::FreePredefined(object) => assert_eq!(object, PredefinedObject::CommWorld),
        other => panic!("comm_free(world): {other:?}"),
    }
    // Named datatype.
    match rank.type_free(datatype).unwrap_err() {
        MpiError::FreePredefined(object) => {
            assert_eq!(object, PredefinedObject::Datatype(PrimitiveType::Double));
        }
        other => panic!("type_free(MPI_DOUBLE): {other:?}"),
    }
    // Built-in op.
    match rank.op_free(op).unwrap_err() {
        MpiError::FreePredefined(object) => {
            assert_eq!(object, PredefinedObject::Op(PredefinedOp::Sum));
        }
        other => panic!("op_free(MPI_SUM): {other:?}"),
    }
    // Predefined group (MPI_GROUP_EMPTY).
    let empty = rank.constant(PredefinedObject::GroupEmpty).unwrap();
    match rank.group_free(empty).unwrap_err() {
        MpiError::FreePredefined(object) => assert_eq!(object, PredefinedObject::GroupEmpty),
        other => panic!("group_free(MPI_GROUP_EMPTY): {other:?}"),
    }

    // The failed frees left every descriptor intact and usable (plus the one the
    // GroupEmpty resolution added).
    assert_eq!(rank.descriptor_count(), before + 1);
    assert_eq!(rank.comm_size(comm).unwrap(), 1);
    assert_eq!(rank.type_size(datatype).unwrap(), 8);
    let total = rank
        .allreduce(&5.0f64.to_le_bytes(), datatype, op, comm)
        .unwrap();
    assert_eq!(total.len(), 8);

    // The error maps to the right classic MPI error class per object kind.
    assert_eq!(
        MpiError::FreePredefined(PredefinedObject::CommWorld).error_class(),
        "MPI_ERR_COMM"
    );
    assert_eq!(
        MpiError::FreePredefined(PredefinedObject::Datatype(PrimitiveType::Int)).error_class(),
        "MPI_ERR_TYPE"
    );
    assert_eq!(
        MpiError::FreePredefined(PredefinedObject::Op(PredefinedOp::Max)).error_class(),
        "MPI_ERR_OP"
    );
}

#[test]
fn non_predefined_frees_still_work() {
    let Fixture {
        mut rank,
        comm,
        datatype,
        ..
    } = fixture();
    let baseline = rank.descriptor_count();

    let derived = rank.type_contiguous(4, datatype).unwrap();
    rank.type_commit(derived).unwrap();
    rank.type_free(derived).unwrap();

    let dup = rank.comm_dup(comm).unwrap();
    rank.comm_free(dup).unwrap();

    let group = rank.comm_group(comm).unwrap();
    rank.group_free(group).unwrap();

    let user_op = rank.op_create(77, true).unwrap();
    rank.op_free(user_op).unwrap();

    assert_eq!(rank.descriptor_count(), baseline, "no descriptor leaked");
}
