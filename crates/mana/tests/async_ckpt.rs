//! The asynchronous checkpoint split at the MANA layer: snapshot fast, flush in the
//! background — plus the acceptance scenario for torn async flushes (a job killed
//! mid-flush must restart from the newest *committed* generation) and the drain-loop
//! stall-clock regression tests.

use ckpt_store::{CheckpointStorage, FlusherPool};
use mana::ckpt::LocalDrainObserver;
use mana::restart::restart_job_from_storage;
use mana::{DrainObserver, DrainPlan, ManaConfig, ManaRank, Op, Session, StoragePolicy};
use mpi_model::api::MpiImplementationFactory;
use mpi_model::op::UserFunctionRegistry;
use mpi_model::types::Rank;
use parking_lot::RwLock;
use split_proc::image::CheckpointImage;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn launch_ranks(
    world: usize,
    session_id: u64,
    config: ManaConfig,
    registry: &Arc<RwLock<UserFunctionRegistry>>,
) -> Vec<ManaRank> {
    mpich_sim::MpichFactory::mpich()
        .launch(world, Arc::clone(registry), session_id)
        .expect("launch")
        .into_iter()
        .map(|lower| ManaRank::new(lower, config, Arc::clone(registry)).expect("wrap"))
        .collect()
}

const STATE: &str = "app.state";

fn incremental() -> ManaConfig {
    ManaConfig::new_design().with_storage(StoragePolicy::Incremental)
}

/// `ManaRank::checkpoint_async`: the standalone (coordinator-less) async path. The
/// generation commits through the store's own flush accounting once both ranks'
/// flushes land, the restarted job sees exactly the snapshotted state, and writes
/// made *after* the snapshot (while the flush was still in flight) never leak into
/// the frozen image.
#[test]
fn async_checkpoint_round_trips_through_restart() {
    let registry = Arc::new(RwLock::new(UserFunctionRegistry::new()));
    let storage = CheckpointStorage::unmetered();
    let pool = Arc::new(FlusherPool::with_workers(storage.clone(), 2));

    let ranks = launch_ranks(2, 1, incremental(), &registry);
    let pool_in_body = Arc::clone(&pool);
    job_runtime::run_world(ranks, move |_, rank| {
        let mut session = Session::new(rank);
        let me = session.world_rank();
        let world = session.world()?;
        let total = session.allreduce(&[me + 1], Op::sum(), world)?[0];
        session.upper_mut().store_json(STATE, &(me, total))?;
        let handle = session.rank_mut().checkpoint_async(&pool_in_body)?;
        assert_eq!(handle.generation(), 0);
        // The rank is already back to computation; this write lands after the
        // freeze and must NOT appear in the checkpoint.
        session.upper_mut().store_json(STATE, &(me, total + 999))?;
        let report = handle.wait();
        assert!(report.written_bytes > 0);
        Ok(())
    })
    .unwrap();

    pool.wait_idle();
    assert!(storage.pending_generations().is_empty());
    assert_eq!(storage.generations(), vec![0]);

    let lowers = mpich_sim::MpichFactory::mpich()
        .launch(2, Arc::clone(&registry), 2)
        .unwrap();
    let (restored, generation) =
        restart_job_from_storage(lowers, &storage, incremental(), Arc::clone(&registry)).unwrap();
    assert_eq!(generation, 0);
    job_runtime::run_world(restored, |_, rank| {
        let session = Session::new(rank);
        let (me, total): (i32, i32) = session.upper().load_json(STATE)?;
        assert_eq!(me, session.world_rank());
        assert_eq!(total, 3, "the frozen snapshot, not the post-snapshot write");
        Ok(())
    })
    .unwrap();
}

/// **Acceptance scenario**: a job killed mid-flush. Generation 0 committed; the job
/// snapshots generation 1 but only rank 0's flush reaches storage before the "kill"
/// (rank 1's image never gets submitted). The half-flushed generation stays pending
/// — invisible and unreadable — and the restart selects the newest *committed*
/// generation, never the torn pending one.
#[test]
fn killed_mid_flush_restarts_from_newest_committed_generation() {
    let registry = Arc::new(RwLock::new(UserFunctionRegistry::new()));
    let storage = CheckpointStorage::unmetered();
    let pool = FlusherPool::with_workers(storage.clone(), 2);

    // Phase 1: a fully committed async generation 0, then freeze generation 1 on
    // both ranks and hand the frozen images back.
    let ranks = launch_ranks(2, 1, incremental(), &registry);
    let storage_in_body = storage.clone();
    let pool_world = Arc::new(pool);
    let pool_in_body = Arc::clone(&pool_world);
    let images: Vec<CheckpointImage> = job_runtime::run_world(ranks, move |_, rank| {
        let mut session = Session::new(rank);
        let me = session.world_rank();
        session.upper_mut().store_json(STATE, &(me, "gen0"))?;
        session.rank_mut().checkpoint_async(&pool_in_body)?.wait();

        // The state the torn generation 1 would carry.
        session.upper_mut().store_json(STATE, &(me, "gen1"))?;
        let rank = session.rank_mut();
        let plan = rank.begin_checkpoint()?;
        rank.drain_quiescent(&plan, &LocalDrainObserver::default())?;
        rank.complete_drain()?;
        let image = rank.snapshot_checkpoint()?;
        storage_in_body.begin_generation(image.metadata.generation, 2);
        Ok(image)
    })
    .unwrap();

    // Phase 2: the kill lands mid-flush — only rank 0's image reaches the flusher.
    assert_eq!(images[0].metadata.generation, 1);
    pool_world.submit(
        StoragePolicy::Incremental,
        images.into_iter().next().unwrap(),
    );
    pool_world.wait_idle();

    assert!(storage.is_pending(1), "generation 1 never commits");
    assert_eq!(storage.generations(), vec![0]);
    assert!(
        storage.read(1, 0).is_err(),
        "the half-flushed generation must not be readable, even piecewise"
    );
    assert_eq!(storage.latest_valid_generation(2).unwrap(), 0);

    // Phase 3: restart — the job comes back on generation 0's state. The torn
    // pending round is aborted and forgotten (no dead-incarnation flush can still
    // be in flight: the pool above was drained with `wait_idle`).
    let lowers = mpich_sim::MpichFactory::mpich()
        .launch(2, Arc::clone(&registry), 2)
        .unwrap();
    let (restored, generation) =
        restart_job_from_storage(lowers, &storage, incremental(), Arc::clone(&registry)).unwrap();
    assert_eq!(
        generation, 0,
        "newest committed generation, not the torn one"
    );
    assert!(
        storage.pending_generations().is_empty(),
        "restart clears the dead round's pending bookkeeping"
    );
    let storage_after = storage.clone();
    job_runtime::run_world(restored, move |_, rank| {
        let mut session = Session::new(rank);
        let (me, tag): (i32, String) = session.upper().load_json(STATE)?;
        assert_eq!(me, session.world_rank());
        assert_eq!(tag, "gen0");
        // The restored job reuses generation number 1 through the *synchronous*
        // path (which never announces a pending round): the stale abort
        // bookkeeping must not hide this legitimate checkpoint.
        session.upper_mut().store_json(STATE, &(me, "gen1-retry"))?;
        let report = session.rank_mut().checkpoint_into(&storage_after)?;
        assert_eq!(report.generation, 1);
        Ok(())
    })
    .unwrap();
    assert_eq!(
        storage.latest_valid_generation(2).unwrap(),
        1,
        "the retried generation 1 is visible and restartable"
    );
}

/// An observer whose stamp never moves and whose stall budget is tiny: the drain
/// must declare the stall essentially *at* the budget (the final backoff sleep is
/// clamped to the remaining budget) and report the real elapsed wait, not a
/// rounded-down understatement.
struct FrozenObserver {
    budget: Duration,
}

impl DrainObserver for FrozenObserver {
    fn record_progress(&self, _rank: Rank, _messages: u64) {}

    fn progress_stamp(&self) -> u64 {
        0
    }

    fn stall_budget(&self) -> Duration {
        self.budget
    }
}

/// An observer whose failure detector has declared rank 0 dead: the drain must fail
/// fast — well inside the stall budget — and label the shortfall "peer dead", not
/// "peer slow".
struct DeadPeerObserver;

impl DrainObserver for DeadPeerObserver {
    fn record_progress(&self, _rank: Rank, _messages: u64) {}

    fn progress_stamp(&self) -> u64 {
        0
    }

    fn stall_budget(&self) -> Duration {
        Duration::from_secs(30)
    }

    fn dead_peers(&self) -> Vec<Rank> {
        vec![0]
    }
}

#[test]
fn drain_fails_fast_when_a_shortfall_peer_is_dead() {
    let registry = Arc::new(RwLock::new(UserFunctionRegistry::new()));
    let mut ranks = launch_ranks(1, 1, incremental(), &registry);
    let mut rank = ranks.pop().unwrap();

    // Expect 2 messages from rank 0, which the detector says is dead.
    let plan = DrainPlan::synthetic(vec![2], 0);
    let start = Instant::now();
    let err = rank.drain_quiescent(&plan, &DeadPeerObserver).unwrap_err();
    let elapsed = start.elapsed();

    assert!(
        elapsed < Duration::from_secs(5),
        "dead-peer drain must fail fast, not wait out the 30s stall budget \
         (took {elapsed:?})"
    );
    let message = format!("{err:?}");
    assert!(
        message.contains("peer dead: heartbeat expired"),
        "diagnostic must say the peer is dead, not slow: {message}"
    );
    assert!(!message.contains("peer slow"), "no slow label: {message}");
}

#[test]
fn drain_stall_fires_on_budget_and_reports_the_real_wait() {
    let registry = Arc::new(RwLock::new(UserFunctionRegistry::new()));
    let mut ranks = launch_ranks(1, 1, incremental(), &registry);
    let mut rank = ranks.pop().unwrap();

    let budget = Duration::from_millis(100);
    // Expect 3 messages from rank 0 that were never sent: the drain can only stall.
    let plan = DrainPlan::synthetic(vec![3], 0);
    let start = Instant::now();
    let err = rank
        .drain_quiescent(&plan, &FrozenObserver { budget })
        .unwrap_err();
    let elapsed = start.elapsed();

    assert!(
        elapsed >= budget,
        "stall declared before the budget elapsed"
    );
    assert!(
        elapsed < budget + Duration::from_millis(500),
        "stall declared far past the budget ({elapsed:?}); the final backoff sleep \
         must be clamped to the remaining budget"
    );

    let message = format!("{err:?}");
    assert!(message.contains("rank 0 is short 3 (expected 3, received 0; peer slow)"));
    assert!(
        message.contains("stall budget 0.100s"),
        "diagnostic must name the budget: {message}"
    );
    // The "after N.NNNs" figure is the *real* frozen wait, which can only be at or
    // past the budget — never the pre-fix understatement.
    let reported: f64 = message
        .split("after ")
        .nth(1)
        .and_then(|rest| rest.split("s without").next())
        .and_then(|seconds| seconds.parse().ok())
        .unwrap_or_else(|| panic!("no elapsed figure in {message}"));
    assert!(
        reported >= budget.as_secs_f64(),
        "reported wait {reported}s understates the budget"
    );
    assert!(
        reported <= elapsed.as_secs_f64() + 1e-3,
        "reported wait {reported}s exceeds the measured wall time"
    );
}
