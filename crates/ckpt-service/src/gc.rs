//! Per-tenant quotas and the pluggable GC policy that enforces them.
//!
//! Quotas are expressed over a tenant's **committed** generations; a policy decides
//! which of them to reclaim by returning a prune cutoff. Whatever the policy says,
//! the store's [`prune_before`](ckpt_store::CheckpointStorage::prune_before)
//! guarantees still hold: a tenant's newest committed generation (its only restart
//! point) and any pending generation are never reclaimed.

use serde::{Deserialize, Serialize};

/// Limits applied to one tenant of a [`CkptService`](crate::CkptService).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantQuota {
    /// Maximum **logical** bytes across the tenant's committed generations, or
    /// `None` for unlimited. Logical bytes (the uncompressed upper-half payload
    /// size) are what the tenant observes, independent of how well its chunks
    /// dedup or compress — physical accounting would let one tenant's quota hinge
    /// on what *other* tenants happen to have written.
    pub max_logical_bytes: Option<u64>,
    /// Maximum number of committed generations retained, or `None` for unlimited.
    pub max_generations: Option<usize>,
    /// Maximum checkpoint submissions this tenant may have in flight on the shared
    /// flusher pool at once; further submissions are rejected with a typed,
    /// retryable error (the submitter falls back to a synchronous write).
    pub max_in_flight: usize,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            max_logical_bytes: None,
            max_generations: None,
            max_in_flight: 2,
        }
    }
}

impl TenantQuota {
    /// An unlimited quota (the default) with the given in-flight budget.
    pub fn with_max_in_flight(mut self, budget: usize) -> Self {
        self.max_in_flight = budget.max(1);
        self
    }

    /// Cap the tenant's committed logical bytes.
    pub fn with_max_logical_bytes(mut self, bytes: u64) -> Self {
        self.max_logical_bytes = Some(bytes);
        self
    }

    /// Cap the tenant's committed generation count.
    pub fn with_max_generations(mut self, generations: usize) -> Self {
        self.max_generations = Some(generations.max(1));
        self
    }
}

/// What a GC policy sees when deciding what to reclaim for one tenant.
#[derive(Debug, Clone)]
pub struct TenantUsage {
    /// The tenant's quota.
    pub quota: TenantQuota,
    /// The tenant's committed generations, ascending, each with the logical bytes
    /// it holds (summed across ranks).
    pub generations: Vec<(u64, u64)>,
}

impl TenantUsage {
    /// Total logical bytes across the committed generations.
    pub fn live_logical_bytes(&self) -> u64 {
        self.generations.iter().map(|(_, bytes)| bytes).sum()
    }

    /// Whether the usage exceeds either quota axis.
    pub fn over_quota(&self) -> bool {
        let over_bytes = self
            .quota
            .max_logical_bytes
            .is_some_and(|limit| self.live_logical_bytes() > limit);
        let over_count = self
            .quota
            .max_generations
            .is_some_and(|limit| self.generations.len() > limit);
        over_bytes || over_count
    }
}

/// Decides which of an over-quota tenant's committed generations to reclaim.
///
/// A policy returns a prune cutoff: every committed generation strictly below it is
/// a reclaim candidate. The store itself enforces the safety floor — the newest
/// committed generation and anything pending survive any cutoff — so a policy
/// cannot destroy a tenant's restart point even if it tries.
pub trait GcPolicy: Send + Sync {
    /// The cutoff to prune below, or `None` to reclaim nothing.
    fn reclaim_cutoff(&self, usage: &TenantUsage) -> Option<u64>;
}

/// The default policy: drop the tenant's **oldest** committed generations, one by
/// one, until the tenant is back under both quota axes — never touching the newest
/// committed generation, however far over quota the tenant is.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReclaimOldest;

impl GcPolicy for ReclaimOldest {
    fn reclaim_cutoff(&self, usage: &TenantUsage) -> Option<u64> {
        if !usage.over_quota() || usage.generations.len() <= 1 {
            return None;
        }
        let mut live_bytes = usage.live_logical_bytes();
        let mut live_count = usage.generations.len();
        let mut cutoff = None;
        // The newest committed generation is excluded outright: even if dropping
        // everything else leaves the tenant over quota, the restart point stays.
        for (generation, bytes) in &usage.generations[..usage.generations.len() - 1] {
            let over_bytes = usage
                .quota
                .max_logical_bytes
                .is_some_and(|limit| live_bytes > limit);
            let over_count = usage
                .quota
                .max_generations
                .is_some_and(|limit| live_count > limit);
            if !over_bytes && !over_count {
                break;
            }
            live_bytes -= bytes;
            live_count -= 1;
            cutoff = Some(generation + 1);
        }
        cutoff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(quota: TenantQuota, generations: &[(u64, u64)]) -> TenantUsage {
        TenantUsage {
            quota,
            generations: generations.to_vec(),
        }
    }

    #[test]
    fn under_quota_reclaims_nothing() {
        let policy = ReclaimOldest;
        let quota = TenantQuota::default().with_max_generations(3);
        assert_eq!(
            policy.reclaim_cutoff(&usage(quota, &[(1, 10), (2, 10)])),
            None
        );
    }

    #[test]
    fn generation_count_quota_drops_oldest_first() {
        let policy = ReclaimOldest;
        let quota = TenantQuota::default().with_max_generations(2);
        let cutoff = policy.reclaim_cutoff(&usage(quota, &[(1, 10), (2, 10), (3, 10), (4, 10)]));
        assert_eq!(cutoff, Some(3), "drop generations 1 and 2, keep 3 and 4");
    }

    #[test]
    fn byte_quota_never_claims_the_newest_generation() {
        let policy = ReclaimOldest;
        let quota = TenantQuota::default().with_max_logical_bytes(5);
        // Even the newest generation alone exceeds the quota: the policy still
        // stops short of it.
        let cutoff = policy.reclaim_cutoff(&usage(quota, &[(1, 10), (2, 10), (3, 10)]));
        assert_eq!(cutoff, Some(3), "generations 1 and 2 go, 3 survives");
    }

    #[test]
    fn single_generation_is_untouchable() {
        let policy = ReclaimOldest;
        let quota = TenantQuota::default().with_max_logical_bytes(1);
        assert_eq!(policy.reclaim_cutoff(&usage(quota, &[(7, 100)])), None);
    }
}
