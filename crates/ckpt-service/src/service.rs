//! The multi-tenant checkpoint service: one shared chunk space, many jobs.
//!
//! A [`CkptService`] owns a single sharded [`CheckpointStorage`] chunk space, a
//! shared [`FlusherPool`], and (optionally) a cold tier. Jobs register as tenants
//! and receive a [`ServiceHandle`]; each tenant writes generations into its own
//! catalog namespace (a [`CheckpointStorage::tenant_view`]) while identical chunks
//! written by different tenants are stored once. The service meters every landed
//! write per tenant, enforces quotas through a pluggable [`GcPolicy`], applies
//! admission control to async submissions, and demotes the least-recently-referenced
//! chunks to the cold tier when the hot set outgrows its target.

use crate::gc::{GcPolicy, ReclaimOldest, TenantQuota, TenantUsage};
use ckpt_store::{
    CheckpointStorage, ColdTier, FlushHandle, FlusherPool, StoragePolicy, StorageStats, StoreReport,
};
use mpi_model::error::MpiResult;
use mpi_model::types::Rank;
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use split_proc::image::CheckpointImage;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Identifies one tenant of a [`CkptService`].
pub type TenantId = u64;

/// Configuration of a [`CkptService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads in the shared flusher pool (0 = one per core, capped at 4).
    pub flusher_workers: usize,
    /// Total async submissions admitted in flight across all tenants; beyond it the
    /// pool counts as saturated and submissions are rejected with
    /// [`AdmissionError::PoolSaturated`].
    pub max_in_flight_total: usize,
    /// Quota applied to tenants registered without an explicit one.
    pub default_quota: TenantQuota,
    /// When set, attach a tempdir-rooted cold tier and demote least-recently-
    /// referenced chunks whenever the in-memory hot set exceeds this many bytes.
    pub hot_bytes_target: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            flusher_workers: 0,
            max_in_flight_total: 64,
            default_quota: TenantQuota::default(),
            hot_bytes_target: None,
        }
    }
}

/// Why an async submission was turned away. Both variants are retryable: the job
/// may resubmit later — or, as `JobRuntime` does, fall back to a synchronous write
/// so the checkpoint is never skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The shared flusher pool already carries the configured total in-flight load.
    PoolSaturated {
        /// Submissions in flight at rejection time.
        in_flight: usize,
        /// The configured total in-flight admission limit.
        limit: usize,
    },
    /// The submitting tenant has exhausted its own in-flight budget.
    TenantBudgetExhausted {
        /// The tenant that was turned away.
        tenant: TenantId,
        /// The tenant's submissions in flight at rejection time.
        in_flight: usize,
        /// The tenant's configured in-flight budget.
        budget: usize,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::PoolSaturated { in_flight, limit } => write!(
                f,
                "shared flusher pool saturated ({in_flight} in flight, limit {limit}); retry \
                 or write synchronously"
            ),
            AdmissionError::TenantBudgetExhausted {
                tenant,
                in_flight,
                budget,
            } => write!(
                f,
                "tenant {tenant} exhausted its in-flight budget ({in_flight} of {budget}); \
                 retry or write synchronously"
            ),
        }
    }
}

/// A rejected async submission. The frozen image is handed back untouched so the
/// caller can retry or write it synchronously — admission control must never cost a
/// checkpoint, only defer *where* it is written.
pub struct RejectedSubmission {
    /// Why the submission was turned away.
    pub error: AdmissionError,
    /// The image the caller submitted, returned for the retry/fallback write.
    /// Boxed so the rejection path stays cheap relative to the success path.
    pub image: Box<CheckpointImage>,
}

impl std::fmt::Debug for RejectedSubmission {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RejectedSubmission")
            .field("error", &self.error)
            .field("generation", &self.image.metadata.generation)
            .field("rank", &self.image.metadata.rank)
            .finish()
    }
}

/// Per-tenant accounting, as reported by [`ServiceHandle::stats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// The tenant's id.
    pub tenant: TenantId,
    /// The tenant's registration name.
    pub name: String,
    /// Logical (uncompressed upper-half) bytes across all landed writes.
    pub logical_bytes_written: u64,
    /// Bytes that physically reached storage for this tenant's writes: new chunk
    /// payloads plus manifests. Chunks deduplicated against content already in the
    /// shared space — whoever wrote it first — cost this tenant nothing here.
    pub physical_bytes_written: u64,
    /// Chunks this tenant's writes newly stored.
    pub chunks_new: u64,
    /// Chunks this tenant's writes re-referenced from the shared space.
    pub chunks_reused: u64,
    /// Committed generations currently live in the tenant's namespace.
    pub committed_generations: usize,
    /// Logical bytes across the live committed generations (the quota axis).
    pub live_logical_bytes: u64,
    /// Generations reclaimed by quota GC over the tenant's lifetime.
    pub reclaimed_generations: u64,
    /// Physical bytes freed by quota GC (chunks whose refcount reached zero).
    pub reclaimed_physical_bytes: u64,
    /// Logical bytes released by quota GC.
    pub reclaimed_logical_bytes: u64,
    /// Async submissions rejected by admission control.
    pub rejected_submissions: u64,
    /// Rejected submissions that were written synchronously instead (the fallback
    /// path — every one of these is a checkpoint that was *not* skipped).
    pub sync_fallbacks: u64,
    /// Async submissions currently in flight.
    pub in_flight: usize,
}

impl TenantStats {
    /// `logical / physical` across this tenant's landed writes: how many times
    /// smaller its storage traffic was than its checkpoints' logical size, thanks
    /// to dedup (cross- and intra-tenant) and compression.
    pub fn dedup_ratio(&self) -> f64 {
        if self.physical_bytes_written == 0 {
            f64::INFINITY
        } else {
            self.logical_bytes_written as f64 / self.physical_bytes_written as f64
        }
    }
}

/// Service-wide accounting, as reported by [`CkptService::stats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Per-tenant accounting, in registration order.
    pub tenants: Vec<TenantStats>,
    /// Logical bytes across every tenant's landed writes.
    pub total_logical_bytes: u64,
    /// Physical bytes across every tenant's landed writes.
    pub total_physical_bytes: u64,
    /// Async submissions currently in flight across all tenants.
    pub in_flight: usize,
    /// Occupancy of the shared chunk space (per-shard breakdown included).
    pub storage: StorageStats,
}

impl ServiceStats {
    /// `logical / physical` across all tenants — with identical-app tenants this
    /// exceeds what any tenant achieves alone, which is the cross-job dedup the
    /// service exists for.
    pub fn dedup_ratio(&self) -> f64 {
        if self.total_physical_bytes == 0 {
            f64::INFINITY
        } else {
            self.total_logical_bytes as f64 / self.total_physical_bytes as f64
        }
    }
}

/// How a landed write reached storage, for accounting purposes.
enum LandKind {
    /// Via the shared flusher pool (an admitted async submission).
    Async,
    /// Synchronously, as the fallback for a rejected async submission.
    SyncFallback,
    /// Synchronously, by the job's own write path (reported after the fact).
    External,
}

/// Mutable per-tenant accounting, behind the tenant's own lock so one tenant's
/// quota enforcement never blocks another tenant's submissions.
struct TenantState {
    quota: TenantQuota,
    in_flight: usize,
    /// Logical bytes per (generation, rank) landed so far. Keyed per rank so a
    /// restarted job rewriting a generation replaces — not double-counts — it.
    gen_logical: BTreeMap<u64, BTreeMap<Rank, u64>>,
    logical_bytes_written: u64,
    physical_bytes_written: u64,
    chunks_new: u64,
    chunks_reused: u64,
    reclaimed_generations: u64,
    reclaimed_physical_bytes: u64,
    reclaimed_logical_bytes: u64,
    rejected_submissions: u64,
    sync_fallbacks: u64,
}

impl TenantState {
    fn new(quota: TenantQuota) -> Self {
        TenantState {
            quota,
            in_flight: 0,
            gen_logical: BTreeMap::new(),
            logical_bytes_written: 0,
            physical_bytes_written: 0,
            chunks_new: 0,
            chunks_reused: 0,
            reclaimed_generations: 0,
            reclaimed_physical_bytes: 0,
            reclaimed_logical_bytes: 0,
            rejected_submissions: 0,
            sync_fallbacks: 0,
        }
    }

    fn account(&mut self, report: &StoreReport) {
        self.logical_bytes_written += report.logical_bytes as u64;
        self.physical_bytes_written += report.written_bytes as u64;
        self.chunks_new += report.chunks_new as u64;
        self.chunks_reused += report.chunks_reused as u64;
        self.gen_logical
            .entry(report.generation)
            .or_default()
            .insert(report.rank, report.logical_bytes as u64);
    }
}

/// One registered tenant: its storage view plus its own lock and idle condvar.
struct TenantEntry {
    id: TenantId,
    name: String,
    view: CheckpointStorage,
    state: Mutex<TenantState>,
    /// Signalled whenever the tenant's in-flight count drops; `wait_idle` waits here.
    idle_cv: Condvar,
}

struct ServiceInner {
    base: CheckpointStorage,
    flusher: FlusherPool,
    config: ServiceConfig,
    gc: Box<dyn GcPolicy>,
    tenants: Mutex<BTreeMap<TenantId, Arc<TenantEntry>>>,
    next_tenant: AtomicU64,
    in_flight_total: AtomicUsize,
    /// At most one spill pass runs at a time; concurrent triggers are dropped (the
    /// running pass already drives the hot set to target).
    spilling: AtomicBool,
}

impl ServiceInner {
    fn note_landed(
        self: &Arc<Self>,
        entry: &Arc<TenantEntry>,
        report: &StoreReport,
        kind: LandKind,
    ) {
        {
            let mut state = entry.state.lock();
            state.account(report);
            match kind {
                LandKind::Async => {
                    state.in_flight = state.in_flight.saturating_sub(1);
                    self.in_flight_total.fetch_sub(1, Ordering::Relaxed);
                    entry.idle_cv.notify_all();
                }
                LandKind::SyncFallback => state.sync_fallbacks += 1,
                LandKind::External => {}
            }
        }
        self.enforce_quota(entry);
        self.maybe_spill();
    }

    /// Apply the GC policy to one tenant. Only this tenant's generations are
    /// candidates; the chunk sweep frees only chunks no tenant references any more
    /// (reference counts are shared across the whole chunk space).
    fn enforce_quota(&self, entry: &TenantEntry) {
        let committed = entry.view.generations();
        let cutoff = {
            let state = entry.state.lock();
            let generations = committed
                .iter()
                .map(|g| {
                    let bytes = state
                        .gen_logical
                        .get(g)
                        .map(|ranks| ranks.values().sum())
                        .unwrap_or(0);
                    (*g, bytes)
                })
                .collect();
            self.gc.reclaim_cutoff(&TenantUsage {
                quota: state.quota,
                generations,
            })
        };
        let Some(cutoff) = cutoff else { return };
        let report = entry.view.prune_before(cutoff);
        let mut state = entry.state.lock();
        for generation in &report.pruned {
            state.gen_logical.remove(generation);
        }
        state.reclaimed_generations += report.pruned.len() as u64;
        state.reclaimed_physical_bytes += report.freed_bytes as u64;
        state.reclaimed_logical_bytes += report.logical_freed_bytes as u64;
    }

    /// Demote cold chunks if the hot set outgrew its target (single-flight).
    fn maybe_spill(&self) {
        let Some(target) = self.config.hot_bytes_target else {
            return;
        };
        if self.base.hot_bytes() <= target {
            return;
        }
        if self
            .spilling
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        self.base.spill_over(target);
        self.spilling.store(false, Ordering::Release);
    }

    fn tenant_stats(&self, entry: &TenantEntry) -> TenantStats {
        let committed = entry.view.generations();
        let state = entry.state.lock();
        let live_logical_bytes = committed
            .iter()
            .filter_map(|g| state.gen_logical.get(g))
            .map(|ranks| ranks.values().sum::<u64>())
            .sum();
        TenantStats {
            tenant: entry.id,
            name: entry.name.clone(),
            logical_bytes_written: state.logical_bytes_written,
            physical_bytes_written: state.physical_bytes_written,
            chunks_new: state.chunks_new,
            chunks_reused: state.chunks_reused,
            committed_generations: committed.len(),
            live_logical_bytes,
            reclaimed_generations: state.reclaimed_generations,
            reclaimed_physical_bytes: state.reclaimed_physical_bytes,
            reclaimed_logical_bytes: state.reclaimed_logical_bytes,
            rejected_submissions: state.rejected_submissions,
            sync_fallbacks: state.sync_fallbacks,
            in_flight: state.in_flight,
        }
    }
}

/// The shared checkpoint service. Cheap to clone (all clones are the same service);
/// jobs register as tenants via [`CkptService::register_tenant`] and interact
/// through the returned [`ServiceHandle`].
#[derive(Clone)]
pub struct CkptService {
    inner: Arc<ServiceInner>,
}

impl std::fmt::Debug for CkptService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CkptService")
            .field("tenants", &self.inner.tenants.lock().len())
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

impl CkptService {
    /// A service over a fresh unmetered chunk space, with the default
    /// [`ReclaimOldest`] GC policy. When `config.hot_bytes_target` is set, a
    /// tempdir-rooted cold tier is attached.
    pub fn new(config: ServiceConfig) -> MpiResult<Self> {
        let mut storage = CheckpointStorage::unmetered();
        if config.hot_bytes_target.is_some() {
            storage = storage.with_cold_tier(ColdTier::in_temp()?);
        }
        Ok(CkptService::with_storage(
            config,
            storage,
            Box::new(ReclaimOldest),
        ))
    }

    /// A service over a caller-built chunk space (cold tier, write-time model and
    /// chunk size included) with an explicit GC policy. The storage must not be
    /// shared elsewhere: tenants are views of it.
    pub fn with_storage(
        config: ServiceConfig,
        storage: CheckpointStorage,
        gc: Box<dyn GcPolicy>,
    ) -> Self {
        let flusher = if config.flusher_workers == 0 {
            FlusherPool::new(storage.clone())
        } else {
            FlusherPool::with_workers(storage.clone(), config.flusher_workers)
        };
        CkptService {
            inner: Arc::new(ServiceInner {
                base: storage,
                flusher,
                config,
                gc,
                tenants: Mutex::new(BTreeMap::new()),
                next_tenant: AtomicU64::new(0),
                in_flight_total: AtomicUsize::new(0),
                spilling: AtomicBool::new(false),
            }),
        }
    }

    /// Register a tenant under the service's default quota.
    pub fn register_tenant(&self, name: &str) -> ServiceHandle {
        self.register_tenant_with(name, self.inner.config.default_quota)
    }

    /// Register a tenant with an explicit quota.
    pub fn register_tenant_with(&self, name: &str, quota: TenantQuota) -> ServiceHandle {
        let id = self.inner.next_tenant.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(TenantEntry {
            id,
            name: name.to_string(),
            view: self.inner.base.tenant_view(),
            state: Mutex::new(TenantState::new(quota)),
            idle_cv: Condvar::new(),
        });
        self.inner.tenants.lock().insert(id, Arc::clone(&entry));
        ServiceHandle {
            inner: Arc::clone(&self.inner),
            entry,
        }
    }

    /// The shared chunk space (useful for occupancy inspection and explicit
    /// [`spill_over`](CheckpointStorage::spill_over) in tests and benches).
    pub fn storage(&self) -> &CheckpointStorage {
        &self.inner.base
    }

    /// Async submissions currently in flight across all tenants.
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight_total.load(Ordering::Relaxed)
    }

    /// Block until every tenant's in-flight submissions have landed.
    pub fn wait_all_idle(&self) {
        self.inner.flusher.wait_idle();
    }

    /// Service-wide accounting: per-tenant stats plus shared-space occupancy.
    pub fn stats(&self) -> ServiceStats {
        let entries: Vec<Arc<TenantEntry>> = self.inner.tenants.lock().values().cloned().collect();
        let tenants: Vec<TenantStats> = entries
            .iter()
            .map(|entry| self.inner.tenant_stats(entry))
            .collect();
        ServiceStats {
            total_logical_bytes: tenants.iter().map(|t| t.logical_bytes_written).sum(),
            total_physical_bytes: tenants.iter().map(|t| t.physical_bytes_written).sum(),
            in_flight: self.in_flight(),
            storage: self.inner.base.stats(),
            tenants,
        }
    }
}

/// One tenant's handle on the shared service: submit checkpoints (with admission
/// control), fall back synchronously, wait for the tenant's own flushes, and read
/// the tenant's accounting. Cloning shares the registration.
#[derive(Clone)]
pub struct ServiceHandle {
    inner: Arc<ServiceInner>,
    entry: Arc<TenantEntry>,
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("tenant", &self.entry.id)
            .field("name", &self.entry.name)
            .finish()
    }
}

impl ServiceHandle {
    /// This tenant's id.
    pub fn tenant_id(&self) -> TenantId {
        self.entry.id
    }

    /// This tenant's storage view: its own generations/manifests namespace over the
    /// shared chunk space. `JobRuntime` jobs attached to the service checkpoint into
    /// (and restart from) exactly this view.
    pub fn storage(&self) -> &CheckpointStorage {
        &self.entry.view
    }

    /// This tenant's quota.
    pub fn quota(&self) -> TenantQuota {
        self.entry.state.lock().quota
    }

    /// Submit one rank's frozen image for background writing through the shared
    /// pool, with a completion callback (runs on the worker thread after the write
    /// lands and is accounted).
    ///
    /// Admission control applies: when the shared pool is saturated or this tenant
    /// is out of in-flight budget, the submission is rejected with a typed,
    /// retryable error and the image is handed back — the caller decides whether to
    /// retry or write synchronously (see
    /// [`write_sync_fallback`](ServiceHandle::write_sync_fallback)); the checkpoint
    /// itself must never be skipped.
    pub fn submit_with(
        &self,
        policy: StoragePolicy,
        image: CheckpointImage,
        on_flushed: impl FnOnce(&StoreReport) + Send + 'static,
    ) -> Result<FlushHandle, RejectedSubmission> {
        let limit = self.inner.config.max_in_flight_total;
        {
            let mut state = self.entry.state.lock();
            let total = self.inner.in_flight_total.load(Ordering::Relaxed);
            if total >= limit {
                state.rejected_submissions += 1;
                return Err(RejectedSubmission {
                    error: AdmissionError::PoolSaturated {
                        in_flight: total,
                        limit,
                    },
                    image: Box::new(image),
                });
            }
            if state.in_flight >= state.quota.max_in_flight {
                state.rejected_submissions += 1;
                return Err(RejectedSubmission {
                    error: AdmissionError::TenantBudgetExhausted {
                        tenant: self.entry.id,
                        in_flight: state.in_flight,
                        budget: state.quota.max_in_flight,
                    },
                    image: Box::new(image),
                });
            }
            state.in_flight += 1;
            self.inner.in_flight_total.fetch_add(1, Ordering::Relaxed);
        }
        let inner = Arc::clone(&self.inner);
        let entry = Arc::clone(&self.entry);
        Ok(self
            .inner
            .flusher
            .submit_to(&self.entry.view, policy, image, move |report| {
                inner.note_landed(&entry, report, LandKind::Async);
                on_flushed(report);
            }))
    }

    /// [`submit_with`](ServiceHandle::submit_with) without a callback.
    pub fn submit(
        &self,
        policy: StoragePolicy,
        image: CheckpointImage,
    ) -> Result<FlushHandle, RejectedSubmission> {
        self.submit_with(policy, image, |_| {})
    }

    /// Write a rejected submission's image synchronously into the tenant's view —
    /// the admission-control fallback. Counted in
    /// [`TenantStats::sync_fallbacks`]; quota enforcement and spill checks run
    /// exactly as for a landed async write. The caller still owns the
    /// pending-generation accounting (`note_rank_flushed`), as the flusher worker
    /// would have.
    pub fn write_sync_fallback(
        &self,
        policy: StoragePolicy,
        image: &CheckpointImage,
    ) -> StoreReport {
        let report = self.entry.view.write_image(policy, image);
        self.inner
            .note_landed(&self.entry, &report, LandKind::SyncFallback);
        report
    }

    /// Account a write the job performed directly against
    /// [`storage`](ServiceHandle::storage) (the synchronous orchestrator path
    /// writes into the view itself and reports here afterwards). Quota enforcement
    /// and spill checks run on the spot.
    pub fn note_external_write(&self, report: &StoreReport) {
        self.inner
            .note_landed(&self.entry, report, LandKind::External);
    }

    /// Block until **this tenant's** in-flight submissions have landed. Unlike
    /// draining the shared pool, this cannot be starved by other tenants' traffic —
    /// which is what a restarting job needs before aborting its pending
    /// generations.
    pub fn wait_idle(&self) {
        let mut state = self.entry.state.lock();
        while state.in_flight > 0 {
            self.entry.idle_cv.wait(&mut state);
        }
    }

    /// Run quota enforcement now (it also runs after every landed write).
    pub fn enforce_quota(&self) {
        self.inner.enforce_quota(&self.entry);
    }

    /// This tenant's accounting.
    pub fn stats(&self) -> TenantStats {
        self.inner.tenant_stats(&self.entry)
    }
}
