//! # ckpt-service
//!
//! A multi-tenant checkpoint service over the `ckpt-store` engine: many concurrent
//! jobs checkpoint into one shared, content-addressed chunk space.
//!
//! The paper's runtime assumes one job writing to one store; a production fleet has
//! hundreds of jobs checkpointing into shared capacity. This crate adds the service
//! layer that makes that safe and cheap:
//!
//! * **Cross-job dedup** — each tenant writes generations into its own catalog
//!   namespace ([`CheckpointStorage::tenant_view`]), but chunks are content-addressed
//!   in one shared, ref-counted space: two jobs running the same app store identical
//!   chunks once, and the saving is accounted per tenant ([`TenantStats`]).
//! * **Quotas + pluggable GC** — per-tenant logical-byte and generation-count caps
//!   ([`TenantQuota`]), enforced by a [`GcPolicy`] (default [`ReclaimOldest`]) that
//!   reclaims a tenant's **oldest** committed generations and can never touch its
//!   newest committed one — the store's own `prune_before` floor guarantees it.
//! * **Admission control** — a shared [`FlusherPool`](ckpt_store::FlusherPool) with
//!   a total in-flight cap and per-tenant in-flight budgets; a rejected submission
//!   returns a typed, retryable [`AdmissionError`] *with the image handed back*, so
//!   the job can fall back to a synchronous write instead of skipping a checkpoint.
//! * **Disk tiering** — when the hot set outgrows its target, least-recently-
//!   referenced chunks spill to a tempdir-rooted cold tier and are CRC-revalidated
//!   on promote, transparently to reads and restart.
//!
//! [`CheckpointStorage::tenant_view`]: ckpt_store::CheckpointStorage::tenant_view

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gc;
pub mod service;

pub use gc::{GcPolicy, ReclaimOldest, TenantQuota, TenantUsage};
pub use service::{
    AdmissionError, CkptService, RejectedSubmission, ServiceConfig, ServiceHandle, ServiceStats,
    TenantId, TenantStats,
};
