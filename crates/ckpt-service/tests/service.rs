//! Service-level behavior: cross-tenant dedup with namespace isolation, quota GC
//! that only ever touches the over-quota tenant, typed admission control with the
//! synchronous fallback, tenant-scoped idle waits, and the cold tier round trip.

use ckpt_service::{AdmissionError, CkptService, ReclaimOldest, ServiceConfig, TenantQuota};
use ckpt_store::{CheckpointStorage, ColdTier, StoragePolicy};
use parking_lot::Mutex;
use split_proc::address_space::UpperHalfSpace;
use split_proc::image::{CheckpointImage, ImageMetadata};
use std::sync::Arc;

/// A deterministic image: content depends on (seed, generation, rank) only, so two
/// tenants using the same seed produce bit-identical chunk streams.
fn image(
    seed: u64,
    generation: u64,
    rank: i32,
    world_size: usize,
    bytes: usize,
) -> CheckpointImage {
    let mut upper = UpperHalfSpace::new();
    let payload: Vec<u8> = (0..bytes)
        .map(|i| {
            ((i as u64)
                .wrapping_add(seed * 7919)
                .wrapping_add(generation * 104_729)
                .wrapping_add(rank as u64 * 31)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                >> 24) as u8
        })
        .collect();
    upper.map_region("app.state", payload);
    CheckpointImage::new(
        ImageMetadata {
            rank,
            world_size,
            generation,
            implementation: "mpich".into(),
        },
        upper,
    )
}

#[test]
fn identical_tenants_dedup_across_jobs_and_stay_isolated() {
    let service = CkptService::new(ServiceConfig::default()).unwrap();
    let first = service.register_tenant("job-a");
    let second = service.register_tenant("job-b");

    // Both tenants run the "same app": identical content per generation.
    for generation in 0..3 {
        for handle in [&first, &second] {
            let report = handle.storage().write_image(
                StoragePolicy::Incremental,
                &image(1, generation, 0, 1, 96 * 1024),
            );
            handle.note_external_write(&report);
        }
    }

    // The second tenant's chunk traffic deduplicated entirely against the first's.
    let second_stats = second.stats();
    assert_eq!(
        second_stats.chunks_new, 0,
        "an identical-app tenant must store no new chunks"
    );
    assert!(second_stats.chunks_reused > 0);

    // Cross-job dedup shows up in the aggregate ratio: two tenants' logical bytes
    // over one tenant's worth of physical chunks.
    let stats = service.stats();
    assert!(
        stats.dedup_ratio() >= 1.5,
        "two identical-app tenants must dedup at least 1.5x, got {:.2}",
        stats.dedup_ratio()
    );

    // Namespaces are isolated: each tenant sees only its own generations, and one
    // tenant pruning everything it owns must not tear the other's checkpoints
    // (shared refcounts keep the chunks alive).
    assert_eq!(first.storage().generations(), vec![0, 1, 2]);
    assert_eq!(second.storage().generations(), vec![0, 1, 2]);
    let report = first.storage().prune_before(u64::MAX);
    assert_eq!(report.pruned, vec![0, 1], "newest committed stays");
    assert_eq!(
        report.freed_bytes, 0,
        "every pruned chunk is still referenced by the other tenant"
    );
    assert!(report.logical_freed_bytes > 0, "logical release is real");
    for generation in 0..3 {
        let restored = second.storage().read(generation, 0).unwrap();
        assert_eq!(
            restored.upper_half.region("app.state").unwrap(),
            image(1, generation, 0, 1, 96 * 1024)
                .upper_half
                .region("app.state")
                .unwrap(),
            "tenant B generation {generation} must round-trip bit-identically"
        );
    }
}

#[test]
fn quota_gc_reclaims_only_the_over_quota_tenant() {
    let service = CkptService::new(ServiceConfig::default()).unwrap();
    let capped =
        service.register_tenant_with("capped", TenantQuota::default().with_max_generations(2));
    let unlimited = service.register_tenant("unlimited");

    // Distinct content per tenant and generation, so reclaims free real chunks.
    for generation in 0..6 {
        for (seed, handle) in [(10, &capped), (20, &unlimited)] {
            let report = handle.storage().write_image(
                StoragePolicy::Incremental,
                &image(seed, generation, 0, 1, 32 * 1024),
            );
            handle.note_external_write(&report);
        }
    }

    // The capped tenant is held at its quota, newest generations retained.
    assert_eq!(capped.storage().generations(), vec![4, 5]);
    let capped_stats = capped.stats();
    assert_eq!(capped_stats.reclaimed_generations, 4);
    assert!(capped_stats.reclaimed_physical_bytes > 0);
    assert!(
        capped_stats.reclaimed_logical_bytes >= capped_stats.reclaimed_physical_bytes,
        "logical release covers the slots, physical only the unshared chunks"
    );

    // The unlimited tenant is untouched: all generations live and readable.
    assert_eq!(unlimited.storage().generations(), vec![0, 1, 2, 3, 4, 5]);
    assert_eq!(unlimited.stats().reclaimed_generations, 0);
    for generation in 0..6 {
        unlimited.storage().read(generation, 0).unwrap();
    }
}

#[test]
fn logical_byte_quota_holds_the_newest_generation_sacred() {
    let service = CkptService::new(ServiceConfig::default()).unwrap();
    // 16 KiB per generation, quota of 40 KiB: roughly two generations fit.
    let handle = service.register_tenant_with(
        "bytes-capped",
        TenantQuota::default().with_max_logical_bytes(40 * 1024),
    );
    for generation in 0..5 {
        let report = handle.storage().write_image(
            StoragePolicy::Incremental,
            &image(3, generation, 0, 1, 16 * 1024),
        );
        handle.note_external_write(&report);
    }
    let stats = handle.stats();
    assert!(
        stats.live_logical_bytes <= 40 * 1024,
        "live logical bytes {} exceed the quota",
        stats.live_logical_bytes
    );
    let generations = handle.storage().generations();
    assert!(
        generations.contains(&4),
        "newest committed generation survives"
    );
    handle.storage().read(4, 0).unwrap();
}

#[test]
fn saturated_pool_rejects_with_typed_error_and_returns_the_image() {
    let service = CkptService::new(ServiceConfig {
        max_in_flight_total: 0,
        ..ServiceConfig::default()
    })
    .unwrap();
    let handle = service.register_tenant("starved");
    let submitted = image(9, 0, 0, 1, 4096);
    let rejected = handle
        .submit(StoragePolicy::Incremental, submitted)
        .unwrap_err();
    assert_eq!(
        rejected.error,
        AdmissionError::PoolSaturated {
            in_flight: 0,
            limit: 0
        }
    );
    // The image comes back intact for the fallback write.
    assert_eq!(rejected.image.metadata.generation, 0);
    assert_eq!(handle.stats().rejected_submissions, 1);
    assert!(rejected.error.to_string().contains("saturated"));
}

#[test]
fn tenant_in_flight_budget_rejects_while_other_tenants_proceed() {
    // One worker, blocked by a tenant whose completion callback waits on a lock the
    // test holds: deterministic in-flight state with no timing games.
    let service = CkptService::with_storage(
        ServiceConfig {
            flusher_workers: 1,
            max_in_flight_total: 64,
            ..ServiceConfig::default()
        },
        CheckpointStorage::unmetered(),
        Box::new(ReclaimOldest),
    );
    let blocker = service.register_tenant("blocker");
    let budgeted =
        service.register_tenant_with("budgeted", TenantQuota::default().with_max_in_flight(1));

    let gate = Arc::new(Mutex::new(()));
    let held = gate.lock();
    let gate_in_cb = Arc::clone(&gate);
    let blocking = blocker
        .submit_with(
            StoragePolicy::Incremental,
            image(5, 0, 0, 1, 4096),
            move |_| {
                drop(gate_in_cb.lock());
            },
        )
        .unwrap();

    // The single worker is busy; the budgeted tenant's first submission queues...
    let queued = budgeted
        .submit(StoragePolicy::Incremental, image(6, 0, 0, 1, 4096))
        .unwrap();
    // ...and its second exceeds the in-flight budget of 1.
    let rejected = budgeted
        .submit(StoragePolicy::Incremental, image(6, 1, 0, 1, 4096))
        .unwrap_err();
    assert!(matches!(
        rejected.error,
        AdmissionError::TenantBudgetExhausted {
            in_flight: 1,
            budget: 1,
            ..
        }
    ));

    drop(held);
    blocking.wait();
    queued.wait();
    budgeted.wait_idle();
    assert_eq!(budgeted.stats().in_flight, 0);
    assert_eq!(service.in_flight(), 0);
}

#[test]
fn rejected_submission_falls_back_to_synchronous_write() {
    let service = CkptService::new(ServiceConfig {
        max_in_flight_total: 0,
        ..ServiceConfig::default()
    })
    .unwrap();
    let handle = service.register_tenant("fallback");

    // The async protocol: announce the generation, submit, get rejected, write
    // synchronously, and complete the flush accounting by hand — exactly what the
    // flusher worker would have done.
    handle.storage().begin_generation(0, 1);
    let rejected = handle
        .submit(StoragePolicy::Incremental, image(7, 0, 0, 1, 8192))
        .unwrap_err();
    let report = handle.write_sync_fallback(StoragePolicy::Incremental, &rejected.image);
    assert!(handle
        .storage()
        .note_rank_flushed(report.generation, report.rank));

    assert_eq!(handle.storage().generations(), vec![0]);
    handle.storage().read(0, 0).unwrap();
    let stats = handle.stats();
    assert_eq!(stats.sync_fallbacks, 1);
    assert_eq!(stats.rejected_submissions, 1);
}

#[test]
fn async_submissions_account_and_wait_idle_is_tenant_scoped() {
    let service = CkptService::new(ServiceConfig::default()).unwrap();
    let handle = service.register_tenant("async");
    handle.storage().begin_generation(0, 2);
    let mut flushes = Vec::new();
    for rank in 0..2 {
        flushes.push(
            handle
                .submit(StoragePolicy::Incremental, image(8, 0, rank, 2, 16 * 1024))
                .unwrap(),
        );
    }
    // Handle completion is ordered *after* the in-flight decrement (the callback
    // runs before the outcome flips), so wait on the handles for the reports and on
    // `wait_idle` for the accounting.
    for flush in &flushes {
        flush.wait();
        assert!(flush.is_flushed());
    }
    handle.wait_idle();
    assert_eq!(handle.stats().in_flight, 0);
    assert_eq!(handle.storage().generations(), vec![0]);
    assert_eq!(handle.storage().latest_valid_generation(2).unwrap(), 0);
    assert!(handle.stats().logical_bytes_written > 0);
}

#[test]
fn cold_tier_spill_and_restart_round_trip_bit_identically() {
    let storage = CheckpointStorage::unmetered()
        .with_chunk_size(4 * 1024)
        .with_cold_tier(ColdTier::in_temp().unwrap());
    let service = CkptService::with_storage(
        ServiceConfig {
            hot_bytes_target: Some(16 * 1024),
            ..ServiceConfig::default()
        },
        storage,
        Box::new(ReclaimOldest),
    );
    let handle = service.register_tenant("cold");
    for generation in 0..3 {
        let report = handle.storage().write_image(
            StoragePolicy::Incremental,
            &image(11, generation, 0, 1, 128 * 1024),
        );
        handle.note_external_write(&report);
    }
    // The landed writes exceeded the hot target, so demotion already ran; push the
    // whole space cold to make the round trip unambiguous.
    let spilled = service.storage().spill_over(0);
    let stats_before = service.storage().stats();
    assert!(
        stats_before.cold_chunk_count > 0 && spilled.hot_bytes == 0,
        "everything must be demoted: {stats_before:?}"
    );

    // Reads promote transparently and the content is bit-identical.
    for generation in 0..3 {
        let restored = handle.storage().read(generation, 0).unwrap();
        assert_eq!(
            restored.upper_half.region("app.state").unwrap(),
            image(11, generation, 0, 1, 128 * 1024)
                .upper_half
                .region("app.state")
                .unwrap()
        );
    }
    let stats_after = service.storage().stats();
    assert!(
        stats_after.cold_hits > 0,
        "reads must have promoted from cold"
    );
    assert!(stats_after.cold_hit_rate() > 0.0);

    // `latest_valid_images` (the restart path) works against a fully cold store too.
    service.storage().spill_over(0);
    let (generation, images) = handle.storage().latest_valid_images(1).unwrap();
    assert_eq!(generation, 2);
    assert_eq!(images.len(), 1);
}

#[test]
fn corrupt_cold_chunk_fails_validation_and_restart_falls_back() {
    let storage = CheckpointStorage::unmetered()
        .with_chunk_size(4 * 1024)
        .with_cold_tier(ColdTier::in_temp().unwrap());
    let service =
        CkptService::with_storage(ServiceConfig::default(), storage, Box::new(ReclaimOldest));
    let handle = service.register_tenant("bitrot");
    for generation in 0..2 {
        let report = handle.storage().write_image(
            StoragePolicy::Incremental,
            &image(13, generation, 0, 1, 64 * 1024),
        );
        handle.note_external_write(&report);
    }
    service.storage().spill_over(0);
    // Rot a chunk private to the newest generation *in its spill file*: the CRC
    // re-validation on promote must refuse it, and restart falls back.
    handle.storage().corrupt_fresh_chunk(1, 0).unwrap();
    assert!(handle.storage().read(1, 0).is_err());
    assert_eq!(handle.storage().latest_valid_generation(1).unwrap(), 0);
}
