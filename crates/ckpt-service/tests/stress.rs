//! Concurrent-tenant stress (satellite of ISSUE 6): N tenants checkpoint under an
//! aggressive per-tenant GC while validators continuously assert that every tenant
//! keeps a restartable newest-committed generation at every instant, and that one
//! tenant hitting its quota never evicts (or blocks restartability of) another
//! tenant's data.

use ckpt_service::{CkptService, ServiceConfig, ServiceHandle, TenantQuota};
use ckpt_store::StoragePolicy;
use split_proc::address_space::UpperHalfSpace;
use split_proc::image::{CheckpointImage, ImageMetadata};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const TENANTS: usize = 4;
const WORLD: usize = 2;
const GENERATIONS: u64 = 24;

fn image(seed: u64, generation: u64, rank: i32, bytes: usize) -> CheckpointImage {
    let mut upper = UpperHalfSpace::new();
    let payload: Vec<u8> = (0..bytes)
        .map(|i| {
            ((i as u64)
                .wrapping_add(seed * 6271)
                .wrapping_add(generation * 15_485_863)
                .wrapping_add(rank as u64 * 97)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                >> 21) as u8
        })
        .collect();
    upper.map_region("app.state", payload);
    CheckpointImage::new(
        ImageMetadata {
            rank,
            world_size: WORLD,
            generation,
            implementation: "mpich".into(),
        },
        upper,
    )
}

/// Writer: checkpoints one tenant's world synchronously, generation after
/// generation, accounting every write (which triggers the tenant's quota GC).
///
/// The pending-generation protocol is load-bearing here, exactly as in the real
/// orchestrator: the generation is announced before any rank's slot is written and
/// commits only when the last rank lands. Without it a half-written generation
/// would momentarily count as "newest committed", stripping prune protection from
/// the tenant's actual restart point while the GC races these writes.
fn writer(handle: &ServiceHandle, seed: u64, committed_floor: &AtomicU64) {
    for generation in 0..GENERATIONS {
        handle.storage().begin_generation(generation, WORLD);
        for rank in 0..WORLD {
            let report = handle.storage().write_image(
                StoragePolicy::Incremental,
                &image(seed, generation, rank as i32, 24 * 1024),
            );
            handle.storage().note_rank_flushed(generation, rank as i32);
            handle.note_external_write(&report);
        }
        committed_floor.store(1, Ordering::Release);
    }
}

#[test]
fn tenants_stay_restartable_under_aggressive_concurrent_gc() {
    let service = CkptService::new(ServiceConfig::default()).unwrap();
    let handles: Vec<ServiceHandle> = (0..TENANTS)
        .map(|t| {
            // Aggressive quota on every tenant: at most 2 committed generations —
            // the GC runs after essentially every write.
            service.register_tenant_with(
                &format!("tenant-{t}"),
                TenantQuota::default().with_max_generations(2),
            )
        })
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let floors: Vec<Arc<AtomicU64>> = (0..TENANTS).map(|_| Arc::new(AtomicU64::new(0))).collect();

    // Validators: from the moment a tenant has committed anything, its view must
    // yield a complete, end-to-end-valid newest generation at *every* probe, even
    // while the writer and the GC churn underneath.
    let validators: Vec<_> = handles
        .iter()
        .enumerate()
        .map(|(t, handle)| {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            let floor = Arc::clone(&floors[t]);
            std::thread::spawn(move || {
                let mut probes = 0u64;
                while !stop.load(Ordering::Acquire) {
                    if floor.load(Ordering::Acquire) > 0 {
                        // `latest_valid_images` snapshots the generation list and
                        // then reads; a commit+prune landing in between can retire
                        // every generation in a stale snapshot. The restart point
                        // exists at every instant — an unsynchronized probe just
                        // needs a fresh snapshot to see it (a real restart
                        // quiesces the tenant first). A torn generation, by
                        // contrast, fails *every* retry.
                        let (generation, images) = (0..8)
                            .find_map(|_| handle.storage().latest_valid_images(WORLD).ok())
                            .unwrap_or_else(|| panic!("tenant {t} lost its restart point"));
                        assert_eq!(images.len(), WORLD);
                        assert!(generation < GENERATIONS);
                        probes += 1;
                    }
                    std::thread::yield_now();
                }
                probes
            })
        })
        .collect();

    // Extra antagonist: hammer explicit quota enforcement on every tenant while
    // the writers run, so GC races GC as well as the writes.
    let antagonist = {
        let handles = handles.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                for handle in &handles {
                    handle.enforce_quota();
                }
                std::thread::yield_now();
            }
        })
    };

    let writers: Vec<_> = handles
        .iter()
        .enumerate()
        .map(|(t, handle)| {
            let handle = handle.clone();
            let floor = Arc::clone(&floors[t]);
            std::thread::spawn(move || writer(&handle, t as u64 + 1, &floor))
        })
        .collect();
    for writer in writers {
        writer.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    for validator in validators {
        let probes = validator.join().unwrap();
        assert!(probes > 0, "validators must actually have probed mid-churn");
    }
    antagonist.join().unwrap();

    // Quiesced: every tenant sits at its quota with its newest generation intact
    // and fully restartable.
    for (t, handle) in handles.iter().enumerate() {
        let generations = handle.storage().generations();
        assert!(
            generations.len() <= 2,
            "tenant {t} ended over quota: {generations:?}"
        );
        let newest = *generations.last().unwrap();
        assert_eq!(
            newest,
            GENERATIONS - 1,
            "tenant {t} lost its newest generation"
        );
        let images = handle.storage().read_job(newest, WORLD).unwrap();
        for (rank, restored) in images.iter().enumerate() {
            assert_eq!(
                restored.upper_half.region("app.state").unwrap(),
                image(t as u64 + 1, newest, rank as i32, 24 * 1024)
                    .upper_half
                    .region("app.state")
                    .unwrap(),
                "tenant {t} rank {rank} must restore bit-identically"
            );
        }
        assert!(handle.stats().reclaimed_generations >= GENERATIONS - 2);
    }
}

#[test]
fn a_quota_bound_tenant_never_evicts_an_unlimited_neighbors_data() {
    let service = CkptService::new(ServiceConfig::default()).unwrap();
    // Both tenants write the *same* content (maximal chunk sharing), but only one
    // has a quota. Its aggressive GC must never free chunks the unlimited tenant's
    // generations still reference.
    let capped =
        service.register_tenant_with("capped", TenantQuota::default().with_max_generations(1));
    let unlimited = service.register_tenant("unlimited");

    let capped_writer = {
        let capped = capped.clone();
        let floor = AtomicU64::new(0);
        std::thread::spawn(move || writer(&capped, 42, &floor))
    };
    let floor = AtomicU64::new(0);
    writer(&unlimited, 42, &floor);
    capped_writer.join().unwrap();

    // The capped tenant was reclaimed hard...
    assert!(capped.stats().reclaimed_generations > 0);
    // ...but every one of the unlimited tenant's generations still reads back
    // end-to-end valid: shared refcounts shielded its chunks from the GC.
    assert_eq!(
        unlimited.storage().generations().len(),
        GENERATIONS as usize
    );
    for generation in 0..GENERATIONS {
        unlimited
            .storage()
            .read_job(generation, WORLD)
            .unwrap_or_else(|e| {
                panic!(
                    "unlimited tenant's generation {generation} was torn by a neighbor's GC: {e:?}"
                )
            });
    }
}
