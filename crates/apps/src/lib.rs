//! # mana-apps
//!
//! Proxy versions of the five real-world applications the paper evaluates (CoMD, HPCG,
//! LAMMPS, LULESH-2.0 and SW4), plus a VASP-style plane-wave-DFT proxy for the
//! transpose-dominated workload shape, written against MANA's typed session API
//! ([`mana::Session`]) so they are oblivious to which simulated MPI implementation is
//! loaded in the lower half — and contain no hand-rolled byte marshalling.
//!
//! Each proxy reproduces the *communication skeleton* of its namesake — who talks to
//! whom, which collectives close each timestep, how often MPI is called relative to
//! the local work — rather than its physics. That is what the paper's evaluation
//! actually exercises: runtime overhead is a function of MPI-call frequency (§6.3),
//! and checkpoint cost is a function of per-rank state size (Table 3). The per-rank
//! state each proxy allocates is therefore calibrated (scaled down by a configurable
//! factor) to the paper's measured checkpoint sizes, and the per-iteration MPI call
//! mix is calibrated to the paper's measured context-switch rates.
//!
//! All six proxies support *transparent* checkpoint-restart: their entire state lives
//! in the rank's upper-half address space, they can be told to checkpoint at a given
//! iteration, and when started on a restored rank they resume from the recorded
//! iteration without any application-specific recovery code — the property that makes
//! MANA relevant to codes like VASP that have no application-level checkpointing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comd;
pub mod elastic;
pub mod hpcg;
pub mod lammps;
pub mod lulesh;
pub mod skeleton;
pub mod sw4;
pub mod vasp;
pub mod workloads;

pub use elastic::{
    job_checksum, run_elastic, ElasticReport, ElasticShard, ElasticWorldState, SkeletonRepartition,
    STATE_REGION,
};
pub use skeleton::{AppId, AppProfile, AppReport, RunConfig};
pub use workloads::{perlmutter_workloads, single_node_workloads, WorkloadSpec};

/// Run the named proxy application *elastically* (logical-shard overdecomposition)
/// on one rank's typed session; see [`elastic::run_elastic`].
pub fn run_app_elastic(
    app: AppId,
    session: &mut mana::Session,
    config: &RunConfig,
) -> mpi_model::error::MpiResult<ElasticReport> {
    elastic::run_elastic(&profile_of(app), session, config)
}

/// The communication/memory profile of the named proxy application.
pub fn profile_of(app: AppId) -> AppProfile {
    match app {
        AppId::CoMd => comd::profile(),
        AppId::Hpcg => hpcg::profile(),
        AppId::Lammps => lammps::profile(),
        AppId::Lulesh => lulesh::profile(),
        AppId::Sw4 => sw4::profile(),
        AppId::Vasp => vasp::profile(),
    }
}

/// Run the named proxy application on one (already initialized or restored) rank's
/// typed session.
///
/// This is the single entry point the harness, the examples and the integration tests
/// use; it dispatches to the per-app profile and the shared skeleton runner.
pub fn run_app(
    app: AppId,
    session: &mut mana::Session,
    config: &RunConfig,
) -> mpi_model::error::MpiResult<AppReport> {
    skeleton::run(&profile_of(app), session, config)
}
