//! SW4 proxy: seismic wave propagation with summation-by-parts finite differences
//! (`tests/curvimr/energy-1.in`).
//!
//! Communication skeleton: wide halo exchanges (fourth-order stencils need two ghost
//! layers) with four partners per step in each direction and an energy reduction. SW4
//! sits between CoMD and LAMMPS in call frequency — 12.5M context switches per second
//! over 56 ranks in §6.3 — and checkpoints at 49 MB/rank (Table 3). Like LULESH it is
//! run without OpenMP, matching the paper's workaround for the local cluster.

use crate::skeleton::{AppId, AppProfile};

/// The SW4 communication/memory profile.
pub fn profile() -> AppProfile {
    AppProfile {
        id: AppId::Sw4,
        halo_neighbors: 4,
        halo_elements: 2048,
        allreduces_per_iter: 1,
        alltoall_every: 0,
        uses_split_comm: true,
        state_elements_full_scale: 6_125_000, // 49 MB of f64 per rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_table3() {
        let p = profile();
        assert_eq!(p.state_bytes_at_scale(1.0), 49_000_000);
        assert!(p.calls_per_iteration() > crate::lulesh::profile().calls_per_iteration());
    }
}
