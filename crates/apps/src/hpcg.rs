//! HPCG proxy: the High Performance Conjugate Gradients benchmark.
//!
//! Communication skeleton: each CG iteration performs a sparse matrix-vector product
//! whose halo exchange touches the 3-D face neighbours, followed by two global dot
//! products (allreduces). Per-rank state is calibrated to the paper's 934 MB/rank
//! checkpoint image — by far the largest of the five applications (Table 3) — and the
//! call mix to its 4.7M context switches per second over 56 ranks (§6.3).

use crate::skeleton::{AppId, AppProfile};

/// The HPCG communication/memory profile.
pub fn profile() -> AppProfile {
    AppProfile {
        id: AppId::Hpcg,
        halo_neighbors: 3,
        halo_elements: 1024,
        allreduces_per_iter: 2,
        alltoall_every: 0,
        uses_split_comm: true,
        state_elements_full_scale: 116_750_000, // 934 MB of f64 per rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_table3() {
        let p = profile();
        assert_eq!(p.state_bytes_at_scale(1.0), 934_000_000);
        assert_eq!(
            p.allreduces_per_iter, 2,
            "CG has two dot products per iteration"
        );
    }
}
