//! Elastic (resizable) proxy applications: the skeleton workload over *logical
//! shards*.
//!
//! The fixed skeleton ([`crate::skeleton::run`]) binds one domain shard to one MPI
//! rank, so its state only makes sense at the world size it started with. The
//! elastic runner overdecomposes instead: the domain is split into `N` *logical
//! shards* — `N` fixed at job start, one per initial rank — and each physical rank
//! *hosts* some subset of them. Every step is phrased in logical-shard coordinates
//! (which shard talks to which, in what order the reduction sums its terms), so the
//! computed state is **bit-identical for any hosting of the shards** — including a
//! single rank hosting everything (`M = 1`) and a grown world where fresh ranks host
//! nothing. That partition-independence is what lets an elastic restart
//! ([`elastic::resize_job`]) move a checkpoint taken at `N` ranks onto `M` ranks and
//! still finish with the same answer as the uninterrupted run.
//!
//! The wire traffic still follows the hosting: halos between co-hosted shards are
//! delivered locally, halos between shards on different ranks travel as tagged
//! point-to-point messages, and the per-step reduction is an `MPI_Allgather` over
//! the new world followed by a deterministic (ascending-logical-rank) local sum.
//! The runner never derives sub-communicators — HPCG's parity ("row") reduction
//! groups are computed logically — so [`SkeletonRepartition`] can promise
//! [`Repartition::consumes_derived_comms`] and any leftover split communicator from
//! other code is dropped rather than blocking the resize.

use crate::skeleton::{f64_bits, AppId, AppProfile, RunConfig};
use ckpt_store::StoreReport;
use elastic::{RankMap, Repartition};
use mana::Session;
use mpi_model::error::{MpiError, MpiResult};
use mpi_model::types::{Rank, Tag};
use serde::{Deserialize, Serialize};
use split_proc::address_space::UpperHalfSpace;
use split_proc::store::WriteReport;
use std::collections::HashMap;

/// The upper-half region the elastic runner keeps its whole state in. One fixed name
/// (the app id lives *inside* the state) so the repartition hook can find it without
/// knowing which application is running.
pub const STATE_REGION: &str = "app.elastic.state";

/// Tag base for the backward (tail) halo direction; forward tags start at 0.
const BWD_TAG_BASE: Tag = 1_000_000;

/// One logical shard: a fixed slice of the overdecomposed domain, identified by the
/// rank it would have owned in the original (logical) world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElasticShard {
    /// The shard's rank in the logical world (`0..logical_world`).
    pub logical_rank: Rank,
    /// The shard's domain state, bit-exact across checkpoint/restart.
    #[serde(with = "f64_bits")]
    pub lattice: Vec<f64>,
}

impl ElasticShard {
    /// Deterministic checksum of this shard's state (hosting-independent).
    pub fn checksum(&self) -> f64 {
        self.lattice.iter().take(512).sum::<f64>()
    }
}

/// The elastic runner's complete per-rank state: the global shard→host table plus
/// the shards this rank hosts. Serialized into [`STATE_REGION`]; every rank carries
/// the full `hosts` table so any rank's image suffices to describe the partition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElasticWorldState {
    /// Which proxy application's profile drives the step.
    pub app: AppId,
    /// Number of logical shards (fixed at job start; never changes across resizes).
    pub logical_world: usize,
    /// Timesteps completed.
    pub iteration: u64,
    /// `hosts[l]` is the physical rank currently hosting logical shard `l`.
    pub hosts: Vec<Rank>,
    /// The shards hosted by this rank, ascending by logical rank.
    pub shards: Vec<ElasticShard>,
}

/// What one rank reports after an elastic run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticReport {
    /// The application that ran.
    pub app: AppId,
    /// This (physical) rank.
    pub rank: Rank,
    /// Timesteps completed in total (across restarts and resizes).
    pub iterations_completed: u64,
    /// Upper↔lower crossings this rank has performed so far.
    pub crossings: u64,
    /// `(logical_rank, checksum)` for every shard this rank hosts. A fresh rank that
    /// was never assigned work reports an empty list.
    pub shard_checksums: Vec<(Rank, f64)>,
    /// The write report of the checkpoint taken during this run, if any.
    pub checkpoint: Option<WriteReport>,
    /// The storage engine's detailed report, when the checkpoint went through
    /// `ckpt-store`.
    pub incremental: Option<StoreReport>,
}

/// Fold a job's per-rank reports into one partition-independent job checksum: the
/// shard checksums summed in ascending logical-rank order, plus the iteration count.
pub fn job_checksum(reports: &[ElasticReport]) -> f64 {
    let mut shards: Vec<(Rank, f64)> = reports
        .iter()
        .flat_map(|r| r.shard_checksums.iter().copied())
        .collect();
    shards.sort_by_key(|&(logical, _)| logical);
    let iterations = reports
        .iter()
        .map(|r| r.iterations_completed)
        .max()
        .unwrap_or(0);
    shards.iter().map(|&(_, c)| c).sum::<f64>() + iterations as f64
}

fn fwd_tag(n: usize, sender: Rank, logical_world: usize) -> Tag {
    (n * logical_world) as Tag + sender
}

fn bwd_tag(n: usize, sender: Rank, logical_world: usize) -> Tag {
    BWD_TAG_BASE + (n * logical_world) as Tag + sender
}

/// Initialize a fresh elastic world: one shard per rank (`logical_world ==
/// world_size`, identity hosting), lattices seeded exactly like the fixed skeleton
/// seeds rank `l`'s state.
fn init_state(
    profile: &AppProfile,
    world_size: usize,
    my_rank: Rank,
    state_scale: f64,
) -> ElasticWorldState {
    let elements = profile.state_bytes_at_scale(state_scale) / 8;
    let shards = vec![ElasticShard {
        logical_rank: my_rank,
        lattice: (0..elements)
            .map(|i| ((i as f64) * 0.5 + my_rank as f64 * 1.25).sin())
            .collect(),
    }];
    ElasticWorldState {
        app: profile.id,
        logical_world: world_size,
        iteration: 0,
        hosts: (0..world_size as Rank).collect(),
        shards,
    }
}

/// Execute (or resume) `profile` elastically on `session` according to `config`.
///
/// On a fresh world this decomposes into `world_size` logical shards (one per rank).
/// On a restored world — same size or resized through [`elastic::resize_job`] with
/// [`SkeletonRepartition`] — it picks up the shard table from [`STATE_REGION`] and
/// continues; the final shard checksums are identical either way.
pub fn run_elastic(
    profile: &AppProfile,
    session: &mut Session,
    config: &RunConfig,
) -> MpiResult<ElasticReport> {
    let me = session.world_rank();
    let world_size = session.world_size();

    let mut state: ElasticWorldState = if session.upper().contains(STATE_REGION) {
        session.upper().load_json(STATE_REGION)?
    } else {
        init_state(profile, world_size, me, config.state_scale)
    };
    if state.hosts.len() != state.logical_world {
        return Err(MpiError::Internal(format!(
            "elastic state names {} logical shards but maps {} hosts",
            state.logical_world,
            state.hosts.len()
        )));
    }
    for shard in &state.shards {
        let hosted = state.hosts.get(shard.logical_rank as usize).copied();
        if hosted != Some(me) {
            return Err(MpiError::Internal(format!(
                "rank {me} holds shard {} which the host table assigns to {hosted:?}",
                shard.logical_rank
            )));
        }
    }

    let mut checkpoint_report = None;
    let mut incremental_report = None;
    while state.iteration < config.iterations {
        elastic_step(profile, session, &mut state)?;
        state.iteration += 1;
        if config.checkpoint_at == Some(state.iteration) {
            session.upper_mut().store_json(STATE_REGION, &state)?;
            if let Some(storage) = config.storage.as_ref() {
                let report = session.checkpoint_into(storage)?;
                checkpoint_report = Some(report.to_write_report());
                incremental_report = Some(report);
            } else {
                let store = config.store.as_ref().ok_or_else(|| {
                    MpiError::Checkpoint("checkpoint requested without a checkpoint store".into())
                })?;
                checkpoint_report = Some(session.checkpoint(store)?);
            }
        }
    }
    session.upper_mut().store_json(STATE_REGION, &state)?;

    Ok(ElasticReport {
        app: profile.id,
        rank: me,
        iterations_completed: state.iteration,
        crossings: session.crossings(),
        shard_checksums: state
            .shards
            .iter()
            .map(|s| (s.logical_rank, s.checksum()))
            .collect(),
        checkpoint: checkpoint_report,
        incremental: incremental_report,
    })
}

/// One timestep in logical-shard coordinates. Every phase is ordered by logical
/// rank and sums in logical order, so the result does not depend on the hosting.
fn elastic_step(
    profile: &AppProfile,
    session: &mut Session,
    state: &mut ElasticWorldState,
) -> MpiResult<()> {
    let me = session.world_rank();
    let world = session.world()?;
    let n_logical = state.logical_world as Rank;
    let step = state.iteration;
    let hosts = state.hosts.clone();

    // --- Halo exchange, one round per neighbour distance. Phase A posts every
    // outgoing halo (eager; co-hosted halos go through the local stash), phase B
    // receives and folds in ascending logical order — so round n+1 always sees the
    // fully folded round-n state, exactly like the lockstep fixed skeleton.
    if n_logical > 1 {
        let halo = shard_halo(profile, state);
        for n in 1..=profile.halo_neighbors {
            let mut stash: HashMap<Tag, Vec<f64>> = HashMap::new();
            for shard in &state.shards {
                let l = shard.logical_rank;
                let right = (l + n as Rank).rem_euclid(n_logical);
                let left = (l - n as Rank).rem_euclid(n_logical);
                let tail = shard.lattice.len() - halo;
                let front: Vec<f64> = shard.lattice[..halo].to_vec();
                let back: Vec<f64> = shard.lattice[tail..].to_vec();
                let right_host = host_of(&hosts, right)?;
                if right_host == me {
                    stash.insert(fwd_tag(n, l, state.logical_world), front);
                } else {
                    session.send(
                        &front,
                        right_host,
                        fwd_tag(n, l, state.logical_world),
                        world,
                    )?;
                }
                let left_host = host_of(&hosts, left)?;
                if left_host == me {
                    stash.insert(bwd_tag(n, l, state.logical_world), back);
                } else {
                    session.send(&back, left_host, bwd_tag(n, l, state.logical_world), world)?;
                }
            }
            let logical_world = state.logical_world;
            for shard in &mut state.shards {
                let l = shard.logical_rank;
                let right = (l + n as Rank).rem_euclid(n_logical);
                let left = (l - n as Rank).rem_euclid(n_logical);
                let from_left = take_halo(
                    session,
                    &mut stash,
                    host_of(&hosts, left)?,
                    me,
                    fwd_tag(n, left, logical_world),
                    halo,
                    world,
                )?;
                for (cell, ghost) in shard.lattice.iter_mut().zip(from_left.iter()) {
                    *cell = 0.75 * *cell + 0.25 * ghost;
                }
                let from_right = take_halo(
                    session,
                    &mut stash,
                    host_of(&hosts, right)?,
                    me,
                    bwd_tag(n, right, logical_world),
                    halo,
                    world,
                )?;
                let tail = shard.lattice.len() - halo;
                for (cell, ghost) in shard.lattice[tail..].iter_mut().zip(from_right.iter()) {
                    *cell = 0.75 * *cell + 0.25 * ghost;
                }
            }
        }
    }

    // --- Local compute: the skeleton's bounded relaxation window, per shard.
    for shard in &mut state.shards {
        let window = shard.lattice.len().min(4096);
        for i in 1..window {
            shard.lattice[i] = 0.5 * (shard.lattice[i] + shard.lattice[i - 1]);
        }
    }

    // --- Reductions. Instead of an allreduce on a (hosting-dependent) derived
    // communicator, every rank publishes each hosted shard's local term through one
    // world allgather, and each shard sums its group's terms in ascending logical
    // order — HPCG-style parity groups when the profile splits, everyone otherwise.
    for r in 0..profile.allreduces_per_iter {
        let mut contribution: Vec<u64> = vec![0; state.logical_world];
        for shard in &state.shards {
            let window = shard.lattice.len().min(4096);
            let local = shard.lattice[(r * 7) % window.max(1)] + step as f64 * 1e-6;
            contribution[shard.logical_rank as usize] = local.to_bits();
        }
        let gathered = session.allgather(&contribution, world)?;
        let logical_world = state.logical_world;
        for shard in &mut state.shards {
            let mut reduced = 0.0;
            for g in 0..logical_world {
                if profile.uses_split_comm
                    && n_logical > 1
                    && (g as Rank % 2) != (shard.logical_rank % 2)
                {
                    continue;
                }
                let host = host_of(&hosts, g as Rank)?;
                let slot = host as usize * logical_world + g;
                let bits = gathered.get(slot).copied().ok_or_else(|| {
                    MpiError::Internal("allgather returned too few reduction terms".into())
                })?;
                reduced += f64::from_bits(bits);
            }
            shard.lattice[0] += reduced * 1e-9;
        }
    }

    // --- Periodic neighbour-list rebuild. The state update is a function of the
    // *logical* world (hosting-independent); the physical alltoall still runs so the
    // wire pattern matches the profile.
    let logical_world = state.logical_world;
    if profile.alltoall_every > 0 && (step + 1).is_multiple_of(profile.alltoall_every) {
        if session.world_size() > 1 {
            let block: Vec<u64> = (0..session.world_size() as Rank)
                .map(|peer| (me * 1000 + peer) as u64)
                .collect();
            let _ = session.alltoall(&block, 1, world)?;
        }
        for shard in &mut state.shards {
            shard.lattice[0] += logical_world as f64 * 8.0 * 1e-12;
        }
    }
    Ok(())
}

/// The halo length every shard of this state uses (all shards are the same size).
fn shard_halo(profile: &AppProfile, state: &ElasticWorldState) -> usize {
    let len = state
        .shards
        .first()
        .map(|s| s.lattice.len())
        .unwrap_or(profile.halo_elements);
    profile.halo_elements.min(len.max(1))
}

fn host_of(hosts: &[Rank], logical: Rank) -> MpiResult<Rank> {
    hosts
        .get(logical as usize)
        .copied()
        .ok_or_else(|| MpiError::Internal(format!("no host recorded for logical shard {logical}")))
}

/// Receive one halo: from the local stash when the sending shard is co-hosted, from
/// the wire otherwise.
fn take_halo(
    session: &mut Session,
    stash: &mut HashMap<Tag, Vec<f64>>,
    sender_host: Rank,
    me: Rank,
    tag: Tag,
    halo: usize,
    world: mana::Comm,
) -> MpiResult<Vec<f64>> {
    if sender_host == me {
        stash.remove(&tag).ok_or_else(|| {
            MpiError::Internal(format!(
                "co-hosted halo (tag {tag}) missing from local stash"
            ))
        })
    } else {
        let (incoming, _) = session.recv::<f64>(halo, sender_host, tag, world)?;
        Ok(incoming)
    }
}

/// The proxy applications' [`Repartition`]: re-buckets the logical shards of every
/// old rank's [`STATE_REGION`] onto the new world.
///
/// With `rebalance` set (the default), shards are spread in contiguous blocks over
/// *all* `M` new ranks, so a grown world puts its fresh ranks to work. Without it,
/// shards strictly follow the rank map — each new rank hosts exactly its adopted old
/// ranks' shards, and fresh ranks keep empty shard lists.
#[derive(Debug, Clone, Copy)]
pub struct SkeletonRepartition {
    /// Spread shards over the whole new world instead of following the map.
    pub rebalance: bool,
}

impl Default for SkeletonRepartition {
    fn default() -> Self {
        SkeletonRepartition { rebalance: true }
    }
}

impl Repartition for SkeletonRepartition {
    fn repartition(
        &self,
        old: &[UpperHalfSpace],
        map: &RankMap,
        new_rank: Rank,
        upper: &mut UpperHalfSpace,
    ) -> MpiResult<()> {
        // Any old rank's state describes the whole partition; collect every shard.
        let template: ElasticWorldState = old
            .iter()
            .find(|u| u.contains(STATE_REGION))
            .ok_or_else(|| {
                MpiError::ElasticResize(
                    "no elastic application state found in the checkpointed world; only \
                     apps run through run_elastic can be repartitioned"
                        .into(),
                )
            })?
            .load_json(STATE_REGION)?;
        let logical_world = template.logical_world;

        let mut new_hosts: Vec<Rank> = Vec::with_capacity(logical_world);
        for (l, &old_host) in template.hosts.iter().enumerate() {
            let host = if self.rebalance {
                (l * map.new_world() / logical_world) as Rank
            } else {
                map.new_rank_of(old_host)?
            };
            new_hosts.push(host);
        }

        let mut shards: Vec<ElasticShard> = Vec::new();
        for space in old {
            if !space.contains(STATE_REGION) {
                continue;
            }
            let old_state: ElasticWorldState = space.load_json(STATE_REGION)?;
            for shard in old_state.shards {
                if new_hosts.get(shard.logical_rank as usize).copied() == Some(new_rank) {
                    shards.push(shard);
                }
            }
        }
        shards.sort_by_key(|s| s.logical_rank);
        shards.dedup_by_key(|s| s.logical_rank);

        let state = ElasticWorldState {
            app: template.app,
            logical_world,
            iteration: template.iteration,
            hosts: new_hosts,
            shards,
        };
        upper.store_json(STATE_REGION, &state)
    }

    /// The elastic runner derives no communicators (parity groups are computed
    /// logically), so any derived communicator left over in the image is
    /// per-partition state: drop it and let the new world rebuild what it needs.
    fn consumes_derived_comms(&self) -> bool {
        true
    }
}
