//! CoMD proxy: classical molecular dynamics (the ExaScale co-design MD proxy app).
//!
//! Communication skeleton: each timestep exchanges atom halos with the six face
//! neighbours of a 3-D domain decomposition (modelled as three bidirectional partner
//! exchanges) and closes with a single global energy reduction. Neighbour lists are
//! refreshed periodically with an all-to-all. Per-rank state is calibrated to the
//! paper's 32 MB/rank checkpoint size (Table 3), and the call mix to its measured
//! 3.7M context switches per second over 27 ranks (§6.3).
//!
//! CoMD is one of the two applications the paper runs under ExaMPI (Figure 3), so the
//! profile deliberately avoids any MPI feature outside ExaMPI's subset.

use crate::skeleton::{AppId, AppProfile};

/// The CoMD communication/memory profile.
pub fn profile() -> AppProfile {
    AppProfile {
        id: AppId::CoMd,
        halo_neighbors: 3,
        halo_elements: 512,
        allreduces_per_iter: 1,
        alltoall_every: 20,
        uses_split_comm: false,
        state_elements_full_scale: 4_000_000, // 32 MB of f64 per rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_table3() {
        let p = profile();
        assert_eq!(p.state_bytes_at_scale(1.0), 32_000_000);
        assert!(p.calls_per_iteration() > 0);
        assert!(
            !p.uses_split_comm,
            "CoMD must stay inside the ExaMPI subset"
        );
    }
}
