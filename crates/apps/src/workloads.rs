//! The paper's workload definitions and reference measurements.
//!
//! Table 1 (single-node inputs on the Discovery cluster), Table 2 (Perlmutter inputs),
//! the §6.3 context-switch rates, the Table 3 checkpoint sizes/times, and the runtime
//! bars of Figures 2, 3 and 4 are all encoded here so the benchmark harness can print
//! "paper vs. reproduced" side by side. The numbers come directly from the paper's
//! text and figures; they are *reference* values, not measurements of this machine.

use crate::skeleton::AppId;
use serde::{Deserialize, Serialize};

/// Runtime bars (seconds) reported by the paper for one application on the Discovery
/// cluster (Figures 2 and 3). `None` means the paper did not run that combination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperRuntimes {
    /// native/MPICH
    pub native_mpich: Option<f64>,
    /// MANA/MPICH (legacy virtual ids)
    pub mana_mpich: Option<f64>,
    /// MANA+virtId/MPICH
    pub mana_virtid_mpich: Option<f64>,
    /// native/Open MPI
    pub native_ompi: Option<f64>,
    /// MANA+virtId/Open MPI
    pub mana_virtid_ompi: Option<f64>,
    /// native/ExaMPI (Figure 3 only)
    pub native_exampi: Option<f64>,
    /// MANA+virtId/ExaMPI (Figure 3 only)
    pub mana_virtid_exampi: Option<f64>,
}

/// One Table 1 workload plus every reference number the paper attaches to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// The application.
    pub app: AppId,
    /// Rank count on a single Discovery node (Table 1).
    pub ranks: usize,
    /// The input/command-line the paper lists (Table 1).
    pub input: &'static str,
    /// Job-wide context switches per second measured in §6.3.
    pub cs_rate_per_sec: f64,
    /// Checkpoint image size per rank, MB (Table 3).
    pub ckpt_mb_per_rank: f64,
    /// Checkpoint time, seconds (Table 3).
    pub ckpt_time_s: f64,
    /// Checkpoint bandwidth, MB/s/rank (Table 3).
    pub ckpt_mb_s_per_rank: f64,
    /// Figure 2 / Figure 3 runtime bars.
    pub paper: PaperRuntimes,
}

impl WorkloadSpec {
    /// Per-rank wrapped-MPI-call rate (calls per rank per second), derived from the
    /// job-wide §6.3 context-switch rate.
    pub fn calls_per_rank_per_sec(&self) -> f64 {
        self.cs_rate_per_sec / self.ranks as f64
    }

    /// Whether the paper ran this application under ExaMPI (Figure 3).
    pub fn exampi_compatible(&self) -> bool {
        self.paper.native_exampi.is_some()
    }
}

/// The five Table 1 workloads, in the order the paper's figures list them.
pub fn single_node_workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            app: AppId::Hpcg,
            ranks: 56,
            input: "--nx=104 --ny=104 --nz=104 --it=50",
            cs_rate_per_sec: 4.7e6,
            ckpt_mb_per_rank: 934.0,
            ckpt_time_s: 72.9,
            ckpt_mb_s_per_rank: 12.8,
            paper: PaperRuntimes {
                native_mpich: Some(174.0),
                mana_mpich: Some(184.0),
                mana_virtid_mpich: Some(173.0),
                native_ompi: Some(166.0),
                mana_virtid_ompi: Some(166.0),
                native_exampi: None,
                mana_virtid_exampi: None,
            },
        },
        WorkloadSpec {
            app: AppId::Lulesh,
            ranks: 27,
            input: "-p -i 100 -s 100",
            cs_rate_per_sec: 1.3e6,
            ckpt_mb_per_rank: 207.0,
            ckpt_time_s: 16.3,
            ckpt_mb_s_per_rank: 12.7,
            paper: PaperRuntimes {
                native_mpich: Some(173.0),
                mana_mpich: Some(184.0),
                mana_virtid_mpich: Some(209.0),
                native_ompi: Some(163.0),
                mana_virtid_ompi: Some(171.0),
                native_exampi: Some(187.4),
                mana_virtid_exampi: Some(180.2),
            },
        },
        WorkloadSpec {
            app: AppId::CoMd,
            ranks: 27,
            input: "-N 10000",
            cs_rate_per_sec: 3.7e6,
            ckpt_mb_per_rank: 32.0,
            ckpt_time_s: 8.9,
            ckpt_mb_s_per_rank: 3.6,
            paper: PaperRuntimes {
                native_mpich: Some(32.8),
                mana_mpich: Some(33.9),
                mana_virtid_mpich: Some(33.7),
                native_ompi: Some(51.5),
                mana_virtid_ompi: Some(57.0),
                native_exampi: Some(44.0),
                mana_virtid_exampi: Some(41.8),
            },
        },
        WorkloadSpec {
            app: AppId::Lammps,
            ranks: 56,
            input: "-in bench/in.lj (run=50000)",
            cs_rate_per_sec: 22.9e6,
            ckpt_mb_per_rank: 42.0,
            ckpt_time_s: 12.8,
            ckpt_mb_s_per_rank: 3.3,
            paper: PaperRuntimes {
                native_mpich: Some(28.9),
                mana_mpich: Some(38.2),
                mana_virtid_mpich: Some(37.6),
                native_ompi: Some(35.5),
                mana_virtid_ompi: Some(48.6),
                native_exampi: None,
                mana_virtid_exampi: None,
            },
        },
        WorkloadSpec {
            app: AppId::Sw4,
            ranks: 56,
            input: "tests/curvimr/energy-1.in",
            cs_rate_per_sec: 12.5e6,
            ckpt_mb_per_rank: 49.0,
            ckpt_time_s: 12.3,
            ckpt_mb_s_per_rank: 4.0,
            paper: PaperRuntimes {
                native_mpich: Some(89.2),
                mana_mpich: Some(103.0),
                mana_virtid_mpich: Some(102.0),
                native_ompi: Some(110.0),
                mana_virtid_ompi: Some(130.0),
                native_exampi: None,
                mana_virtid_exampi: None,
            },
        },
    ]
}

/// One Table 2 workload (Perlmutter, Cray MPI, userspace FSGSBASE available) with the
/// Figure 4 runtime bars.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerlmutterSpec {
    /// The application.
    pub app: AppId,
    /// Rank count (Table 2).
    pub ranks: usize,
    /// Input (Table 2).
    pub input: &'static str,
    /// native/Cray MPI runtime, seconds (Figure 4).
    pub native_craympi: f64,
    /// MANA/Cray MPI runtime (legacy virtual ids), seconds.
    pub mana_craympi: f64,
    /// MANA+virtId/Cray MPI runtime, seconds.
    pub mana_virtid_craympi: f64,
}

impl PerlmutterSpec {
    /// Relative overhead of legacy MANA over native, as the paper reports it.
    pub fn paper_mana_overhead(&self) -> f64 {
        (self.mana_craympi - self.native_craympi) / self.native_craympi
    }

    /// Relative overhead of MANA+virtId over native.
    pub fn paper_virtid_overhead(&self) -> f64 {
        (self.mana_virtid_craympi - self.native_craympi) / self.native_craympi
    }
}

/// The three Table 2 workloads of the Perlmutter experiment (Figure 4).
pub fn perlmutter_workloads() -> Vec<PerlmutterSpec> {
    vec![
        PerlmutterSpec {
            app: AppId::CoMd,
            ranks: 64,
            input: "-N 30000",
            native_craympi: 46.1,
            mana_craympi: 48.1,
            mana_virtid_craympi: 48.6,
        },
        PerlmutterSpec {
            app: AppId::Lammps,
            ranks: 64,
            input: "-in bench/in.lj (run=50000)",
            native_craympi: 28.0,
            mana_craympi: 29.5,
            mana_virtid_craympi: 27.6,
        },
        PerlmutterSpec {
            app: AppId::Sw4,
            ranks: 64,
            input: "tests/curvimr/energy-1.in",
            native_craympi: 73.1,
            mana_craympi: 77.1,
            mana_virtid_craympi: 76.2,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_all_five_apps() {
        let specs = single_node_workloads();
        assert_eq!(specs.len(), 5);
        let apps: Vec<AppId> = specs.iter().map(|s| s.app).collect();
        assert_eq!(apps, AppId::TABLE1.to_vec());
        // The VASP proxy is deliberately outside the paper's Table 1.
        assert!(!apps.contains(&AppId::Vasp));
        assert!(AppId::ALL.contains(&AppId::Vasp));
        // Rank counts from Table 1.
        assert_eq!(
            specs.iter().find(|s| s.app == AppId::CoMd).unwrap().ranks,
            27
        );
        assert_eq!(
            specs.iter().find(|s| s.app == AppId::Lammps).unwrap().ranks,
            56
        );
    }

    #[test]
    fn only_comd_and_lulesh_run_under_exampi() {
        let specs = single_node_workloads();
        let exampi: Vec<AppId> = specs
            .iter()
            .filter(|s| s.exampi_compatible())
            .map(|s| s.app)
            .collect();
        assert_eq!(exampi, vec![AppId::Lulesh, AppId::CoMd]);
    }

    #[test]
    fn lammps_has_the_highest_cs_rate() {
        let specs = single_node_workloads();
        let lammps = specs.iter().find(|s| s.app == AppId::Lammps).unwrap();
        assert!(specs
            .iter()
            .all(|s| s.cs_rate_per_sec <= lammps.cs_rate_per_sec));
        assert!(lammps.calls_per_rank_per_sec() > 100_000.0);
    }

    #[test]
    fn perlmutter_overheads_are_single_digit() {
        for spec in perlmutter_workloads() {
            assert!(spec.paper_mana_overhead() < 0.06);
            assert!(spec.paper_virtid_overhead() < 0.06);
        }
        // LAMMPS under virtId was actually *faster* than native in the paper.
        let lammps = perlmutter_workloads()
            .into_iter()
            .find(|s| s.app == AppId::Lammps)
            .unwrap();
        assert!(lammps.paper_virtid_overhead() < 0.0);
    }
}
