//! VASP-style proxy: plane-wave density-functional theory, the paper's motivating
//! class of production codes with *no* application-level checkpointing (§1 — the
//! workloads that need transparent checkpointing most).
//!
//! Communication skeleton: every SCF iteration runs 3-D FFTs whose transposes are
//! all-to-alls (`alltoall_every: 1` — the defining trait of the plane-wave method),
//! closes with a burst of reductions (subspace orthonormalization, band energies,
//! charge-density mixing), and exchanges modest wavefunction halos between band
//! groups. Band parallelism carves a sub-communicator out of the world. This profile
//! is not part of the paper's Table 1 evaluation; it exists to open the
//! transpose-dominated workload shape to the typed session API and the two-phase
//! collective checkpointing path.

use crate::skeleton::{AppId, AppProfile};

/// The VASP communication/memory profile.
pub fn profile() -> AppProfile {
    AppProfile {
        id: AppId::Vasp,
        halo_neighbors: 1,
        halo_elements: 256,
        allreduces_per_iter: 6,
        alltoall_every: 1,
        uses_split_comm: true,
        state_elements_full_scale: 12_000_000, // ~96 MB of wavefunctions per rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_dominated_call_mix() {
        let p = profile();
        // One all-to-all every single step: the FFT-transpose signature.
        assert_eq!(p.alltoall_every, 1);
        assert!(p.allreduces_per_iter >= 4, "reduction-heavy SCF closes");
        assert!(p.uses_split_comm, "band-group communicator");
        assert_eq!(p.state_bytes_at_scale(1.0), 96_000_000);
    }
}
