//! The shared communication skeleton all six proxy applications run on.
//!
//! A proxy application is described by an [`AppProfile`]: how many halo neighbours it
//! exchanges with per timestep, how big the halo messages are, how many reductions
//! close each step, how often it rebuilds neighbour lists with an all-to-all, and how
//! much per-rank state it carries. The shared [`run`] function executes that profile
//! against a typed [`mana::Session`], keeping *all* application state — including the
//! typed MPI handles themselves — in the rank's upper-half address space, so a
//! checkpoint taken mid-run is transparently resumable.

use ckpt_store::{CheckpointStorage, StoreReport};
use mana::{Comm, Op, Session};
use mpi_model::error::{MpiError, MpiResult};
use mpi_model::types::Rank;
use serde::{Deserialize, Serialize};
use split_proc::store::{CheckpointStore, WriteReport};

/// The five applications of the paper's evaluation, plus the VASP-style proxy added
/// for the plane-wave-DFT workload shape (the paper's §1 motivating class of codes
/// with no application-level checkpointing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppId {
    /// CoMD: molecular-dynamics proxy (halo exchange + energy reduction).
    CoMd,
    /// HPCG: conjugate-gradient solver (halo exchange + two dot products per step).
    Hpcg,
    /// LAMMPS: Lennard-Jones MD (very frequent small exchanges, periodic rebuilds).
    Lammps,
    /// LULESH-2.0: shock hydrodynamics (27-point stencil, dt reduction).
    Lulesh,
    /// SW4: seismic wave propagation (large halos, frequent exchanges).
    Sw4,
    /// VASP-style plane-wave DFT proxy (all-to-all FFT transposes every step,
    /// reduction-heavy orthonormalization).
    Vasp,
}

impl AppId {
    /// All applications: the paper's five (in the order its figures list them)
    /// followed by the VASP-style proxy.
    pub const ALL: [AppId; 6] = [
        AppId::Hpcg,
        AppId::Lulesh,
        AppId::CoMd,
        AppId::Lammps,
        AppId::Sw4,
        AppId::Vasp,
    ];

    /// The five applications of the paper's Table 1, in figure order.
    pub const TABLE1: [AppId; 5] = [
        AppId::Hpcg,
        AppId::Lulesh,
        AppId::CoMd,
        AppId::Lammps,
        AppId::Sw4,
    ];

    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            AppId::CoMd => "CoMD",
            AppId::Hpcg => "HPCG",
            AppId::Lammps => "LAMMPS",
            AppId::Lulesh => "LULESH",
            AppId::Sw4 => "SW4",
            AppId::Vasp => "VASP",
        }
    }
}

/// Static description of one proxy application's communication and memory behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Which application this is.
    pub id: AppId,
    /// Number of halo-exchange partners per timestep (each partner costs one send and
    /// one receive in each direction).
    pub halo_neighbors: usize,
    /// `f64` elements per halo message.
    pub halo_elements: usize,
    /// Number of global reductions per timestep (energy sums, dot products, dt).
    pub allreduces_per_iter: usize,
    /// Rebuild neighbour lists with an `MPI_Alltoall` every this many timesteps
    /// (0 = never).
    pub alltoall_every: u64,
    /// Whether the application carves a sub-communicator out of the world at startup
    /// (row/plane communicators). Requires `MPI_Comm_split` from the lower half.
    pub uses_split_comm: bool,
    /// Per-rank state in `f64` elements at scale 1.0, calibrated to the paper's
    /// Table 3 checkpoint sizes.
    pub state_elements_full_scale: usize,
}

impl AppProfile {
    /// Per-rank state size in bytes at the given scale.
    pub fn state_bytes_at_scale(&self, scale: f64) -> usize {
        ((self.state_elements_full_scale as f64 * scale).max(64.0) as usize) * 8
    }

    /// Wrapped MPI calls one rank makes per timestep (sends + receives + collectives),
    /// used by the harness to convert call rates into overhead.
    pub fn calls_per_iteration(&self) -> u64 {
        let halo = 2 * 2 * self.halo_neighbors as u64; // send+recv in both directions
        let collectives = self.allreduces_per_iter as u64;
        let rebuild = if self.alltoall_every > 0 { 1 } else { 0 };
        halo + collectives + rebuild
    }
}

/// Runtime parameters for one proxy run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Number of timesteps to run in total (including any completed before a restart).
    pub iterations: u64,
    /// Scale factor applied to the full-scale per-rank state (1.0 reproduces the
    /// paper's checkpoint sizes; tests use much smaller values).
    pub state_scale: f64,
    /// Take a transparent checkpoint after completing this timestep.
    pub checkpoint_at: Option<u64>,
    /// Legacy flat checkpoint store (the paper's baseline write path). Used when
    /// `checkpoint_at` is set and no `storage` engine is configured.
    pub store: Option<CheckpointStore>,
    /// The `ckpt-store` storage engine. When set, checkpoints go through
    /// [`Session::checkpoint_into`] under the rank's configured
    /// [`mana::StoragePolicy`], enabling incremental/compressed writes. Takes
    /// precedence over `store`.
    pub storage: Option<CheckpointStorage>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            iterations: 10,
            state_scale: 1e-4,
            checkpoint_at: None,
            store: None,
            storage: None,
        }
    }
}

impl RunConfig {
    /// A small configuration suitable for tests.
    pub fn smoke(iterations: u64) -> Self {
        RunConfig {
            iterations,
            ..Default::default()
        }
    }

    /// Add a checkpoint at the given timestep (legacy flat store).
    pub fn with_checkpoint(mut self, at: u64, store: CheckpointStore) -> Self {
        self.checkpoint_at = Some(at);
        self.store = Some(store);
        self
    }

    /// Add a checkpoint at the given timestep through the storage engine.
    pub fn with_engine_checkpoint(mut self, at: u64, storage: CheckpointStorage) -> Self {
        self.checkpoint_at = Some(at);
        self.storage = Some(storage);
        self
    }
}

/// What one rank reports after running (or resuming) a proxy application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppReport {
    /// The application that ran.
    pub app: AppId,
    /// This rank.
    pub rank: Rank,
    /// Timesteps completed in total (across restarts).
    pub iterations_completed: u64,
    /// Upper↔lower crossings this rank has performed so far.
    pub crossings: u64,
    /// A deterministic checksum of the final state (identical across a
    /// checkpoint/restart boundary if the run is equivalent).
    pub checksum: f64,
    /// Per-rank state size in bytes.
    pub state_bytes: usize,
    /// The write report of the checkpoint taken during this run, if any (for engine
    /// checkpoints, `bytes` is the bytes physically written).
    pub checkpoint: Option<WriteReport>,
    /// The storage engine's detailed report, when the checkpoint went through
    /// `ckpt-store` (logical vs written bytes, chunk reuse, compression savings).
    pub incremental: Option<StoreReport>,
}

/// The application state stored in the upper half; everything needed to resume.
///
/// The MPI handles are stored *typed* (`Comm`, `Op<f64>`): they serialize as the
/// same virtual-id-bearing values as raw `AppHandle`s, so they survive a
/// checkpoint/restart identically — with the element type statically attached on
/// the way back out. (Datatypes need no handle here at all: the typed sends and
/// reductions resolve the `f64` datatype from the element type.)
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SkeletonState {
    app: AppId,
    iteration: u64,
    /// Serialized as raw IEEE-754 bits so a checkpoint/restart round trip is bit-exact
    /// (text formatting of floats must not perturb the resumed computation).
    #[serde(with = "f64_bits")]
    lattice: Vec<f64>,
    world: Comm,
    compute_comm: Comm,
    sum_op: Op<f64>,
}

/// Bit-exact (de)serialization of an `f64` vector through `u64` bit patterns.
pub(crate) mod f64_bits {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(values: &[f64], serializer: S) -> Result<S::Ok, S::Error> {
        let bits: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        bits.serialize(serializer)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(deserializer: D) -> Result<Vec<f64>, D::Error> {
        let bits: Vec<u64> = Vec::deserialize(deserializer)?;
        Ok(bits.into_iter().map(f64::from_bits).collect())
    }
}

fn state_region(app: AppId) -> String {
    format!("app.{}.state", app.name().to_lowercase())
}

/// Execute (or resume) `profile` on `session` according to `config`.
pub fn run(
    profile: &AppProfile,
    session: &mut Session,
    config: &RunConfig,
) -> MpiResult<AppReport> {
    let me = session.world_rank();
    let size = session.world_size() as Rank;
    let region = state_region(profile.id);

    // Resume from the upper half if state is present, otherwise initialize.
    let mut state: SkeletonState = if session.upper().contains(&region) {
        session.upper().load_json(&region)?
    } else {
        let world = session.world()?;
        let sum_op = Op::sum();
        let compute_comm = if profile.uses_split_comm && size > 1 {
            // Row communicator: ranks with the same parity compute together.
            session.comm_split(world, Some(me % 2), me)?
        } else {
            world
        };
        let elements = profile.state_bytes_at_scale(config.state_scale) / 8;
        let lattice = (0..elements)
            .map(|i| ((i as f64) * 0.5 + me as f64 * 1.25).sin())
            .collect();
        SkeletonState {
            app: profile.id,
            iteration: 0,
            lattice,
            world,
            compute_comm,
            sum_op,
        }
    };

    let halo = profile.halo_elements.min(state.lattice.len().max(1));
    let mut checkpoint_report = None;
    let mut incremental_report = None;

    while state.iteration < config.iterations {
        let step = state.iteration;

        // Halo exchange with `halo_neighbors` partners in each direction.
        if size > 1 {
            for n in 1..=profile.halo_neighbors as Rank {
                let right = (me + n).rem_euclid(size);
                let left = (me - n).rem_euclid(size);
                session.send(&state.lattice[..halo], right, n, state.world)?;
                let (incoming, _) = session.recv::<f64>(halo, left, n, state.world)?;
                // Fold the halo into the boundary of the local state.
                for (cell, ghost) in state.lattice.iter_mut().zip(incoming.iter()) {
                    *cell = 0.75 * *cell + 0.25 * ghost;
                }
                // And the reverse direction.
                let tail = state.lattice.len() - halo;
                session.send(&state.lattice[tail..], left, 1000 + n, state.world)?;
                let (incoming, _) = session.recv::<f64>(halo, right, 1000 + n, state.world)?;
                for (cell, ghost) in state.lattice[tail..].iter_mut().zip(incoming.iter()) {
                    *cell = 0.75 * *cell + 0.25 * ghost;
                }
            }
        }

        // Local "compute": a cheap deterministic relaxation over a bounded window, so
        // test runs stay fast regardless of state size.
        let window = state.lattice.len().min(4096);
        for i in 1..window {
            state.lattice[i] = 0.5 * (state.lattice[i] + state.lattice[i - 1]);
        }

        // Global reductions closing the timestep (energy / dot products / dt).
        for r in 0..profile.allreduces_per_iter {
            let local = state.lattice[(r * 7) % window.max(1)] + step as f64 * 1e-6;
            let reduced = session.allreduce(&[local], state.sum_op, state.compute_comm)?;
            state.lattice[0] += reduced[0] * 1e-9;
        }

        // Periodic neighbour-list rebuild (the FFT transpose, for VASP).
        if profile.alltoall_every > 0
            && (step + 1).is_multiple_of(profile.alltoall_every)
            && size > 1
        {
            let block: Vec<u64> = (0..size).map(|peer| (me * 1000 + peer) as u64).collect();
            let gathered = session.alltoall(&block, 1, state.world)?;
            state.lattice[0] += gathered.len() as f64 * 8.0 * 1e-12;
        }

        state.iteration += 1;

        // Transparent checkpoint, if requested at this timestep.
        if config.checkpoint_at == Some(state.iteration) {
            session.upper_mut().store_json(&region, &state)?;
            if let Some(storage) = config.storage.as_ref() {
                let report = session.checkpoint_into(storage)?;
                checkpoint_report = Some(report.to_write_report());
                incremental_report = Some(report);
            } else {
                let store = config.store.as_ref().ok_or_else(|| {
                    MpiError::Checkpoint("checkpoint requested without a checkpoint store".into())
                })?;
                checkpoint_report = Some(session.checkpoint(store)?);
            }
        }
    }

    // Persist the final state so a later checkpoint (or inspection) sees it.
    session.upper_mut().store_json(&region, &state)?;

    let checksum = state.lattice.iter().take(512).sum::<f64>() + state.iteration as f64;
    Ok(AppReport {
        app: profile.id,
        rank: me,
        iterations_completed: state.iteration,
        crossings: session.crossings(),
        checksum,
        state_bytes: state.lattice.len() * 8,
        checkpoint: checkpoint_report,
        incremental: incremental_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mana::{ManaConfig, ManaRank};
    use mpi_model::api::MpiImplementationFactory;
    use mpi_model::op::UserFunctionRegistry;
    use parking_lot::RwLock;
    use std::sync::Arc;

    fn profile() -> AppProfile {
        AppProfile {
            id: AppId::CoMd,
            halo_neighbors: 2,
            halo_elements: 16,
            allreduces_per_iter: 1,
            alltoall_every: 3,
            uses_split_comm: true,
            state_elements_full_scale: 4_000_000,
        }
    }

    #[test]
    fn calls_per_iteration_counts_both_directions() {
        let p = profile();
        assert_eq!(p.calls_per_iteration(), 2 * 2 * 2 + 1 + 1);
        assert_eq!(p.state_bytes_at_scale(1.0), 32_000_000);
        assert!(p.state_bytes_at_scale(1e-9) >= 64 * 8);
    }

    #[test]
    fn skeleton_runs_and_is_deterministic() {
        let reg = Arc::new(RwLock::new(UserFunctionRegistry::new()));
        let factory = mpich_sim::MpichFactory::mpich();
        let run_once = || {
            let lowers = factory.launch(4, reg.clone(), 1).unwrap();
            let handles: Vec<_> = lowers
                .into_iter()
                .map(|lower| {
                    let reg = reg.clone();
                    std::thread::spawn(move || {
                        let rank = ManaRank::new(lower, ManaConfig::new_design(), reg).unwrap();
                        let mut session = Session::new(rank);
                        run(&profile(), &mut session, &RunConfig::smoke(6)).unwrap()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        };
        let a = run_once();
        let b = run_once();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.iterations_completed, 6);
            assert!(x.crossings > 0);
            assert_eq!(x.checksum, y.checksum, "the skeleton is deterministic");
        }
    }
}
