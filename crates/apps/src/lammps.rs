//! LAMMPS proxy: the Lennard-Jones benchmark (`bench/in.lj`, run=50000).
//!
//! Communication skeleton: very frequent, relatively small halo exchanges with the six
//! spatial neighbours in both directions plus the diagonal-ish extra passes LAMMPS'
//! communication staging performs, a per-step thermodynamic reduction, and periodic
//! neighbour-list rebuilds. LAMMPS is the most chatty of the five applications — the
//! paper measures 22.9M context switches per second over 56 ranks, the highest rate in
//! §6.3, which is why it shows the largest MANA overhead on the no-FSGSBASE cluster
//! (Figure 2) and why that overhead collapses to ~5% on Perlmutter (Figure 4).
//! Per-rank state is calibrated to the paper's 42 MB/rank checkpoint size.

use crate::skeleton::{AppId, AppProfile};

/// The LAMMPS communication/memory profile.
pub fn profile() -> AppProfile {
    AppProfile {
        id: AppId::Lammps,
        halo_neighbors: 6,
        halo_elements: 256,
        allreduces_per_iter: 1,
        alltoall_every: 5,
        uses_split_comm: true,
        state_elements_full_scale: 5_250_000, // 42 MB of f64 per rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{comd, lulesh};

    #[test]
    fn calibration_matches_table3() {
        let p = profile();
        assert_eq!(p.state_bytes_at_scale(1.0), 42_000_000);
    }

    #[test]
    fn lammps_is_the_chattiest_per_iteration() {
        assert!(profile().calls_per_iteration() > comd::profile().calls_per_iteration());
        assert!(profile().calls_per_iteration() > lulesh::profile().calls_per_iteration());
    }
}
