//! LULESH-2.0 proxy: the Livermore unstructured Lagrangian shock hydrodynamics proxy.
//!
//! Communication skeleton: a 27-point stencil whose face exchanges dominate, closed by
//! a single global time-step (`dt`) reduction. LULESH makes relatively few MPI calls
//! per unit of computation — the paper measures only 1.3M context switches per second
//! (§6.3), the lowest of the five — but carries a lot of state: 207 MB/rank (Table 3).
//! Like the paper, the proxy models the no-OpenMP build (the paper disabled OpenMP to
//! work around thrashing on the local cluster's Slurm/MPICH stack), so all parallelism
//! is across ranks.
//!
//! LULESH is the second application the paper runs under ExaMPI (Figure 3), so the
//! profile stays inside ExaMPI's subset.

use crate::skeleton::{AppId, AppProfile};

/// The LULESH communication/memory profile.
pub fn profile() -> AppProfile {
    AppProfile {
        id: AppId::Lulesh,
        halo_neighbors: 1,
        halo_elements: 2048,
        allreduces_per_iter: 1,
        alltoall_every: 0,
        uses_split_comm: false,
        state_elements_full_scale: 25_875_000, // 207 MB of f64 per rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_table3() {
        let p = profile();
        assert_eq!(p.state_bytes_at_scale(1.0), 207_000_000);
        assert!(
            !p.uses_split_comm,
            "LULESH must stay inside the ExaMPI subset"
        );
    }
}
