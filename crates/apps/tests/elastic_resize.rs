//! Acceptance tests for elastic restart at the application layer: a job
//! checkpointed at `N` ranks restarts onto `M` ranks (shrunk and grown) and runs
//! to completion with results identical to the uninterrupted `N`-rank run.

use ckpt_store::CheckpointStorage;
use elastic::{resize_job_from_storage, RemapPolicy, Repartition};
use mana::{ManaConfig, ManaRank, Session};
use mana_apps::{
    job_checksum, run_app_elastic, AppId, ElasticReport, RunConfig, SkeletonRepartition,
};
use mpi_model::api::MpiImplementationFactory;
use mpi_model::op::UserFunctionRegistry;
use mpich_sim::MpichFactory;
use parking_lot::RwLock;
use std::sync::Arc;

type Registry = Arc<RwLock<UserFunctionRegistry>>;

const ITERATIONS: u64 = 6;
const CKPT_AT: u64 = 3;

fn config(
    iterations: u64,
    checkpoint_at: Option<u64>,
    storage: Option<CheckpointStorage>,
) -> RunConfig {
    RunConfig {
        iterations,
        state_scale: 1e-9,
        checkpoint_at,
        store: None,
        storage,
    }
}

/// Launch a fresh `world`-rank job and run `app` elastically on every rank.
fn run_fresh(
    app: AppId,
    world: usize,
    registry: &Registry,
    session_id: u64,
    config: RunConfig,
) -> Vec<ElasticReport> {
    let lowers = MpichFactory::mpich()
        .launch(world, registry.clone(), session_id)
        .unwrap();
    let handles: Vec<_> = lowers
        .into_iter()
        .map(|lower| {
            let registry = registry.clone();
            let config = config.clone();
            std::thread::spawn(move || {
                let rank = ManaRank::new(lower, ManaConfig::new_design(), registry).unwrap();
                let mut session = Session::new(rank);
                run_app_elastic(app, &mut session, &config).unwrap()
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// Resize the latest checkpoint in `storage` onto `new_world` ranks and run the
/// job to completion there.
fn run_resized(
    app: AppId,
    new_world: usize,
    registry: &Registry,
    session_id: u64,
    storage: &CheckpointStorage,
    repartition: &dyn Repartition,
    config: RunConfig,
) -> Vec<ElasticReport> {
    let lowers = MpichFactory::mpich()
        .launch(new_world, registry.clone(), session_id)
        .unwrap();
    let (ranks, _) = resize_job_from_storage(
        lowers,
        storage,
        RemapPolicy::Block,
        repartition,
        ManaConfig::new_design(),
        registry.clone(),
    )
    .unwrap();
    let handles: Vec<_> = ranks
        .into_iter()
        .map(|rank| {
            let config = config.clone();
            std::thread::spawn(move || {
                let mut session = Session::new(rank);
                run_app_elastic(app, &mut session, &config).unwrap()
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// Checkpoint `app` at `CKPT_AT` on `n` ranks, resize onto `m` ranks, finish the
/// run there, and require the job checksum to be *exactly* the uninterrupted
/// `n`-rank answer.
fn assert_resized_matches_uninterrupted(app: AppId, n: usize, m: usize) {
    let registry: Registry = Arc::new(RwLock::new(UserFunctionRegistry::new()));
    let baseline = run_fresh(app, n, &registry, 1, config(ITERATIONS, None, None));
    let expected = job_checksum(&baseline);

    let storage = CheckpointStorage::unmetered();
    run_fresh(
        app,
        n,
        &registry,
        2,
        config(CKPT_AT, Some(CKPT_AT), Some(storage.clone())),
    );

    let finished = run_resized(
        app,
        m,
        &registry,
        3,
        &storage,
        &SkeletonRepartition::default(),
        config(ITERATIONS, None, None),
    );
    assert_eq!(finished.len(), m);
    assert_eq!(
        finished.iter().map(|r| r.iterations_completed).max(),
        Some(ITERATIONS)
    );
    let shard_total: usize = finished.iter().map(|r| r.shard_checksums.len()).sum();
    assert_eq!(shard_total, n, "every logical shard survives the resize");
    assert_eq!(
        job_checksum(&finished),
        expected,
        "{app:?} resized {n}->{m} diverged from the uninterrupted {n}-rank run"
    );
}

#[test]
fn comd_shrinks_from_8_to_6_with_identical_results() {
    assert_resized_matches_uninterrupted(AppId::CoMd, 8, 6);
}

#[test]
fn comd_grows_from_8_to_12_with_identical_results() {
    assert_resized_matches_uninterrupted(AppId::CoMd, 8, 12);
}

#[test]
fn hpcg_shrinks_from_8_to_6_with_identical_results() {
    assert_resized_matches_uninterrupted(AppId::Hpcg, 8, 6);
}

#[test]
fn hpcg_grows_from_8_to_12_with_identical_results() {
    assert_resized_matches_uninterrupted(AppId::Hpcg, 8, 12);
}

#[test]
fn comd_collapses_onto_a_single_rank() {
    assert_resized_matches_uninterrupted(AppId::CoMd, 4, 1);
}

#[test]
fn growth_without_rebalance_leaves_fresh_ranks_idle() {
    let registry: Registry = Arc::new(RwLock::new(UserFunctionRegistry::new()));
    let baseline = run_fresh(AppId::CoMd, 2, &registry, 1, config(ITERATIONS, None, None));
    let expected = job_checksum(&baseline);

    let storage = CheckpointStorage::unmetered();
    run_fresh(
        AppId::CoMd,
        2,
        &registry,
        2,
        config(CKPT_AT, Some(CKPT_AT), Some(storage.clone())),
    );

    let finished = run_resized(
        AppId::CoMd,
        4,
        &registry,
        3,
        &storage,
        &SkeletonRepartition { rebalance: false },
        config(ITERATIONS, None, None),
    );
    // Shards strictly follow the block rank map (old 0 -> new 0, old 1 -> new 2):
    // the two adopting ranks keep their shards, the two fresh ranks host nothing
    // until a rebalancing resize.
    for report in &finished {
        if report.rank == 0 || report.rank == 2 {
            assert_eq!(report.shard_checksums.len(), 1);
        } else {
            assert!(
                report.shard_checksums.is_empty(),
                "fresh rank {} unexpectedly hosts shards",
                report.rank
            );
        }
    }
    assert_eq!(job_checksum(&finished), expected);
}
