//! Codec acceptance tests over the real checkpoint corpus: every proxy application's
//! checkpoint image must survive the LZ codec bit-identically, corrupted or truncated
//! streams must never decode silently into a valid image, incompressible content must
//! fall back to stored-raw framing, and images written before the codec switch
//! (RLE + FNV-1a, version-1 manifests) must restore bit-identically under the new
//! default configuration — including through an elastic resize.

use ckpt_store::codec::{lz_compress, lz_decompress};
use ckpt_store::{CheckpointStorage, StorageConfig, StoragePolicy};
use elastic::{resize_job_from_storage, RemapPolicy};
use mana::{ManaConfig, ManaRank, Session};
use mana_apps::{
    job_checksum, run_app, run_app_elastic, AppId, ElasticReport, RunConfig, SkeletonRepartition,
};
use mpi_model::api::MpiImplementationFactory;
use mpi_model::op::UserFunctionRegistry;
use mpich_sim::MpichFactory;
use parking_lot::RwLock;
use split_proc::image::CheckpointImage;
use std::sync::Arc;

type Registry = Arc<RwLock<UserFunctionRegistry>>;

const APPS: [AppId; 6] = [
    AppId::CoMd,
    AppId::Hpcg,
    AppId::Lammps,
    AppId::Lulesh,
    AppId::Sw4,
    AppId::Vasp,
];
const WORLD: usize = 2;
const ITERATIONS: u64 = 3;
const CKPT_AT: u64 = 2;
const SCALE: f64 = 2e-7;

fn registry() -> Registry {
    Arc::new(RwLock::new(UserFunctionRegistry::new()))
}

fn run_config(storage: Option<CheckpointStorage>) -> RunConfig {
    RunConfig {
        iterations: ITERATIONS,
        state_scale: SCALE,
        checkpoint_at: storage.as_ref().map(|_| CKPT_AT),
        store: None,
        storage,
    }
}

/// Run `app` on a fresh `WORLD`-rank world, checkpointing into `storage` through the
/// compressing policy, and return the checkpointed images read back from the store.
fn checkpoint_app(
    app: AppId,
    storage: &CheckpointStorage,
    session_id: u64,
) -> Vec<CheckpointImage> {
    let registry = registry();
    let lowers = MpichFactory::mpich()
        .launch(WORLD, registry.clone(), session_id)
        .unwrap();
    let handles: Vec<_> = lowers
        .into_iter()
        .map(|lower| {
            let registry = registry.clone();
            let config = run_config(Some(storage.clone()));
            std::thread::spawn(move || {
                let mana_config =
                    ManaConfig::new_design().with_storage(StoragePolicy::IncrementalCompressed);
                let rank = ManaRank::new(lower, mana_config, registry).unwrap();
                let mut session = Session::new(rank);
                run_app(app, &mut session, &config).unwrap()
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let generation = *storage
        .generations()
        .last()
        .expect("the run checkpointed at least once");
    (0..WORLD)
        .map(|rank| storage.read(generation, rank as i32).unwrap())
        .collect()
}

/// The images of every proxy app, each checkpointed into its own store under
/// `config`. Returned together with the store that holds them.
fn corpus(config: StorageConfig) -> Vec<(AppId, CheckpointStorage, Vec<CheckpointImage>)> {
    APPS.iter()
        .enumerate()
        .map(|(index, &app)| {
            let storage = CheckpointStorage::unmetered().with_config(config);
            let images = checkpoint_app(app, &storage, index as u64 + 1);
            (app, storage, images)
        })
        .collect()
}

#[test]
fn lz_round_trips_every_proxy_app_image_bit_identically() {
    for (app, storage, images) in corpus(StorageConfig::default()) {
        assert_eq!(storage.config(), StorageConfig::default());
        for image in &images {
            // Direct codec round-trip over the real upper-half bytes of this app.
            for (name, data) in image.upper_half.iter() {
                if let Some(stream) = lz_compress(data) {
                    assert_eq!(
                        lz_decompress(&stream, data.len()).unwrap(),
                        data,
                        "{app:?} region {name} did not round-trip"
                    );
                }
            }
            // Store-level round-trip under both codec generations: writing this
            // image into a fresh store and reading it back must reproduce the
            // encoded image bit for bit.
            let reference = image.encode();
            for echo_config in [StorageConfig::default(), StorageConfig::legacy()] {
                let echo = CheckpointStorage::unmetered().with_config(echo_config);
                echo.write_image(StoragePolicy::IncrementalCompressed, image);
                let back = echo
                    .read(image.metadata.generation, image.metadata.rank)
                    .unwrap();
                assert_eq!(
                    back.encode(),
                    reference,
                    "{app:?} image changed through a {echo_config:?} store"
                );
            }
        }
    }
}

#[test]
fn lz_never_loses_to_rle_on_the_checkpoint_corpus() {
    for (app, _, images) in corpus(StorageConfig::default()) {
        let mut lz_written = 0usize;
        let mut rle_written = 0usize;
        for image in &images {
            let lz_store = CheckpointStorage::unmetered(); // default: LZ + XXH64
            let rle_store = CheckpointStorage::unmetered().with_config(StorageConfig::legacy());
            lz_written += lz_store
                .write_image(StoragePolicy::IncrementalCompressed, image)
                .written_bytes;
            rle_written += rle_store
                .write_image(StoragePolicy::IncrementalCompressed, image)
                .written_bytes;
        }
        assert!(
            lz_written <= rle_written,
            "{app:?}: LZ wrote {lz_written} bytes, RLE wrote {rle_written}"
        );
    }
}

#[test]
fn corrupted_or_truncated_lz_streams_never_decode_silently() {
    // One real image's most compressible region gives a stream exercising literal
    // runs, short matches, and extended-length matches.
    let storage = CheckpointStorage::unmetered();
    let images = checkpoint_app(AppId::CoMd, &storage, 77);
    let (name, data) = images[0]
        .upper_half
        .iter()
        .filter_map(|(name, data)| lz_compress(data).map(|s| (name, data, s.len())))
        .min_by_key(|(_, _, len)| *len)
        .map(|(name, data, _)| (name, data))
        .expect("at least one region compresses");
    let stream = lz_compress(data).unwrap();
    assert!(
        stream.len() < data.len(),
        "region {name} stream not smaller"
    );

    // Every truncation must be rejected outright: each op produces at least one
    // byte, so a shortened stream can never reach the recorded length.
    for cut in 0..stream.len() {
        assert!(
            lz_decompress(&stream[..cut], data.len()).is_err(),
            "truncation at {cut} decoded"
        );
    }
    // Every single-byte corruption must either be rejected by the framing or
    // produce different bytes — which the store's digest validation then catches,
    // exactly like the flat image's CRC.
    for position in 0..stream.len() {
        let mut corrupted = stream.clone();
        corrupted[position] ^= 0x10;
        match lz_decompress(&corrupted, data.len()) {
            Err(_) => {}
            Ok(decoded) => assert_ne!(
                &decoded[..],
                data,
                "flip at {position} decoded to the original bytes"
            ),
        }
    }
}

#[test]
fn incompressible_chunks_fall_back_to_stored_raw_framing() {
    // A xorshift stream has no usable matches: the codec must decline, the store
    // must frame the chunk raw, and the read must still be bit-identical.
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let noise: Vec<u8> = (0..96 * 1024)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u8
        })
        .collect();
    assert!(lz_compress(&noise).is_none());

    let mut upper = split_proc::address_space::UpperHalfSpace::new();
    upper.map_region("app.noise", noise.clone());
    let image = CheckpointImage::new(
        split_proc::image::ImageMetadata {
            rank: 0,
            world_size: 1,
            generation: 0,
            implementation: "mpich".into(),
        },
        upper,
    );
    let storage = CheckpointStorage::unmetered();
    let report = storage.write_image(StoragePolicy::IncrementalCompressed, &image);
    assert_eq!(
        report.compression_saved_bytes, 0,
        "nothing should have compressed"
    );
    let back = storage.read(0, 0).unwrap();
    assert_eq!(back.upper_half.iter().next().unwrap().1, &noise[..]);
}

#[test]
fn legacy_images_restore_bit_identically_under_the_new_default_config() {
    // Write the corpus the way the pre-codec store did (RLE + FNV-1a, version-1
    // manifests), then read it through a view configured with the new defaults:
    // reads follow the manifest's own record, so nothing may change.
    for (app, storage, images) in corpus(StorageConfig::legacy()) {
        let reader = storage.clone().with_config(StorageConfig::default());
        assert_eq!(reader.config(), StorageConfig::default());
        let generation = *storage.generations().last().unwrap();
        for (rank, image) in images.iter().enumerate() {
            let restored = reader.read(generation, rank as i32).unwrap();
            assert_eq!(
                restored.encode(),
                image.encode(),
                "{app:?} rank {rank} legacy image changed under the new config"
            );
        }
    }
}

#[test]
fn generations_written_under_different_configs_coexist_in_one_store() {
    // Generation G written under the legacy config, generation G+1 written after
    // the switch: both must restore bit-identically from the same catalog. The
    // store re-chunks everything at the switch (clean-region reuse is gated on the
    // digest matching), so the new generation never mixes digest spaces.
    let storage = CheckpointStorage::unmetered().with_config(StorageConfig::legacy());
    let images = checkpoint_app(AppId::Lulesh, &storage, 5);
    let generation = *storage.generations().last().unwrap();

    let switched = storage.clone().with_config(StorageConfig::default());
    let mut next_images = Vec::new();
    for image in &images {
        let mut metadata = image.metadata.clone();
        metadata.generation = generation + 1;
        let next = CheckpointImage::new(metadata, image.upper_half.clone());
        switched.write_image(StoragePolicy::IncrementalCompressed, &next);
        next_images.push(next);
    }

    for (rank, (old, new)) in images.iter().zip(&next_images).enumerate() {
        let rank = rank as i32;
        assert_eq!(
            switched.read(generation, rank).unwrap().encode(),
            old.encode()
        );
        assert_eq!(
            switched.read(generation + 1, rank).unwrap().encode(),
            new.encode()
        );
    }
}

#[test]
fn elastic_resize_works_across_codec_generations() {
    // Checkpoint elastically at 4 ranks under the legacy config, resize onto 3
    // ranks reading through the new default config, and require the finished job
    // checksum to equal the uninterrupted 4-rank run.
    let registry = registry();
    let elastic_config = |iterations, checkpoint_at, storage| RunConfig {
        iterations,
        state_scale: 1e-9,
        checkpoint_at,
        store: None,
        storage,
    };
    let run_elastic = |world: usize,
                       registry: &Registry,
                       session_id: u64,
                       config: RunConfig|
     -> Vec<ElasticReport> {
        let lowers = MpichFactory::mpich()
            .launch(world, registry.clone(), session_id)
            .unwrap();
        let handles: Vec<_> = lowers
            .into_iter()
            .map(|lower| {
                let registry = registry.clone();
                let config = config.clone();
                std::thread::spawn(move || {
                    let mana_config =
                        ManaConfig::new_design().with_storage(StoragePolicy::IncrementalCompressed);
                    let rank = ManaRank::new(lower, mana_config, registry).unwrap();
                    let mut session = Session::new(rank);
                    run_app_elastic(AppId::CoMd, &mut session, &config).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    };

    let baseline = run_elastic(4, &registry, 1, elastic_config(6, None, None));
    let expected = job_checksum(&baseline);

    let storage = CheckpointStorage::unmetered().with_config(StorageConfig::legacy());
    run_elastic(
        4,
        &registry,
        2,
        elastic_config(3, Some(3), Some(storage.clone())),
    );

    // Resize reads through a new-default-config view of the same chunk space.
    let reader = storage.clone().with_config(StorageConfig::default());
    let lowers = MpichFactory::mpich()
        .launch(3, registry.clone(), 3)
        .unwrap();
    let (ranks, _) = resize_job_from_storage(
        lowers,
        &reader,
        RemapPolicy::Block,
        &SkeletonRepartition::default(),
        ManaConfig::new_design().with_storage(StoragePolicy::IncrementalCompressed),
        registry.clone(),
    )
    .unwrap();
    let finish_config = elastic_config(6, None, None);
    let handles: Vec<_> = ranks
        .into_iter()
        .map(|rank| {
            let config = finish_config.clone();
            std::thread::spawn(move || {
                let mut session = Session::new(rank);
                run_app_elastic(AppId::CoMd, &mut session, &config).unwrap()
            })
        })
        .collect();
    let finished: Vec<ElasticReport> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(
        finished.iter().map(|r| r.iterations_completed).max(),
        Some(6)
    );
    assert_eq!(
        job_checksum(&finished),
        expected,
        "resize across codec generations diverged from the uninterrupted run"
    );
}
