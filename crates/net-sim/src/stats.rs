//! Fabric traffic counters.
//!
//! These are observability hooks for the benchmark harness (message/byte counts feed
//! the runtime-overhead model) and for tests (e.g. verifying that a MANA drain really
//! did empty the network). They are *not* part of the checkpoint image: fabric state is
//! exactly the state MANA refuses to save.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing all traffic a fabric has carried.
#[derive(Debug, Default)]
pub struct FabricStats {
    /// Point-to-point messages injected.
    pub messages_sent: AtomicU64,
    /// Point-to-point payload bytes injected.
    pub bytes_sent: AtomicU64,
    /// Point-to-point messages consumed by receives.
    pub messages_received: AtomicU64,
    /// Collective exchange rounds completed (one per collective call per communicator).
    pub collective_rounds: AtomicU64,
    /// Collective payload bytes contributed.
    pub collective_bytes: AtomicU64,
    /// Payload bytes genuinely materialized (a fresh allocation was filled). The
    /// initial injection of each payload counts here; so would any accidental
    /// re-copy on a retransmit or fan-out path.
    pub bytes_copied: AtomicU64,
    /// Payload bytes handed off by refcount bump instead of copying: chaos
    /// redeliveries, retransmits and collective fan-out reads all land here.
    /// `bytes_shared > 0` under chaos is the measured proof of resharing.
    pub bytes_shared: AtomicU64,
}

impl FabricStats {
    /// New zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a point-to-point injection of `bytes` payload bytes.
    pub fn record_send(&self, bytes: usize) {
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record a point-to-point receive.
    pub fn record_recv(&self) {
        self.messages_received.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one rank's contribution to a collective.
    pub fn record_collective(&self, bytes: usize) {
        self.collective_rounds.fetch_add(1, Ordering::Relaxed);
        self.collective_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record that `bytes` payload bytes were materialized into a fresh allocation.
    pub fn record_payload_copy(&self, bytes: usize) {
        self.bytes_copied.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record that `bytes` payload bytes were handed off by sharing the allocation.
    pub fn record_payload_share(&self, bytes: usize) {
        self.bytes_shared.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Snapshot of the counters as plain numbers.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            messages_sent: self.messages_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            messages_received: self.messages_received.load(Ordering::Relaxed),
            collective_rounds: self.collective_rounds.load(Ordering::Relaxed),
            collective_bytes: self.collective_bytes.load(Ordering::Relaxed),
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed),
            bytes_shared: self.bytes_shared.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`FabricStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Point-to-point messages injected.
    pub messages_sent: u64,
    /// Point-to-point payload bytes injected.
    pub bytes_sent: u64,
    /// Point-to-point messages consumed by receives.
    pub messages_received: u64,
    /// Collective exchange rounds completed.
    pub collective_rounds: u64,
    /// Collective payload bytes contributed.
    pub collective_bytes: u64,
    /// Payload bytes genuinely materialized into fresh allocations.
    pub bytes_copied: u64,
    /// Payload bytes handed off by refcount bump instead of copying.
    pub bytes_shared: u64,
}

impl StatsSnapshot {
    /// Messages injected but not yet received at the time of the snapshot.
    pub fn in_flight(&self) -> u64 {
        self.messages_sent.saturating_sub(self.messages_received)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = FabricStats::new();
        stats.record_send(100);
        stats.record_send(50);
        stats.record_recv();
        stats.record_collective(8);
        let snap = stats.snapshot();
        assert_eq!(snap.messages_sent, 2);
        assert_eq!(snap.bytes_sent, 150);
        assert_eq!(snap.messages_received, 1);
        assert_eq!(snap.in_flight(), 1);
        assert_eq!(snap.collective_rounds, 1);
        assert_eq!(snap.collective_bytes, 8);
    }

    #[test]
    fn copy_and_share_accounting() {
        let stats = FabricStats::new();
        stats.record_payload_copy(64);
        stats.record_payload_share(64);
        stats.record_payload_share(64);
        let snap = stats.snapshot();
        assert_eq!(snap.bytes_copied, 64);
        assert_eq!(snap.bytes_shared, 128);
    }
}
