//! # net-sim
//!
//! A simulated interconnect fabric standing in for the network stack (TCP, InfiniBand,
//! Slingshot, ...) underneath the simulated MPI implementations.
//!
//! The fabric exists for two reasons that mirror the paper:
//!
//! 1. **It is what the lower half talks to.** All three simulated MPI implementations
//!    (`mpich-sim`, `openmpi-sim`, `exampi-sim`) move bytes exclusively through a
//!    [`fabric::Endpoint`], so the MANA layer above them never needs network-specific
//!    knowledge — the "Network-Agnostic" half of MANA's design.
//! 2. **It holds state that cannot be checkpointed.** Messages that have been injected
//!    but not yet received live inside the fabric mailboxes, and each fabric instance
//!    carries a per-session nonce modelling NIC/switch hardware state. A checkpoint
//!    that naively saved and restored this state would be incorrect; MANA's answer —
//!    drain in-flight point-to-point traffic *through MPI calls* before checkpointing,
//!    and rebuild the lower half from scratch at restart — is exercised against exactly
//!    this structure.
//!
//! The fabric is deliberately synchronous and in-memory: ranks are threads, a send
//! deposits an envelope in the destination's mailbox (eager protocol), and a blocking
//! receive parks the calling thread on a condition variable until a matching envelope
//! arrives. Collectives use a generation-counted exchange slot keyed by communication
//! context, giving the same rendezvous semantics a real implementation builds from
//! point-to-point or hardware collectives.
//!
//! The [`chaos`] module adds a third reason to exist: seeded fault injection. A
//! [`ChaosPlan`] installed on a fabric can delay, drop or reorder messages (masked by
//! per-pair sequencing and the mailbox re-sequencing lane), partition rank sets, and
//! kill ranks or whole nodes (detected through the fabric's heartbeat lane). This is
//! what the self-healing orchestrator in `job-runtime` is exercised against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
pub mod chaos;
pub mod clock;
pub mod fabric;
pub mod mailbox;
pub mod message;
pub mod stats;

pub use bytes::PayloadBuf;
pub use chaos::{ChaosAction, ChaosEvent, ChaosMenu, ChaosPlan, FaultKind, SplitMix64};
pub use fabric::{Endpoint, Fabric, FabricCapture, FabricConfig};
pub use message::{Envelope, MatchSpec};
pub use stats::FabricStats;
