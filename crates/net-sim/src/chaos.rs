//! Seeded fault injection for the simulated fabric.
//!
//! A [`ChaosPlan`] is a deterministic, replayable schedule of network and process
//! faults: given the same seed and the same workload, the same faults fire at the same
//! points. The plan is installed on a [`crate::Fabric`] with
//! [`crate::Fabric::install_chaos`]; the fabric then consults it on every operation.
//!
//! Faults come in two families with very different fates:
//!
//! * **Masked faults** — [`FaultKind::DelayMessage`], [`FaultKind::DropMessage`]
//!   (dropped-then-retransmitted), [`FaultKind::ReorderMessage`], and a
//!   [`FaultKind::Partition`] that heals before the heartbeat deadline. These model
//!   the misbehaviour a reliable transport absorbs. The fabric's per-(source, dest)
//!   sequencing plus the mailbox re-sequencing lane hide them completely from the MPI
//!   layer: the job neither fails nor diverges, which is what lets a chaos soak demand
//!   bit-identical results.
//! * **Detected faults** — [`FaultKind::CrashRank`], [`FaultKind::CrashInCollective`],
//!   [`FaultKind::KillNode`], and a partition that outlives the heartbeat deadline.
//!   No transport can mask a dead process. These surface as missed heartbeats; a
//!   self-healing orchestrator detects them, aborts the world, falls back to the
//!   newest committed checkpoint generation, and relaunches.
//!
//! Nothing here uses wall-clock randomness or external crates: the RNG is an in-tree
//! SplitMix64, so a failing soak seed can be replayed exactly.

use mpi_model::types::Rank;
use serde::{Deserialize, Serialize};

/// Deterministic 64-bit RNG (SplitMix64). Small, fast, and good enough for fault
/// scheduling; never use wall-clock entropy here — plans must replay exactly.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform value in `[lo, hi)`; `hi` must exceed `lo`.
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }
}

/// One injectable fault. `nth`/`at_op` style triggers count *fabric operations*
/// (sends, receives, probes, collective entries), which makes plans deterministic for
/// a deterministic workload regardless of thread scheduling jitter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Hold the `nth` injected point-to-point message for `hold_ms` before delivering
    /// it. Masked by the mailbox re-sequencing lane.
    DelayMessage {
        /// Fabric-wide injection index of the message to delay (0-based).
        nth: u64,
        /// How long to hold it, in milliseconds.
        hold_ms: u64,
    },
    /// Drop the `nth` injected message on the floor, then retransmit it `retransmit_ms`
    /// later — the reliable-transport view of packet loss. Masked.
    DropMessage {
        /// Fabric-wide injection index of the message to drop.
        nth: u64,
        /// Retransmission delay, in milliseconds.
        retransmit_ms: u64,
    },
    /// Hold the `nth` injected message until `overtaken_by` further messages have been
    /// injected fabric-wide, letting later traffic overtake it. Masked.
    ReorderMessage {
        /// Fabric-wide injection index of the message to hold back.
        nth: u64,
        /// How many later injections must pass it before it is released.
        overtaken_by: u64,
    },
    /// Split the world at global operation `at_op`: the `isolated` ranks lose
    /// connectivity to everyone else (cross-cut messages are buffered, collective
    /// entries stall, and — crucially — the isolated ranks' heartbeats stop reaching
    /// the board). Heals after `heal_ms` if given; a heal faster than the heartbeat
    /// deadline is fully masked, a slower (or absent) one is detected as a failure.
    Partition {
        /// Global fabric-operation count at which the partition starts.
        at_op: u64,
        /// Ranks on the isolated (minority) side of the cut.
        isolated: Vec<Rank>,
        /// Time until the partition heals, in milliseconds; `None` never heals.
        heal_ms: Option<u64>,
    },
    /// Kill one rank the moment it performs its `at_rank_op`-th fabric operation.
    /// Uncoordinated: no intent broadcast, no drain — exactly the failure mode the
    /// two-phase checkpoint protocol can *not* be warned about.
    CrashRank {
        /// World rank to kill.
        rank: Rank,
        /// Per-rank operation count at which the rank dies.
        at_rank_op: u64,
    },
    /// Kill one rank as it *enters* its `at_entry`-th collective — after registering
    /// intent, before contributing — leaving peers mid-collective with a permanently
    /// missing contribution.
    CrashInCollective {
        /// World rank to kill.
        rank: Rank,
        /// Per-rank collective-entry count at which the rank dies.
        at_entry: u64,
    },
    /// Kill a whole set of ranks at once at global operation `at_op` — a node (or
    /// chassis) failure taking down every rank it hosted.
    KillNode {
        /// World ranks sharing the failed node.
        ranks: Vec<Rank>,
        /// Global fabric-operation count at which the node dies.
        at_op: u64,
    },
}

impl FaultKind {
    /// Short category name, used in events, logs and bench aggregation.
    pub fn category(&self) -> &'static str {
        match self {
            FaultKind::DelayMessage { .. } => "delay",
            FaultKind::DropMessage { .. } => "loss",
            FaultKind::ReorderMessage { .. } => "reorder",
            FaultKind::Partition { .. } => "partition",
            FaultKind::CrashRank { .. } => "crash",
            FaultKind::CrashInCollective { .. } => "crash-in-collective",
            FaultKind::KillNode { .. } => "node-failure",
        }
    }

    /// Whether the fabric + mailbox layer is expected to mask this fault completely
    /// (no failure surfaces to the layers above). Partitions are masked only if they
    /// heal; the caller must compare `heal_ms` against the heartbeat deadline in use.
    pub fn lethal(&self) -> bool {
        matches!(
            self,
            FaultKind::CrashRank { .. }
                | FaultKind::CrashInCollective { .. }
                | FaultKind::KillNode { .. }
        )
    }
}

/// How many faults of each category a seeded plan should contain, and the parameter
/// envelopes used when rolling them. The defaults produce a mixed plan whose masked
/// outages stay safely below a ~250 ms heartbeat deadline.
#[derive(Debug, Clone)]
pub struct ChaosMenu {
    /// Number of [`FaultKind::DelayMessage`] faults.
    pub delays: usize,
    /// Number of [`FaultKind::DropMessage`] faults.
    pub losses: usize,
    /// Number of [`FaultKind::ReorderMessage`] faults.
    pub reorders: usize,
    /// Number of healing [`FaultKind::Partition`] faults.
    pub partitions: usize,
    /// Number of [`FaultKind::CrashRank`] faults.
    pub crashes: usize,
    /// Number of [`FaultKind::CrashInCollective`] faults.
    pub collective_crashes: usize,
    /// Number of [`FaultKind::KillNode`] faults.
    pub node_failures: usize,
    /// Upper bound (exclusive, ms) for masked outages: message holds and partition
    /// heal times. Keep below the heartbeat deadline or masked faults become
    /// detected ones.
    pub masked_outage_ms: u64,
    /// Upper bound (exclusive) for operation-count triggers. Should be comfortably
    /// inside the number of fabric operations one incarnation performs, so every
    /// fault actually gets a chance to fire.
    pub op_horizon: u64,
    /// Ranks per simulated node, used to pick [`FaultKind::KillNode`] victim sets.
    pub ranks_per_node: usize,
}

impl Default for ChaosMenu {
    fn default() -> Self {
        ChaosMenu {
            delays: 2,
            losses: 2,
            reorders: 2,
            partitions: 1,
            crashes: 1,
            collective_crashes: 1,
            node_failures: 1,
            masked_outage_ms: 40,
            op_horizon: 400,
            ranks_per_node: 2,
        }
    }
}

impl ChaosMenu {
    /// A menu containing only masked faults (no crashes, node failures, or
    /// non-healing partitions): useful for asserting that chaos alone never
    /// perturbs results.
    pub fn masked_only() -> Self {
        ChaosMenu {
            crashes: 0,
            collective_crashes: 0,
            node_failures: 0,
            ..ChaosMenu::default()
        }
    }
}

/// A deterministic, replayable schedule of faults for one job. Faults are identified
/// by their index in `faults`; the fabric reports which ids fired so an orchestrator
/// can re-install only the unfired remainder after a recovery.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Seed the plan was rolled from (0 for hand-built plans); recorded so a failing
    /// soak can name the exact seed to replay.
    pub seed: u64,
    /// The scheduled faults, in id order.
    pub faults: Vec<FaultKind>,
}

impl ChaosPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        ChaosPlan {
            seed: 0,
            faults: Vec::new(),
        }
    }

    /// A hand-built plan from an explicit fault list.
    pub fn from_faults(faults: Vec<FaultKind>) -> Self {
        ChaosPlan { seed: 0, faults }
    }

    /// Roll a randomized plan from `seed` for a `world_size`-rank job, drawing fault
    /// counts and parameter envelopes from `menu`. Deterministic: same inputs, same
    /// plan.
    pub fn seeded(seed: u64, world_size: usize, menu: &ChaosMenu) -> Self {
        assert!(world_size > 1, "chaos needs at least two ranks");
        let mut rng = SplitMix64::new(seed);
        let mut faults = Vec::new();
        let outage = menu.masked_outage_ms.max(2);
        for _ in 0..menu.delays {
            faults.push(FaultKind::DelayMessage {
                nth: rng.below(menu.op_horizon),
                hold_ms: rng.in_range(1, outage),
            });
        }
        for _ in 0..menu.losses {
            faults.push(FaultKind::DropMessage {
                nth: rng.below(menu.op_horizon),
                retransmit_ms: rng.in_range(1, outage),
            });
        }
        for _ in 0..menu.reorders {
            faults.push(FaultKind::ReorderMessage {
                nth: rng.below(menu.op_horizon),
                overtaken_by: rng.in_range(1, 6),
            });
        }
        for _ in 0..menu.partitions {
            // Isolate a strict minority so the majority side keeps a quorum of beats.
            let max_isolated = ((world_size - 1) / 2).max(1);
            let count = rng.in_range(1, max_isolated as u64 + 1) as usize;
            let first = rng.below(world_size as u64) as usize;
            let isolated = (0..count)
                .map(|i| ((first + i) % world_size) as Rank)
                .collect();
            faults.push(FaultKind::Partition {
                at_op: rng.below(menu.op_horizon),
                isolated,
                heal_ms: Some(rng.in_range(1, outage)),
            });
        }
        for _ in 0..menu.crashes {
            faults.push(FaultKind::CrashRank {
                rank: rng.below(world_size as u64) as Rank,
                at_rank_op: rng.in_range(1, menu.op_horizon.max(2)),
            });
        }
        for _ in 0..menu.collective_crashes {
            faults.push(FaultKind::CrashInCollective {
                rank: rng.below(world_size as u64) as Rank,
                at_entry: rng.in_range(1, 12),
            });
        }
        for _ in 0..menu.node_failures {
            let node = rng.below(world_size as u64) as usize;
            let ranks = (0..menu.ranks_per_node.max(1))
                .map(|i| ((node + i) % world_size) as Rank)
                .filter(|r| (*r as usize) < world_size)
                .collect();
            faults.push(FaultKind::KillNode {
                ranks,
                at_op: rng.below(menu.op_horizon),
            });
        }
        ChaosPlan { seed, faults }
    }

    /// The plan with the given fault ids removed: what an orchestrator re-installs on
    /// a relaunched incarnation so already-fired faults do not fire twice. Ids are
    /// positions in the *original* plan; the surviving faults keep their ids via the
    /// companion vector returned.
    pub fn without_fired(&self, fired: &[usize]) -> (ChaosPlan, Vec<usize>) {
        let mut faults = Vec::new();
        let mut ids = Vec::new();
        for (id, fault) in self.faults.iter().enumerate() {
            if !fired.contains(&id) {
                faults.push(fault.clone());
                ids.push(id);
            }
        }
        (
            ChaosPlan {
                seed: self.seed,
                faults,
            },
            ids,
        )
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of lethal (non-maskable) faults in the plan.
    pub fn lethal_count(&self) -> usize {
        self.faults.iter().filter(|f| f.lethal()).count()
    }
}

/// A timestamped record of one chaos action the fabric actually took. Timestamps are
/// microseconds since the owning fabric's creation instant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosEvent {
    /// Microseconds since fabric creation.
    pub at_micros: u64,
    /// Id (plan index) of the fault that caused this event, if any; partition heals
    /// and manual injections reuse the id of the fault that opened them.
    pub fault_id: Option<usize>,
    /// What happened.
    pub action: ChaosAction,
}

/// The concrete action taken by the chaos layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosAction {
    /// A message was held for later delivery (delay or reorder).
    MessageHeld {
        /// Sender world rank.
        source: Rank,
        /// Destination world rank.
        dest: Rank,
        /// Fault category ("delay" / "reorder").
        category: String,
    },
    /// A message was dropped and scheduled for retransmission.
    MessageDropped {
        /// Sender world rank.
        source: Rank,
        /// Destination world rank.
        dest: Rank,
    },
    /// A previously held or dropped message was (re)delivered.
    MessageReleased {
        /// Sender world rank.
        source: Rank,
        /// Destination world rank.
        dest: Rank,
    },
    /// A partition started; the listed ranks are isolated.
    PartitionStarted {
        /// Isolated world ranks.
        isolated: Vec<Rank>,
    },
    /// A partition healed; held cross-cut traffic was released.
    PartitionHealed {
        /// Previously isolated world ranks.
        isolated: Vec<Rank>,
    },
    /// A rank was killed (crash or node failure).
    RankKilled {
        /// The killed world rank.
        rank: Rank,
        /// Cause label, e.g. "crash", "crash-in-collective", "node-failure".
        cause: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_varied() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert_eq!(distinct.len(), xs.len());
        let mut c = SplitMix64::new(43);
        assert_ne!(c.next_u64(), xs[0]);
    }

    #[test]
    fn in_range_respects_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = rng.in_range(5, 9);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn seeded_plan_is_reproducible_and_covers_categories() {
        let menu = ChaosMenu::default();
        let a = ChaosPlan::seeded(99, 4, &menu);
        let b = ChaosPlan::seeded(99, 4, &menu);
        assert_eq!(a, b);
        let categories: std::collections::HashSet<_> =
            a.faults.iter().map(|f| f.category()).collect();
        for want in [
            "delay",
            "loss",
            "reorder",
            "partition",
            "crash",
            "crash-in-collective",
            "node-failure",
        ] {
            assert!(categories.contains(want), "missing category {want}");
        }
        assert_eq!(a.lethal_count(), 3);
        assert_ne!(ChaosPlan::seeded(100, 4, &menu), a);
    }

    #[test]
    fn masked_only_menu_has_no_lethal_faults() {
        let plan = ChaosPlan::seeded(1, 4, &ChaosMenu::masked_only());
        assert_eq!(plan.lethal_count(), 0);
        assert!(!plan.is_empty());
    }

    #[test]
    fn partition_isolates_a_strict_minority() {
        for seed in 0..32 {
            let plan = ChaosPlan::seeded(seed, 6, &ChaosMenu::default());
            for fault in &plan.faults {
                if let FaultKind::Partition { isolated, .. } = fault {
                    assert!(!isolated.is_empty());
                    assert!(isolated.len() <= 2, "minority of 6 is at most 2");
                }
            }
        }
    }

    #[test]
    fn without_fired_keeps_original_ids() {
        let plan = ChaosPlan::seeded(5, 4, &ChaosMenu::default());
        let total = plan.faults.len();
        let (rest, ids) = plan.without_fired(&[0, 2]);
        assert_eq!(rest.faults.len(), total - 2);
        assert!(!ids.contains(&0) && !ids.contains(&2));
        assert_eq!(rest.faults[0], plan.faults[1]);
        assert_eq!(ids[0], 1);
    }
}
