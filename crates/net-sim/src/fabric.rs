//! The fabric: the shared, in-memory "network" connecting all ranks of a job, and the
//! per-rank [`Endpoint`] the MPI implementations use to move bytes.

use crate::mailbox::Mailbox;
use crate::message::{Envelope, MatchSpec};
use crate::stats::{FabricStats, StatsSnapshot};
use mpi_model::error::{MpiError, MpiResult};
use mpi_model::status::Status;
use mpi_model::types::{ContextId, Rank};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long a blocking receive or collective will wait for its counterpart before the
/// fabric declares the job wedged. Real MPI would hang forever; failing fast keeps the
/// test suite debuggable. Generous enough for heavily oversubscribed CI machines.
const BLOCKING_TIMEOUT: Duration = Duration::from_secs(60);

/// Configuration for a fabric instance.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Number of ranks connected to the fabric.
    pub world_size: usize,
    /// Session nonce distinguishing this "hardware instantiation" from any other.
    ///
    /// This models the non-checkpointable NIC/switch state: a restarted job gets a new
    /// fabric with a new nonce, and nothing in a checkpoint image may depend on it.
    pub session_nonce: u64,
}

impl FabricConfig {
    /// Convenience constructor.
    pub fn new(world_size: usize, session_nonce: u64) -> Self {
        FabricConfig {
            world_size,
            session_nonce,
        }
    }
}

struct RankSlot {
    mailbox: Mutex<Mailbox>,
    arrival: Condvar,
    open: AtomicBool,
}

struct CollectiveSlot {
    expected: usize,
    contributions: HashMap<usize, Vec<u8>>,
    result: Option<Arc<Vec<Vec<u8>>>>,
    readers_remaining: usize,
}

/// Registration board entry for one collective round: who has announced intent to
/// enter the collective keyed by `(context, seq)`. The board is the fabric half of
/// the two-phase collective protocol ("trivial barrier"): a member may *withdraw* its
/// registration — atomically, and only while the round is still incomplete — which is
/// what lets a rank step out to service a checkpoint without ever being caught inside
/// the collective's critical phase.
struct RegistrationSlot {
    expected: usize,
    registered: std::collections::HashSet<usize>,
    /// Once every member has registered the round is *committed*: withdrawals fail
    /// and every member must proceed into the real collective exchange.
    committed: bool,
}

struct FabricInner {
    world_size: usize,
    session_nonce: u64,
    slots: Vec<RankSlot>,
    collectives: Mutex<HashMap<(ContextId, u64), CollectiveSlot>>,
    registrations: Mutex<HashMap<(ContextId, u64), RegistrationSlot>>,
    collective_done: Condvar,
    next_context: AtomicU64,
    next_seq: AtomicU64,
    stats: FabricStats,
}

/// The shared fabric connecting every rank of one job (one "session" of the network
/// hardware). Cloning is cheap (it is an `Arc` underneath); each simulated MPI
/// implementation's launch routine creates one fabric and hands each rank an
/// [`Endpoint`] onto it.
#[derive(Clone)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("world_size", &self.inner.world_size)
            .field("session_nonce", &self.inner.session_nonce)
            .finish()
    }
}

impl Fabric {
    /// Create a new fabric for `config.world_size` ranks.
    pub fn new(config: FabricConfig) -> Self {
        let slots = (0..config.world_size)
            .map(|_| RankSlot {
                mailbox: Mutex::new(Mailbox::new()),
                arrival: Condvar::new(),
                open: AtomicBool::new(true),
            })
            .collect();
        Fabric {
            inner: Arc::new(FabricInner {
                world_size: config.world_size,
                session_nonce: config.session_nonce,
                slots,
                collectives: Mutex::new(HashMap::new()),
                registrations: Mutex::new(HashMap::new()),
                collective_done: Condvar::new(),
                // Contexts 1 and 2 are reserved for MPI_COMM_WORLD / MPI_COMM_SELF.
                next_context: AtomicU64::new(16),
                next_seq: AtomicU64::new(0),
                stats: FabricStats::new(),
            }),
        }
    }

    /// Number of ranks connected to this fabric.
    pub fn world_size(&self) -> usize {
        self.inner.world_size
    }

    /// The per-session hardware nonce (never stable across restarts).
    pub fn session_nonce(&self) -> u64 {
        self.inner.session_nonce
    }

    /// Obtain the endpoint for `world_rank`.
    pub fn endpoint(&self, world_rank: Rank) -> MpiResult<Endpoint> {
        if world_rank < 0 || world_rank as usize >= self.inner.world_size {
            return Err(MpiError::InvalidRank {
                rank: world_rank,
                size: self.inner.world_size,
            });
        }
        Ok(Endpoint {
            inner: Arc::clone(&self.inner),
            world_rank,
        })
    }

    /// Allocate a fresh communication context (one per communicator created by the
    /// implementation using this fabric).
    pub fn allocate_context(&self) -> ContextId {
        self.inner.next_context.fetch_add(1, Ordering::Relaxed)
    }

    /// Total number of point-to-point messages currently in flight (injected but not
    /// yet received), across all ranks. After a correct MANA drain this is zero.
    pub fn pending_messages(&self) -> usize {
        self.inner
            .slots
            .iter()
            .map(|s| s.mailbox.lock().pending())
            .sum()
    }

    /// Number of in-flight messages addressed to one rank.
    pub fn pending_for_rank(&self, world_rank: Rank) -> MpiResult<usize> {
        let slot =
            self.inner
                .slots
                .get(world_rank.max(0) as usize)
                .ok_or(MpiError::InvalidRank {
                    rank: world_rank,
                    size: self.inner.world_size,
                })?;
        Ok(slot.mailbox.lock().pending())
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }
}

/// One rank's attachment to the fabric. All methods are callable from that rank's
/// thread; the endpoint is `Send` so the owning lower half can live inside a rank
/// thread.
pub struct Endpoint {
    inner: Arc<FabricInner>,
    world_rank: Rank,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("world_rank", &self.world_rank)
            .finish()
    }
}

impl Endpoint {
    /// World rank of this endpoint.
    pub fn world_rank(&self) -> Rank {
        self.world_rank
    }

    /// Number of ranks on the fabric.
    pub fn world_size(&self) -> usize {
        self.inner.world_size
    }

    /// The per-session hardware nonce.
    pub fn session_nonce(&self) -> u64 {
        self.inner.session_nonce
    }

    /// Allocate a fresh communication context.
    pub fn allocate_context(&self) -> ContextId {
        self.inner.next_context.fetch_add(1, Ordering::Relaxed)
    }

    fn slot(&self, world_rank: Rank) -> MpiResult<&RankSlot> {
        if world_rank < 0 {
            return Err(MpiError::InvalidRank {
                rank: world_rank,
                size: self.inner.world_size,
            });
        }
        self.inner
            .slots
            .get(world_rank as usize)
            .ok_or(MpiError::InvalidRank {
                rank: world_rank,
                size: self.inner.world_size,
            })
    }

    /// Inject a point-to-point message (eager protocol: the payload is buffered at the
    /// destination immediately, whether or not a receive is posted).
    pub fn send(
        &self,
        dest_world: Rank,
        source_comm_rank: Rank,
        context: ContextId,
        tag: i32,
        payload: Vec<u8>,
    ) -> MpiResult<()> {
        let dest = self.slot(dest_world)?;
        if !dest.open.load(Ordering::Acquire) {
            return Err(MpiError::PeerUnreachable(dest_world));
        }
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        self.inner.stats.record_send(payload.len());
        let envelope = Envelope {
            source_world: self.world_rank,
            source_comm_rank,
            dest_world,
            context,
            tag,
            seq,
            payload,
        };
        {
            let mut mailbox = dest.mailbox.lock();
            mailbox.deposit(envelope);
        }
        dest.arrival.notify_all();
        Ok(())
    }

    /// Non-blocking receive: take the earliest matching message if one is present.
    pub fn try_recv(&self, spec: &MatchSpec) -> MpiResult<Option<Envelope>> {
        let slot = self.slot(self.world_rank)?;
        let mut mailbox = slot.mailbox.lock();
        let taken = mailbox.take(spec);
        if taken.is_some() {
            self.inner.stats.record_recv();
        }
        Ok(taken)
    }

    /// Blocking receive: wait until a matching message arrives, then take it.
    pub fn recv_blocking(&self, spec: &MatchSpec) -> MpiResult<Envelope> {
        let slot = self.slot(self.world_rank)?;
        let mut mailbox = slot.mailbox.lock();
        loop {
            if let Some(envelope) = mailbox.take(spec) {
                self.inner.stats.record_recv();
                return Ok(envelope);
            }
            if !slot.open.load(Ordering::Acquire) {
                return Err(MpiError::PeerUnreachable(self.world_rank));
            }
            if slot
                .arrival
                .wait_for(&mut mailbox, BLOCKING_TIMEOUT)
                .timed_out()
            {
                return Err(MpiError::Internal(format!(
                    "rank {} blocked in receive for more than {:?} (context {}, source {:?}, tag {:?})",
                    self.world_rank, BLOCKING_TIMEOUT, spec.context, spec.source_comm_rank, spec.tag
                )));
            }
        }
    }

    /// Probe for a matching message without consuming it (`MPI_Iprobe`).
    pub fn probe(&self, spec: &MatchSpec) -> MpiResult<Option<Status>> {
        let slot = self.slot(self.world_rank)?;
        let mailbox = slot.mailbox.lock();
        Ok(mailbox
            .probe(spec)
            .map(|e| Status::new(e.source_comm_rank, e.tag, e.payload.len())))
    }

    /// Number of messages currently queued for this rank (any context).
    pub fn pending_incoming(&self) -> usize {
        self.slot(self.world_rank)
            .map(|s| s.mailbox.lock().pending())
            .unwrap_or(0)
    }

    /// Number of messages currently queued for this rank on one context.
    pub fn pending_incoming_for_context(&self, context: ContextId) -> usize {
        self.slot(self.world_rank)
            .map(|s| s.mailbox.lock().pending_for_context(context))
            .unwrap_or(0)
    }

    /// Mark this endpoint as closed: subsequent sends to it fail and blocked receives
    /// are woken with an error. Used for failure-injection tests.
    pub fn close(&self) {
        if let Ok(slot) = self.slot(self.world_rank) {
            slot.open.store(false, Ordering::Release);
            slot.arrival.notify_all();
        }
    }

    /// Whether this endpoint is still open.
    pub fn is_open(&self) -> bool {
        self.slot(self.world_rank)
            .map(|s| s.open.load(Ordering::Acquire))
            .unwrap_or(false)
    }

    /// Synchronous all-to-all exchange used as the building block for every collective.
    ///
    /// All `comm_size` members of a communicator call this with the same `(context,
    /// seq)` key and their own `my_index` (their rank within the communicator). Every
    /// caller blocks until all contributions have arrived and then receives the full
    /// ordered vector of contributions. The `(context, seq)` key is what isolates
    /// concurrent collectives on different communicators — and why collective sequence
    /// numbers restart cleanly after a MANA restart (the new lower half starts a new
    /// context space on a new fabric).
    pub fn collective_exchange(
        &self,
        context: ContextId,
        seq: u64,
        my_index: usize,
        comm_size: usize,
        contribution: Vec<u8>,
    ) -> MpiResult<Vec<Vec<u8>>> {
        if comm_size == 0 || my_index >= comm_size {
            return Err(MpiError::Internal(format!(
                "collective exchange with index {my_index} out of {comm_size}"
            )));
        }
        self.inner.stats.record_collective(contribution.len());
        let key = (context, seq);
        let mut table = self.inner.collectives.lock();
        {
            let slot = table.entry(key).or_insert_with(|| CollectiveSlot {
                expected: comm_size,
                contributions: HashMap::with_capacity(comm_size),
                result: None,
                readers_remaining: comm_size,
            });
            if slot.expected != comm_size {
                return Err(MpiError::CollectiveMismatch(format!(
                    "ranks disagree about communicator size: {} vs {}",
                    slot.expected, comm_size
                )));
            }
            if slot.contributions.insert(my_index, contribution).is_some() {
                return Err(MpiError::CollectiveMismatch(format!(
                    "rank index {my_index} contributed twice to collective {key:?}"
                )));
            }
            if slot.contributions.len() == slot.expected {
                let mut ordered = Vec::with_capacity(slot.expected);
                for i in 0..slot.expected {
                    ordered.push(
                        slot.contributions
                            .remove(&i)
                            .expect("all indices 0..expected contributed"),
                    );
                }
                slot.result = Some(Arc::new(ordered));
                self.inner.collective_done.notify_all();
            }
        }
        // Wait for completion, then pick up the shared result.
        loop {
            let finished = {
                let slot = table.get(&key).ok_or_else(|| {
                    MpiError::Internal("collective slot vanished before completion".into())
                })?;
                slot.result.clone()
            };
            if let Some(result) = finished {
                let remove = {
                    let slot = table
                        .get_mut(&key)
                        .expect("slot exists while readers remain");
                    slot.readers_remaining -= 1;
                    slot.readers_remaining == 0
                };
                if remove {
                    table.remove(&key);
                    // The round is over: clear any registration-board entry for the
                    // same key (every registrant necessarily contributed).
                    self.inner.registrations.lock().remove(&key);
                }
                return Ok(result.as_ref().clone());
            }
            if self
                .inner
                .collective_done
                .wait_for(&mut table, BLOCKING_TIMEOUT)
                .timed_out()
            {
                return Err(MpiError::Internal(format!(
                    "rank {} blocked in collective (context {context}, seq {seq}) for more than {:?}",
                    self.world_rank, BLOCKING_TIMEOUT
                )));
            }
        }
    }

    // ------------------------------------------------------------------
    // Two-phase collective registration ("trivial barrier") board
    // ------------------------------------------------------------------

    /// Announce intent to enter the collective `(context, seq)`. Idempotent: a member
    /// re-registering (after stepping out for a checkpoint) is a no-op. Once the last
    /// member registers, the round *commits* and withdrawals start failing.
    pub fn collective_register(
        &self,
        context: ContextId,
        seq: u64,
        my_index: usize,
        comm_size: usize,
    ) -> MpiResult<()> {
        if comm_size == 0 || my_index >= comm_size {
            return Err(MpiError::Internal(format!(
                "collective registration with index {my_index} out of {comm_size}"
            )));
        }
        let mut board = self.inner.registrations.lock();
        let slot = board
            .entry((context, seq))
            .or_insert_with(|| RegistrationSlot {
                expected: comm_size,
                registered: std::collections::HashSet::with_capacity(comm_size),
                committed: false,
            });
        if slot.expected != comm_size {
            return Err(MpiError::CollectiveMismatch(format!(
                "ranks disagree about communicator size in registration: {} vs {}",
                slot.expected, comm_size
            )));
        }
        slot.registered.insert(my_index);
        if slot.registered.len() == slot.expected {
            slot.committed = true;
        }
        Ok(())
    }

    /// Whether the registration round `(context, seq)` has committed (every member
    /// registered). A missing slot reads as not committed: the caller is expected to
    /// hold a live registration of its own while polling.
    pub fn collective_registration_committed(&self, context: ContextId, seq: u64) -> bool {
        self.inner
            .registrations
            .lock()
            .get(&(context, seq))
            .map(|slot| slot.committed)
            .unwrap_or(false)
    }

    /// Atomically withdraw `my_index`'s registration from round `(context, seq)`.
    /// Returns `true` if the withdrawal succeeded (the rank is provably *outside* the
    /// collective and may safely checkpoint), `false` if the round has already
    /// committed — in which case the rank is obliged to enter the real collective
    /// before doing anything else. This check-and-remove is one critical section, so
    /// exactly one of "withdrawn" / "committed" holds for every member.
    pub fn collective_withdraw(
        &self,
        context: ContextId,
        seq: u64,
        my_index: usize,
    ) -> MpiResult<bool> {
        let mut board = self.inner.registrations.lock();
        let Some(slot) = board.get_mut(&(context, seq)) else {
            // Nothing registered under this key: trivially out.
            return Ok(true);
        };
        if slot.committed {
            return Ok(false);
        }
        slot.registered.remove(&my_index);
        if slot.registered.is_empty() {
            board.remove(&(context, seq));
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn fabric(n: usize) -> Fabric {
        Fabric::new(FabricConfig::new(n, 0xdead_beef))
    }

    #[test]
    fn send_then_recv_same_thread() {
        let f = fabric(2);
        let e0 = f.endpoint(0).unwrap();
        let e1 = f.endpoint(1).unwrap();
        e0.send(1, 0, 1, 7, vec![1, 2, 3]).unwrap();
        assert_eq!(f.pending_messages(), 1);
        let spec = MatchSpec::from_mpi_args(1, 0, 7);
        let env = e1.recv_blocking(&spec).unwrap();
        assert_eq!(env.payload, vec![1, 2, 3]);
        assert_eq!(env.source_comm_rank, 0);
        assert_eq!(f.pending_messages(), 0);
        assert_eq!(f.stats().messages_sent, 1);
        assert_eq!(f.stats().messages_received, 1);
    }

    #[test]
    fn blocking_recv_waits_for_sender() {
        let f = fabric(2);
        let e1 = f.endpoint(1).unwrap();
        let f2 = f.clone();
        let sender = thread::spawn(move || {
            let e0 = f2.endpoint(0).unwrap();
            std::thread::sleep(Duration::from_millis(20));
            e0.send(1, 0, 1, 3, vec![9]).unwrap();
        });
        let env = e1
            .recv_blocking(&MatchSpec::from_mpi_args(1, 0, 3))
            .unwrap();
        assert_eq!(env.payload, vec![9]);
        sender.join().unwrap();
    }

    #[test]
    fn probe_and_try_recv() {
        let f = fabric(2);
        let e0 = f.endpoint(0).unwrap();
        let e1 = f.endpoint(1).unwrap();
        let spec = MatchSpec::from_mpi_args(1, 0, 5);
        assert!(e1.probe(&spec).unwrap().is_none());
        assert!(e1.try_recv(&spec).unwrap().is_none());
        e0.send(1, 0, 1, 5, vec![0; 16]).unwrap();
        let st = e1.probe(&spec).unwrap().unwrap();
        assert_eq!(st.count_bytes, 16);
        assert_eq!(e1.pending_incoming(), 1);
        assert!(e1.try_recv(&spec).unwrap().is_some());
        assert_eq!(e1.pending_incoming(), 0);
    }

    #[test]
    fn contexts_isolate_traffic() {
        let f = fabric(2);
        let e0 = f.endpoint(0).unwrap();
        let e1 = f.endpoint(1).unwrap();
        e0.send(1, 0, 100, 0, vec![1]).unwrap();
        // A receive on context 200 must not match the message on context 100.
        assert!(e1
            .try_recv(&MatchSpec::from_mpi_args(200, 0, 0))
            .unwrap()
            .is_none());
        assert_eq!(e1.pending_incoming_for_context(100), 1);
        assert_eq!(e1.pending_incoming_for_context(200), 0);
    }

    #[test]
    fn closed_endpoint_rejects_sends() {
        let f = fabric(2);
        let e0 = f.endpoint(0).unwrap();
        let e1 = f.endpoint(1).unwrap();
        assert!(e1.is_open());
        e1.close();
        assert!(!e1.is_open());
        assert_eq!(
            e0.send(1, 0, 1, 0, vec![1]),
            Err(MpiError::PeerUnreachable(1))
        );
    }

    #[test]
    fn collective_exchange_gathers_all_contributions() {
        let n = 4;
        let f = fabric(n);
        let mut handles = vec![];
        for rank in 0..n {
            let f = f.clone();
            handles.push(thread::spawn(move || {
                let ep = f.endpoint(rank as Rank).unwrap();
                ep.collective_exchange(1, 0, rank, n, vec![rank as u8; 2])
                    .unwrap()
            }));
        }
        for h in handles {
            let result = h.join().unwrap();
            assert_eq!(result.len(), n);
            for (i, contribution) in result.iter().enumerate() {
                assert_eq!(contribution, &vec![i as u8; 2]);
            }
        }
        // The collective slot must have been cleaned up.
        assert_eq!(f.inner.collectives.lock().len(), 0);
        assert_eq!(f.stats().collective_rounds, n as u64);
    }

    #[test]
    fn collective_mismatch_detected() {
        let f = fabric(3);
        let e0 = f.endpoint(0).unwrap();
        let e1 = f.endpoint(1).unwrap();
        // Rank 0 claims the communicator has 1 member and completes alone.
        e0.collective_exchange(7, 0, 0, 1, vec![]).unwrap();
        // Rank 1 then claims it has 2 members under the same key: size mismatch.
        // (The slot was cleaned up after rank 0's solo collective, so re-create it
        //  and then disagree within the same generation.)
        let r = e1.collective_exchange(7, 1, 0, 1, vec![]);
        assert!(r.is_ok());
        let e2 = f.endpoint(2).unwrap();
        let h = {
            let f = f.clone();
            thread::spawn(move || {
                let ep = f.endpoint(0).unwrap();
                ep.collective_exchange(9, 0, 0, 2, vec![])
            })
        };
        // Let rank 0 create the slot with size 2, then rank 2 disagrees with size 3.
        std::thread::sleep(Duration::from_millis(20));
        let err = e2.collective_exchange(9, 0, 1, 3, vec![]).unwrap_err();
        assert!(matches!(err, MpiError::CollectiveMismatch(_)));
        // Unblock rank 0 by providing the second size-2 contribution.
        e1.collective_exchange(9, 0, 1, 2, vec![]).unwrap();
        h.join().unwrap().unwrap();
    }

    #[test]
    fn context_allocation_is_unique() {
        let f = fabric(2);
        let a = f.allocate_context();
        let b = f.allocate_context();
        let c = f.endpoint(0).unwrap().allocate_context();
        assert!(a != b && b != c && a != c);
        assert!(a >= 16, "low context ids are reserved for world/self");
    }

    #[test]
    fn invalid_rank_is_rejected() {
        let f = fabric(2);
        assert!(f.endpoint(2).is_err());
        assert!(f.endpoint(-1).is_err());
        let e0 = f.endpoint(0).unwrap();
        assert!(e0.send(5, 0, 1, 0, vec![]).is_err());
        assert!(f.pending_for_rank(9).is_err());
    }

    #[test]
    fn registration_board_commits_and_blocks_withdrawal() {
        let f = fabric(3);
        let e0 = f.endpoint(0).unwrap();
        let e1 = f.endpoint(1).unwrap();
        let e2 = f.endpoint(2).unwrap();
        // Two of three register: not committed, withdrawal allowed (and idempotent
        // re-registration is a no-op).
        e0.collective_register(40, 0, 0, 3).unwrap();
        e0.collective_register(40, 0, 0, 3).unwrap();
        e1.collective_register(40, 0, 1, 3).unwrap();
        assert!(!e0.collective_registration_committed(40, 0));
        assert!(e1.collective_withdraw(40, 0, 1).unwrap());
        // After the withdrawal the last member cannot commit the round alone.
        e2.collective_register(40, 0, 2, 3).unwrap();
        assert!(!e2.collective_registration_committed(40, 0));
        // All three in: committed, withdrawal now fails for everyone.
        e1.collective_register(40, 0, 1, 3).unwrap();
        assert!(e0.collective_registration_committed(40, 0));
        assert!(!e1.collective_withdraw(40, 0, 1).unwrap());
        assert!(!e0.collective_withdraw(40, 0, 0).unwrap());
        // A size disagreement is caught at registration time.
        let err = e0.collective_register(40, 0, 0, 2).unwrap_err();
        assert!(matches!(err, MpiError::CollectiveMismatch(_)));
        // Completing the matching exchange clears the board entry.
        let handles: Vec<_> = (0..3)
            .map(|rank| {
                let f = f.clone();
                thread::spawn(move || {
                    let ep = f.endpoint(rank as Rank).unwrap();
                    ep.collective_exchange(40, 0, rank, 3, vec![]).unwrap()
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(f.inner.registrations.lock().len(), 0);
        // A fully withdrawn round leaves no slot behind.
        e0.collective_register(41, 0, 0, 3).unwrap();
        assert!(e0.collective_withdraw(41, 0, 0).unwrap());
        assert_eq!(f.inner.registrations.lock().len(), 0);
    }

    #[test]
    fn fifo_order_preserved_per_sender() {
        let f = fabric(2);
        let e0 = f.endpoint(0).unwrap();
        let e1 = f.endpoint(1).unwrap();
        for i in 0..10u8 {
            e0.send(1, 0, 1, 0, vec![i]).unwrap();
        }
        let spec = MatchSpec::from_mpi_args(1, 0, 0);
        for i in 0..10u8 {
            let env = e1.recv_blocking(&spec).unwrap();
            assert_eq!(env.payload, vec![i]);
        }
    }
}
