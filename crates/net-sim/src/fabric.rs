//! The fabric: the shared, in-memory "network" connecting all ranks of a job, and the
//! per-rank [`Endpoint`] the MPI implementations use to move bytes.
//!
//! Beyond plain delivery, the fabric carries the three lanes the self-healing
//! orchestrator is built on:
//!
//! * **A chaos lane.** An installed [`ChaosPlan`] can delay, drop (then retransmit)
//!   or reorder individual messages, partition rank sets, and kill ranks or whole
//!   "nodes" — all seeded and replayable. Masked faults are absorbed by per-pair
//!   sequencing plus the mailbox re-sequencing lane; lethal faults surface as
//!   [`MpiError::RankKilled`] on the victim and silence everywhere else.
//! * **A heartbeat lane.** When enabled, every endpoint operation (and every slice of
//!   a blocking wait) records a beat for its rank on a shared board. Beats from dead
//!   or partition-isolated ranks are suppressed, so "no beat within the deadline" is
//!   exactly the observable a failure detector needs.
//! * **An abort lane.** [`Fabric::abort`] wakes every blocked rank with
//!   [`MpiError::JobAborted`], which is how a detector tears down a world whose
//!   survivors are wedged on a dead peer.

use crate::bytes::PayloadBuf;
use crate::chaos::{ChaosAction, ChaosEvent, ChaosPlan, FaultKind};
use crate::mailbox::Mailbox;
use crate::message::{Envelope, MatchSpec};
use crate::stats::{FabricStats, StatsSnapshot};
use mpi_model::error::{MpiError, MpiResult};
use mpi_model::status::Status;
use mpi_model::types::{ContextId, Rank};
use parking_lot::{Condvar, Mutex};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a blocking receive or collective will wait for its counterpart before the
/// fabric declares the job wedged. Real MPI would hang forever; failing fast keeps the
/// test suite debuggable. Generous enough for heavily oversubscribed CI machines.
const BLOCKING_TIMEOUT: Duration = Duration::from_secs(60);

/// Wait-slice length used once the fabric is "lively" (chaos installed or heartbeats
/// enabled): blocked ranks wake this often to beat, pump held messages, and notice
/// deaths or aborts. Without liveliness, waits use the full [`BLOCKING_TIMEOUT`].
const WAIT_SLICE: Duration = Duration::from_millis(2);

/// Configuration for a fabric instance.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Number of ranks connected to the fabric.
    pub world_size: usize,
    /// Session nonce distinguishing this "hardware instantiation" from any other.
    ///
    /// This models the non-checkpointable NIC/switch state: a restarted job gets a new
    /// fabric with a new nonce, and nothing in a checkpoint image may depend on it.
    pub session_nonce: u64,
}

impl FabricConfig {
    /// Convenience constructor.
    pub fn new(world_size: usize, session_nonce: u64) -> Self {
        FabricConfig {
            world_size,
            session_nonce,
        }
    }
}

struct RankSlot {
    mailbox: Mutex<Mailbox>,
    arrival: Condvar,
    open: AtomicBool,
}

struct CollectiveSlot {
    expected: usize,
    contributions: HashMap<usize, PayloadBuf>,
    /// The ordered contributions, shared: every reader receives refcount bumps of
    /// the same `expected` buffers, so an N-way fan-out moves no payload bytes.
    result: Option<Arc<Vec<PayloadBuf>>>,
    readers_remaining: usize,
}

/// Registration board entry for one collective round: who has announced intent to
/// enter the collective keyed by `(context, seq)`. The board is the fabric half of
/// the two-phase collective protocol ("trivial barrier"): a member may *withdraw* its
/// registration — atomically, and only while the round is still incomplete — which is
/// what lets a rank step out to service a checkpoint without ever being caught inside
/// the collective's critical phase.
struct RegistrationSlot {
    expected: usize,
    registered: HashSet<usize>,
    /// Once every member has registered the round is *committed*: withdrawals fail
    /// and every member must proceed into the real collective exchange.
    committed: bool,
}

/// A rank's death record: when it died and why.
#[derive(Debug, Clone)]
struct DeathRecord {
    at: Instant,
    cause: String,
}

/// One active network partition: `isolated` ranks cannot reach the rest of the world
/// (and their heartbeats are suppressed) until `heals_at`, if ever.
struct ActivePartition {
    fault_id: Option<usize>,
    isolated: HashSet<Rank>,
    started: Instant,
    heals_at: Option<Instant>,
}

/// Why a held message is being withheld, and when it may go.
enum Release {
    /// Deliver once this instant passes (delay, or drop-then-retransmit).
    At(Instant),
    /// Deliver once this many messages have been injected fabric-wide (reorder),
    /// or once the retransmit backstop instant passes — whichever comes first. The
    /// backstop matters at the tail of a run: if traffic ends before enough
    /// overtaking messages are injected, a real transport's retransmit timer still
    /// fires; without it the held message would be parked forever and wedge its
    /// receiver.
    AfterInjected(u64, Instant),
    /// Deliver once no active partition separates source from destination.
    WhenConnected,
}

/// Retransmit backstop for reorder holds: long enough that overtaking traffic
/// normally wins the race (the reorder is observed), short enough to stay inside
/// the masked-outage envelope of every heartbeat deadline used in practice.
const REORDER_BACKSTOP: Duration = Duration::from_millis(50);

struct HeldEnvelope {
    envelope: Envelope,
    release: Release,
}

/// Installed chaos plan plus per-fault fired flags.
struct ChaosExec {
    plan: ChaosPlan,
    fired: Vec<bool>,
}

struct FabricInner {
    world_size: usize,
    session_nonce: u64,
    epoch: Instant,
    slots: Vec<RankSlot>,
    collectives: Mutex<HashMap<(ContextId, u64), CollectiveSlot>>,
    registrations: Mutex<HashMap<(ContextId, u64), RegistrationSlot>>,
    collective_done: Condvar,
    next_context: AtomicU64,
    next_seq: AtomicU64,
    /// Per-(source, destination) consecutive delivery sequence counters, row-major
    /// `source * world_size + dest`. Assigned at injection, before chaos.
    pair_seqs: Vec<AtomicU64>,
    /// Fabric operations performed, per rank and globally; trigger clocks for chaos.
    rank_ops: Vec<AtomicU64>,
    global_ops: AtomicU64,
    collective_entries: Vec<AtomicU64>,
    injected_messages: AtomicU64,
    /// Whether any chaos/heartbeat machinery is active; when false every per-op hook
    /// is a single relaxed load and blocking waits use the full timeout.
    lively: AtomicBool,
    heartbeats_enabled: AtomicBool,
    /// Microseconds since `epoch` of each rank's last heartbeat.
    beats: Vec<AtomicU64>,
    deaths: Mutex<HashMap<Rank, DeathRecord>>,
    aborted: AtomicBool,
    abort_reason: Mutex<Option<String>>,
    partitions: Mutex<Vec<ActivePartition>>,
    held: Mutex<Vec<HeldEnvelope>>,
    chaos: Mutex<Option<ChaosExec>>,
    events: Mutex<Vec<ChaosEvent>>,
    stats: FabricStats,
}

/// The shared fabric connecting every rank of one job (one "session" of the network
/// hardware). Cloning is cheap (it is an `Arc` underneath); each simulated MPI
/// implementation's launch routine creates one fabric and hands each rank an
/// [`Endpoint`] onto it.
#[derive(Clone)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("world_size", &self.inner.world_size)
            .field("session_nonce", &self.inner.session_nonce)
            .finish()
    }
}

thread_local! {
    /// Capture slot armed by [`Fabric::capture_next`]: the next fabric constructed on
    /// this thread clones itself into the slot. This is how an orchestrator obtains
    /// the fabric an MPI implementation factory builds internally during `launch`,
    /// without widening the factory trait with network-specific types.
    static CAPTURE: RefCell<Option<Arc<Mutex<Option<Fabric>>>>> = const { RefCell::new(None) };
}

/// Handle returned by [`Fabric::capture_next`]; yields the captured fabric once one
/// has been constructed on the arming thread.
#[derive(Clone)]
pub struct FabricCapture {
    slot: Arc<Mutex<Option<Fabric>>>,
}

impl FabricCapture {
    /// The captured fabric, if one has been constructed since arming.
    pub fn take(&self) -> Option<Fabric> {
        self.slot.lock().take()
    }
}

impl Fabric {
    /// Create a new fabric for `config.world_size` ranks.
    pub fn new(config: FabricConfig) -> Self {
        let slots = (0..config.world_size)
            .map(|_| RankSlot {
                mailbox: Mutex::new(Mailbox::new()),
                arrival: Condvar::new(),
                open: AtomicBool::new(true),
            })
            .collect();
        let n = config.world_size;
        let fabric = Fabric {
            inner: Arc::new(FabricInner {
                world_size: n,
                session_nonce: config.session_nonce,
                epoch: crate::clock::now(),
                slots,
                collectives: Mutex::new(HashMap::new()),
                registrations: Mutex::new(HashMap::new()),
                collective_done: Condvar::new(),
                // Contexts 1 and 2 are reserved for MPI_COMM_WORLD / MPI_COMM_SELF.
                next_context: AtomicU64::new(16),
                next_seq: AtomicU64::new(0),
                pair_seqs: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
                rank_ops: (0..n).map(|_| AtomicU64::new(0)).collect(),
                global_ops: AtomicU64::new(0),
                collective_entries: (0..n).map(|_| AtomicU64::new(0)).collect(),
                injected_messages: AtomicU64::new(0),
                lively: AtomicBool::new(false),
                heartbeats_enabled: AtomicBool::new(false),
                beats: (0..n).map(|_| AtomicU64::new(0)).collect(),
                deaths: Mutex::new(HashMap::new()),
                aborted: AtomicBool::new(false),
                abort_reason: Mutex::new(None),
                partitions: Mutex::new(Vec::new()),
                held: Mutex::new(Vec::new()),
                chaos: Mutex::new(None),
                events: Mutex::new(Vec::new()),
                stats: FabricStats::new(),
            }),
        };
        CAPTURE.with(|slot| {
            if let Some(capture) = slot.borrow_mut().take() {
                *capture.lock() = Some(fabric.clone());
            }
        });
        fabric
    }

    /// Arm a one-shot capture on the *current thread*: the next [`Fabric::new`] call
    /// made from this thread (typically inside an MPI implementation factory's
    /// synchronous `launch`) clones the new fabric into the returned handle.
    pub fn capture_next() -> FabricCapture {
        let slot = Arc::new(Mutex::new(None));
        CAPTURE.with(|cell| *cell.borrow_mut() = Some(Arc::clone(&slot)));
        FabricCapture { slot }
    }

    /// Number of ranks connected to this fabric.
    pub fn world_size(&self) -> usize {
        self.inner.world_size
    }

    /// The per-session hardware nonce (never stable across restarts).
    pub fn session_nonce(&self) -> u64 {
        self.inner.session_nonce
    }

    /// Obtain the endpoint for `world_rank`.
    pub fn endpoint(&self, world_rank: Rank) -> MpiResult<Endpoint> {
        if world_rank < 0 || world_rank as usize >= self.inner.world_size {
            return Err(MpiError::InvalidRank {
                rank: world_rank,
                size: self.inner.world_size,
            });
        }
        Ok(Endpoint {
            inner: Arc::clone(&self.inner),
            world_rank,
        })
    }

    /// Allocate a fresh communication context (one per communicator created by the
    /// implementation using this fabric).
    pub fn allocate_context(&self) -> ContextId {
        self.inner.next_context.fetch_add(1, Ordering::Relaxed)
    }

    /// Total number of point-to-point messages currently in flight (injected but not
    /// yet received — chaos-held messages included), across all ranks. After a correct
    /// MANA drain this is zero.
    pub fn pending_messages(&self) -> usize {
        let queued: usize = self
            .inner
            .slots
            .iter()
            .map(|s| s.mailbox.lock().pending())
            .sum();
        queued + self.inner.held.lock().len()
    }

    /// Number of in-flight messages addressed to one rank (chaos-held included).
    pub fn pending_for_rank(&self, world_rank: Rank) -> MpiResult<usize> {
        let slot =
            self.inner
                .slots
                .get(world_rank.max(0) as usize)
                .ok_or(MpiError::InvalidRank {
                    rank: world_rank,
                    size: self.inner.world_size,
                })?;
        let held = self
            .inner
            .held
            .lock()
            .iter()
            .filter(|h| h.envelope.dest_world == world_rank)
            .count();
        Ok(slot.mailbox.lock().pending() + held)
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Total number of envelopes that arrived out of order at some mailbox and were
    /// re-sequenced before becoming visible — a direct measure of how much network
    /// misbehaviour the transport masked.
    pub fn resequenced_messages(&self) -> u64 {
        self.inner
            .slots
            .iter()
            .map(|s| s.mailbox.lock().resequenced)
            .sum()
    }

    // ------------------------------------------------------------------
    // Chaos lane
    // ------------------------------------------------------------------

    /// Install a chaos plan. Subsequent fabric operations consult it; each fault fires
    /// at most once. Installing a plan makes the fabric lively (sliced waits).
    pub fn install_chaos(&self, plan: ChaosPlan) {
        let fired = vec![false; plan.faults.len()];
        *self.inner.chaos.lock() = Some(ChaosExec { plan, fired });
        self.inner.set_lively();
    }

    /// Plan indices of the faults that have fired so far (empty without a plan).
    pub fn fired_fault_ids(&self) -> Vec<usize> {
        match self.inner.chaos.lock().as_ref() {
            Some(exec) => exec
                .fired
                .iter()
                .enumerate()
                .filter_map(|(i, f)| f.then_some(i))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Everything the chaos layer has actually done, in order. Timestamps are
    /// microseconds since fabric creation.
    pub fn chaos_events(&self) -> Vec<ChaosEvent> {
        self.inner.events.lock().clone()
    }

    /// Kill `world_rank` immediately (manual fault injection): its next fabric
    /// operation — and every one after — fails with [`MpiError::RankKilled`], its
    /// heartbeats stop, and messages addressed to it vanish. Peers are *not* notified;
    /// detection is the failure detector's job.
    pub fn kill_rank(&self, world_rank: Rank, cause: &str) {
        self.inner.set_lively();
        self.inner.kill(world_rank, cause, None);
    }

    /// Ranks currently marked dead.
    pub fn dead_ranks(&self) -> Vec<Rank> {
        let mut ranks: Vec<Rank> = self.inner.deaths.lock().keys().copied().collect();
        ranks.sort_unstable();
        ranks
    }

    /// Whether `world_rank` is marked dead.
    pub fn is_dead(&self, world_rank: Rank) -> bool {
        self.inner.deaths.lock().contains_key(&world_rank)
    }

    /// Cause label recorded when `world_rank` was killed ("crash",
    /// "crash-in-collective", "node-failure", or a manual-injection label).
    pub fn death_cause(&self, world_rank: Rank) -> Option<String> {
        self.inner
            .deaths
            .lock()
            .get(&world_rank)
            .map(|r| r.cause.clone())
    }

    /// The instant `world_rank`'s failure began, if it is currently failed: its death
    /// instant, or the start of the partition isolating it. This is the ground truth a
    /// detector's latency is measured against.
    pub fn failure_instant(&self, world_rank: Rank) -> Option<Instant> {
        if let Some(record) = self.inner.deaths.lock().get(&world_rank) {
            return Some(record.at);
        }
        self.inner
            .partitions
            .lock()
            .iter()
            .filter(|p| p.isolated.contains(&world_rank))
            .map(|p| p.started)
            .min()
    }

    /// Start a network partition isolating `isolated` from every other rank. Cross-cut
    /// messages are buffered until the partition heals (after `heal_after`, if given;
    /// never, otherwise), collective entries from isolated ranks stall, and isolated
    /// ranks' heartbeats are suppressed. A heal faster than the failure detector's
    /// deadline is therefore fully masked; a slower one is indistinguishable from
    /// death — exactly as in a real cluster.
    pub fn inject_partition(&self, isolated: &[Rank], heal_after: Option<Duration>) {
        self.inner.set_lively();
        self.inner.start_partition(
            isolated.iter().copied().collect(),
            heal_after.map(|d| crate::clock::now() + d),
            None,
        );
    }

    /// Whether any partition is currently active.
    pub fn partitioned(&self) -> bool {
        !self.inner.partitions.lock().is_empty()
    }

    // ------------------------------------------------------------------
    // Heartbeat lane
    // ------------------------------------------------------------------

    /// Enable the heartbeat lane: every endpoint operation (and every slice of a
    /// blocking wait) from a live, connected rank records a beat. All ranks start
    /// with a fresh beat so ages are meaningful immediately.
    pub fn enable_heartbeats(&self) {
        let now = self.inner.micros();
        for beat in &self.inner.beats {
            beat.store(now, Ordering::Relaxed);
        }
        self.inner.heartbeats_enabled.store(true, Ordering::Release);
        self.inner.set_lively();
    }

    /// Age of each rank's most recent heartbeat. Meaningless (all zero-ish) before
    /// [`Fabric::enable_heartbeats`].
    pub fn heartbeat_ages(&self) -> Vec<Duration> {
        let now = self.inner.micros();
        self.inner
            .beats
            .iter()
            .map(|b| Duration::from_micros(now.saturating_sub(b.load(Ordering::Relaxed))))
            .collect()
    }

    /// Record a heartbeat for `world_rank` from outside the endpoint op stream (e.g.
    /// from a compute-only phase that performs no MPI calls). Suppressed for dead or
    /// isolated ranks, like every other beat.
    pub fn beat(&self, world_rank: Rank) {
        self.inner.beat(world_rank);
    }

    // ------------------------------------------------------------------
    // Abort lane
    // ------------------------------------------------------------------

    /// Abort the job fabric-wide: every rank's next (or currently blocked) fabric
    /// operation fails with [`MpiError::JobAborted`]. Idempotent; the first reason
    /// wins.
    pub fn abort(&self, reason: &str) {
        {
            let mut slot = self.inner.abort_reason.lock();
            if slot.is_none() {
                *slot = Some(reason.to_string());
            }
        }
        self.inner.aborted.store(true, Ordering::Release);
        self.inner.set_lively();
    }

    /// Whether the fabric has been aborted.
    pub fn aborted(&self) -> bool {
        self.inner.aborted.load(Ordering::Acquire)
    }

    /// The abort reason, if aborted.
    pub fn abort_reason(&self) -> Option<String> {
        self.inner.abort_reason.lock().clone()
    }
}

impl FabricInner {
    fn micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn event(&self, fault_id: Option<usize>, action: ChaosAction) {
        self.events.lock().push(ChaosEvent {
            at_micros: self.micros(),
            fault_id,
            action,
        });
    }

    fn is_dead(&self, rank: Rank) -> bool {
        self.deaths.lock().contains_key(&rank)
    }

    fn is_isolated(&self, rank: Rank) -> bool {
        self.partitions
            .lock()
            .iter()
            .any(|p| p.isolated.contains(&rank))
    }

    /// Whether an active partition separates `a` from `b` (exactly one of the two is
    /// on the isolated side of some cut).
    fn cut(&self, a: Rank, b: Rank) -> bool {
        self.partitions
            .lock()
            .iter()
            .any(|p| p.isolated.contains(&a) != p.isolated.contains(&b))
    }

    fn beat(&self, rank: Rank) {
        if !self.heartbeats_enabled.load(Ordering::Acquire) {
            return;
        }
        if self.is_dead(rank) || self.is_isolated(rank) {
            return;
        }
        if let Some(slot) = self.beats.get(rank.max(0) as usize) {
            slot.store(self.micros(), Ordering::Relaxed);
        }
    }

    fn kill(&self, rank: Rank, cause: &str, fault_id: Option<usize>) {
        {
            let mut deaths = self.deaths.lock();
            if deaths.contains_key(&rank) {
                return;
            }
            deaths.insert(
                rank,
                DeathRecord {
                    at: crate::clock::now(),
                    cause: cause.to_string(),
                },
            );
        }
        self.event(
            fault_id,
            ChaosAction::RankKilled {
                rank,
                cause: cause.to_string(),
            },
        );
        // Wake the victim wherever it is blocked so it notices its own death.
        if let Some(slot) = self.slots.get(rank.max(0) as usize) {
            slot.arrival.notify_all();
        }
        self.collective_done.notify_all();
    }

    /// Flip the fabric into lively (sliced-wait) mode and wake every parked waiter.
    /// The wake matters: a rank that blocked *before* the transition is parked on a
    /// full [`BLOCKING_TIMEOUT`] condvar slice — without a notify it would sit there
    /// beat-less (and blind to chaos) until some unrelated traffic woke it, and a
    /// failure detector would declare a perfectly healthy rank dead.
    fn set_lively(&self) {
        if self.lively.swap(true, Ordering::Release) {
            return;
        }
        for slot in &self.slots {
            slot.arrival.notify_all();
        }
        self.collective_done.notify_all();
    }

    fn start_partition(
        &self,
        isolated: HashSet<Rank>,
        heals_at: Option<Instant>,
        fault_id: Option<usize>,
    ) {
        let mut ranks: Vec<Rank> = isolated.iter().copied().collect();
        ranks.sort_unstable();
        self.event(fault_id, ChaosAction::PartitionStarted { isolated: ranks });
        self.partitions.lock().push(ActivePartition {
            fault_id,
            isolated,
            started: crate::clock::now(),
            heals_at,
        });
    }

    /// Deposit an envelope into its destination mailbox (dropping it silently if the
    /// destination is dead or closed) and wake the destination.
    fn deliver(&self, envelope: Envelope) {
        let dest = envelope.dest_world;
        if self.is_dead(dest) {
            return;
        }
        let Some(slot) = self.slots.get(dest.max(0) as usize) else {
            return;
        };
        if !slot.open.load(Ordering::Acquire) {
            return;
        }
        {
            let mut mailbox = slot.mailbox.lock();
            mailbox.deposit(envelope);
        }
        slot.arrival.notify_all();
    }

    /// Advance chaos time: heal due partitions, fire due global-op-triggered faults,
    /// and release held messages whose release condition is now met. Must be called
    /// with **no mailbox or collective-table lock held**.
    fn pump(&self) {
        let now = crate::clock::now();
        // Heal partitions whose deadline has passed.
        let healed: Vec<(Option<usize>, Vec<Rank>)> = {
            let mut partitions = self.partitions.lock();
            let mut healed = Vec::new();
            partitions.retain(|p| match p.heals_at {
                Some(at) if now >= at => {
                    let mut ranks: Vec<Rank> = p.isolated.iter().copied().collect();
                    ranks.sort_unstable();
                    healed.push((p.fault_id, ranks));
                    false
                }
                _ => true,
            });
            healed
        };
        for (fault_id, isolated) in healed {
            self.event(fault_id, ChaosAction::PartitionHealed { isolated });
            // A healed rank resumes beating on its next op; give it a fresh beat now
            // so a just-healed masked partition does not race the detector.
            // (Suppression has ended, so this goes through.)
        }
        // Fire global-op-count faults: partitions and node failures.
        let global = self.global_ops.load(Ordering::Relaxed);
        let mut to_start: Vec<(usize, HashSet<Rank>, Option<Duration>)> = Vec::new();
        let mut to_kill: Vec<(usize, Vec<Rank>)> = Vec::new();
        {
            let mut chaos = self.chaos.lock();
            if let Some(exec) = chaos.as_mut() {
                for (id, fault) in exec.plan.faults.iter().enumerate() {
                    if exec.fired[id] {
                        continue;
                    }
                    match fault {
                        FaultKind::Partition {
                            at_op,
                            isolated,
                            heal_ms,
                        } if *at_op <= global => {
                            exec.fired[id] = true;
                            to_start.push((
                                id,
                                isolated.iter().copied().collect(),
                                heal_ms.map(Duration::from_millis),
                            ));
                        }
                        FaultKind::KillNode { ranks, at_op } if *at_op <= global => {
                            exec.fired[id] = true;
                            to_kill.push((id, ranks.clone()));
                        }
                        _ => {}
                    }
                }
            }
        }
        for (id, isolated, heal) in to_start {
            self.start_partition(isolated, heal.map(|d| now + d), Some(id));
        }
        for (id, ranks) in to_kill {
            for rank in ranks {
                self.kill(rank, "node-failure", Some(id));
            }
        }
        // Release held messages whose condition is met.
        let injected = self.injected_messages.load(Ordering::Relaxed);
        let due: Vec<Envelope> = {
            let mut held = self.held.lock();
            let mut due = Vec::new();
            held.retain_mut(|h| {
                let ready = match h.release {
                    Release::At(at) => now >= at,
                    Release::AfterInjected(n, backstop) => injected >= n || now >= backstop,
                    Release::WhenConnected => {
                        !self.cut(h.envelope.source_world, h.envelope.dest_world)
                    }
                };
                if ready {
                    due.push(std::mem::replace(
                        &mut h.envelope,
                        Envelope {
                            source_world: 0,
                            source_comm_rank: 0,
                            dest_world: 0,
                            context: 0,
                            tag: 0,
                            seq: 0,
                            pair_seq: 0,
                            payload: PayloadBuf::new(),
                        },
                    ));
                    false
                } else {
                    true
                }
            });
            due
        };
        for envelope in due {
            self.event(
                None,
                ChaosAction::MessageReleased {
                    source: envelope.source_world,
                    dest: envelope.dest_world,
                },
            );
            // A release is a redelivery of the originally injected buffer — the
            // retransmit/reorder lane reshares, it never re-copies.
            self.stats.record_payload_share(envelope.payload.len());
            self.deliver(envelope);
        }
    }

    /// Per-operation hook: count the op, fire this rank's own crash triggers, advance
    /// chaos time, beat, and fail if the rank is dead or the job aborted. Must be
    /// called with no fabric lock held.
    fn tick_op(&self, rank: Rank) -> MpiResult<()> {
        if !self.lively.load(Ordering::Acquire) {
            return Ok(());
        }
        let ops = self.rank_ops[rank.max(0) as usize].fetch_add(1, Ordering::Relaxed) + 1;
        self.global_ops.fetch_add(1, Ordering::Relaxed);
        let mut crash: Option<usize> = None;
        {
            let mut chaos = self.chaos.lock();
            if let Some(exec) = chaos.as_mut() {
                for (id, fault) in exec.plan.faults.iter().enumerate() {
                    if exec.fired[id] {
                        continue;
                    }
                    if let FaultKind::CrashRank {
                        rank: victim,
                        at_rank_op,
                    } = fault
                    {
                        if *victim == rank && *at_rank_op <= ops {
                            exec.fired[id] = true;
                            crash = Some(id);
                            break;
                        }
                    }
                }
            }
        }
        if let Some(id) = crash {
            self.kill(rank, "crash", Some(id));
        }
        self.pump();
        self.beat(rank);
        self.check_alive(rank)
    }

    /// Wait-slice hook: advance chaos time and beat without counting an operation.
    fn tick_wait(&self, rank: Rank) -> MpiResult<()> {
        if !self.lively.load(Ordering::Acquire) {
            return Ok(());
        }
        self.pump();
        self.beat(rank);
        self.check_alive(rank)
    }

    fn check_alive(&self, rank: Rank) -> MpiResult<()> {
        if self.is_dead(rank) {
            return Err(MpiError::RankKilled { rank });
        }
        if self.aborted.load(Ordering::Acquire) {
            let reason = self
                .abort_reason
                .lock()
                .clone()
                .unwrap_or_else(|| "unspecified".into());
            return Err(MpiError::JobAborted(reason));
        }
        Ok(())
    }

    /// Collective-entry hook: count the entry and fire this rank's mid-collective
    /// crash triggers (the victim dies *after* registering intent, *before*
    /// contributing — the nastiest possible moment).
    fn tick_collective_entry(&self, rank: Rank) -> MpiResult<()> {
        if !self.lively.load(Ordering::Acquire) {
            return Ok(());
        }
        let entries =
            self.collective_entries[rank.max(0) as usize].fetch_add(1, Ordering::Relaxed) + 1;
        let mut crash: Option<usize> = None;
        {
            let mut chaos = self.chaos.lock();
            if let Some(exec) = chaos.as_mut() {
                for (id, fault) in exec.plan.faults.iter().enumerate() {
                    if exec.fired[id] {
                        continue;
                    }
                    if let FaultKind::CrashInCollective {
                        rank: victim,
                        at_entry,
                    } = fault
                    {
                        if *victim == rank && *at_entry <= entries {
                            exec.fired[id] = true;
                            crash = Some(id);
                            break;
                        }
                    }
                }
            }
        }
        if let Some(id) = crash {
            self.kill(rank, "crash-in-collective", Some(id));
        }
        self.check_alive(rank)
    }

    /// Route a freshly injected envelope through the chaos layer: drop it if the
    /// destination is dead, hold it if a partition cuts the pair or a message fault
    /// matches its injection index, otherwise deliver immediately.
    fn route(&self, envelope: Envelope) {
        if self.is_dead(envelope.dest_world) {
            return;
        }
        if self.cut(envelope.source_world, envelope.dest_world) {
            self.event(
                None,
                ChaosAction::MessageHeld {
                    source: envelope.source_world,
                    dest: envelope.dest_world,
                    category: "partition".into(),
                },
            );
            self.held.lock().push(HeldEnvelope {
                envelope,
                release: Release::WhenConnected,
            });
            return;
        }
        let idx = self.injected_messages.fetch_add(1, Ordering::Relaxed);
        let mut verdict: Option<(usize, Release, &'static str)> = None;
        {
            let mut chaos = self.chaos.lock();
            if let Some(exec) = chaos.as_mut() {
                for (id, fault) in exec.plan.faults.iter().enumerate() {
                    if exec.fired[id] {
                        continue;
                    }
                    match fault {
                        FaultKind::DelayMessage { nth, hold_ms } if *nth == idx => {
                            exec.fired[id] = true;
                            verdict = Some((
                                id,
                                Release::At(crate::clock::now() + Duration::from_millis(*hold_ms)),
                                "delay",
                            ));
                        }
                        FaultKind::DropMessage { nth, retransmit_ms } if *nth == idx => {
                            exec.fired[id] = true;
                            verdict = Some((
                                id,
                                Release::At(
                                    crate::clock::now() + Duration::from_millis(*retransmit_ms),
                                ),
                                "loss",
                            ));
                        }
                        FaultKind::ReorderMessage { nth, overtaken_by } if *nth == idx => {
                            exec.fired[id] = true;
                            verdict = Some((
                                id,
                                Release::AfterInjected(
                                    idx + overtaken_by,
                                    crate::clock::now() + REORDER_BACKSTOP,
                                ),
                                "reorder",
                            ));
                        }
                        _ => {}
                    }
                    if verdict.is_some() {
                        break;
                    }
                }
            }
        }
        match verdict {
            Some((id, release, category)) => {
                let action = if category == "loss" {
                    ChaosAction::MessageDropped {
                        source: envelope.source_world,
                        dest: envelope.dest_world,
                    }
                } else {
                    ChaosAction::MessageHeld {
                        source: envelope.source_world,
                        dest: envelope.dest_world,
                        category: category.into(),
                    }
                };
                self.event(Some(id), action);
                self.held.lock().push(HeldEnvelope { envelope, release });
            }
            None => self.deliver(envelope),
        }
    }
}

/// One rank's attachment to the fabric. All methods are callable from that rank's
/// thread; the endpoint is `Send` so the owning lower half can live inside a rank
/// thread.
pub struct Endpoint {
    inner: Arc<FabricInner>,
    world_rank: Rank,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("world_rank", &self.world_rank)
            .finish()
    }
}

impl Endpoint {
    /// World rank of this endpoint.
    pub fn world_rank(&self) -> Rank {
        self.world_rank
    }

    /// Number of ranks on the fabric.
    pub fn world_size(&self) -> usize {
        self.inner.world_size
    }

    /// The per-session hardware nonce.
    pub fn session_nonce(&self) -> u64 {
        self.inner.session_nonce
    }

    /// Allocate a fresh communication context.
    pub fn allocate_context(&self) -> ContextId {
        self.inner.next_context.fetch_add(1, Ordering::Relaxed)
    }

    fn slot(&self, world_rank: Rank) -> MpiResult<&RankSlot> {
        if world_rank < 0 {
            return Err(MpiError::InvalidRank {
                rank: world_rank,
                size: self.inner.world_size,
            });
        }
        self.inner
            .slots
            .get(world_rank as usize)
            .ok_or(MpiError::InvalidRank {
                rank: world_rank,
                size: self.inner.world_size,
            })
    }

    /// The wait-slice to use for blocking operations: short when the fabric is lively
    /// (so blocked ranks keep beating and noticing deaths), the full timeout
    /// otherwise.
    fn wait_slice(&self) -> Duration {
        if self.inner.lively.load(Ordering::Acquire) {
            WAIT_SLICE
        } else {
            BLOCKING_TIMEOUT
        }
    }

    /// Inject a point-to-point message (eager protocol: the payload is buffered at the
    /// destination immediately, whether or not a receive is posted). Under chaos the
    /// message may be held, dropped-then-retransmitted, or reordered — all invisibly
    /// to the receiver, thanks to the per-pair sequence assigned here at injection.
    ///
    /// The payload is taken by value as a [`PayloadBuf`] (a `Vec<u8>` converts at no
    /// cost): injection is a pointer hand-off, and every downstream hop — mailbox
    /// deposit, re-sequencing park, chaos hold and retransmit — shares the same
    /// allocation.
    pub fn send(
        &self,
        dest_world: Rank,
        source_comm_rank: Rank,
        context: ContextId,
        tag: i32,
        payload: impl Into<PayloadBuf>,
    ) -> MpiResult<()> {
        self.inner.tick_op(self.world_rank)?;
        let payload = payload.into();
        let dest = self.slot(dest_world)?;
        if !dest.open.load(Ordering::Acquire) {
            return Err(MpiError::PeerUnreachable(dest_world));
        }
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        let pair_seq = self.inner.pair_seqs
            [self.world_rank as usize * self.inner.world_size + dest_world as usize]
            .fetch_add(1, Ordering::Relaxed);
        self.inner.stats.record_send(payload.len());
        // The one materialization per message: the caller built this buffer. Every
        // later hop (mailbox, park, hold, retransmit) must show up as shared bytes.
        self.inner.stats.record_payload_copy(payload.len());
        let envelope = Envelope {
            source_world: self.world_rank,
            source_comm_rank,
            dest_world,
            context,
            tag,
            seq,
            pair_seq,
            payload,
        };
        self.inner.route(envelope);
        Ok(())
    }

    /// Non-blocking receive: take the earliest matching message if one is present.
    pub fn try_recv(&self, spec: &MatchSpec) -> MpiResult<Option<Envelope>> {
        self.inner.tick_op(self.world_rank)?;
        let slot = self.slot(self.world_rank)?;
        let mut mailbox = slot.mailbox.lock();
        let taken = mailbox.take(spec);
        if taken.is_some() {
            self.inner.stats.record_recv();
        }
        Ok(taken)
    }

    /// Blocking receive: wait until a matching message arrives, then take it. While
    /// blocked, the rank keeps heartbeating in wait slices and is woken early by its
    /// own death or a job abort.
    pub fn recv_blocking(&self, spec: &MatchSpec) -> MpiResult<Envelope> {
        self.inner.tick_op(self.world_rank)?;
        let slot = self.slot(self.world_rank)?;
        let deadline = crate::clock::now() + BLOCKING_TIMEOUT;
        loop {
            {
                let mut mailbox = slot.mailbox.lock();
                if let Some(envelope) = mailbox.take(spec) {
                    self.inner.stats.record_recv();
                    return Ok(envelope);
                }
                if !slot.open.load(Ordering::Acquire) {
                    return Err(MpiError::PeerUnreachable(self.world_rank));
                }
                slot.arrival.wait_for(&mut mailbox, self.wait_slice());
            }
            self.inner.tick_wait(self.world_rank)?;
            if crate::clock::now() >= deadline {
                return Err(MpiError::Internal(format!(
                    "rank {} blocked in receive for more than {:?} (context {}, source {:?}, tag {:?})",
                    self.world_rank, BLOCKING_TIMEOUT, spec.context, spec.source_comm_rank, spec.tag
                )));
            }
        }
    }

    /// Probe for a matching message without consuming it (`MPI_Iprobe`).
    pub fn probe(&self, spec: &MatchSpec) -> MpiResult<Option<Status>> {
        self.inner.tick_op(self.world_rank)?;
        let slot = self.slot(self.world_rank)?;
        let mailbox = slot.mailbox.lock();
        Ok(mailbox
            .probe(spec)
            .map(|e| Status::new(e.source_comm_rank, e.tag, e.payload.len())))
    }

    /// Number of messages currently queued for this rank (any context). Also beats,
    /// since drain loops poll this while otherwise quiet.
    pub fn pending_incoming(&self) -> usize {
        let _ = self.inner.tick_wait(self.world_rank);
        self.slot(self.world_rank)
            .map(|s| s.mailbox.lock().pending())
            .unwrap_or(0)
    }

    /// Number of messages currently queued for this rank on one context.
    pub fn pending_incoming_for_context(&self, context: ContextId) -> usize {
        let _ = self.inner.tick_wait(self.world_rank);
        self.slot(self.world_rank)
            .map(|s| s.mailbox.lock().pending_for_context(context))
            .unwrap_or(0)
    }

    /// Mark this endpoint as closed: subsequent sends to it fail and blocked receives
    /// are woken with an error. Used for failure-injection tests.
    pub fn close(&self) {
        if let Ok(slot) = self.slot(self.world_rank) {
            slot.open.store(false, Ordering::Release);
            slot.arrival.notify_all();
        }
    }

    /// Whether this endpoint is still open.
    pub fn is_open(&self) -> bool {
        self.slot(self.world_rank)
            .map(|s| s.open.load(Ordering::Acquire))
            .unwrap_or(false)
    }

    /// Synchronous all-to-all exchange used as the building block for every collective.
    ///
    /// All `comm_size` members of a communicator call this with the same `(context,
    /// seq)` key and their own `my_index` (their rank within the communicator). Every
    /// caller blocks until all contributions have arrived and then receives the full
    /// ordered vector of contributions. The `(context, seq)` key is what isolates
    /// concurrent collectives on different communicators — and why collective sequence
    /// numbers restart cleanly after a MANA restart (the new lower half starts a new
    /// context space on a new fabric).
    ///
    /// Under chaos: a partition-isolated rank stalls here (before contributing) until
    /// the partition heals, a mid-collective crash trigger kills the rank after its
    /// entry is counted but before its contribution lands, and a job abort wakes every
    /// blocked member with [`MpiError::JobAborted`].
    pub fn collective_exchange(
        &self,
        context: ContextId,
        seq: u64,
        my_index: usize,
        comm_size: usize,
        contribution: impl Into<PayloadBuf>,
    ) -> MpiResult<Vec<PayloadBuf>> {
        let contribution = contribution.into();
        if comm_size == 0 || my_index >= comm_size {
            return Err(MpiError::Internal(format!(
                "collective exchange with index {my_index} out of {comm_size}"
            )));
        }
        self.inner.tick_op(self.world_rank)?;
        self.inner.tick_collective_entry(self.world_rank)?;
        // A partition-isolated rank cannot reach the exchange: stall until heal (or
        // death/abort), exactly like a real collective over a cut network.
        let stall_deadline = crate::clock::now() + BLOCKING_TIMEOUT;
        while self.inner.is_isolated(self.world_rank) {
            crate::clock::sleep(WAIT_SLICE);
            self.inner.tick_wait(self.world_rank)?;
            if crate::clock::now() >= stall_deadline {
                return Err(MpiError::Internal(format!(
                    "rank {} isolated by a partition for more than {:?}",
                    self.world_rank, BLOCKING_TIMEOUT
                )));
            }
        }
        self.inner.stats.record_collective(contribution.len());
        self.inner.stats.record_payload_copy(contribution.len());
        let key = (context, seq);
        let deadline = crate::clock::now() + BLOCKING_TIMEOUT;
        let mut table = self.inner.collectives.lock();
        {
            let slot = table.entry(key).or_insert_with(|| CollectiveSlot {
                expected: comm_size,
                contributions: HashMap::with_capacity(comm_size),
                result: None,
                readers_remaining: comm_size,
            });
            if slot.expected != comm_size {
                return Err(MpiError::CollectiveMismatch(format!(
                    "ranks disagree about communicator size: {} vs {}",
                    slot.expected, comm_size
                )));
            }
            if slot.contributions.insert(my_index, contribution).is_some() {
                return Err(MpiError::CollectiveMismatch(format!(
                    "rank index {my_index} contributed twice to collective {key:?}"
                )));
            }
            if slot.contributions.len() == slot.expected {
                let mut ordered = Vec::with_capacity(slot.expected);
                for i in 0..slot.expected {
                    // len == expected and double contributions are rejected above, so
                    // every index is present — but a bookkeeping bug here must fail
                    // the collective, not panic a rank mid-round.
                    ordered.push(slot.contributions.remove(&i).ok_or_else(|| {
                        MpiError::Internal(format!(
                            "collective {key:?}: contribution from rank index {i} missing \
                             at completion"
                        ))
                    })?);
                }
                slot.result = Some(Arc::new(ordered));
                self.inner.collective_done.notify_all();
            }
        }
        // Wait for completion, then pick up the shared result.
        loop {
            let finished = {
                let slot = table.get(&key).ok_or_else(|| {
                    MpiError::Internal("collective slot vanished before completion".into())
                })?;
                slot.result.clone()
            };
            if let Some(result) = finished {
                let remove = {
                    // The slot outlives its readers by construction; if it vanished
                    // anyway, surface a typed fault instead of killing the rank.
                    let slot = table.get_mut(&key).ok_or_else(|| {
                        MpiError::Internal(format!(
                            "collective slot {key:?} vanished while readers remained"
                        ))
                    })?;
                    slot.readers_remaining -= 1;
                    slot.readers_remaining == 0
                };
                if remove {
                    table.remove(&key);
                    // The round is over: clear any registration-board entry for the
                    // same key (every registrant necessarily contributed).
                    self.inner.registrations.lock().remove(&key);
                }
                // Each reader's copy of the fan-out is refcount bumps of the shared
                // contribution buffers, never a byte copy.
                for buf in result.iter() {
                    self.inner.stats.record_payload_share(buf.len());
                }
                return Ok(result.as_ref().clone());
            }
            let slice = self.wait_slice();
            let timed_out = self
                .inner
                .collective_done
                .wait_for(&mut table, slice)
                .timed_out();
            if self.inner.lively.load(Ordering::Acquire) {
                // Release the table while ticking: the pump may need mailboxes, and
                // beats/death checks must not be starved by a long collective wait.
                drop(table);
                self.inner.tick_wait(self.world_rank)?;
                if crate::clock::now() >= deadline {
                    return Err(MpiError::Internal(format!(
                        "rank {} blocked in collective (context {context}, seq {seq}) for more than {:?}",
                        self.world_rank, BLOCKING_TIMEOUT
                    )));
                }
                table = self.inner.collectives.lock();
            } else if timed_out {
                return Err(MpiError::Internal(format!(
                    "rank {} blocked in collective (context {context}, seq {seq}) for more than {:?}",
                    self.world_rank, BLOCKING_TIMEOUT
                )));
            }
        }
    }

    // ------------------------------------------------------------------
    // Two-phase collective registration ("trivial barrier") board
    // ------------------------------------------------------------------

    /// Announce intent to enter the collective `(context, seq)`. Idempotent: a member
    /// re-registering (after stepping out for a checkpoint) is a no-op. Once the last
    /// member registers, the round *commits* and withdrawals start failing.
    pub fn collective_register(
        &self,
        context: ContextId,
        seq: u64,
        my_index: usize,
        comm_size: usize,
    ) -> MpiResult<()> {
        if comm_size == 0 || my_index >= comm_size {
            return Err(MpiError::Internal(format!(
                "collective registration with index {my_index} out of {comm_size}"
            )));
        }
        self.inner.tick_op(self.world_rank)?;
        let mut board = self.inner.registrations.lock();
        let slot = board
            .entry((context, seq))
            .or_insert_with(|| RegistrationSlot {
                expected: comm_size,
                registered: HashSet::with_capacity(comm_size),
                committed: false,
            });
        if slot.expected != comm_size {
            return Err(MpiError::CollectiveMismatch(format!(
                "ranks disagree about communicator size in registration: {} vs {}",
                slot.expected, comm_size
            )));
        }
        slot.registered.insert(my_index);
        if slot.registered.len() == slot.expected {
            slot.committed = true;
        }
        Ok(())
    }

    /// Whether the registration round `(context, seq)` has committed (every member
    /// registered). A missing slot reads as not committed: the caller is expected to
    /// hold a live registration of its own while polling. Errors if this rank has
    /// died or the job was aborted — a poll loop must observe the failure lane, or
    /// a rank whose peer died pre-registration would spin until its stall budget.
    pub fn collective_registration_committed(
        &self,
        context: ContextId,
        seq: u64,
    ) -> MpiResult<bool> {
        self.inner.tick_wait(self.world_rank)?;
        Ok(self
            .inner
            .registrations
            .lock()
            .get(&(context, seq))
            .map(|slot| slot.committed)
            .unwrap_or(false))
    }

    /// Atomically withdraw `my_index`'s registration from round `(context, seq)`.
    /// Returns `true` if the withdrawal succeeded (the rank is provably *outside* the
    /// collective and may safely checkpoint), `false` if the round has already
    /// committed — in which case the rank is obliged to enter the real collective
    /// before doing anything else. This check-and-remove is one critical section, so
    /// exactly one of "withdrawn" / "committed" holds for every member.
    pub fn collective_withdraw(
        &self,
        context: ContextId,
        seq: u64,
        my_index: usize,
    ) -> MpiResult<bool> {
        self.inner.tick_op(self.world_rank)?;
        let mut board = self.inner.registrations.lock();
        let Some(slot) = board.get_mut(&(context, seq)) else {
            // Nothing registered under this key: trivially out.
            return Ok(true);
        };
        if slot.committed {
            return Ok(false);
        }
        slot.registered.remove(&my_index);
        if slot.registered.is_empty() {
            board.remove(&(context, seq));
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosMenu;
    use std::thread;

    fn fabric(n: usize) -> Fabric {
        Fabric::new(FabricConfig::new(n, 0xdead_beef))
    }

    #[test]
    fn send_then_recv_same_thread() {
        let f = fabric(2);
        let e0 = f.endpoint(0).unwrap();
        let e1 = f.endpoint(1).unwrap();
        e0.send(1, 0, 1, 7, vec![1, 2, 3]).unwrap();
        assert_eq!(f.pending_messages(), 1);
        let spec = MatchSpec::from_mpi_args(1, 0, 7);
        let env = e1.recv_blocking(&spec).unwrap();
        assert_eq!(env.payload, vec![1, 2, 3]);
        assert_eq!(env.source_comm_rank, 0);
        assert_eq!(f.pending_messages(), 0);
        assert_eq!(f.stats().messages_sent, 1);
        assert_eq!(f.stats().messages_received, 1);
    }

    #[test]
    fn blocking_recv_waits_for_sender() {
        let f = fabric(2);
        let e1 = f.endpoint(1).unwrap();
        let f2 = f.clone();
        let sender = thread::spawn(move || {
            let e0 = f2.endpoint(0).unwrap();
            std::thread::sleep(Duration::from_millis(20));
            e0.send(1, 0, 1, 3, vec![9]).unwrap();
        });
        let env = e1
            .recv_blocking(&MatchSpec::from_mpi_args(1, 0, 3))
            .unwrap();
        assert_eq!(env.payload, vec![9]);
        sender.join().unwrap();
    }

    #[test]
    fn probe_and_try_recv() {
        let f = fabric(2);
        let e0 = f.endpoint(0).unwrap();
        let e1 = f.endpoint(1).unwrap();
        let spec = MatchSpec::from_mpi_args(1, 0, 5);
        assert!(e1.probe(&spec).unwrap().is_none());
        assert!(e1.try_recv(&spec).unwrap().is_none());
        e0.send(1, 0, 1, 5, vec![0; 16]).unwrap();
        let st = e1.probe(&spec).unwrap().unwrap();
        assert_eq!(st.count_bytes, 16);
        assert_eq!(e1.pending_incoming(), 1);
        assert!(e1.try_recv(&spec).unwrap().is_some());
        assert_eq!(e1.pending_incoming(), 0);
    }

    #[test]
    fn contexts_isolate_traffic() {
        let f = fabric(2);
        let e0 = f.endpoint(0).unwrap();
        let e1 = f.endpoint(1).unwrap();
        e0.send(1, 0, 100, 0, vec![1]).unwrap();
        // A receive on context 200 must not match the message on context 100.
        assert!(e1
            .try_recv(&MatchSpec::from_mpi_args(200, 0, 0))
            .unwrap()
            .is_none());
        assert_eq!(e1.pending_incoming_for_context(100), 1);
        assert_eq!(e1.pending_incoming_for_context(200), 0);
    }

    #[test]
    fn closed_endpoint_rejects_sends() {
        let f = fabric(2);
        let e0 = f.endpoint(0).unwrap();
        let e1 = f.endpoint(1).unwrap();
        assert!(e1.is_open());
        e1.close();
        assert!(!e1.is_open());
        assert_eq!(
            e0.send(1, 0, 1, 0, vec![1]),
            Err(MpiError::PeerUnreachable(1))
        );
    }

    #[test]
    fn collective_exchange_gathers_all_contributions() {
        let n = 4;
        let f = fabric(n);
        let mut handles = vec![];
        for rank in 0..n {
            let f = f.clone();
            handles.push(thread::spawn(move || {
                let ep = f.endpoint(rank as Rank).unwrap();
                ep.collective_exchange(1, 0, rank, n, vec![rank as u8; 2])
                    .unwrap()
            }));
        }
        for h in handles {
            let result = h.join().unwrap();
            assert_eq!(result.len(), n);
            for (i, contribution) in result.iter().enumerate() {
                assert_eq!(contribution, &vec![i as u8; 2]);
            }
        }
        // The collective slot must have been cleaned up.
        assert_eq!(f.inner.collectives.lock().len(), 0);
        assert_eq!(f.stats().collective_rounds, n as u64);
    }

    #[test]
    fn collective_mismatch_detected() {
        let f = fabric(3);
        let e0 = f.endpoint(0).unwrap();
        let e1 = f.endpoint(1).unwrap();
        // Rank 0 claims the communicator has 1 member and completes alone.
        e0.collective_exchange(7, 0, 0, 1, vec![]).unwrap();
        // Rank 1 then claims it has 2 members under the same key: size mismatch.
        // (The slot was cleaned up after rank 0's solo collective, so re-create it
        //  and then disagree within the same generation.)
        let r = e1.collective_exchange(7, 1, 0, 1, vec![]);
        assert!(r.is_ok());
        let e2 = f.endpoint(2).unwrap();
        let h = {
            let f = f.clone();
            thread::spawn(move || {
                let ep = f.endpoint(0).unwrap();
                ep.collective_exchange(9, 0, 0, 2, vec![])
            })
        };
        // Let rank 0 create the slot with size 2, then rank 2 disagrees with size 3.
        std::thread::sleep(Duration::from_millis(20));
        let err = e2.collective_exchange(9, 0, 1, 3, vec![]).unwrap_err();
        assert!(matches!(err, MpiError::CollectiveMismatch(_)));
        // Unblock rank 0 by providing the second size-2 contribution.
        e1.collective_exchange(9, 0, 1, 2, vec![]).unwrap();
        h.join().unwrap().unwrap();
    }

    #[test]
    fn context_allocation_is_unique() {
        let f = fabric(2);
        let a = f.allocate_context();
        let b = f.allocate_context();
        let c = f.endpoint(0).unwrap().allocate_context();
        assert!(a != b && b != c && a != c);
        assert!(a >= 16, "low context ids are reserved for world/self");
    }

    #[test]
    fn invalid_rank_is_rejected() {
        let f = fabric(2);
        assert!(f.endpoint(2).is_err());
        assert!(f.endpoint(-1).is_err());
        let e0 = f.endpoint(0).unwrap();
        assert!(e0.send(5, 0, 1, 0, vec![]).is_err());
        assert!(f.pending_for_rank(9).is_err());
    }

    #[test]
    fn registration_board_commits_and_blocks_withdrawal() {
        let f = fabric(3);
        let e0 = f.endpoint(0).unwrap();
        let e1 = f.endpoint(1).unwrap();
        let e2 = f.endpoint(2).unwrap();
        // Two of three register: not committed, withdrawal allowed (and idempotent
        // re-registration is a no-op).
        e0.collective_register(40, 0, 0, 3).unwrap();
        e0.collective_register(40, 0, 0, 3).unwrap();
        e1.collective_register(40, 0, 1, 3).unwrap();
        assert!(!e0.collective_registration_committed(40, 0).unwrap());
        assert!(e1.collective_withdraw(40, 0, 1).unwrap());
        // After the withdrawal the last member cannot commit the round alone.
        e2.collective_register(40, 0, 2, 3).unwrap();
        assert!(!e2.collective_registration_committed(40, 0).unwrap());
        // All three in: committed, withdrawal now fails for everyone.
        e1.collective_register(40, 0, 1, 3).unwrap();
        assert!(e0.collective_registration_committed(40, 0).unwrap());
        assert!(!e1.collective_withdraw(40, 0, 1).unwrap());
        assert!(!e0.collective_withdraw(40, 0, 0).unwrap());
        // A size disagreement is caught at registration time.
        let err = e0.collective_register(40, 0, 0, 2).unwrap_err();
        assert!(matches!(err, MpiError::CollectiveMismatch(_)));
        // Completing the matching exchange clears the board entry.
        let handles: Vec<_> = (0..3)
            .map(|rank| {
                let f = f.clone();
                thread::spawn(move || {
                    let ep = f.endpoint(rank as Rank).unwrap();
                    ep.collective_exchange(40, 0, rank, 3, vec![]).unwrap()
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(f.inner.registrations.lock().len(), 0);
        // A fully withdrawn round leaves no slot behind.
        e0.collective_register(41, 0, 0, 3).unwrap();
        assert!(e0.collective_withdraw(41, 0, 0).unwrap());
        assert_eq!(f.inner.registrations.lock().len(), 0);
    }

    #[test]
    fn fifo_order_preserved_per_sender() {
        let f = fabric(2);
        let e0 = f.endpoint(0).unwrap();
        let e1 = f.endpoint(1).unwrap();
        for i in 0..10u8 {
            e0.send(1, 0, 1, 0, vec![i]).unwrap();
        }
        let spec = MatchSpec::from_mpi_args(1, 0, 0);
        for i in 0..10u8 {
            let env = e1.recv_blocking(&spec).unwrap();
            assert_eq!(env.payload, vec![i]);
        }
    }

    // ------------------------------------------------------------------
    // Chaos lane
    // ------------------------------------------------------------------

    #[test]
    fn capture_hook_grabs_next_fabric_on_thread() {
        let capture = Fabric::capture_next();
        assert!(capture.take().is_none());
        let capture = Fabric::capture_next();
        let f = fabric(3);
        let grabbed = capture.take().expect("fabric captured");
        assert_eq!(grabbed.world_size(), 3);
        assert_eq!(grabbed.session_nonce(), f.session_nonce());
        // One-shot: a second fabric is not captured.
        let _g = fabric(2);
        assert!(capture.take().is_none());
    }

    #[test]
    fn delayed_message_is_masked_by_resequencing() {
        let f = fabric(2);
        f.install_chaos(ChaosPlan::from_faults(vec![FaultKind::DelayMessage {
            nth: 0,
            hold_ms: 15,
        }]));
        let e0 = f.endpoint(0).unwrap();
        let e1 = f.endpoint(1).unwrap();
        // Message 0 is held; message 1 arrives first but is parked behind the gap.
        e0.send(1, 0, 1, 0, vec![0]).unwrap();
        e0.send(1, 0, 1, 0, vec![1]).unwrap();
        let spec = MatchSpec::from_mpi_args(1, 0, 0);
        // Both must still arrive in order.
        for i in 0..2u8 {
            let env = e1.recv_blocking(&spec).unwrap();
            assert_eq!(env.payload, vec![i]);
        }
        assert_eq!(f.fired_fault_ids(), vec![0]);
        assert!(f.resequenced_messages() >= 1);
        assert!(!f.chaos_events().is_empty());
    }

    #[test]
    fn dropped_message_is_retransmitted() {
        let f = fabric(2);
        f.install_chaos(ChaosPlan::from_faults(vec![FaultKind::DropMessage {
            nth: 0,
            retransmit_ms: 10,
        }]));
        let e0 = f.endpoint(0).unwrap();
        let e1 = f.endpoint(1).unwrap();
        e0.send(1, 0, 1, 0, vec![42]).unwrap();
        assert_eq!(f.pending_messages(), 1, "held messages stay in flight");
        let env = e1
            .recv_blocking(&MatchSpec::from_mpi_args(1, 0, 0))
            .unwrap();
        assert_eq!(env.payload, vec![42]);
        let events = f.chaos_events();
        assert!(events
            .iter()
            .any(|e| matches!(e.action, ChaosAction::MessageDropped { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.action, ChaosAction::MessageReleased { .. })));
    }

    #[test]
    fn reordered_message_is_masked() {
        let f = fabric(2);
        f.install_chaos(ChaosPlan::from_faults(vec![FaultKind::ReorderMessage {
            nth: 0,
            overtaken_by: 2,
        }]));
        let e0 = f.endpoint(0).unwrap();
        let e1 = f.endpoint(1).unwrap();
        for i in 0..4u8 {
            e0.send(1, 0, 1, 0, vec![i]).unwrap();
        }
        let spec = MatchSpec::from_mpi_args(1, 0, 0);
        for i in 0..4u8 {
            let env = e1.recv_blocking(&spec).unwrap();
            assert_eq!(env.payload, vec![i], "delivery order survives reordering");
        }
    }

    #[test]
    fn killed_rank_fails_ops_and_sends_to_it_vanish() {
        let f = fabric(2);
        let e0 = f.endpoint(0).unwrap();
        let e1 = f.endpoint(1).unwrap();
        f.kill_rank(1, "test");
        assert!(f.is_dead(1));
        assert_eq!(f.dead_ranks(), vec![1]);
        assert!(f.failure_instant(1).is_some());
        // The victim's own ops fail.
        assert_eq!(
            e1.send(0, 1, 1, 0, vec![1]),
            Err(MpiError::RankKilled { rank: 1 })
        );
        // Sends to the dead rank vanish silently (no error back to the sender).
        e0.send(1, 0, 1, 0, vec![1]).unwrap();
        assert_eq!(f.pending_messages(), 0);
    }

    #[test]
    fn crash_trigger_fires_at_op_count() {
        let f = fabric(2);
        f.install_chaos(ChaosPlan::from_faults(vec![FaultKind::CrashRank {
            rank: 0,
            at_rank_op: 3,
        }]));
        let e0 = f.endpoint(0).unwrap();
        e0.send(1, 0, 1, 0, vec![]).unwrap();
        e0.send(1, 0, 1, 0, vec![]).unwrap();
        let err = e0.send(1, 0, 1, 0, vec![]).unwrap_err();
        assert_eq!(err, MpiError::RankKilled { rank: 0 });
        assert!(f.is_dead(0));
    }

    #[test]
    fn abort_wakes_blocked_receiver() {
        let f = fabric(2);
        f.enable_heartbeats();
        let f2 = f.clone();
        let h = thread::spawn(move || {
            let e1 = f2.endpoint(1).unwrap();
            e1.recv_blocking(&MatchSpec::from_mpi_args(1, 0, 0))
        });
        std::thread::sleep(Duration::from_millis(30));
        f.abort("detector: rank 0 heartbeat expired");
        let err = h.join().unwrap().unwrap_err();
        assert!(matches!(err, MpiError::JobAborted(_)));
        assert!(f.aborted());
        assert!(f.abort_reason().unwrap().contains("heartbeat"));
    }

    #[test]
    fn abort_wakes_blocked_collective() {
        let f = fabric(2);
        f.enable_heartbeats();
        let f2 = f.clone();
        let h = thread::spawn(move || {
            let e0 = f2.endpoint(0).unwrap();
            // Rank 1 never joins: blocked until abort.
            e0.collective_exchange(1, 0, 0, 2, vec![])
        });
        std::thread::sleep(Duration::from_millis(30));
        f.abort("test abort");
        let err = h.join().unwrap().unwrap_err();
        assert!(matches!(err, MpiError::JobAborted(_)));
    }

    #[test]
    fn healing_partition_masks_traffic_and_suppresses_beats() {
        let f = fabric(3);
        f.enable_heartbeats();
        let e0 = f.endpoint(0).unwrap();
        let e2 = f.endpoint(2).unwrap();
        f.inject_partition(&[2], Some(Duration::from_millis(30)));
        assert!(f.partitioned());
        // Cross-cut message is held.
        e0.send(2, 0, 1, 0, vec![7]).unwrap();
        assert_eq!(e2.pending_incoming(), 0, "held at the cut, not delivered");
        assert_eq!(f.pending_messages(), 1);
        // Isolated rank's beats are suppressed while the partition is active.
        let before = f.heartbeat_ages()[2];
        std::thread::sleep(Duration::from_millis(10));
        let _ = e2.pending_incoming(); // would normally beat
        assert!(f.heartbeat_ages()[2] >= before);
        // After heal, the held message is delivered and beats resume.
        let env = e2
            .recv_blocking(&MatchSpec::from_mpi_args(1, 0, 0))
            .unwrap();
        assert_eq!(env.payload, vec![7]);
        assert!(!f.partitioned());
        let _ = e2.pending_incoming();
        assert!(f.heartbeat_ages()[2] < Duration::from_millis(100));
        let events = f.chaos_events();
        assert!(events
            .iter()
            .any(|e| matches!(e.action, ChaosAction::PartitionStarted { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.action, ChaosAction::PartitionHealed { .. })));
    }

    #[test]
    fn heartbeats_age_without_ops_and_refresh_with_them() {
        let f = fabric(2);
        f.enable_heartbeats();
        let e0 = f.endpoint(0).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let ages = f.heartbeat_ages();
        assert!(ages[0] >= Duration::from_millis(15));
        e0.send(1, 0, 1, 0, vec![]).unwrap();
        assert!(f.heartbeat_ages()[0] < Duration::from_millis(15));
        // Manual beats work too (compute-only phases).
        std::thread::sleep(Duration::from_millis(20));
        f.beat(0);
        assert!(f.heartbeat_ages()[0] < Duration::from_millis(15));
    }

    #[test]
    fn node_failure_kills_all_its_ranks() {
        let f = fabric(4);
        f.install_chaos(ChaosPlan::from_faults(vec![FaultKind::KillNode {
            ranks: vec![1, 2],
            at_op: 1,
        }]));
        let e0 = f.endpoint(0).unwrap();
        e0.send(3, 0, 1, 0, vec![]).unwrap();
        e0.send(3, 0, 1, 0, vec![]).unwrap();
        assert!(f.is_dead(1) && f.is_dead(2));
        assert!(!f.is_dead(0) && !f.is_dead(3));
    }

    #[test]
    fn mid_collective_crash_kills_before_contribution() {
        let f = fabric(2);
        f.install_chaos(ChaosPlan::from_faults(vec![FaultKind::CrashInCollective {
            rank: 1,
            at_entry: 1,
        }]));
        let e1 = f.endpoint(1).unwrap();
        let err = e1.collective_exchange(1, 0, 1, 2, vec![1]).unwrap_err();
        assert_eq!(err, MpiError::RankKilled { rank: 1 });
        // No contribution landed: the slot (if any) has nothing from index 1.
        let table = f.inner.collectives.lock();
        assert!(table
            .get(&(1, 0))
            .is_none_or(|s| s.contributions.is_empty()));
    }

    #[test]
    fn seeded_plan_runs_end_to_end_on_fabric() {
        // Smoke: install a full seeded plan and push traffic through; masked faults
        // must not corrupt or lose any message (no lethal faults in this menu).
        let f = fabric(2);
        let plan = ChaosPlan::seeded(
            7,
            2,
            &ChaosMenu {
                op_horizon: 40,
                ..ChaosMenu::masked_only()
            },
        );
        f.install_chaos(plan);
        let e0 = f.endpoint(0).unwrap();
        let e1 = f.endpoint(1).unwrap();
        let f2 = f.clone();
        let h = thread::spawn(move || {
            let spec = MatchSpec::from_mpi_args(1, 0, 0);
            let e1 = f2.endpoint(1).unwrap();
            (0..50u8)
                .map(|_| e1.recv_blocking(&spec).unwrap().payload[0])
                .collect::<Vec<u8>>()
        });
        for i in 0..50u8 {
            e0.send(1, 0, 1, 0, vec![i]).unwrap();
        }
        let got = h.join().unwrap();
        assert_eq!(got, (0..50u8).collect::<Vec<u8>>());
        drop(e1);
    }

    #[test]
    fn chaos_retransmit_reshares_instead_of_recopying() {
        let f = fabric(2);
        f.install_chaos(ChaosPlan::from_faults(vec![
            FaultKind::DropMessage {
                nth: 0,
                retransmit_ms: 5,
            },
            FaultKind::ReorderMessage {
                nth: 1,
                overtaken_by: 2,
            },
        ]));
        let e0 = f.endpoint(0).unwrap();
        let e1 = f.endpoint(1).unwrap();
        for i in 0..4u8 {
            e0.send(1, 0, 1, 0, vec![i; 32]).unwrap();
        }
        let spec = MatchSpec::from_mpi_args(1, 0, 0);
        for i in 0..4u8 {
            assert_eq!(e1.recv_blocking(&spec).unwrap().payload, vec![i; 32]);
        }
        let stats = f.stats();
        assert_eq!(
            stats.bytes_copied,
            4 * 32,
            "only the initial injections materialize bytes"
        );
        assert!(
            stats.bytes_shared >= 2 * 32,
            "drop-retransmit and reorder redelivery must reshare the injected \
             buffers, got {} shared bytes",
            stats.bytes_shared
        );
    }

    #[test]
    fn collective_fanout_shares_contribution_buffers() {
        let n = 4usize;
        let f = fabric(n);
        let mut handles = vec![];
        for rank in 0..n {
            let f = f.clone();
            handles.push(thread::spawn(move || {
                let ep = f.endpoint(rank as Rank).unwrap();
                ep.collective_exchange(1, 0, rank, n, vec![rank as u8; 16])
                    .unwrap()
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = f.stats();
        assert_eq!(
            stats.bytes_copied,
            (n * 16) as u64,
            "one materialization per contribution"
        );
        assert_eq!(
            stats.bytes_shared,
            (n * n * 16) as u64,
            "every reader's fan-out is refcount bumps of all {n} contributions"
        );
    }
}
