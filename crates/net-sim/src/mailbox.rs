//! Per-rank mailboxes holding messages that have been injected into the fabric but not
//! yet received.
//!
//! The contents of a mailbox are precisely the "pending point-to-point messages still
//! in the network" that MANA must drain before a checkpoint (paper §5, category 1): a
//! checkpoint image never includes them, so anything left here at checkpoint time would
//! be lost.

use crate::message::{Envelope, MatchSpec};
use mpi_model::types::Rank;

/// An ordered multiset of undelivered envelopes addressed to one rank.
///
/// Arrival order is preserved; matching always selects the earliest matching envelope,
/// which (together with the monotone sequence numbers assigned at injection) gives the
/// per-(sender, context) FIFO ordering MPI guarantees.
#[derive(Debug, Default)]
pub struct Mailbox {
    envelopes: Vec<Envelope>,
    /// Total number of envelopes ever delivered into this mailbox.
    pub delivered: u64,
    /// Total number of envelopes ever consumed from this mailbox.
    pub consumed: u64,
}

impl Mailbox {
    /// Create an empty mailbox.
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Deposit an envelope (called by the sender's side of the fabric).
    pub fn deposit(&mut self, envelope: Envelope) {
        self.delivered += 1;
        self.envelopes.push(envelope);
    }

    /// Find the earliest envelope matching `spec` without removing it.
    pub fn probe(&self, spec: &MatchSpec) -> Option<&Envelope> {
        self.envelopes.iter().find(|e| spec.matches(e))
    }

    /// Remove and return the earliest envelope matching `spec`.
    pub fn take(&mut self, spec: &MatchSpec) -> Option<Envelope> {
        let idx = self.envelopes.iter().position(|e| spec.matches(e))?;
        self.consumed += 1;
        Some(self.envelopes.remove(idx))
    }

    /// Number of undelivered envelopes currently queued.
    pub fn pending(&self) -> usize {
        self.envelopes.len()
    }

    /// Number of undelivered envelopes queued for a particular context.
    pub fn pending_for_context(&self, context: u64) -> usize {
        self.envelopes
            .iter()
            .filter(|e| e.context == context)
            .count()
    }

    /// Number of undelivered envelopes from a particular world rank.
    pub fn pending_from(&self, source_world: Rank) -> usize {
        self.envelopes
            .iter()
            .filter(|e| e.source_world == source_world)
            .count()
    }

    /// Iterate over the queued envelopes (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &Envelope> {
        self.envelopes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(source: Rank, context: u64, tag: i32, seq: u64) -> Envelope {
        Envelope {
            source_world: source,
            source_comm_rank: source,
            dest_world: 0,
            context,
            tag,
            seq,
            payload: vec![seq as u8],
        }
    }

    #[test]
    fn fifo_matching() {
        let mut mb = Mailbox::new();
        mb.deposit(env(1, 5, 0, 0));
        mb.deposit(env(1, 5, 0, 1));
        mb.deposit(env(2, 5, 0, 2));
        let spec = MatchSpec::from_mpi_args(5, 1, 0);
        let first = mb.take(&spec).unwrap();
        assert_eq!(first.seq, 0, "earliest matching envelope is taken first");
        let second = mb.take(&spec).unwrap();
        assert_eq!(second.seq, 1);
        assert!(mb.take(&spec).is_none());
        assert_eq!(mb.pending(), 1);
    }

    #[test]
    fn probe_does_not_consume() {
        let mut mb = Mailbox::new();
        mb.deposit(env(1, 5, 7, 0));
        let spec = MatchSpec::from_mpi_args(5, 1, 7);
        assert!(mb.probe(&spec).is_some());
        assert_eq!(mb.pending(), 1);
        assert!(mb.take(&spec).is_some());
        assert!(mb.probe(&spec).is_none());
    }

    #[test]
    fn per_context_counts() {
        let mut mb = Mailbox::new();
        mb.deposit(env(0, 1, 0, 0));
        mb.deposit(env(0, 2, 0, 1));
        mb.deposit(env(1, 2, 0, 2));
        assert_eq!(mb.pending_for_context(1), 1);
        assert_eq!(mb.pending_for_context(2), 2);
        assert_eq!(mb.pending_from(0), 2);
        assert_eq!(mb.pending_from(1), 1);
        assert_eq!(mb.delivered, 3);
        assert_eq!(mb.consumed, 0);
    }
}
