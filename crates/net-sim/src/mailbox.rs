//! Per-rank mailboxes holding messages that have been injected into the fabric but not
//! yet received.
//!
//! The contents of a mailbox are precisely the "pending point-to-point messages still
//! in the network" that MANA must drain before a checkpoint (paper §5, category 1): a
//! checkpoint image never includes them, so anything left here at checkpoint time would
//! be lost.
//!
//! The mailbox is also the **re-sequencing lane** that masks chaos-injected network
//! misbehaviour: every envelope carries a consecutive per-(source, destination)
//! `pair_seq` assigned at injection time, and an envelope arriving *ahead of a gap*
//! (because an earlier one was delayed, dropped-and-retransmitted, or deliberately
//! reordered by a [`crate::chaos::ChaosPlan`]) is parked — invisible to probes and
//! receives — until the missing envelopes arrive. The MPI layer above therefore
//! always observes the reliable, per-sender-FIFO network it was built against, which
//! is exactly how a real transport (TCP, verbs RC, Slingshot reliable delivery)
//! masks the same faults.
//!
//! This lane is copy-free: deposit, park, gap-release and take all *move* the
//! envelope, and the payload is a refcounted [`crate::bytes::PayloadBuf`], so even
//! paths that must duplicate an envelope (chaos retransmit, collective fan-out)
//! share one allocation. The fabric's `bytes_copied` / `bytes_shared` counters
//! ([`crate::stats::FabricStats`]) measure this.

use crate::message::{Envelope, MatchSpec};
use mpi_model::types::Rank;
use std::collections::HashMap;

/// An ordered multiset of undelivered envelopes addressed to one rank.
///
/// Arrival order is preserved; matching always selects the earliest matching envelope,
/// which (together with the monotone sequence numbers assigned at injection) gives the
/// per-(sender, context) FIFO ordering MPI guarantees.
#[derive(Debug, Default)]
pub struct Mailbox {
    envelopes: Vec<Envelope>,
    /// Envelopes that arrived ahead of a per-(source, destination) sequence gap:
    /// unmatchable until the gap fills.
    parked: Vec<Envelope>,
    /// The next expected `pair_seq` from each source world rank.
    next_expected: HashMap<Rank, u64>,
    /// Total number of envelopes ever delivered into this mailbox.
    pub delivered: u64,
    /// Total number of envelopes ever consumed from this mailbox.
    pub consumed: u64,
    /// Total number of envelopes that arrived out of order and had to be parked
    /// (a direct count of how much network misbehaviour this lane has masked).
    pub resequenced: u64,
}

impl Mailbox {
    /// Create an empty mailbox.
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Deposit an envelope (called by the sender's side of the fabric).
    ///
    /// An envelope whose `pair_seq` is ahead of the next expected sequence number
    /// from its source is parked until the gap fills; in-order envelopes (the only
    /// kind a chaos-free fabric produces) go straight to the matchable queue.
    pub fn deposit(&mut self, envelope: Envelope) {
        let expected = self.next_expected.entry(envelope.source_world).or_insert(0);
        if envelope.pair_seq != *expected {
            self.resequenced += 1;
            self.parked.push(envelope);
            return;
        }
        let source = envelope.source_world;
        *expected += 1;
        self.delivered += 1;
        self.envelopes.push(envelope);
        // The arrival may have filled a gap: release every parked envelope from the
        // same source that is now in sequence.
        loop {
            // The entry was created at the top of this call; `get` (rather than
            // indexing) keeps a hypothetical bookkeeping bug from panicking the
            // owning rank's delivery pump.
            let Some(&expected) = self.next_expected.get(&source) else {
                return;
            };
            let Some(idx) = self
                .parked
                .iter()
                .position(|e| e.source_world == source && e.pair_seq == expected)
            else {
                return;
            };
            let released = self.parked.swap_remove(idx);
            if let Some(next) = self.next_expected.get_mut(&source) {
                *next += 1;
            }
            self.delivered += 1;
            self.envelopes.push(released);
        }
    }

    /// Find the earliest envelope matching `spec` without removing it.
    pub fn probe(&self, spec: &MatchSpec) -> Option<&Envelope> {
        self.envelopes.iter().find(|e| spec.matches(e))
    }

    /// Remove and return the earliest envelope matching `spec`.
    pub fn take(&mut self, spec: &MatchSpec) -> Option<Envelope> {
        let idx = self.envelopes.iter().position(|e| spec.matches(e))?;
        self.consumed += 1;
        Some(self.envelopes.remove(idx))
    }

    /// Number of undelivered envelopes currently queued (parked ones included: they
    /// are still "in the network" for drain-accounting purposes).
    pub fn pending(&self) -> usize {
        self.envelopes.len() + self.parked.len()
    }

    /// Number of envelopes currently parked behind a sequence gap.
    pub fn parked(&self) -> usize {
        self.parked.len()
    }

    /// Number of undelivered envelopes queued for a particular context.
    pub fn pending_for_context(&self, context: u64) -> usize {
        self.envelopes
            .iter()
            .chain(self.parked.iter())
            .filter(|e| e.context == context)
            .count()
    }

    /// Number of undelivered envelopes from a particular world rank.
    pub fn pending_from(&self, source_world: Rank) -> usize {
        self.envelopes
            .iter()
            .chain(self.parked.iter())
            .filter(|e| e.source_world == source_world)
            .count()
    }

    /// Iterate over the matchable queued envelopes (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &Envelope> {
        self.envelopes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(source: Rank, context: u64, tag: i32, seq: u64) -> Envelope {
        Envelope {
            source_world: source,
            source_comm_rank: source,
            dest_world: 0,
            context,
            tag,
            seq,
            pair_seq: seq,
            payload: crate::bytes::PayloadBuf::from_vec(vec![seq as u8]),
        }
    }

    #[test]
    fn fifo_matching() {
        let mut mb = Mailbox::new();
        mb.deposit(env(1, 5, 0, 0));
        mb.deposit(env(1, 5, 0, 1));
        let mut third = env(2, 5, 0, 2);
        third.pair_seq = 0;
        mb.deposit(third);
        let spec = MatchSpec::from_mpi_args(5, 1, 0);
        let first = mb.take(&spec).unwrap();
        assert_eq!(first.seq, 0, "earliest matching envelope is taken first");
        let second = mb.take(&spec).unwrap();
        assert_eq!(second.seq, 1);
        assert!(mb.take(&spec).is_none());
        assert_eq!(mb.pending(), 1);
    }

    #[test]
    fn probe_does_not_consume() {
        let mut mb = Mailbox::new();
        mb.deposit(env(1, 5, 7, 0));
        let spec = MatchSpec::from_mpi_args(5, 1, 7);
        assert!(mb.probe(&spec).is_some());
        assert_eq!(mb.pending(), 1);
        assert!(mb.take(&spec).is_some());
        assert!(mb.probe(&spec).is_none());
    }

    #[test]
    fn per_context_counts() {
        let mut mb = Mailbox::new();
        mb.deposit(env(0, 1, 0, 0));
        let mut second = env(0, 2, 0, 1);
        second.pair_seq = 1;
        mb.deposit(second);
        let mut third = env(1, 2, 0, 2);
        third.pair_seq = 0;
        mb.deposit(third);
        assert_eq!(mb.pending_for_context(1), 1);
        assert_eq!(mb.pending_for_context(2), 2);
        assert_eq!(mb.pending_from(0), 2);
        assert_eq!(mb.pending_from(1), 1);
        assert_eq!(mb.delivered, 3);
        assert_eq!(mb.consumed, 0);
    }

    #[test]
    fn out_of_order_arrivals_are_parked_until_the_gap_fills() {
        let mut mb = Mailbox::new();
        let spec = MatchSpec::from_mpi_args(5, 1, 0);
        // pair_seq 1 and 2 arrive before 0: both parked, nothing matchable.
        mb.deposit(env(1, 5, 0, 1));
        mb.deposit(env(1, 5, 0, 2));
        assert!(mb.probe(&spec).is_none());
        assert_eq!(mb.parked(), 2);
        assert_eq!(mb.pending(), 2, "parked envelopes are still in the network");
        // The gap arrives: all three become matchable, in sequence order.
        mb.deposit(env(1, 5, 0, 0));
        assert_eq!(mb.parked(), 0);
        assert_eq!(mb.resequenced, 2);
        for expected in 0..3u64 {
            assert_eq!(mb.take(&spec).unwrap().pair_seq, expected);
        }
    }

    #[test]
    fn resequencing_is_per_source() {
        let mut mb = Mailbox::new();
        // Source 1's gap must not park source 2's in-order traffic.
        mb.deposit(env(1, 5, 0, 1));
        let mut other = env(2, 5, 0, 9);
        other.pair_seq = 0;
        mb.deposit(other);
        assert_eq!(mb.parked(), 1);
        assert!(mb.take(&MatchSpec::from_mpi_args(5, 2, 0)).is_some());
        assert!(mb.take(&MatchSpec::from_mpi_args(5, 1, 0)).is_none());
    }
}
