//! The fabric's payload buffer: a re-export of [`mpi_model::payload::PayloadBuf`]
//! plus the sharing-semantics tests that pin down what "zero-copy" means here.
//!
//! The type itself lives in `mpi-model` because the [`mpi_model::api::MpiApi`]
//! contract speaks it (and `net-sim` depends on `mpi-model`, so defining it there is
//! the only cycle-free home). Fabric code imports it from this module: the fabric's
//! sharing discipline — one allocation per injected payload, refcounts bumped at
//! every mailbox deposit, retransmit and collective fan-out — is a `net-sim`
//! property, and this is where it is specified and tested.
//!
//! Sharing discipline:
//!
//! * [`Endpoint::send`](crate::fabric::Endpoint::send) takes the payload by value as
//!   a [`PayloadBuf`]; injection never copies.
//! * A chaos hold (delay, reorder, drop-then-retransmit) moves the envelope; the
//!   re-delivered envelope references the same allocation as the injected one.
//! * A collective result is an `Arc<Vec<PayloadBuf>>`; all `N` readers receive
//!   refcount bumps of the same `N` contribution buffers.
//! * [`FabricStats`](crate::stats::FabricStats) counts `bytes_shared` (refcount
//!   bumps observed at fan-out/redelivery) against `bytes_copied` (genuine
//!   materializations), so "the fabric reshares" is a measured claim.

pub use mpi_model::payload::PayloadBuf;

#[cfg(test)]
mod tests {
    use super::PayloadBuf;
    use crate::fabric::{Fabric, FabricConfig};
    use crate::message::{Envelope, MatchSpec};

    #[test]
    fn envelope_clone_shares_the_payload_allocation() {
        let env = Envelope {
            source_world: 0,
            source_comm_rank: 0,
            dest_world: 1,
            context: 1,
            tag: 0,
            seq: 0,
            pair_seq: 0,
            payload: PayloadBuf::from_vec(vec![1, 2, 3, 4]),
        };
        let cloned = env.clone();
        assert!(env.payload.shares_allocation_with(&cloned.payload));
    }

    #[test]
    fn delivered_payload_shares_the_senders_allocation() {
        let fabric = Fabric::new(FabricConfig::new(2, 7));
        let e0 = fabric.endpoint(0).unwrap();
        let e1 = fabric.endpoint(1).unwrap();
        let payload = PayloadBuf::from_vec(vec![0xAB; 64]);
        let sent = payload.clone();
        e0.send(1, 0, 1, 5, payload).unwrap();
        let env = e1
            .recv_blocking(&MatchSpec::from_mpi_args(1, 0, 5))
            .unwrap();
        assert!(
            env.payload.shares_allocation_with(&sent),
            "the mailbox must deposit the sender's buffer, not a copy"
        );
    }

    #[test]
    fn slicing_a_received_payload_is_zero_copy() {
        let fabric = Fabric::new(FabricConfig::new(2, 7));
        let e0 = fabric.endpoint(0).unwrap();
        let e1 = fabric.endpoint(1).unwrap();
        e0.send(1, 0, 1, 0, PayloadBuf::from_vec((0..32).collect()))
            .unwrap();
        let env = e1
            .recv_blocking(&MatchSpec::from_mpi_args(1, 0, 0))
            .unwrap();
        let tail = env.payload.slice(16..32);
        assert!(tail.shares_allocation_with(&env.payload));
        assert_eq!(&tail[..], &(16..32).collect::<Vec<u8>>()[..]);
    }
}
