//! Wire-level message representation and matching rules.

use crate::bytes::PayloadBuf;
use mpi_model::types::{ContextId, Rank, SeqNo, Tag, ANY_SOURCE, ANY_TAG};
use serde::{Deserialize, Serialize};

/// A message travelling through the fabric.
///
/// Source and destination are *world* ranks — by the time a message reaches the fabric,
/// the MPI implementation has already translated communicator-relative ranks. The
/// communicator is represented by its context id, which is what isolates traffic on
/// different communicators from one another.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope {
    /// World rank of the sender.
    pub source_world: Rank,
    /// Rank of the sender within the communicator the message was sent on
    /// (what the receiver's `MPI_Status.MPI_SOURCE` must report).
    pub source_comm_rank: Rank,
    /// World rank of the destination.
    pub dest_world: Rank,
    /// Communication context (one per communicator).
    pub context: ContextId,
    /// Message tag.
    pub tag: Tag,
    /// Injection sequence number, used to keep per-(source, context) FIFO ordering.
    pub seq: SeqNo,
    /// Consecutive per-(source, destination) delivery sequence number, assigned at
    /// injection time *before* the chaos layer gets a chance to delay, drop or
    /// reorder the message. The destination mailbox uses it to re-sequence
    /// deliveries: an envelope arriving ahead of a gap is parked until the missing
    /// envelopes arrive, which is what masks chaos-injected delay, loss (with
    /// retransmission) and reordering from the MPI layer above.
    pub pair_seq: SeqNo,
    /// Payload bytes. A refcounted buffer: cloning the envelope (mailbox deposit,
    /// chaos retransmit, collective fan-out) shares the allocation instead of
    /// copying it.
    pub payload: PayloadBuf,
}

impl Envelope {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

/// Receive/probe matching specification: context is always exact, source and tag may be
/// wildcards (`MPI_ANY_SOURCE` / `MPI_ANY_TAG`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchSpec {
    /// Context id of the communicator the receive is posted on.
    pub context: ContextId,
    /// Sender rank *within the communicator*, or `None` for `MPI_ANY_SOURCE`.
    pub source_comm_rank: Option<Rank>,
    /// Tag, or `None` for `MPI_ANY_TAG`.
    pub tag: Option<Tag>,
}

impl MatchSpec {
    /// Build a spec from the raw MPI arguments, interpreting the wildcard constants.
    pub fn from_mpi_args(context: ContextId, source: Rank, tag: Tag) -> Self {
        MatchSpec {
            context,
            source_comm_rank: if source == ANY_SOURCE {
                None
            } else {
                Some(source)
            },
            tag: if tag == ANY_TAG { None } else { Some(tag) },
        }
    }

    /// Whether `envelope` satisfies this spec.
    pub fn matches(&self, envelope: &Envelope) -> bool {
        if envelope.context != self.context {
            return false;
        }
        if let Some(src) = self.source_comm_rank {
            if envelope.source_comm_rank != src {
                return false;
            }
        }
        if let Some(tag) = self.tag {
            if envelope.tag != tag {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(source_comm_rank: Rank, context: ContextId, tag: Tag) -> Envelope {
        Envelope {
            source_world: source_comm_rank,
            source_comm_rank,
            dest_world: 0,
            context,
            tag,
            seq: 0,
            pair_seq: 0,
            payload: PayloadBuf::from_vec(vec![1, 2, 3]),
        }
    }

    #[test]
    fn exact_match() {
        let spec = MatchSpec::from_mpi_args(5, 2, 9);
        assert!(spec.matches(&env(2, 5, 9)));
        assert!(!spec.matches(&env(3, 5, 9)));
        assert!(!spec.matches(&env(2, 6, 9)));
        assert!(!spec.matches(&env(2, 5, 8)));
    }

    #[test]
    fn wildcards() {
        let spec = MatchSpec::from_mpi_args(5, ANY_SOURCE, ANY_TAG);
        assert!(spec.matches(&env(0, 5, 0)));
        assert!(spec.matches(&env(7, 5, 123)));
        assert!(
            !spec.matches(&env(7, 4, 123)),
            "context is never a wildcard"
        );
        let spec = MatchSpec::from_mpi_args(5, ANY_SOURCE, 7);
        assert!(spec.matches(&env(1, 5, 7)));
        assert!(!spec.matches(&env(1, 5, 8)));
    }

    #[test]
    fn envelope_len() {
        assert_eq!(env(0, 0, 0).len(), 3);
        assert!(!env(0, 0, 0).is_empty());
    }
}
