//! The simulator's single wall-clock authority.
//!
//! Every other module in `net-sim` (and every `chaos.rs` in the workspace) is a
//! *deterministic* path: given a seed, a chaos schedule must replay identically,
//! so those modules may not read real time or sleep directly — the in-tree
//! analyzer's `no-wall-clock` rule enforces that. Real time is still needed at
//! the edges (blocking-receive timeouts, reorder backstops, wait-slice backoff),
//! and this module is the one approved place it enters the system. Concentrating
//! the calls here keeps the blast radius of nondeterminism auditable: a grep of
//! `clock::` callers is the complete list of time-dependent behaviour in the
//! simulator.
//!
//! The functions are deliberately thin aliases of `std` — the point is the choke
//! point, not an abstraction. If a virtual clock ever becomes necessary (e.g. to
//! make blocking timeouts deterministic under test), this is the only file that
//! changes.

use std::time::{Duration, Instant};

/// Read the wall clock. The only approved `Instant::now` in the simulator.
#[inline]
pub fn now() -> Instant {
    Instant::now()
}

/// Sleep the calling OS thread. The only approved `thread::sleep` in the
/// simulator; used for the bounded wait-slice backoff in blocking paths.
#[inline]
pub fn sleep(duration: Duration) {
    std::thread::sleep(duration)
}

/// Elapsed time since `start`, via the approved clock.
#[inline]
pub fn elapsed_since(start: Instant) -> Duration {
    now().duration_since(start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = now();
        let b = now();
        assert!(b >= a);
        assert!(elapsed_since(a) >= Duration::ZERO);
    }
}
