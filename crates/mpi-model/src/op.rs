//! MPI reduction operations.
//!
//! Predefined operations (`MPI_SUM`, `MPI_MAX`, ...) are pure functions of the element
//! type, so they can be described portably and replayed at restart with no extra
//! information. User-defined operations (`MPI_Op_create`) are the interesting case for
//! checkpointing: the function itself lives in the *upper half* (application memory,
//! which MANA checkpoints), so MANA only needs to remember the registration — the
//! function id and commutativity flag — and re-register it against the fresh lower
//! half at restart. That is exactly what [`OpDescriptor`] captures.

use crate::datatype::PrimitiveType;
use crate::error::{MpiError, MpiResult};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// The predefined reduction operations modelled here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PredefinedOp {
    /// `MPI_SUM`
    Sum,
    /// `MPI_PROD`
    Prod,
    /// `MPI_MAX`
    Max,
    /// `MPI_MIN`
    Min,
    /// `MPI_LAND`
    LogicalAnd,
    /// `MPI_LOR`
    LogicalOr,
    /// `MPI_BAND`
    BitwiseAnd,
    /// `MPI_BOR`
    BitwiseOr,
    /// `MPI_MAXLOC` (operates on value/index pairs)
    MaxLoc,
    /// `MPI_MINLOC` (operates on value/index pairs)
    MinLoc,
}

impl PredefinedOp {
    /// All predefined ops in a stable order (used by implementations' constant tables).
    pub const ALL: [PredefinedOp; 10] = [
        PredefinedOp::Sum,
        PredefinedOp::Prod,
        PredefinedOp::Max,
        PredefinedOp::Min,
        PredefinedOp::LogicalAnd,
        PredefinedOp::LogicalOr,
        PredefinedOp::BitwiseAnd,
        PredefinedOp::BitwiseOr,
        PredefinedOp::MaxLoc,
        PredefinedOp::MinLoc,
    ];

    /// Stable index of this op in [`PredefinedOp::ALL`].
    pub fn index(self) -> usize {
        PredefinedOp::ALL
            .iter()
            .position(|&o| o == self)
            // analyzer: allow(no-panic): provable invariant — the table enumerates every variant; the unit test below locks the bijection
            .expect("every op is in ALL")
    }

    /// Inverse of [`PredefinedOp::index`].
    pub fn from_index(index: usize) -> Option<Self> {
        PredefinedOp::ALL.get(index).copied()
    }

    /// MPI constant name of this op.
    pub fn mpi_name(self) -> &'static str {
        match self {
            PredefinedOp::Sum => "MPI_SUM",
            PredefinedOp::Prod => "MPI_PROD",
            PredefinedOp::Max => "MPI_MAX",
            PredefinedOp::Min => "MPI_MIN",
            PredefinedOp::LogicalAnd => "MPI_LAND",
            PredefinedOp::LogicalOr => "MPI_LOR",
            PredefinedOp::BitwiseAnd => "MPI_BAND",
            PredefinedOp::BitwiseOr => "MPI_BOR",
            PredefinedOp::MaxLoc => "MPI_MAXLOC",
            PredefinedOp::MinLoc => "MPI_MINLOC",
        }
    }

    /// All predefined operations are commutative (MPI guarantees this for its
    /// built-ins; only user ops may be non-commutative).
    pub fn is_commutative(self) -> bool {
        true
    }
}

/// Signature of a user-defined reduction function: `(inout, incoming, element_type)`.
///
/// `inout` is updated in place, combining it with `incoming` element-wise, matching the
/// semantics of the C callback passed to `MPI_Op_create`.
pub type UserFunction = Arc<dyn Fn(&mut [u8], &[u8], PrimitiveType) + Send + Sync>;

/// Registry of user-defined reduction functions.
///
/// The registry lives in the *upper half*: it is part of the application/MANA state and
/// therefore survives a checkpoint. Lower halves only ever see the numeric function id,
/// so re-registering after restart is a pure table operation.
#[derive(Default, Clone)]
pub struct UserFunctionRegistry {
    functions: HashMap<u64, (UserFunction, bool)>,
}

impl UserFunctionRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a user function under `func_id` with the given commutativity.
    /// Re-registering the same id replaces the previous function (as after a restart).
    pub fn register(&mut self, func_id: u64, commutative: bool, f: UserFunction) {
        self.functions.insert(func_id, (f, commutative));
    }

    /// Remove a registration (`MPI_Op_free` of a user op).
    pub fn unregister(&mut self, func_id: u64) {
        self.functions.remove(&func_id);
    }

    /// Look up a registered function.
    pub fn get(&self, func_id: u64) -> Option<(&UserFunction, bool)> {
        self.functions.get(&func_id).map(|(f, c)| (f, *c))
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

impl std::fmt::Debug for UserFunctionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UserFunctionRegistry")
            .field("functions", &self.functions.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Portable description of an `MPI_Op`, as stored in MANA's virtual-id descriptors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpDescriptor {
    /// One of the predefined operations.
    Predefined(PredefinedOp),
    /// A user operation created with `MPI_Op_create`.
    User {
        /// Upper-half function id (key into the [`UserFunctionRegistry`]).
        func_id: u64,
        /// Whether the user declared the operation commutative.
        commutative: bool,
    },
}

impl OpDescriptor {
    /// Whether this op may be applied in any order by the implementation.
    pub fn is_commutative(&self) -> bool {
        match self {
            OpDescriptor::Predefined(p) => p.is_commutative(),
            OpDescriptor::User { commutative, .. } => *commutative,
        }
    }
}

macro_rules! reduce_numeric {
    ($ty:ty, $inout:expr, $incoming:expr, $op:expr) => {{
        let width = std::mem::size_of::<$ty>();
        for (dst, src) in $inout
            .chunks_exact_mut(width)
            .zip($incoming.chunks_exact(width))
        {
            // analyzer: allow(no-panic): provable invariant — chunks_exact(width) yields exactly width-byte slices
            let a = <$ty>::from_le_bytes(dst.try_into().unwrap());
            let b = <$ty>::from_le_bytes(src.try_into().unwrap());
            let r: $ty = match $op {
                PredefinedOp::Sum => a.wrapping_add_model(b),
                PredefinedOp::Prod => a.wrapping_mul_model(b),
                PredefinedOp::Max => {
                    if a >= b {
                        a
                    } else {
                        b
                    }
                }
                PredefinedOp::Min => {
                    if a <= b {
                        a
                    } else {
                        b
                    }
                }
                PredefinedOp::LogicalAnd => {
                    if a != <$ty>::zero_model() && b != <$ty>::zero_model() {
                        <$ty>::one_model()
                    } else {
                        <$ty>::zero_model()
                    }
                }
                PredefinedOp::LogicalOr => {
                    if a != <$ty>::zero_model() || b != <$ty>::zero_model() {
                        <$ty>::one_model()
                    } else {
                        <$ty>::zero_model()
                    }
                }
                PredefinedOp::BitwiseAnd => a.band_model(b),
                PredefinedOp::BitwiseOr => a.bor_model(b),
                PredefinedOp::MaxLoc | PredefinedOp::MinLoc => {
                    return Err(MpiError::Internal(
                        "MAXLOC/MINLOC require MPI_DOUBLE_INT pairs".to_string(),
                    ))
                }
            };
            dst.copy_from_slice(&r.to_le_bytes());
        }
        Ok(())
    }};
}

/// Tiny numeric-model trait so the reduction macro can treat integers and floats
/// uniformly (floats have no wrapping arithmetic or bitwise ops in MPI; attempting
/// a bitwise op on a float type is an application error we surface as `Internal`).
trait NumericModel: Copy + PartialEq + PartialOrd {
    fn wrapping_add_model(self, other: Self) -> Self;
    fn wrapping_mul_model(self, other: Self) -> Self;
    fn band_model(self, other: Self) -> Self;
    fn bor_model(self, other: Self) -> Self;
    fn zero_model() -> Self;
    fn one_model() -> Self;
}

macro_rules! impl_numeric_int {
    ($($ty:ty),*) => {$(
        impl NumericModel for $ty {
            fn wrapping_add_model(self, other: Self) -> Self { self.wrapping_add(other) }
            fn wrapping_mul_model(self, other: Self) -> Self { self.wrapping_mul(other) }
            fn band_model(self, other: Self) -> Self { self & other }
            fn bor_model(self, other: Self) -> Self { self | other }
            fn zero_model() -> Self { 0 }
            fn one_model() -> Self { 1 }
        }
    )*};
}

impl_numeric_int!(i8, u8, i32, u32, i64, u64);

macro_rules! impl_numeric_float {
    ($($ty:ty),*) => {$(
        impl NumericModel for $ty {
            fn wrapping_add_model(self, other: Self) -> Self { self + other }
            fn wrapping_mul_model(self, other: Self) -> Self { self * other }
            fn band_model(self, _other: Self) -> Self {
                // Bitwise ops on floating types are erroneous in MPI; the caller
                // filters this case out, so reaching here is a model bug.
                // analyzer: allow(no-panic): caller invariant — reduce() rejects bitwise ops on float types before dispatch
                unreachable!("bitwise op on float")
            }
            // analyzer: allow(no-panic): caller invariant — reduce() rejects bitwise ops on float types before dispatch
            fn bor_model(self, _other: Self) -> Self { unreachable!("bitwise op on float") }
            fn zero_model() -> Self { 0.0 }
            fn one_model() -> Self { 1.0 }
        }
    )*};
}

impl_numeric_float!(f32, f64);

/// Apply a predefined reduction element-wise: `inout[i] = op(inout[i], incoming[i])`.
///
/// Both buffers must contain whole elements of `element_type` and have equal length.
/// This is the kernel every simulated implementation's `MPI_Reduce`/`MPI_Allreduce`
/// uses once the fabric has delivered contributions.
pub fn apply_predefined(
    op: PredefinedOp,
    element_type: PrimitiveType,
    inout: &mut [u8],
    incoming: &[u8],
) -> MpiResult<()> {
    if inout.len() != incoming.len() {
        return Err(MpiError::Internal(format!(
            "reduction buffer length mismatch: {} vs {}",
            inout.len(),
            incoming.len()
        )));
    }
    if !inout.len().is_multiple_of(element_type.size()) {
        return Err(MpiError::Internal(format!(
            "reduction buffer length {} is not a multiple of element size {}",
            inout.len(),
            element_type.size()
        )));
    }
    let bitwise = matches!(op, PredefinedOp::BitwiseAnd | PredefinedOp::BitwiseOr);
    match element_type {
        PrimitiveType::Char | PrimitiveType::Int8 => reduce_numeric!(i8, inout, incoming, op),
        PrimitiveType::Byte | PrimitiveType::Bool => reduce_numeric!(u8, inout, incoming, op),
        PrimitiveType::Int => reduce_numeric!(i32, inout, incoming, op),
        PrimitiveType::Unsigned => reduce_numeric!(u32, inout, incoming, op),
        PrimitiveType::Long => reduce_numeric!(i64, inout, incoming, op),
        PrimitiveType::UnsignedLong => reduce_numeric!(u64, inout, incoming, op),
        PrimitiveType::Float => {
            if bitwise {
                return Err(MpiError::Internal("bitwise reduction on MPI_FLOAT".into()));
            }
            reduce_numeric!(f32, inout, incoming, op)
        }
        PrimitiveType::Double => {
            if bitwise {
                return Err(MpiError::Internal("bitwise reduction on MPI_DOUBLE".into()));
            }
            reduce_numeric!(f64, inout, incoming, op)
        }
        PrimitiveType::DoubleInt => apply_loc(op, inout, incoming),
    }
}

/// MAXLOC/MINLOC reduction on `MPI_DOUBLE_INT` pairs (8-byte double + 4-byte index).
fn apply_loc(op: PredefinedOp, inout: &mut [u8], incoming: &[u8]) -> MpiResult<()> {
    if !matches!(op, PredefinedOp::MaxLoc | PredefinedOp::MinLoc) {
        return Err(MpiError::Internal(format!(
            "{} is not defined on MPI_DOUBLE_INT in this model",
            op.mpi_name()
        )));
    }
    const PAIR: usize = 12;
    for (dst, src) in inout
        .chunks_exact_mut(PAIR)
        .zip(incoming.chunks_exact(PAIR))
    {
        // analyzer: allow(no-panic): provable invariant — chunks_exact(12) yields exactly 12-byte slices
        let a_val = f64::from_le_bytes(dst[..8].try_into().unwrap());
        let a_idx = i32::from_le_bytes(dst[8..12].try_into().unwrap());
        // analyzer: allow(no-panic): provable invariant — chunks_exact(12) yields exactly 12-byte slices
        let b_val = f64::from_le_bytes(src[..8].try_into().unwrap());
        let b_idx = i32::from_le_bytes(src[8..12].try_into().unwrap());
        let take_b = match op {
            PredefinedOp::MaxLoc => b_val > a_val || (b_val == a_val && b_idx < a_idx),
            PredefinedOp::MinLoc => b_val < a_val || (b_val == a_val && b_idx < a_idx),
            // analyzer: allow(no-panic): caller invariant — this helper is dispatched only for MaxLoc/MinLoc
            _ => unreachable!(),
        };
        if take_b {
            dst[..8].copy_from_slice(&b_val.to_le_bytes());
            dst[8..12].copy_from_slice(&b_idx.to_le_bytes());
        }
    }
    Ok(())
}

/// Apply an [`OpDescriptor`] — predefined or user-defined — using `registry` to resolve
/// user function ids.
pub fn apply_op(
    op: &OpDescriptor,
    element_type: PrimitiveType,
    inout: &mut [u8],
    incoming: &[u8],
    registry: &UserFunctionRegistry,
) -> MpiResult<()> {
    match op {
        OpDescriptor::Predefined(p) => apply_predefined(*p, element_type, inout, incoming),
        OpDescriptor::User { func_id, .. } => {
            let (f, _) = registry
                .get(*func_id)
                .ok_or(MpiError::UnknownUserFunction(*func_id))?;
            f(inout, incoming, element_type);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn as_f64_vec(bytes: &[u8]) -> Vec<f64> {
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    fn f64_bytes(v: &[f64]) -> Vec<u8> {
        v.iter().flat_map(|x| x.to_le_bytes()).collect()
    }

    fn i32_bytes(v: &[i32]) -> Vec<u8> {
        v.iter().flat_map(|x| x.to_le_bytes()).collect()
    }

    #[test]
    fn sum_doubles() {
        let mut a = f64_bytes(&[1.0, 2.0, 3.0]);
        let b = f64_bytes(&[10.0, 20.0, 30.0]);
        apply_predefined(PredefinedOp::Sum, PrimitiveType::Double, &mut a, &b).unwrap();
        assert_eq!(as_f64_vec(&a), vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn max_min_ints() {
        let mut a = i32_bytes(&[1, 50, -3]);
        let b = i32_bytes(&[10, 2, -30]);
        apply_predefined(PredefinedOp::Max, PrimitiveType::Int, &mut a, &b).unwrap();
        let vals: Vec<i32> = a
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![10, 50, -3]);

        let mut a = i32_bytes(&[1, 50, -3]);
        apply_predefined(PredefinedOp::Min, PrimitiveType::Int, &mut a, &b).unwrap();
        let vals: Vec<i32> = a
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![1, 2, -30]);
    }

    #[test]
    fn bitwise_on_float_is_error() {
        let mut a = f64_bytes(&[1.0]);
        let b = f64_bytes(&[2.0]);
        assert!(
            apply_predefined(PredefinedOp::BitwiseAnd, PrimitiveType::Double, &mut a, &b).is_err()
        );
    }

    #[test]
    fn logical_ops_on_ints() {
        let mut a = i32_bytes(&[0, 5]);
        let b = i32_bytes(&[3, 0]);
        apply_predefined(PredefinedOp::LogicalAnd, PrimitiveType::Int, &mut a, &b).unwrap();
        let vals: Vec<i32> = a
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![0, 0]);

        let mut a = i32_bytes(&[0, 5]);
        apply_predefined(PredefinedOp::LogicalOr, PrimitiveType::Int, &mut a, &b).unwrap();
        let vals: Vec<i32> = a
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![1, 1]);
    }

    #[test]
    fn maxloc_pairs() {
        // pairs (value, index)
        let mut a: Vec<u8> = vec![];
        a.extend(5.0f64.to_le_bytes());
        a.extend(7i32.to_le_bytes());
        let mut b: Vec<u8> = vec![];
        b.extend(5.0f64.to_le_bytes());
        b.extend(3i32.to_le_bytes());
        apply_predefined(PredefinedOp::MaxLoc, PrimitiveType::DoubleInt, &mut a, &b).unwrap();
        // equal values: lower index wins
        assert_eq!(i32::from_le_bytes(a[8..12].try_into().unwrap()), 3);
    }

    #[test]
    fn length_mismatch_is_error() {
        let mut a = vec![0u8; 8];
        let b = vec![0u8; 16];
        assert!(apply_predefined(PredefinedOp::Sum, PrimitiveType::Double, &mut a, &b).is_err());
        let mut c = vec![0u8; 6];
        let d = vec![0u8; 6];
        assert!(apply_predefined(PredefinedOp::Sum, PrimitiveType::Double, &mut c, &d).is_err());
    }

    #[test]
    fn user_function_registry() {
        let mut reg = UserFunctionRegistry::new();
        assert!(reg.is_empty());
        reg.register(
            42,
            true,
            Arc::new(|inout, incoming, ty| {
                assert_eq!(ty, PrimitiveType::Int);
                for (d, s) in inout.chunks_exact_mut(4).zip(incoming.chunks_exact(4)) {
                    let a = i32::from_le_bytes(d.try_into().unwrap());
                    let b = i32::from_le_bytes(s.try_into().unwrap());
                    d.copy_from_slice(&(a * 10 + b).to_le_bytes());
                }
            }),
        );
        assert_eq!(reg.len(), 1);
        let op = OpDescriptor::User {
            func_id: 42,
            commutative: true,
        };
        let mut a = i32_bytes(&[1]);
        let b = i32_bytes(&[2]);
        apply_op(&op, PrimitiveType::Int, &mut a, &b, &reg).unwrap();
        assert_eq!(i32::from_le_bytes(a[..4].try_into().unwrap()), 12);

        let missing = OpDescriptor::User {
            func_id: 99,
            commutative: true,
        };
        assert_eq!(
            apply_op(&missing, PrimitiveType::Int, &mut a, &b, &reg),
            Err(MpiError::UnknownUserFunction(99))
        );
        reg.unregister(42);
        assert!(reg.is_empty());
    }

    #[test]
    fn op_descriptor_commutativity() {
        assert!(OpDescriptor::Predefined(PredefinedOp::Sum).is_commutative());
        assert!(!OpDescriptor::User {
            func_id: 1,
            commutative: false
        }
        .is_commutative());
    }

    #[test]
    fn op_index_roundtrip() {
        for op in PredefinedOp::ALL {
            assert_eq!(PredefinedOp::from_index(op.index()), Some(op));
        }
        assert_eq!(PredefinedOp::from_index(100), None);
    }
}
