//! Refcounted immutable payload buffer shared across the messaging stack.
//!
//! [`PayloadBuf`] is an in-tree `Bytes`-alike: an `Arc<[u8]>` plus an offset/length
//! window. Cloning one is a refcount bump, and [`PayloadBuf::slice`] produces a new
//! window over the *same* allocation — no bytes move. This is what makes a fabric
//! send a pointer hand-off: the sender's buffer, every mailbox deposit, every chaos
//! retransmit and every collective fan-out destination all reference one allocation.
//!
//! The buffer is immutable by construction (there is no `&mut [u8]` accessor), so
//! sharing it across rank threads is safe without any synchronization beyond the
//! refcount. Producers build a `Vec<u8>` once and convert it with `From<Vec<u8>>`
//! (zero copy); consumers read through `Deref<Target = [u8]>`.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// A cheaply clonable, immutable, refcounted byte buffer with zero-copy slicing.
#[derive(Clone)]
pub struct PayloadBuf {
    data: Arc<[u8]>,
    offset: usize,
    len: usize,
}

impl PayloadBuf {
    /// The empty buffer. Does not allocate a fresh backing store per call beyond the
    /// zero-length `Arc<[u8]>` itself.
    pub fn new() -> Self {
        PayloadBuf {
            data: Arc::from(&[][..]),
            offset: 0,
            len: 0,
        }
    }

    /// Wrap an owned vector without copying its contents.
    pub fn from_vec(vec: Vec<u8>) -> Self {
        let len = vec.len();
        PayloadBuf {
            data: Arc::from(vec.into_boxed_slice()),
            offset: 0,
            len,
        }
    }

    /// Copy a borrowed slice into a fresh buffer. This is the *one* place a copy
    /// happens when a caller only holds `&[u8]`; callers that own their bytes should
    /// prefer `From<Vec<u8>>`.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        PayloadBuf {
            data: Arc::from(bytes),
            offset: 0,
            len: bytes.len(),
        }
    }

    /// Length of the visible window in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the visible window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The visible bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }

    /// Copy the visible bytes out into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A new window over the same allocation covering `range` of this window.
    /// Zero-copy: the returned buffer shares this buffer's backing store.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted, mirroring slice indexing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "PayloadBuf::slice range {start}..{end} out of bounds for length {}",
            self.len
        );
        PayloadBuf {
            data: Arc::clone(&self.data),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// Whether `self` and `other` are windows over the same backing allocation.
    /// Used by the fabric's `bytes_shared` accounting and the sharing tests; it is
    /// `true` for clones and sub-slices, `false` for equal-but-copied buffers.
    pub fn shares_allocation_with(&self, other: &PayloadBuf) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Number of live references to the backing allocation (diagnostics only).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }
}

impl Default for PayloadBuf {
    fn default() -> Self {
        PayloadBuf::new()
    }
}

impl Deref for PayloadBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for PayloadBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

// Consistent with the slice-delegating Eq/Hash impls below; enables
// `Vec<PayloadBuf>::concat()` and slice-keyed map lookups.
impl std::borrow::Borrow<[u8]> for PayloadBuf {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for PayloadBuf {
    fn from(vec: Vec<u8>) -> Self {
        PayloadBuf::from_vec(vec)
    }
}

impl From<&[u8]> for PayloadBuf {
    fn from(bytes: &[u8]) -> Self {
        PayloadBuf::copy_from_slice(bytes)
    }
}

impl<const N: usize> From<[u8; N]> for PayloadBuf {
    fn from(bytes: [u8; N]) -> Self {
        PayloadBuf::copy_from_slice(&bytes)
    }
}

impl From<PayloadBuf> for Vec<u8> {
    fn from(buf: PayloadBuf) -> Vec<u8> {
        buf.to_vec()
    }
}

impl fmt::Debug for PayloadBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl PartialEq for PayloadBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PayloadBuf {}

impl std::hash::Hash for PayloadBuf {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<Vec<u8>> for PayloadBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<PayloadBuf> for Vec<u8> {
    fn eq(&self, other: &PayloadBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[u8]> for PayloadBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for PayloadBuf {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for PayloadBuf {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl FromIterator<u8> for PayloadBuf {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        PayloadBuf::from_vec(iter.into_iter().collect())
    }
}

// On the wire (checkpoint images carry drained envelopes), a PayloadBuf reads and
// writes exactly like a Vec<u8>, so images written before the refactor deserialize
// unchanged and vice versa.
impl Serialize for PayloadBuf {
    fn to_value(&self) -> Value {
        self.as_slice().to_vec().to_value()
    }
}

impl<'de> Deserialize<'de> for PayloadBuf {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        Ok(PayloadBuf::from_vec(Vec::<u8>::from_value(value)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let a = PayloadBuf::from_vec(vec![1, 2, 3, 4]);
        let b = a.clone();
        assert!(a.shares_allocation_with(&b));
        assert_eq!(a, b);
        assert_eq!(a.ref_count(), 2);
    }

    #[test]
    fn slice_is_zero_copy_and_windowed() {
        let a = PayloadBuf::from_vec((0..16).collect());
        let mid = a.slice(4..12);
        assert!(a.shares_allocation_with(&mid));
        assert_eq!(mid.len(), 8);
        assert_eq!(&mid[..], &(4..12).collect::<Vec<u8>>()[..]);
        let inner = mid.slice(2..4);
        assert!(inner.shares_allocation_with(&a));
        assert_eq!(&inner[..], &[6, 7]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_rejects_out_of_bounds() {
        let a = PayloadBuf::from_vec(vec![0; 4]);
        let _ = a.slice(2..8);
    }

    #[test]
    fn copies_are_equal_but_unshared() {
        let a = PayloadBuf::from_vec(vec![9; 32]);
        let b = PayloadBuf::copy_from_slice(&a);
        assert_eq!(a, b);
        assert!(!a.shares_allocation_with(&b));
    }

    #[test]
    fn compares_against_vecs_and_slices() {
        let a = PayloadBuf::from_vec(vec![1, 2, 3]);
        assert_eq!(a, vec![1, 2, 3]);
        assert_eq!(vec![1, 2, 3], a);
        assert_eq!(a, [1, 2, 3]);
        assert!(a == *[1u8, 2, 3].as_slice());
    }

    #[test]
    fn serializes_like_a_vec() {
        let a = PayloadBuf::from_vec(vec![7, 0, 255]);
        let as_vec_value = vec![7u8, 0, 255].to_value();
        assert_eq!(a.to_value(), as_vec_value);
        let back = PayloadBuf::from_value(&as_vec_value).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn empty_default_and_round_trips() {
        let e = PayloadBuf::new();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(PayloadBuf::default(), e);
        let v: Vec<u8> = PayloadBuf::from_vec(vec![5, 6]).into();
        assert_eq!(v, vec![5, 6]);
    }
}
