//! MPI datatype model: primitive types, derived-type construction, and the
//! envelope/contents decode surface that MANA relies on to reconstruct datatypes at
//! restart time (paper §5, category 2: `MPI_Type_get_envelope`, `MPI_Type_get_contents`).
//!
//! A datatype in this model is a tree: leaves are [`PrimitiveType`]s and interior nodes
//! record the constructor (`combiner`) and its integer arguments, mirroring how real
//! implementations expose derived types through `MPI_Type_get_contents`. MANA never
//! needs to look inside the lower half's datatype objects — it only needs this portable
//! description, which is exactly what the new virtual-id descriptors cache.

use crate::error::{MpiError, MpiResult};
use serde::{Deserialize, Serialize};

/// The MPI predefined (primitive) datatypes modelled in this reproduction.
///
/// The list covers every primitive used by the proxy applications and the benchmarks;
/// it is not the full MPI-3 roster, but adding a variant is purely additive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PrimitiveType {
    /// `MPI_CHAR`
    Char,
    /// `MPI_INT8_T` — shares a representation with `Char` in ExaMPI (paper §4.3).
    Int8,
    /// `MPI_UINT8_T` / `MPI_BYTE`
    Byte,
    /// `MPI_INT` (32-bit)
    Int,
    /// `MPI_UNSIGNED`
    Unsigned,
    /// `MPI_LONG` / `MPI_INT64_T`
    Long,
    /// `MPI_UNSIGNED_LONG` / `MPI_UINT64_T`
    UnsignedLong,
    /// `MPI_FLOAT`
    Float,
    /// `MPI_DOUBLE`
    Double,
    /// `MPI_C_BOOL`
    Bool,
    /// `MPI_DOUBLE_INT` (value + index pair used by `MPI_MAXLOC`/`MPI_MINLOC`)
    DoubleInt,
}

impl PrimitiveType {
    /// All primitives, in a stable order. The position in this array doubles as the
    /// "named datatype index" used by the simulated implementations' constant tables.
    pub const ALL: [PrimitiveType; 11] = [
        PrimitiveType::Char,
        PrimitiveType::Int8,
        PrimitiveType::Byte,
        PrimitiveType::Int,
        PrimitiveType::Unsigned,
        PrimitiveType::Long,
        PrimitiveType::UnsignedLong,
        PrimitiveType::Float,
        PrimitiveType::Double,
        PrimitiveType::Bool,
        PrimitiveType::DoubleInt,
    ];

    /// Size in bytes of one element of this primitive type.
    pub fn size(self) -> usize {
        match self {
            PrimitiveType::Char
            | PrimitiveType::Int8
            | PrimitiveType::Byte
            | PrimitiveType::Bool => 1,
            PrimitiveType::Int | PrimitiveType::Unsigned | PrimitiveType::Float => 4,
            PrimitiveType::Long | PrimitiveType::UnsignedLong | PrimitiveType::Double => 8,
            PrimitiveType::DoubleInt => 12,
        }
    }

    /// Stable index of this primitive in [`PrimitiveType::ALL`].
    pub fn index(self) -> usize {
        PrimitiveType::ALL
            .iter()
            .position(|&p| p == self)
            // analyzer: allow(no-panic): provable invariant — the table enumerates every variant; the unit test below locks the bijection
            .expect("every primitive is in ALL")
    }

    /// Inverse of [`PrimitiveType::index`].
    pub fn from_index(index: usize) -> Option<Self> {
        PrimitiveType::ALL.get(index).copied()
    }

    /// The MPI name of this primitive (`MPI_INT`, ...).
    pub fn mpi_name(self) -> &'static str {
        match self {
            PrimitiveType::Char => "MPI_CHAR",
            PrimitiveType::Int8 => "MPI_INT8_T",
            PrimitiveType::Byte => "MPI_BYTE",
            PrimitiveType::Int => "MPI_INT",
            PrimitiveType::Unsigned => "MPI_UNSIGNED",
            PrimitiveType::Long => "MPI_LONG",
            PrimitiveType::UnsignedLong => "MPI_UNSIGNED_LONG",
            PrimitiveType::Float => "MPI_FLOAT",
            PrimitiveType::Double => "MPI_DOUBLE",
            PrimitiveType::Bool => "MPI_C_BOOL",
            PrimitiveType::DoubleInt => "MPI_DOUBLE_INT",
        }
    }
}

/// The constructor that produced a derived datatype, as reported by
/// `MPI_Type_get_envelope` (`MPI_COMBINER_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TypeCombiner {
    /// A predefined (named) datatype; has no contents to decode.
    Named,
    /// `MPI_Type_dup`
    Dup,
    /// `MPI_Type_contiguous(count, oldtype)`
    Contiguous,
    /// `MPI_Type_vector(count, blocklength, stride, oldtype)`
    Vector,
    /// `MPI_Type_indexed(count, blocklengths[], displacements[], oldtype)`
    Indexed,
    /// `MPI_Type_create_struct(count, blocklengths[], displacements[], types[])`
    Struct,
}

impl TypeCombiner {
    /// MPI constant name for this combiner.
    pub fn mpi_name(self) -> &'static str {
        match self {
            TypeCombiner::Named => "MPI_COMBINER_NAMED",
            TypeCombiner::Dup => "MPI_COMBINER_DUP",
            TypeCombiner::Contiguous => "MPI_COMBINER_CONTIGUOUS",
            TypeCombiner::Vector => "MPI_COMBINER_VECTOR",
            TypeCombiner::Indexed => "MPI_COMBINER_INDEXED",
            TypeCombiner::Struct => "MPI_COMBINER_STRUCT",
        }
    }
}

/// The result of `MPI_Type_get_envelope`: how many integers, addresses and datatypes
/// `MPI_Type_get_contents` will return, and which combiner built the type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypeEnvelope {
    /// Number of integer arguments in the contents.
    pub num_integers: usize,
    /// Number of address arguments in the contents.
    pub num_addresses: usize,
    /// Number of inner datatypes in the contents.
    pub num_datatypes: usize,
    /// The combiner that constructed the type.
    pub combiner: TypeCombiner,
}

/// The result of `MPI_Type_get_contents`: the constructor arguments, with inner
/// datatypes given as portable [`TypeDescriptor`]s rather than handles so the record is
/// self-contained across a checkpoint/restart boundary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypeContents {
    /// Integer arguments (counts, block lengths, strides) in constructor order.
    pub integers: Vec<i64>,
    /// Address (byte displacement) arguments in constructor order.
    pub addresses: Vec<i64>,
    /// Inner datatypes, in constructor order.
    pub datatypes: Vec<TypeDescriptor>,
}

/// A portable, implementation-independent description of an MPI datatype.
///
/// This is what MANA's virtual-id descriptor stores for each datatype the application
/// creates, and what the restart coordinator replays to rebuild a semantically
/// equivalent datatype in the fresh lower half.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TypeDescriptor {
    /// A predefined type.
    Primitive(PrimitiveType),
    /// `MPI_Type_dup(inner)`.
    Dup(Box<TypeDescriptor>),
    /// `MPI_Type_contiguous(count, inner)`.
    Contiguous {
        /// Number of repetitions of the inner type.
        count: usize,
        /// The replicated type.
        inner: Box<TypeDescriptor>,
    },
    /// `MPI_Type_vector(count, block_length, stride, inner)`.
    Vector {
        /// Number of blocks.
        count: usize,
        /// Elements of `inner` per block.
        block_length: usize,
        /// Stride between block starts, in elements of `inner`.
        stride: i64,
        /// The element type.
        inner: Box<TypeDescriptor>,
    },
    /// `MPI_Type_indexed(block_lengths, displacements, inner)`.
    Indexed {
        /// Elements of `inner` in each block.
        block_lengths: Vec<usize>,
        /// Displacement of each block, in elements of `inner`.
        displacements: Vec<i64>,
        /// The element type.
        inner: Box<TypeDescriptor>,
    },
    /// `MPI_Type_create_struct(block_lengths, byte_displacements, types)`.
    Struct {
        /// Elements of the corresponding member type in each block.
        block_lengths: Vec<usize>,
        /// Byte displacement of each block.
        byte_displacements: Vec<i64>,
        /// Member types.
        types: Vec<TypeDescriptor>,
    },
}

impl TypeDescriptor {
    /// Number of *significant* bytes one element of this datatype describes
    /// (the MPI "size", ignoring gaps introduced by strides/displacements).
    pub fn size(&self) -> usize {
        match self {
            TypeDescriptor::Primitive(p) => p.size(),
            TypeDescriptor::Dup(inner) => inner.size(),
            TypeDescriptor::Contiguous { count, inner } => count * inner.size(),
            TypeDescriptor::Vector {
                count,
                block_length,
                inner,
                ..
            } => count * block_length * inner.size(),
            TypeDescriptor::Indexed {
                block_lengths,
                inner,
                ..
            } => block_lengths.iter().sum::<usize>() * inner.size(),
            TypeDescriptor::Struct {
                block_lengths,
                types,
                ..
            } => block_lengths
                .iter()
                .zip(types.iter())
                .map(|(len, ty)| len * ty.size())
                .sum(),
        }
    }

    /// The span in bytes from the first to one past the last byte touched by one
    /// element of this datatype (the MPI "extent", assuming no artificial resizing).
    pub fn extent(&self) -> usize {
        match self {
            TypeDescriptor::Primitive(p) => p.size(),
            TypeDescriptor::Dup(inner) => inner.extent(),
            TypeDescriptor::Contiguous { count, inner } => count * inner.extent(),
            TypeDescriptor::Vector {
                count,
                block_length,
                stride,
                inner,
            } => {
                if *count == 0 || *block_length == 0 {
                    return 0;
                }
                let elem = inner.extent() as i64;
                let last_block_start = stride * (*count as i64 - 1) * elem;
                let span = last_block_start.max(0) + (*block_length as i64) * elem;
                span.max((*block_length as i64) * elem) as usize
            }
            TypeDescriptor::Indexed {
                block_lengths,
                displacements,
                inner,
            } => {
                let elem = inner.extent() as i64;
                block_lengths
                    .iter()
                    .zip(displacements.iter())
                    .map(|(len, disp)| (disp * elem + (*len as i64) * elem).max(0) as usize)
                    .max()
                    .unwrap_or(0)
            }
            TypeDescriptor::Struct {
                block_lengths,
                byte_displacements,
                types,
            } => block_lengths
                .iter()
                .zip(byte_displacements.iter())
                .zip(types.iter())
                .map(|((len, disp), ty)| {
                    (disp + (*len as i64) * ty.extent() as i64).max(0) as usize
                })
                .max()
                .unwrap_or(0),
        }
    }

    /// Depth of the constructor tree (a primitive has depth 1). Useful for tests and
    /// for the record-replay cost model.
    pub fn depth(&self) -> usize {
        match self {
            TypeDescriptor::Primitive(_) => 1,
            TypeDescriptor::Dup(inner)
            | TypeDescriptor::Contiguous { inner, .. }
            | TypeDescriptor::Vector { inner, .. }
            | TypeDescriptor::Indexed { inner, .. } => 1 + inner.depth(),
            TypeDescriptor::Struct { types, .. } => {
                1 + types.iter().map(|t| t.depth()).max().unwrap_or(0)
            }
        }
    }

    /// Number of constructor calls required to rebuild this datatype (primitives are
    /// free). This is the restart-time replay cost for the datatype.
    pub fn constructor_count(&self) -> usize {
        match self {
            TypeDescriptor::Primitive(_) => 0,
            TypeDescriptor::Dup(inner)
            | TypeDescriptor::Contiguous { inner, .. }
            | TypeDescriptor::Vector { inner, .. }
            | TypeDescriptor::Indexed { inner, .. } => 1 + inner.constructor_count(),
            TypeDescriptor::Struct { types, .. } => {
                1 + types.iter().map(|t| t.constructor_count()).sum::<usize>()
            }
        }
    }

    /// Whether this descriptor is a predefined (named) type.
    pub fn is_primitive(&self) -> bool {
        matches!(self, TypeDescriptor::Primitive(_))
    }

    /// The envelope `MPI_Type_get_envelope` would report for this type.
    pub fn envelope(&self) -> TypeEnvelope {
        match self {
            TypeDescriptor::Primitive(_) => TypeEnvelope {
                num_integers: 0,
                num_addresses: 0,
                num_datatypes: 0,
                combiner: TypeCombiner::Named,
            },
            TypeDescriptor::Dup(_) => TypeEnvelope {
                num_integers: 0,
                num_addresses: 0,
                num_datatypes: 1,
                combiner: TypeCombiner::Dup,
            },
            TypeDescriptor::Contiguous { .. } => TypeEnvelope {
                num_integers: 1,
                num_addresses: 0,
                num_datatypes: 1,
                combiner: TypeCombiner::Contiguous,
            },
            TypeDescriptor::Vector { .. } => TypeEnvelope {
                num_integers: 3,
                num_addresses: 0,
                num_datatypes: 1,
                combiner: TypeCombiner::Vector,
            },
            TypeDescriptor::Indexed { block_lengths, .. } => TypeEnvelope {
                num_integers: 1 + 2 * block_lengths.len(),
                num_addresses: 0,
                num_datatypes: 1,
                combiner: TypeCombiner::Indexed,
            },
            TypeDescriptor::Struct { block_lengths, .. } => TypeEnvelope {
                num_integers: 1 + block_lengths.len(),
                num_addresses: block_lengths.len(),
                num_datatypes: block_lengths.len(),
                combiner: TypeCombiner::Struct,
            },
        }
    }

    /// The contents `MPI_Type_get_contents` would report for this type.
    ///
    /// Returns an error for named types, matching MPI semantics (calling
    /// `MPI_Type_get_contents` on a predefined datatype is erroneous).
    pub fn contents(&self) -> MpiResult<TypeContents> {
        match self {
            TypeDescriptor::Primitive(_) => Err(MpiError::Internal(
                "MPI_Type_get_contents is invalid on a named datatype".to_string(),
            )),
            TypeDescriptor::Dup(inner) => Ok(TypeContents {
                integers: vec![],
                addresses: vec![],
                datatypes: vec![(**inner).clone()],
            }),
            TypeDescriptor::Contiguous { count, inner } => Ok(TypeContents {
                integers: vec![*count as i64],
                addresses: vec![],
                datatypes: vec![(**inner).clone()],
            }),
            TypeDescriptor::Vector {
                count,
                block_length,
                stride,
                inner,
            } => Ok(TypeContents {
                integers: vec![*count as i64, *block_length as i64, *stride],
                addresses: vec![],
                datatypes: vec![(**inner).clone()],
            }),
            TypeDescriptor::Indexed {
                block_lengths,
                displacements,
                inner,
            } => {
                let mut integers = Vec::with_capacity(1 + 2 * block_lengths.len());
                integers.push(block_lengths.len() as i64);
                integers.extend(block_lengths.iter().map(|&b| b as i64));
                integers.extend(displacements.iter().copied());
                Ok(TypeContents {
                    integers,
                    addresses: vec![],
                    datatypes: vec![(**inner).clone()],
                })
            }
            TypeDescriptor::Struct {
                block_lengths,
                byte_displacements,
                types,
            } => {
                let mut integers = Vec::with_capacity(1 + block_lengths.len());
                integers.push(block_lengths.len() as i64);
                integers.extend(block_lengths.iter().map(|&b| b as i64));
                Ok(TypeContents {
                    integers,
                    addresses: byte_displacements.clone(),
                    datatypes: types.clone(),
                })
            }
        }
    }

    /// Rebuild a descriptor from an envelope and contents, i.e. perform the decoding
    /// MANA does at restart when it reconstructs datatypes from recorded information.
    ///
    /// `named` supplies the descriptor for the `Named` combiner (which carries no
    /// contents of its own).
    pub fn from_envelope_contents(
        envelope: TypeEnvelope,
        contents: Option<&TypeContents>,
        named: Option<PrimitiveType>,
    ) -> MpiResult<TypeDescriptor> {
        match envelope.combiner {
            TypeCombiner::Named => named
                .map(TypeDescriptor::Primitive)
                .ok_or_else(|| MpiError::Internal("named combiner requires a primitive".into())),
            TypeCombiner::Dup => {
                let c = contents.ok_or_else(|| MpiError::Internal("dup needs contents".into()))?;
                let inner =
                    c.datatypes.first().cloned().ok_or_else(|| {
                        MpiError::Internal("dup contents missing datatype".into())
                    })?;
                Ok(TypeDescriptor::Dup(Box::new(inner)))
            }
            TypeCombiner::Contiguous => {
                let c = contents
                    .ok_or_else(|| MpiError::Internal("contiguous needs contents".into()))?;
                let count = *c
                    .integers
                    .first()
                    .ok_or_else(|| MpiError::Internal("contiguous missing count".into()))?;
                if count < 0 {
                    return Err(MpiError::InvalidCount(count));
                }
                let inner = c
                    .datatypes
                    .first()
                    .cloned()
                    .ok_or_else(|| MpiError::Internal("contiguous missing datatype".into()))?;
                Ok(TypeDescriptor::Contiguous {
                    count: count as usize,
                    inner: Box::new(inner),
                })
            }
            TypeCombiner::Vector => {
                let c =
                    contents.ok_or_else(|| MpiError::Internal("vector needs contents".into()))?;
                if c.integers.len() < 3 {
                    return Err(MpiError::Internal("vector contents too short".into()));
                }
                let (count, block_length, stride) = (c.integers[0], c.integers[1], c.integers[2]);
                if count < 0 {
                    return Err(MpiError::InvalidCount(count));
                }
                if block_length < 0 {
                    return Err(MpiError::InvalidCount(block_length));
                }
                let inner = c
                    .datatypes
                    .first()
                    .cloned()
                    .ok_or_else(|| MpiError::Internal("vector missing datatype".into()))?;
                Ok(TypeDescriptor::Vector {
                    count: count as usize,
                    block_length: block_length as usize,
                    stride,
                    inner: Box::new(inner),
                })
            }
            TypeCombiner::Indexed => {
                let c =
                    contents.ok_or_else(|| MpiError::Internal("indexed needs contents".into()))?;
                let n = *c
                    .integers
                    .first()
                    .ok_or_else(|| MpiError::Internal("indexed missing count".into()))?
                    as usize;
                if c.integers.len() < 1 + 2 * n {
                    return Err(MpiError::Internal("indexed contents too short".into()));
                }
                let block_lengths = c.integers[1..1 + n].iter().map(|&b| b as usize).collect();
                let displacements = c.integers[1 + n..1 + 2 * n].to_vec();
                let inner = c
                    .datatypes
                    .first()
                    .cloned()
                    .ok_or_else(|| MpiError::Internal("indexed missing datatype".into()))?;
                Ok(TypeDescriptor::Indexed {
                    block_lengths,
                    displacements,
                    inner: Box::new(inner),
                })
            }
            TypeCombiner::Struct => {
                let c =
                    contents.ok_or_else(|| MpiError::Internal("struct needs contents".into()))?;
                let n = *c
                    .integers
                    .first()
                    .ok_or_else(|| MpiError::Internal("struct missing count".into()))?
                    as usize;
                if c.integers.len() < 1 + n || c.addresses.len() < n || c.datatypes.len() < n {
                    return Err(MpiError::Internal("struct contents too short".into()));
                }
                Ok(TypeDescriptor::Struct {
                    block_lengths: c.integers[1..1 + n].iter().map(|&b| b as usize).collect(),
                    byte_displacements: c.addresses[..n].to_vec(),
                    types: c.datatypes[..n].to_vec(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of_doubles() -> TypeDescriptor {
        TypeDescriptor::Vector {
            count: 4,
            block_length: 2,
            stride: 3,
            inner: Box::new(TypeDescriptor::Primitive(PrimitiveType::Double)),
        }
    }

    #[test]
    fn primitive_sizes() {
        assert_eq!(PrimitiveType::Double.size(), 8);
        assert_eq!(PrimitiveType::Int.size(), 4);
        assert_eq!(PrimitiveType::Char.size(), 1);
        assert_eq!(PrimitiveType::DoubleInt.size(), 12);
    }

    #[test]
    fn primitive_index_roundtrip() {
        for p in PrimitiveType::ALL {
            assert_eq!(PrimitiveType::from_index(p.index()), Some(p));
        }
        assert_eq!(PrimitiveType::from_index(999), None);
    }

    #[test]
    fn contiguous_size_and_extent() {
        let t = TypeDescriptor::Contiguous {
            count: 10,
            inner: Box::new(TypeDescriptor::Primitive(PrimitiveType::Int)),
        };
        assert_eq!(t.size(), 40);
        assert_eq!(t.extent(), 40);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.constructor_count(), 1);
    }

    #[test]
    fn vector_size_vs_extent() {
        let t = vec_of_doubles();
        // size counts only the 4*2 doubles
        assert_eq!(t.size(), 64);
        // extent spans strides: (4-1)*3*8 + 2*8 = 72 + 16
        assert_eq!(t.extent(), 88);
    }

    #[test]
    fn struct_size() {
        let t = TypeDescriptor::Struct {
            block_lengths: vec![1, 3],
            byte_displacements: vec![0, 8],
            types: vec![
                TypeDescriptor::Primitive(PrimitiveType::Double),
                TypeDescriptor::Primitive(PrimitiveType::Int),
            ],
        };
        assert_eq!(t.size(), 8 + 12);
        assert_eq!(t.extent(), 8 + 3 * 4);
        assert_eq!(t.constructor_count(), 1);
    }

    #[test]
    fn envelope_matches_combiner() {
        assert_eq!(
            TypeDescriptor::Primitive(PrimitiveType::Int)
                .envelope()
                .combiner,
            TypeCombiner::Named
        );
        assert_eq!(vec_of_doubles().envelope().combiner, TypeCombiner::Vector);
        assert_eq!(vec_of_doubles().envelope().num_integers, 3);
    }

    #[test]
    fn contents_of_named_is_error() {
        assert!(TypeDescriptor::Primitive(PrimitiveType::Int)
            .contents()
            .is_err());
    }

    #[test]
    fn envelope_contents_roundtrip_vector() {
        let t = vec_of_doubles();
        let env = t.envelope();
        let contents = t.contents().unwrap();
        let rebuilt = TypeDescriptor::from_envelope_contents(env, Some(&contents), None).unwrap();
        assert_eq!(rebuilt, t);
    }

    #[test]
    fn envelope_contents_roundtrip_indexed_and_struct() {
        let idx = TypeDescriptor::Indexed {
            block_lengths: vec![1, 2, 3],
            displacements: vec![0, 10, 20],
            inner: Box::new(TypeDescriptor::Primitive(PrimitiveType::Float)),
        };
        let rebuilt = TypeDescriptor::from_envelope_contents(
            idx.envelope(),
            Some(&idx.contents().unwrap()),
            None,
        )
        .unwrap();
        assert_eq!(rebuilt, idx);

        let st = TypeDescriptor::Struct {
            block_lengths: vec![2, 1],
            byte_displacements: vec![0, 16],
            types: vec![
                TypeDescriptor::Primitive(PrimitiveType::Double),
                idx.clone(),
            ],
        };
        let rebuilt = TypeDescriptor::from_envelope_contents(
            st.envelope(),
            Some(&st.contents().unwrap()),
            None,
        )
        .unwrap();
        assert_eq!(rebuilt, st);
    }

    #[test]
    fn nested_depth() {
        let t = TypeDescriptor::Contiguous {
            count: 2,
            inner: Box::new(vec_of_doubles()),
        };
        assert_eq!(t.depth(), 3);
        assert_eq!(t.constructor_count(), 2);
        assert_eq!(t.size(), 2 * 64);
    }

    #[test]
    fn dup_preserves_size() {
        let t = TypeDescriptor::Dup(Box::new(vec_of_doubles()));
        assert_eq!(t.size(), vec_of_doubles().size());
        assert_eq!(t.envelope().combiner, TypeCombiner::Dup);
        let rebuilt = TypeDescriptor::from_envelope_contents(
            t.envelope(),
            Some(&t.contents().unwrap()),
            None,
        )
        .unwrap();
        assert_eq!(rebuilt, t);
    }
}
