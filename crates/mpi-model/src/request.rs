//! Non-blocking request lifecycle model.
//!
//! Requests are the most checkpoint-sensitive of the five virtualized object kinds:
//! MANA guarantees that *no request is in flight inside the lower half at checkpoint
//! time* by draining pending point-to-point traffic (paper §5, category 1). The state
//! machine here is what both the simulated implementations and MANA's drain logic
//! reason about.

use crate::status::Status;
use crate::types::{PhysHandle, Rank, Tag};
use serde::{Deserialize, Serialize};

/// What kind of operation a request tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// An `MPI_Isend`.
    Send,
    /// An `MPI_Irecv`.
    Recv,
}

/// Progress state of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestState {
    /// The operation has been posted but not yet completed.
    Pending,
    /// The operation completed; the status is available.
    Complete(Status),
    /// The request handle was already waited on / freed.
    Inactive,
}

impl RequestState {
    /// Whether the request has completed (successfully).
    pub fn is_complete(&self) -> bool {
        matches!(self, RequestState::Complete(_))
    }
}

/// Implementation-independent record of a posted non-blocking operation.
///
/// MANA keeps one of these in the virtual-id descriptor of every live `MPI_Request` so
/// that, at checkpoint time, it knows which receives still need to be re-posted after
/// restart and which sends still need their payload delivered during the drain phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Send or receive.
    pub kind: RequestKind,
    /// Peer rank in the communicator the operation was posted on.
    pub peer: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Physical communicator handle the operation was posted on (meaningful only to
    /// the lower half that minted it; replaced on restart).
    pub comm: PhysHandle,
    /// Payload length in bytes (for sends: exact; for receives: the posted buffer cap).
    pub bytes: usize,
    /// Current progress state.
    pub state: RequestState,
}

impl RequestRecord {
    /// Create a pending request record.
    pub fn pending(
        kind: RequestKind,
        peer: Rank,
        tag: Tag,
        comm: PhysHandle,
        bytes: usize,
    ) -> Self {
        RequestRecord {
            kind,
            peer,
            tag,
            comm,
            bytes,
            state: RequestState::Pending,
        }
    }

    /// Mark the request complete with the given status.
    pub fn complete(&mut self, status: Status) {
        self.state = RequestState::Complete(status);
    }

    /// Whether this request still requires progress before a checkpoint can be taken.
    ///
    /// Pending *sends* must have their payload flushed out of the network; pending
    /// *receives* are safe to leave posted (MANA re-posts them after restart), but the
    /// drain algorithm completes them too when the matching message has already been
    /// injected, so both count as "in flight" here.
    pub fn in_flight(&self) -> bool {
        matches!(self.state, RequestState::Pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut r = RequestRecord::pending(RequestKind::Send, 2, 9, PhysHandle(0x44), 128);
        assert!(r.in_flight());
        assert!(!r.state.is_complete());
        r.complete(Status::new(2, 9, 128));
        assert!(!r.in_flight());
        assert!(r.state.is_complete());
        match r.state {
            RequestState::Complete(s) => assert_eq!(s.count_bytes, 128),
            _ => panic!("expected complete"),
        }
    }

    #[test]
    fn inactive_is_not_in_flight() {
        let mut r = RequestRecord::pending(RequestKind::Recv, 0, 1, PhysHandle(1), 16);
        r.state = RequestState::Inactive;
        assert!(!r.in_flight());
    }
}
