//! Typed element mapping: Rust types ↔ MPI datatypes ↔ wire bytes.
//!
//! The wrapper layer is deliberately byte-faithful (buffers cross the MPI interface as
//! `&[u8]` plus a datatype handle, exactly as in the C API), but applications should
//! never hand-roll `to_le_bytes`/`from_le_bytes` marshalling. [`MpiData`] is the one
//! place that mapping lives: each implementing type names the [`TypeDescriptor`] (and
//! therefore the [`TypeEnvelope`]) describing its layout and provides the matching
//! encode/decode. The typed session layer (`mana::api`) is generic over `MpiData`, so
//! `send::<f64>`/`allreduce::<i32>`/... resolve their datatype and marshalling from
//! the element type alone.
//!
//! Scalars map onto the predefined MPI datatypes; [`DoubleInt`] maps onto
//! `MPI_DOUBLE_INT` (the `MPI_MAXLOC`/`MPI_MINLOC` pair type); and user structs can
//! implement the trait with a [`TypeDescriptor::Struct`] layout, which the session
//! layer materializes as a committed derived datatype in the lower half.

use crate::datatype::{PrimitiveType, TypeDescriptor, TypeEnvelope};
use crate::error::{MpiError, MpiResult};
use serde::{Deserialize, Serialize};

/// A Rust type that can travel through the MPI interface as a typed element.
///
/// Implementations must uphold one invariant: `encode` produces exactly
/// `values.len() * Self::type_descriptor().size()` bytes, and `decode` accepts exactly
/// what `encode` produced. The default `decode` helpers enforce divisibility, so a
/// torn or mis-typed payload surfaces as an error instead of silently dropping
/// trailing bytes (which the old free-function helpers did).
pub trait MpiData: Copy + Send + Sync + 'static {
    /// The portable structural description of one element of this type.
    fn type_descriptor() -> TypeDescriptor;

    /// Append one element's wire bytes (little-endian, matching the fabric).
    fn encode_element(self, out: &mut Vec<u8>);

    /// Decode one element from exactly [`MpiData::elem_size`] bytes.
    fn decode_element(bytes: &[u8]) -> MpiResult<Self>;

    /// The envelope `MPI_Type_get_envelope` reports for this type's datatype.
    fn envelope() -> TypeEnvelope {
        Self::type_descriptor().envelope()
    }

    /// Bytes per element.
    fn elem_size() -> usize {
        Self::type_descriptor().size()
    }

    /// Encode a slice of elements into wire bytes.
    fn encode(values: &[Self]) -> Vec<u8> {
        let mut out = Vec::with_capacity(values.len() * Self::elem_size());
        for &value in values {
            value.encode_element(&mut out);
        }
        out
    }

    /// Decode wire bytes into elements, rejecting payloads that are not a whole
    /// number of elements.
    fn decode(bytes: &[u8]) -> MpiResult<Vec<Self>> {
        let width = Self::elem_size();
        if width == 0 || !bytes.len().is_multiple_of(width) {
            return Err(MpiError::Internal(format!(
                "payload of {} bytes is not a whole number of {width}-byte elements",
                bytes.len()
            )));
        }
        bytes
            .chunks_exact(width)
            .map(Self::decode_element)
            .collect()
    }
}

fn short_payload<T>(width: usize, got: usize) -> MpiResult<T> {
    Err(MpiError::Internal(format!(
        "element decode needs {width} bytes, got {got}"
    )))
}

macro_rules! impl_scalar {
    ($($ty:ty => $prim:expr),* $(,)?) => {$(
        impl MpiData for $ty {
            fn type_descriptor() -> TypeDescriptor {
                TypeDescriptor::Primitive($prim)
            }

            #[inline]
            fn elem_size() -> usize {
                std::mem::size_of::<$ty>()
            }

            #[inline]
            fn encode_element(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn decode_element(bytes: &[u8]) -> MpiResult<Self> {
                match bytes.try_into() {
                    Ok(array) => Ok(<$ty>::from_le_bytes(array)),
                    Err(_) => short_payload(std::mem::size_of::<$ty>(), bytes.len()),
                }
            }
        }
    )*};
}

impl_scalar!(
    i8 => PrimitiveType::Int8,
    u8 => PrimitiveType::Byte,
    i32 => PrimitiveType::Int,
    u32 => PrimitiveType::Unsigned,
    i64 => PrimitiveType::Long,
    u64 => PrimitiveType::UnsignedLong,
    f32 => PrimitiveType::Float,
    f64 => PrimitiveType::Double,
);

impl MpiData for bool {
    fn type_descriptor() -> TypeDescriptor {
        TypeDescriptor::Primitive(PrimitiveType::Bool)
    }

    #[inline]
    fn elem_size() -> usize {
        1
    }

    fn encode_element(self, out: &mut Vec<u8>) {
        out.push(u8::from(self));
    }

    fn decode_element(bytes: &[u8]) -> MpiResult<Self> {
        match bytes {
            [byte] => Ok(*byte != 0),
            other => short_payload(1, other.len()),
        }
    }
}

/// The `MPI_DOUBLE_INT` value/index pair operated on by `MPI_MAXLOC`/`MPI_MINLOC`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DoubleInt {
    /// The compared value.
    pub value: f64,
    /// The index carried alongside it (lowest index wins ties).
    pub index: i32,
}

impl MpiData for DoubleInt {
    fn type_descriptor() -> TypeDescriptor {
        TypeDescriptor::Primitive(PrimitiveType::DoubleInt)
    }

    #[inline]
    fn elem_size() -> usize {
        12
    }

    fn encode_element(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.value.to_le_bytes());
        out.extend_from_slice(&self.index.to_le_bytes());
    }

    fn decode_element(bytes: &[u8]) -> MpiResult<Self> {
        if bytes.len() != 12 {
            return short_payload(12, bytes.len());
        }
        Ok(DoubleInt {
            // analyzer: allow(no-panic): provable invariant — length 12 is checked directly above
            value: f64::from_le_bytes(bytes[..8].try_into().unwrap()),
            index: i32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::TypeCombiner;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(
            f64::decode(&f64::encode(&[1.5, -2.0])).unwrap(),
            [1.5, -2.0]
        );
        assert_eq!(
            i32::decode(&i32::encode(&[i32::MIN, 0, 7])).unwrap(),
            [i32::MIN, 0, 7]
        );
        assert_eq!(u64::decode(&u64::encode(&[u64::MAX])).unwrap(), [u64::MAX]);
        assert_eq!(
            bool::decode(&bool::encode(&[true, false])).unwrap(),
            [true, false]
        );
    }

    #[test]
    fn envelope_of_scalars_is_named() {
        assert_eq!(f64::envelope().combiner, TypeCombiner::Named);
        assert_eq!(u8::elem_size(), 1);
        assert_eq!(DoubleInt::elem_size(), 12);
    }

    #[test]
    fn decode_rejects_partial_elements() {
        let mut bytes = f64::encode(&[1.0]);
        bytes.push(0xff);
        assert!(f64::decode(&bytes).is_err(), "no silent truncation");
        assert!(i32::decode(&[1, 2, 3]).is_err());
    }

    #[test]
    fn double_int_roundtrip() {
        let pairs = [
            DoubleInt {
                value: 4.25,
                index: 3,
            },
            DoubleInt {
                value: -1.0,
                index: 9,
            },
        ];
        assert_eq!(
            DoubleInt::decode(&DoubleInt::encode(&pairs)).unwrap(),
            pairs
        );
    }
}
