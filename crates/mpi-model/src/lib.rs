//! # mpi-model
//!
//! A shared model of MPI semantics used by every simulated MPI implementation in this
//! workspace, and by the MANA wrapper layer that sits on top of them.
//!
//! The real MANA system ("Implementation-Oblivious Transparent Checkpoint-Restart for
//! MPI", SC 2023) interposes on the `mpi.h` C API of a production MPI library. In this
//! reproduction the `mpi.h` contract is expressed as the [`api::MpiApi`] trait: every
//! simulated implementation (`mpich-sim`, `openmpi-sim`, `exampi-sim`) implements it,
//! and MANA's wrapper layer only ever talks to the lower half through it. The trait
//! deliberately deals in *physical handles* ([`types::PhysHandle`]) whose bit-level
//! meaning is private to each implementation, exactly as the integer handles of the
//! MPICH family and the struct pointers of Open MPI are opaque to an application.
//!
//! The crate also contains the *semantic* building blocks that any standards-compliant
//! implementation needs and that MANA must be able to reconstruct at restart time:
//!
//! * [`datatype`] — primitive and derived datatype descriptors, including the
//!   `MPI_Type_get_envelope` / `MPI_Type_get_contents` decode surface (paper §5,
//!   category 2).
//! * [`group`] — process groups and rank translation.
//! * [`comm`] — communicator semantics (context ids, split/dup bookkeeping).
//! * [`op`] — reduction operations, predefined and user-defined.
//! * [`request`] / [`status`] — non-blocking request lifecycle and message statuses.
//! * [`constants`] — the predefined objects (MPI_COMM_WORLD, MPI_INT, MPI_SUM, ...)
//!   together with the *resolution policy* each implementation family uses for them
//!   (compile-time integers vs. startup-resolved pointers vs. lazy shared pointers),
//!   which is the crux of paper §4.3.
//! * [`subset`] — the minimal MPI subset MANA requires from an implementation
//!   (paper §5), as an auditable feature list.
//! * [`payload`] — the refcounted immutable [`payload::PayloadBuf`] every layer of
//!   the messaging stack shares instead of copying `Vec<u8>` payloads.
//! * [`typed`] — the [`typed::MpiData`] mapping from Rust element types onto
//!   datatype descriptors/envelopes and wire bytes, which the typed session layer
//!   (`mana::api`) builds its misuse-resistant generic API on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod buffer;
pub mod comm;
pub mod constants;
pub mod datatype;
pub mod error;
pub mod group;
pub mod op;
pub mod payload;
pub mod request;
pub mod status;
pub mod subset;
pub mod typed;
pub mod types;

pub use api::MpiApi;
pub use constants::{ConstantResolution, PredefinedObject};
pub use datatype::{PrimitiveType, TypeCombiner, TypeContents, TypeDescriptor, TypeEnvelope};
pub use error::{MpiError, MpiResult};
pub use group::GroupDescriptor;
pub use op::{OpDescriptor, PredefinedOp};
pub use payload::PayloadBuf;
pub use status::Status;
pub use subset::{SubsetFeature, REQUIRED_SUBSET};
pub use typed::{DoubleInt, MpiData};
pub use types::{HandleKind, PhysHandle, Rank, Tag, ANY_SOURCE, ANY_TAG};
