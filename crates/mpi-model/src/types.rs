//! Fundamental scalar types shared across the MPI model: ranks, tags, physical handles,
//! and the classification of MPI object kinds that MANA virtualizes.

use serde::{Deserialize, Serialize};

/// A process rank within some communicator (or within a group).
///
/// MPI ranks are non-negative `int`s; we keep them as `i32` so that the wildcard
/// [`ANY_SOURCE`] (negative, as in every real implementation) fits in the same type.
pub type Rank = i32;

/// A message tag. Like ranks, tags are non-negative except for the [`ANY_TAG`] wildcard.
pub type Tag = i32;

/// Wildcard source rank for receive/probe operations (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: Rank = -1;

/// Wildcard tag for receive/probe operations (`MPI_ANY_TAG`).
pub const ANY_TAG: Tag = -2;

/// Tag value reserved for MANA-internal control traffic (drain counts, barriers).
///
/// Real MANA sends its bookkeeping messages over the application's MPI library too;
/// keeping the tag far away from typical application tags avoids interference.
pub const MANA_INTERNAL_TAG: Tag = 0x7ead_0000_u32 as i32 & 0x7fff_ffff;

/// The five kinds of MPI objects whose ids MANA virtualizes (paper §1.2, point 3),
/// plus `File`/`Win` style kinds are deliberately absent because MANA (and the paper)
/// exclude one-sided communication and MPI-IO state from transparent checkpointing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HandleKind {
    /// An `MPI_Comm`.
    Comm,
    /// An `MPI_Group`.
    Group,
    /// An `MPI_Request`.
    Request,
    /// An `MPI_Op`.
    Op,
    /// An `MPI_Datatype`.
    Datatype,
}

impl HandleKind {
    /// All kinds, in a stable order (used for iteration and for encoding kind tags).
    pub const ALL: [HandleKind; 5] = [
        HandleKind::Comm,
        HandleKind::Group,
        HandleKind::Request,
        HandleKind::Op,
        HandleKind::Datatype,
    ];

    /// A stable small integer tag for this kind, used by implementations that encode
    /// the kind into handle bits (the MPICH two-level table) and by MANA's virtual ids.
    pub fn tag(self) -> u32 {
        match self {
            HandleKind::Comm => 0,
            HandleKind::Group => 1,
            HandleKind::Request => 2,
            HandleKind::Op => 3,
            HandleKind::Datatype => 4,
        }
    }

    /// Inverse of [`HandleKind::tag`]. Returns `None` for tags outside `0..=4`.
    pub fn from_tag(tag: u32) -> Option<Self> {
        Some(match tag {
            0 => HandleKind::Comm,
            1 => HandleKind::Group,
            2 => HandleKind::Request,
            3 => HandleKind::Op,
            4 => HandleKind::Datatype,
            _ => return None,
        })
    }

    /// Human-readable name matching the MPI type name (`MPI_Comm`, ...).
    pub fn mpi_type_name(self) -> &'static str {
        match self {
            HandleKind::Comm => "MPI_Comm",
            HandleKind::Group => "MPI_Group",
            HandleKind::Request => "MPI_Request",
            HandleKind::Op => "MPI_Op",
            HandleKind::Datatype => "MPI_Datatype",
        }
    }
}

/// A *physical* MPI object handle as produced by a particular MPI implementation's
/// lower half.
///
/// The paper's §3 observes that implementations disagree about what a handle is:
///
/// * the MPICH family uses 32-bit integers that encode a two-level table lookup,
/// * Open MPI uses 64-bit pointers to internal structs,
/// * ExaMPI uses enum discriminants for primitive datatypes and (lazily materialized)
///   shared pointers for everything else.
///
/// All of those fit in 64 bits, so the model carries physical handles as an opaque
/// `u64` newtype. Only the implementation that minted a handle may interpret its bits;
/// MANA stores them verbatim inside its virtual-id descriptors and hands them back on
/// the next call into the lower half.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PhysHandle(pub u64);

impl PhysHandle {
    /// The "null" physical handle (`MPI_COMM_NULL` etc. are modelled as all-zero).
    pub const NULL: PhysHandle = PhysHandle(0);

    /// Construct a handle from raw bits.
    pub fn from_bits(bits: u64) -> Self {
        PhysHandle(bits)
    }

    /// Raw bits of the handle.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Whether this is the null handle.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for PhysHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "phys:{:#x}", self.0)
    }
}

/// Identifies a communication *context*: messages sent on one communicator can never be
/// matched by receives on another, even if ranks and tags coincide. Each communicator
/// creation allocates a fresh context id; this is also the seed of MANA's "ggid".
pub type ContextId = u64;

/// A monotonically increasing sequence number used by the fabric to preserve the
/// per-(sender, receiver, context) FIFO ordering MPI guarantees.
pub type SeqNo = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_tag_roundtrip() {
        for kind in HandleKind::ALL {
            assert_eq!(HandleKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(HandleKind::from_tag(5), None);
        assert_eq!(HandleKind::from_tag(u32::MAX), None);
    }

    #[test]
    fn kind_tags_are_distinct() {
        let mut tags: Vec<u32> = HandleKind::ALL.iter().map(|k| k.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), HandleKind::ALL.len());
    }

    #[test]
    fn phys_handle_null() {
        assert!(PhysHandle::NULL.is_null());
        assert!(!PhysHandle::from_bits(1).is_null());
        assert_eq!(PhysHandle::from_bits(42).bits(), 42);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn wildcards_are_negative() {
        assert!(ANY_SOURCE < 0);
        assert!(ANY_TAG < 0);
        assert!(MANA_INTERNAL_TAG > 0, "internal tag must be a valid tag");
    }

    #[test]
    fn mpi_type_names() {
        assert_eq!(HandleKind::Comm.mpi_type_name(), "MPI_Comm");
        assert_eq!(HandleKind::Datatype.mpi_type_name(), "MPI_Datatype");
    }

    #[test]
    fn phys_handle_display() {
        assert_eq!(PhysHandle(0x10).to_string(), "phys:0x10");
    }
}
