//! Communicator semantics shared by the simulated MPI implementations.
//!
//! A communicator is a process group plus a *communication context* that isolates its
//! traffic from every other communicator's. The context id is also the natural seed of
//! MANA's "ggid" (global group id, paper §4.2): every member of a communicator can
//! compute the same value from the membership alone, with no extra communication.

use crate::group::GroupDescriptor;
use crate::types::{ContextId, Rank};
use serde::{Deserialize, Serialize};

/// Result of `MPI_Comm_compare`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommComparison {
    /// Same object (same context): `MPI_IDENT`.
    Identical,
    /// Different context, identical groups: `MPI_CONGRUENT`.
    Congruent,
    /// Different context, same members in a different order: `MPI_SIMILAR`.
    Similar,
    /// Different membership: `MPI_UNEQUAL`.
    Unequal,
}

/// Implementation-independent description of a communicator.
///
/// Each simulated implementation embeds one of these in its communicator objects; MANA
/// records one per communicator virtual id so the restart coordinator can re-create a
/// semantically equivalent communicator from the world communicator of the fresh lower
/// half.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommDescriptor {
    /// The member group.
    pub group: GroupDescriptor,
    /// The communication context isolating this communicator's traffic.
    pub context: ContextId,
}

impl CommDescriptor {
    /// The world communicator over `world_size` ranks, with the conventional context 1.
    pub fn world(world_size: usize) -> Self {
        CommDescriptor {
            group: GroupDescriptor::world(world_size),
            context: 1,
        }
    }

    /// A self communicator for `world_rank`, with the conventional context 2.
    pub fn self_comm(world_rank: Rank) -> Self {
        CommDescriptor {
            // analyzer: allow(no-panic): provable invariant — a one-member vec has no duplicates, the only from_members failure mode
            group: GroupDescriptor::from_members(vec![world_rank])
                .expect("single-member group is always valid"),
            context: 2,
        }
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.group.size()
    }

    /// Rank of `world_rank` inside this communicator, if it is a member.
    pub fn rank_of(&self, world_rank: Rank) -> Option<Rank> {
        self.group.rank_of(world_rank)
    }

    /// `MPI_Comm_compare` between two descriptors.
    pub fn compare(&self, other: &CommDescriptor) -> CommComparison {
        use crate::group::GroupComparison as G;
        if self.context == other.context {
            return CommComparison::Identical;
        }
        match self.group.compare(&other.group) {
            G::Identical => CommComparison::Congruent,
            G::Similar => CommComparison::Similar,
            G::Unequal => CommComparison::Unequal,
        }
    }

    /// Deterministic "global group id" for this communicator: a hash of the ordered
    /// membership. Every member computes the same value independently, which is what
    /// lets MANA use it as a cluster-wide identifier for the communicator across a
    /// checkpoint/restart boundary (paper §4.2).
    pub fn ggid(&self) -> u32 {
        ggid_of_members(self.group.members())
    }
}

/// FNV-1a hash of the ordered member list, folded to 28 bits so it can be embedded in
/// the index field of a MANA virtual id alongside the 3 kind bits and the predefined
/// bit.
pub fn ggid_of_members(members: &[Rank]) -> u32 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &m in members {
        for b in m.to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    // Fold to 28 bits, avoiding 0 which is reserved for "no ggid computed yet".
    let folded = ((hash >> 36) ^ (hash & 0x0fff_ffff)) as u32 & 0x0fff_ffff;
    if folded == 0 {
        1
    } else {
        folded
    }
}

/// One rank's contribution to an `MPI_Comm_split`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitContribution {
    /// The contributing rank, identified by its rank in the parent communicator.
    pub parent_rank: Rank,
    /// The world rank of the contributor (needed to build the child group).
    pub world_rank: Rank,
    /// The split color; `None` models `MPI_UNDEFINED` (the rank gets no communicator).
    pub color: Option<i32>,
    /// The ordering key.
    pub key: i32,
}

/// Compute the result of `MPI_Comm_split` from all ranks' contributions.
///
/// Returns, for each color, the ordered list of *world ranks* of the new communicator.
/// Ordering follows MPI: ascending key, ties broken by parent-communicator rank.
/// This pure function is shared by all three simulated implementations, which differ
/// only in how they exchange the contributions (via the fabric) and in the handles they
/// mint for the resulting communicators.
pub fn split_groups(contributions: &[SplitContribution]) -> Vec<(i32, Vec<Rank>)> {
    let mut by_color: std::collections::BTreeMap<i32, Vec<&SplitContribution>> =
        std::collections::BTreeMap::new();
    for c in contributions {
        if let Some(color) = c.color {
            by_color.entry(color).or_default().push(c);
        }
    }
    by_color
        .into_iter()
        .map(|(color, mut members)| {
            members.sort_by_key(|c| (c.key, c.parent_rank));
            (color, members.iter().map(|c| c.world_rank).collect())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_and_self() {
        let w = CommDescriptor::world(8);
        assert_eq!(w.size(), 8);
        assert_eq!(w.rank_of(5), Some(5));
        let s = CommDescriptor::self_comm(3);
        assert_eq!(s.size(), 1);
        assert_eq!(s.rank_of(3), Some(0));
        assert_eq!(s.rank_of(2), None);
    }

    #[test]
    fn comparison() {
        let w = CommDescriptor::world(4);
        let dup = CommDescriptor {
            group: w.group.clone(),
            context: 99,
        };
        assert_eq!(w.compare(&w), CommComparison::Identical);
        assert_eq!(w.compare(&dup), CommComparison::Congruent);
        let shuffled = CommDescriptor {
            group: GroupDescriptor::from_members(vec![3, 2, 1, 0]).unwrap(),
            context: 98,
        };
        assert_eq!(w.compare(&shuffled), CommComparison::Similar);
        let other = CommDescriptor::world(3);
        assert_eq!(
            CommDescriptor {
                group: other.group.clone(),
                context: 97
            }
            .compare(&w),
            CommComparison::Unequal
        );
    }

    #[test]
    fn ggid_is_deterministic_and_membership_sensitive() {
        let a = CommDescriptor::world(16).ggid();
        let b = CommDescriptor::world(16).ggid();
        assert_eq!(a, b);
        let c = CommDescriptor::world(17).ggid();
        assert_ne!(a, c);
        // order matters: a communicator with reversed ranks is a different comm
        let rev = GroupDescriptor::from_members((0..16).rev().collect()).unwrap();
        assert_ne!(ggid_of_members(rev.members()), a);
        // 28-bit bound, nonzero
        assert!(a > 0 && a < (1 << 28));
    }

    #[test]
    fn split_orders_by_key_then_rank() {
        let contributions = vec![
            SplitContribution {
                parent_rank: 0,
                world_rank: 10,
                color: Some(0),
                key: 5,
            },
            SplitContribution {
                parent_rank: 1,
                world_rank: 11,
                color: Some(0),
                key: 1,
            },
            SplitContribution {
                parent_rank: 2,
                world_rank: 12,
                color: Some(1),
                key: 0,
            },
            SplitContribution {
                parent_rank: 3,
                world_rank: 13,
                color: Some(0),
                key: 1,
            },
            SplitContribution {
                parent_rank: 4,
                world_rank: 14,
                color: None,
                key: 0,
            },
        ];
        let groups = split_groups(&contributions);
        assert_eq!(groups.len(), 2);
        // color 0: keys (1,1,5) -> ranks 1,3 then 0 -> world 11,13,10
        assert_eq!(groups[0], (0, vec![11, 13, 10]));
        assert_eq!(groups[1], (1, vec![12]));
    }

    #[test]
    fn split_with_all_undefined_is_empty() {
        let contributions = vec![
            SplitContribution {
                parent_rank: 0,
                world_rank: 0,
                color: None,
                key: 0,
            },
            SplitContribution {
                parent_rank: 1,
                world_rank: 1,
                color: None,
                key: 0,
            },
        ];
        assert!(split_groups(&contributions).is_empty());
    }
}
