//! Predefined MPI objects ("global constants") and the resolution policies that
//! different MPI implementation families use for them.
//!
//! Paper §4.3 is entirely about this problem: in the MPICH family `MPI_COMM_WORLD`
//! expands to a compile-time integer that is identical in the upper and lower halves
//! and identical before checkpoint and after restart; in Open MPI it expands to a
//! function call returning a pointer whose value differs between halves and between
//! sessions; in ExaMPI constants are lazily-initialized shared pointers whose addresses
//! are only known late at runtime. MANA therefore cannot bake any constant's physical
//! value into checkpointed state — it maps each predefined object onto a reserved
//! virtual id and re-resolves the physical value from the (new) lower half at restart.

use crate::datatype::PrimitiveType;
use crate::op::PredefinedOp;
use crate::types::HandleKind;
use serde::{Deserialize, Serialize};

/// Every predefined MPI object that applications may name without creating it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PredefinedObject {
    /// `MPI_COMM_WORLD`
    CommWorld,
    /// `MPI_COMM_SELF`
    CommSelf,
    /// `MPI_COMM_NULL`
    CommNull,
    /// `MPI_GROUP_EMPTY`
    GroupEmpty,
    /// `MPI_GROUP_NULL`
    GroupNull,
    /// `MPI_REQUEST_NULL`
    RequestNull,
    /// `MPI_OP_NULL`
    OpNull,
    /// `MPI_DATATYPE_NULL`
    DatatypeNull,
    /// A predefined datatype (`MPI_INT`, `MPI_DOUBLE`, ...).
    Datatype(PrimitiveType),
    /// A predefined reduction op (`MPI_SUM`, ...).
    Op(PredefinedOp),
}

impl PredefinedObject {
    /// The object kind this constant belongs to.
    pub fn kind(self) -> HandleKind {
        match self {
            PredefinedObject::CommWorld
            | PredefinedObject::CommSelf
            | PredefinedObject::CommNull => HandleKind::Comm,
            PredefinedObject::GroupEmpty | PredefinedObject::GroupNull => HandleKind::Group,
            PredefinedObject::RequestNull => HandleKind::Request,
            PredefinedObject::OpNull | PredefinedObject::Op(_) => HandleKind::Op,
            PredefinedObject::DatatypeNull | PredefinedObject::Datatype(_) => HandleKind::Datatype,
        }
    }

    /// Enumerate every predefined object, in a stable order. The position in this list
    /// is the object's "constant slot", used both by the simulated implementations'
    /// constant tables and by MANA's reserved virtual ids.
    pub fn all() -> Vec<PredefinedObject> {
        let mut v = vec![
            PredefinedObject::CommWorld,
            PredefinedObject::CommSelf,
            PredefinedObject::CommNull,
            PredefinedObject::GroupEmpty,
            PredefinedObject::GroupNull,
            PredefinedObject::RequestNull,
            PredefinedObject::OpNull,
            PredefinedObject::DatatypeNull,
        ];
        v.extend(
            PrimitiveType::ALL
                .iter()
                .map(|&p| PredefinedObject::Datatype(p)),
        );
        v.extend(PredefinedOp::ALL.iter().map(|&o| PredefinedObject::Op(o)));
        v
    }

    /// The stable slot of this constant in [`PredefinedObject::all`].
    pub fn slot(self) -> usize {
        PredefinedObject::all()
            .iter()
            .position(|&o| o == self)
            // analyzer: allow(no-panic): provable invariant — the table enumerates every variant; the unit test below locks the bijection
            .expect("every predefined object appears in all()")
    }

    /// Inverse of [`PredefinedObject::slot`].
    pub fn from_slot(slot: usize) -> Option<PredefinedObject> {
        PredefinedObject::all().get(slot).copied()
    }

    /// Whether this constant denotes a "null" handle.
    pub fn is_null(self) -> bool {
        matches!(
            self,
            PredefinedObject::CommNull
                | PredefinedObject::GroupNull
                | PredefinedObject::RequestNull
                | PredefinedObject::OpNull
                | PredefinedObject::DatatypeNull
        )
    }

    /// The MPI constant name (`MPI_COMM_WORLD`, `MPI_INT`, ...).
    pub fn mpi_name(self) -> String {
        match self {
            PredefinedObject::CommWorld => "MPI_COMM_WORLD".to_string(),
            PredefinedObject::CommSelf => "MPI_COMM_SELF".to_string(),
            PredefinedObject::CommNull => "MPI_COMM_NULL".to_string(),
            PredefinedObject::GroupEmpty => "MPI_GROUP_EMPTY".to_string(),
            PredefinedObject::GroupNull => "MPI_GROUP_NULL".to_string(),
            PredefinedObject::RequestNull => "MPI_REQUEST_NULL".to_string(),
            PredefinedObject::OpNull => "MPI_OP_NULL".to_string(),
            PredefinedObject::DatatypeNull => "MPI_DATATYPE_NULL".to_string(),
            PredefinedObject::Datatype(p) => p.mpi_name().to_string(),
            PredefinedObject::Op(o) => o.mpi_name().to_string(),
        }
    }
}

/// How an implementation family resolves its predefined constants to physical handles.
///
/// This is reported by each [`crate::api::MpiApi`] implementation so that MANA (and the
/// tests) can verify that the virtual-id layer genuinely insulates the application from
/// the differences. It mirrors the three concrete designs discussed in paper §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstantResolution {
    /// MPICH family: constants are fixed integers baked into `mpi.h`; identical in both
    /// halves and across sessions.
    CompileTimeInteger,
    /// Open MPI: constants are addresses of internal structs, resolved when the library
    /// is initialized; they differ between the upper and lower halves and between the
    /// pre-checkpoint and post-restart sessions.
    StartupResolvedPointer,
    /// ExaMPI: constants are lazily-initialized shared pointers (`MPI_INT8_T` and
    /// `MPI_CHAR` may alias); the physical value is not known until first use.
    LazySharedPointer,
}

impl ConstantResolution {
    /// Whether the physical value of a constant is stable across sessions (restarts).
    ///
    /// Only the MPICH-family encoding is stable; this is precisely why the original
    /// MANA prototype, which assumed stability, was not implementation-oblivious.
    pub fn stable_across_sessions(self) -> bool {
        matches!(self, ConstantResolution::CompileTimeInteger)
    }

    /// Whether the constant's physical value is known as soon as the library is
    /// initialized (as opposed to lazily on first use).
    pub fn known_at_startup(self) -> bool {
        !matches!(self, ConstantResolution::LazySharedPointer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_a_bijection() {
        let all = PredefinedObject::all();
        for (i, obj) in all.iter().enumerate() {
            assert_eq!(obj.slot(), i);
            assert_eq!(PredefinedObject::from_slot(i), Some(*obj));
        }
        assert_eq!(PredefinedObject::from_slot(all.len()), None);
        // 8 special handles + primitives + ops
        assert_eq!(
            all.len(),
            8 + PrimitiveType::ALL.len() + PredefinedOp::ALL.len()
        );
    }

    #[test]
    fn kinds() {
        assert_eq!(PredefinedObject::CommWorld.kind(), HandleKind::Comm);
        assert_eq!(PredefinedObject::GroupEmpty.kind(), HandleKind::Group);
        assert_eq!(
            PredefinedObject::Datatype(PrimitiveType::Int).kind(),
            HandleKind::Datatype
        );
        assert_eq!(
            PredefinedObject::Op(PredefinedOp::Sum).kind(),
            HandleKind::Op
        );
    }

    #[test]
    fn null_detection() {
        assert!(PredefinedObject::CommNull.is_null());
        assert!(!PredefinedObject::CommWorld.is_null());
    }

    #[test]
    fn resolution_policies() {
        assert!(ConstantResolution::CompileTimeInteger.stable_across_sessions());
        assert!(!ConstantResolution::StartupResolvedPointer.stable_across_sessions());
        assert!(!ConstantResolution::LazySharedPointer.stable_across_sessions());
        assert!(ConstantResolution::StartupResolvedPointer.known_at_startup());
        assert!(!ConstantResolution::LazySharedPointer.known_at_startup());
    }

    #[test]
    fn names() {
        assert_eq!(PredefinedObject::CommWorld.mpi_name(), "MPI_COMM_WORLD");
        assert_eq!(
            PredefinedObject::Datatype(PrimitiveType::Double).mpi_name(),
            "MPI_DOUBLE"
        );
        assert_eq!(
            PredefinedObject::Op(PredefinedOp::Sum).mpi_name(),
            "MPI_SUM"
        );
    }
}
