//! Typed message buffers.
//!
//! Application data crosses the MPI interface as raw bytes plus a datatype describing
//! the element layout. The helpers here convert between Rust slices of the common
//! numeric types and the little-endian byte representation the fabric carries, and
//! validate that buffer lengths agree with `count × datatype.size()` the way a real
//! implementation would before touching the wire.

use crate::datatype::{PrimitiveType, TypeDescriptor};
use crate::error::{MpiError, MpiResult};

/// A send/receive buffer: raw bytes with an element type and count, mirroring the
/// `(void *buf, int count, MPI_Datatype type)` triple of the C API.
#[derive(Debug, Clone, PartialEq)]
pub struct TypedBuffer {
    bytes: Vec<u8>,
    datatype: TypeDescriptor,
    count: usize,
}

impl TypedBuffer {
    /// Create a buffer from raw bytes, validating that the length matches
    /// `count * datatype.size()`.
    pub fn from_bytes(bytes: Vec<u8>, datatype: TypeDescriptor, count: usize) -> MpiResult<Self> {
        let expected = count * datatype.size();
        if bytes.len() != expected {
            return Err(MpiError::Internal(format!(
                "buffer of {} bytes does not match count {} × type size {}",
                bytes.len(),
                count,
                datatype.size()
            )));
        }
        Ok(TypedBuffer {
            bytes,
            datatype,
            count,
        })
    }

    /// A zero-filled receive buffer for `count` elements of `datatype`.
    pub fn zeroed(datatype: TypeDescriptor, count: usize) -> Self {
        TypedBuffer {
            bytes: vec![0u8; count * datatype.size()],
            datatype,
            count,
        }
    }

    /// Buffer from a slice of `f64` (the dominant case in the proxy applications).
    pub fn from_f64(values: &[f64]) -> Self {
        TypedBuffer {
            bytes: values.iter().flat_map(|v| v.to_le_bytes()).collect(),
            datatype: TypeDescriptor::Primitive(PrimitiveType::Double),
            count: values.len(),
        }
    }

    /// Buffer from a slice of `i32`.
    pub fn from_i32(values: &[i32]) -> Self {
        TypedBuffer {
            bytes: values.iter().flat_map(|v| v.to_le_bytes()).collect(),
            datatype: TypeDescriptor::Primitive(PrimitiveType::Int),
            count: values.len(),
        }
    }

    /// Buffer from a slice of `u64`.
    pub fn from_u64(values: &[u64]) -> Self {
        TypedBuffer {
            bytes: values.iter().flat_map(|v| v.to_le_bytes()).collect(),
            datatype: TypeDescriptor::Primitive(PrimitiveType::UnsignedLong),
            count: values.len(),
        }
    }

    /// Interpret the contents as `f64` values.
    pub fn as_f64(&self) -> Vec<f64> {
        self.bytes
            .chunks_exact(8)
            // analyzer: allow(no-panic): provable invariant — chunks_exact(8) yields exactly 8-byte slices
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    /// Interpret the contents as `i32` values.
    pub fn as_i32(&self) -> Vec<i32> {
        self.bytes
            .chunks_exact(4)
            // analyzer: allow(no-panic): provable invariant — chunks_exact(4) yields exactly 4-byte slices
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    /// Interpret the contents as `u64` values.
    pub fn as_u64(&self) -> Vec<u64> {
        self.bytes
            .chunks_exact(8)
            // analyzer: allow(no-panic): provable invariant — chunks_exact(8) yields exactly 8-byte slices
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    /// Raw byte view.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable raw byte view (used by receive paths).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Consume into raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// The element datatype.
    pub fn datatype(&self) -> &TypeDescriptor {
        &self.datatype
    }

    /// Element count.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Total size in bytes.
    pub fn len_bytes(&self) -> usize {
        self.bytes.len()
    }
}

/// Encode a slice of `f64` into little-endian bytes.
pub fn f64_to_bytes(values: &[f64]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Decode little-endian bytes into `f64` values. Trailing partial elements are dropped.
pub fn bytes_to_f64(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        // analyzer: allow(no-panic): provable invariant — chunks_exact(8) yields exactly 8-byte slices
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Encode a slice of `i32` into little-endian bytes.
pub fn i32_to_bytes(values: &[i32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Decode little-endian bytes into `i32` values. Trailing partial elements are dropped.
pub fn bytes_to_i32(bytes: &[u8]) -> Vec<i32> {
    bytes
        .chunks_exact(4)
        // analyzer: allow(no-panic): provable invariant — chunks_exact(4) yields exactly 4-byte slices
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Encode a slice of `u64` into little-endian bytes.
pub fn u64_to_bytes(values: &[u64]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Decode little-endian bytes into `u64` values. Trailing partial elements are dropped.
pub fn bytes_to_u64(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        // analyzer: allow(no-panic): provable invariant — chunks_exact(8) yields exactly 8-byte slices
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let v = vec![1.5, -2.25, 1e300];
        assert_eq!(bytes_to_f64(&f64_to_bytes(&v)), v);
        let buf = TypedBuffer::from_f64(&v);
        assert_eq!(buf.as_f64(), v);
        assert_eq!(buf.count(), 3);
        assert_eq!(buf.len_bytes(), 24);
    }

    #[test]
    fn i32_and_u64_roundtrip() {
        let v = vec![-1, 0, i32::MAX];
        assert_eq!(bytes_to_i32(&i32_to_bytes(&v)), v);
        assert_eq!(TypedBuffer::from_i32(&v).as_i32(), v);
        let u = vec![0u64, u64::MAX, 42];
        assert_eq!(bytes_to_u64(&u64_to_bytes(&u)), u);
        assert_eq!(TypedBuffer::from_u64(&u).as_u64(), u);
    }

    #[test]
    fn from_bytes_validates_length() {
        let ty = TypeDescriptor::Primitive(PrimitiveType::Double);
        assert!(TypedBuffer::from_bytes(vec![0u8; 16], ty.clone(), 2).is_ok());
        assert!(TypedBuffer::from_bytes(vec![0u8; 15], ty, 2).is_err());
    }

    #[test]
    fn zeroed_buffer() {
        let buf = TypedBuffer::zeroed(TypeDescriptor::Primitive(PrimitiveType::Int), 5);
        assert_eq!(buf.len_bytes(), 20);
        assert!(buf.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn partial_trailing_bytes_dropped() {
        let mut bytes = f64_to_bytes(&[1.0]);
        bytes.push(0xff);
        assert_eq!(bytes_to_f64(&bytes), vec![1.0]);
    }
}
