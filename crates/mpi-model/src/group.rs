//! MPI process groups.
//!
//! A group is an ordered set of world ranks. Communicators are built from groups, and
//! MANA's restart path leans on exactly two group operations that the paper lists in
//! its required subset (§5, category 2): `MPI_Comm_group` to obtain the group of a
//! communicator before checkpointing, and `MPI_Group_translate_ranks` to map the
//! membership back onto the new world at restart.

use crate::error::{MpiError, MpiResult};
use crate::types::Rank;
use serde::{Deserialize, Serialize};

/// Value returned by `MPI_Group_translate_ranks` when a rank has no equivalent in the
/// target group (`MPI_UNDEFINED`).
pub const UNDEFINED_RANK: Rank = -32766;

/// An ordered set of world ranks, i.e. the payload of an `MPI_Group`.
///
/// The descriptor is implementation-independent: all three simulated MPI
/// implementations store one of these inside their group objects, and MANA records one
/// in each group/communicator virtual-id descriptor so the membership survives a
/// checkpoint.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GroupDescriptor {
    /// Member world ranks; position in this vector is the member's group rank.
    members: Vec<Rank>,
}

impl GroupDescriptor {
    /// The empty group (`MPI_GROUP_EMPTY`).
    pub fn empty() -> Self {
        GroupDescriptor { members: vec![] }
    }

    /// The group `0..world_size`, i.e. the group of `MPI_COMM_WORLD`.
    pub fn world(world_size: usize) -> Self {
        GroupDescriptor {
            members: (0..world_size as Rank).collect(),
        }
    }

    /// Build a group from an explicit member list. Fails if the list contains
    /// duplicates or negative ranks, which MPI forbids.
    pub fn from_members(members: Vec<Rank>) -> MpiResult<Self> {
        let mut seen = std::collections::HashSet::with_capacity(members.len());
        for &m in &members {
            if m < 0 {
                return Err(MpiError::InvalidRank {
                    rank: m,
                    size: members.len(),
                });
            }
            if !seen.insert(m) {
                return Err(MpiError::Internal(format!(
                    "duplicate world rank {m} in group construction"
                )));
            }
        }
        Ok(GroupDescriptor { members })
    }

    /// Number of members (`MPI_Group_size`).
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Whether the group has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member world ranks, ordered by group rank.
    pub fn members(&self) -> &[Rank] {
        &self.members
    }

    /// Group rank of the given world rank (`MPI_Group_rank` from the perspective of
    /// that process), or `None` if the process is not a member.
    pub fn rank_of(&self, world_rank: Rank) -> Option<Rank> {
        self.members
            .iter()
            .position(|&m| m == world_rank)
            .map(|p| p as Rank)
    }

    /// World rank of the given group rank.
    pub fn world_rank(&self, group_rank: Rank) -> MpiResult<Rank> {
        if group_rank < 0 || group_rank as usize >= self.members.len() {
            return Err(MpiError::InvalidRank {
                rank: group_rank,
                size: self.members.len(),
            });
        }
        Ok(self.members[group_rank as usize])
    }

    /// `MPI_Group_translate_ranks`: for each rank in `ranks` (interpreted in `self`),
    /// find the rank of the same process in `other`, or [`UNDEFINED_RANK`] if absent.
    pub fn translate_ranks(&self, ranks: &[Rank], other: &GroupDescriptor) -> MpiResult<Vec<Rank>> {
        ranks
            .iter()
            .map(|&r| {
                let world = self.world_rank(r)?;
                Ok(other.rank_of(world).unwrap_or(UNDEFINED_RANK))
            })
            .collect()
    }

    /// `MPI_Group_incl`: the subgroup consisting of the listed group ranks, in order.
    pub fn incl(&self, ranks: &[Rank]) -> MpiResult<GroupDescriptor> {
        let members = ranks
            .iter()
            .map(|&r| self.world_rank(r))
            .collect::<MpiResult<Vec<_>>>()?;
        GroupDescriptor::from_members(members)
    }

    /// `MPI_Group_excl`: the subgroup of all members except the listed group ranks,
    /// preserving order.
    pub fn excl(&self, ranks: &[Rank]) -> MpiResult<GroupDescriptor> {
        for &r in ranks {
            // validate
            self.world_rank(r)?;
        }
        let excluded: std::collections::HashSet<Rank> = ranks.iter().copied().collect();
        let members = self
            .members
            .iter()
            .enumerate()
            .filter(|(i, _)| !excluded.contains(&(*i as Rank)))
            .map(|(_, &m)| m)
            .collect();
        GroupDescriptor::from_members(members)
    }

    /// `MPI_Group_union`: members of `self` followed by members of `other` not already
    /// present (MPI-mandated ordering).
    pub fn union(&self, other: &GroupDescriptor) -> GroupDescriptor {
        let mut members = self.members.clone();
        for &m in &other.members {
            if !members.contains(&m) {
                members.push(m);
            }
        }
        GroupDescriptor { members }
    }

    /// `MPI_Group_intersection`: members of `self` that are also in `other`, in
    /// `self`'s order.
    pub fn intersection(&self, other: &GroupDescriptor) -> GroupDescriptor {
        GroupDescriptor {
            members: self
                .members
                .iter()
                .copied()
                .filter(|m| other.members.contains(m))
                .collect(),
        }
    }

    /// `MPI_Group_difference`: members of `self` not in `other`, in `self`'s order.
    pub fn difference(&self, other: &GroupDescriptor) -> GroupDescriptor {
        GroupDescriptor {
            members: self
                .members
                .iter()
                .copied()
                .filter(|m| !other.members.contains(m))
                .collect(),
        }
    }

    /// `MPI_Group_compare` result: identical (same members, same order), similar
    /// (same members, different order) or unequal.
    pub fn compare(&self, other: &GroupDescriptor) -> GroupComparison {
        if self.members == other.members {
            GroupComparison::Identical
        } else {
            let mut a = self.members.clone();
            let mut b = other.members.clone();
            a.sort_unstable();
            b.sort_unstable();
            if a == b {
                GroupComparison::Similar
            } else {
                GroupComparison::Unequal
            }
        }
    }
}

/// Result of `MPI_Group_compare` / `MPI_Comm_compare` (group part).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupComparison {
    /// `MPI_IDENT`: same members in the same order.
    Identical,
    /// `MPI_SIMILAR`: same members, different order.
    Similar,
    /// `MPI_UNEQUAL`: different membership.
    Unequal,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_group_basics() {
        let g = GroupDescriptor::world(4);
        assert_eq!(g.size(), 4);
        assert_eq!(g.rank_of(2), Some(2));
        assert_eq!(g.world_rank(3).unwrap(), 3);
        assert!(g.world_rank(4).is_err());
        assert!(!g.is_empty());
        assert!(GroupDescriptor::empty().is_empty());
    }

    #[test]
    fn from_members_rejects_duplicates_and_negatives() {
        assert!(GroupDescriptor::from_members(vec![0, 1, 1]).is_err());
        assert!(GroupDescriptor::from_members(vec![0, -3]).is_err());
        assert!(GroupDescriptor::from_members(vec![3, 1, 0]).is_ok());
    }

    #[test]
    fn incl_excl() {
        let g = GroupDescriptor::world(6);
        let sub = g.incl(&[5, 0, 3]).unwrap();
        assert_eq!(sub.members(), &[5, 0, 3]);
        assert_eq!(sub.rank_of(0), Some(1));

        let rest = g.excl(&[0, 1]).unwrap();
        assert_eq!(rest.members(), &[2, 3, 4, 5]);
        assert!(g.incl(&[7]).is_err());
        assert!(g.excl(&[7]).is_err());
    }

    #[test]
    fn translate_ranks() {
        let world = GroupDescriptor::world(8);
        let evens = world.incl(&[0, 2, 4, 6]).unwrap();
        // group rank 1 of evens is world rank 2, which is rank 2 in world
        let t = evens.translate_ranks(&[0, 1, 2, 3], &world).unwrap();
        assert_eq!(t, vec![0, 2, 4, 6]);
        // reverse direction: world ranks 1,2 -> evens has only 2
        let t = world.translate_ranks(&[1, 2], &evens).unwrap();
        assert_eq!(t, vec![UNDEFINED_RANK, 1]);
    }

    #[test]
    fn set_operations() {
        let world = GroupDescriptor::world(6);
        let a = world.incl(&[0, 1, 2, 3]).unwrap();
        let b = world.incl(&[2, 3, 4, 5]).unwrap();
        assert_eq!(a.union(&b).members(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(a.intersection(&b).members(), &[2, 3]);
        assert_eq!(a.difference(&b).members(), &[0, 1]);
    }

    #[test]
    fn compare() {
        let world = GroupDescriptor::world(4);
        let same = GroupDescriptor::world(4);
        let shuffled = GroupDescriptor::from_members(vec![3, 2, 1, 0]).unwrap();
        let other = GroupDescriptor::world(3);
        assert_eq!(world.compare(&same), GroupComparison::Identical);
        assert_eq!(world.compare(&shuffled), GroupComparison::Similar);
        assert_eq!(world.compare(&other), GroupComparison::Unequal);
    }
}
